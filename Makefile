# Test / benchmark entry points.  All targets run from the repo root.
#
#   make quick     - sub-minute smoke tier (the `quick` pytest marker):
#                    Session API end-to-end on small traces plus the
#                    perf smoke.  CI's per-push gate.
#   make sweep-smoke - declarative-sweep smoke: a tiny grid search and a
#                    2-core mix through both executors against a
#                    persistent store (subset of the quick tier).
#   make resume-smoke - checkpointed-resume smoke: extend a 100k Pythia
#                    cell to 200k from its stored checkpoint, pinned
#                    bit-identical to a fresh run (quick tier).
#   make stress-smoke - store concurrency suite: the multiprocess x
#                    multithread stress harness plus the locking /
#                    eviction-race / single-flight regression tests
#                    (tests/test_store_concurrency.py, quick tier; runs
#                    in CI right after the resume smoke).
#   make test      - full unit suite (tests/), ~1 min.
#   make bench     - figure/table regeneration suite (benchmarks/), slow.
#   make perfbench - tracked throughput bench; rewrites BENCH_perf.json
#                    (commit the diff when a PR moves performance).
#   make profile   - cProfile one cell; configure via PROFILE_ARGS, e.g.
#                    PROFILE_ARGS="--prefetcher spp --length 50000".
#   make lint      - the invariant checker (python -m repro.analysis):
#                    per-file rules (determinism, layering, hygiene,
#                    batching, exceptions), whole-program rules
#                    (concurrency, hotpath), and introspection rules
#                    (fingerprint, checkpoint) over src/repro,
#                    benchmarks/, scripts/, and tests/, gated against
#                    scripts/lint_baseline.json.  Warm reruns are
#                    incremental via scripts/lint_cache.json.
#   make lint-changed - same checker, but only over the files git
#                    reports as modified/untracked (plus the cross-file
#                    passes); the cache covers the rest.
#   make coverage  - line coverage of src/repro/api + src/repro/workloads
#                    (stdlib tracer, term-missing report) checked against
#                    the floor in scripts/coverage_floor.json; re-record
#                    with `python scripts/coverage.py --update-floor`.
#   make all       - everything pytest collects (tier-1 verify).

PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: quick sweep-smoke resume-smoke stress-smoke test bench perfbench profile lint lint-changed coverage all

quick:
	$(PY) -m pytest -m quick -q

sweep-smoke:
	$(PY) -m pytest benchmarks/test_sweep_smoke.py -q

resume-smoke:
	$(PY) -m pytest benchmarks/test_resume_smoke.py -q

stress-smoke:
	$(PY) -m pytest tests/test_store_concurrency.py -q

test:
	$(PY) -m pytest tests -q

bench:
	$(PY) -m pytest benchmarks -q

perfbench:
	REPRO_WRITE_BENCH=1 REPRO_PERF_STRICT=1 $(PY) -m pytest benchmarks/test_perf_throughput.py -q -m "not quick" -s

profile:
	$(PY) scripts/profile.py $(PROFILE_ARGS)

lint:
	$(PY) -m repro.analysis

lint-changed:
	$(PY) -m repro.analysis --changed

coverage:
	$(PY) scripts/coverage.py

all:
	$(PY) -m pytest -q
