# Test / benchmark entry points.  All targets run from the repo root.
#
#   make quick   - sub-minute smoke tier (the `quick` pytest marker):
#                  Session API end-to-end on small traces.  CI's
#                  per-push gate.
#   make test    - full unit suite (tests/), ~1 min.
#   make bench   - figure/table regeneration suite (benchmarks/), slow.
#   make all     - everything pytest collects (tier-1 verify).

PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: quick test bench all

quick:
	$(PY) -m pytest -m quick -q

test:
	$(PY) -m pytest tests -q

bench:
	$(PY) -m pytest benchmarks -q

all:
	$(PY) -m pytest -q
