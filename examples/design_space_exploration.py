"""Automated design-space exploration (§4.3) at laptop scale.

Runs the three tuning procedures the paper used to derive Pythia's basic
configuration: feature selection over candidate state-vectors, action
pruning by leave-one-out impact, and a small hyperparameter grid search.
The tuning loops speak :class:`repro.api.Session` natively — each one is
a declarative grid search whose candidate points batch through the
session's executor and land in its store, so every baseline is cached by
complete fingerprint.  The final comparison then runs the winning config
against stock Pythia as one declarative experiment, with the tuned
hyperparameters passed as registry overrides — no hand-built config
plumbing.

Run:  python examples/design_space_exploration.py
"""

from repro.api import ResultStore, Session
from repro.core.features import ControlFlow, DataFlow, FeatureSpec
from repro.tuning import (
    feature_selection,
    grid_search_hyperparameters,
    prune_actions,
)

TRACES = ["spec06/gemsfdtd-1", "spec06/lbm-1", "ligra/cc-1"]


def main() -> None:
    session = Session(store=ResultStore(), trace_length=8_000)

    print("=== Feature selection (sample of the 32-feature space) ===")
    vectors = [
        (FeatureSpec(ControlFlow.PC, DataFlow.DELTA),
         FeatureSpec(ControlFlow.NONE, DataFlow.LAST4_DELTAS)),
        (FeatureSpec(ControlFlow.PC, DataFlow.DELTA),),
        (FeatureSpec(ControlFlow.PC, DataFlow.OFFSET),),
        (FeatureSpec(ControlFlow.NONE, DataFlow.LAST4_OFFSETS),),
    ]
    for score in feature_selection(TRACES, session, vectors=vectors):
        print(f"  {score.label:40s} speedup {score.geomean_speedup:.3f} "
              f"coverage {100 * score.mean_coverage:4.1f}%")

    print("\n=== Action pruning (leave-one-out impact) ===")
    initial = (-6, -1, 0, 1, 3, 11, 23, 30)
    pruned, impacts = prune_actions(TRACES, initial, keep=6, session=session)
    for report in sorted(impacts, key=lambda i: -i.impact):
        print(f"  offset {report.action:+3d}: impact {report.impact:+.4f}")
    print(f"  pruned action list: {pruned}")

    print("\n=== Hyperparameter grid search ===")
    results = grid_search_hyperparameters(
        TRACES,
        alphas=(0.005, 0.02, 0.08),
        gammas=(0.556,),
        epsilons=(0.005, 0.05),
        top_k=3,
        session=session,
    )
    for result in results:
        cfg = result.config
        print(f"  alpha={cfg.alpha:<6} gamma={cfg.gamma:<6} eps={cfg.epsilon:<6}"
              f" -> speedup {result.geomean_speedup:.3f}")

    print("\n=== Tuned vs stock Pythia (declarative re-run) ===")
    best = results[0].config
    comparison = session.run(
        session.experiment("dse-winner")
        .with_traces(*TRACES)
        .with_prefetchers(
            "pythia",
            ("pythia", {"alpha": best.alpha, "gamma": best.gamma,
                        "epsilon": best.epsilon}),
        )
    )
    for name, value in comparison.rollup("prefetcher").items():
        print(f"  {name:16s} geomean speedup {value:.3f}")
    print(f"  ({comparison.stats['cached']} of {comparison.stats['cells']}"
          " cells already in the session store)")


if __name__ == "__main__":
    main()
