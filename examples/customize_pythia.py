"""Online customization: change Pythia's objective via its "registers".

The paper's headline framework feature (§6.6): the same hardware serves
different objectives by rewriting configuration registers.  This example
runs three Pythia configurations on a Ligra workload:

* **basic** — the default (substrate-tuned Table 2 analogue);
* **strict** — punishes inaccuracy harder, favours not prefetching
  (the paper's Ligra customization, Fig 15);
* **custom features** — a state-vector swapped to PC+Offset /
  last-4-offsets, demonstrating feature customization (§6.6.2).

Run:  python examples/customize_pythia.py
"""

from repro.core import Pythia, PythiaConfig
from repro.core.features import ControlFlow, DataFlow, FeatureSpec
from repro.sim import baseline_single_core, simulate
from repro.sim.metrics import overprediction, speedup
from repro.workloads import generate_trace


def main() -> None:
    trace = generate_trace("ligra/pagerankdelta", length=15_000, seed=1)
    config = baseline_single_core()
    baseline = simulate(trace, config)
    print(f"workload: {trace.name}, baseline IPC {baseline.ipc:.3f}\n")

    offset_features = (
        FeatureSpec(ControlFlow.PC, DataFlow.OFFSET),
        FeatureSpec(ControlFlow.NONE, DataFlow.LAST4_OFFSETS),
    )
    variants = {
        "basic": PythiaConfig.named("basic"),
        "strict": PythiaConfig.named("strict"),
        "pc+offset features": PythiaConfig().with_features(offset_features),
    }
    for label, pythia_config in variants.items():
        result = simulate(trace, config, Pythia(pythia_config))
        print(
            f"{label:20s} speedup {speedup(result, baseline):.3f}  "
            f"overprediction {100 * overprediction(result, baseline):5.1f}%  "
            f"prefetch DRAM reads {result.dram_prefetch_reads}"
        )
    print(
        "\nNo hardware changed between rows — only the reward and feature"
        " registers, exactly the customization story of the paper."
    )


if __name__ == "__main__":
    main()
