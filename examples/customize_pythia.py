"""Online customization: change Pythia's objective via its "registers".

The paper's headline framework feature (§6.6): the same hardware serves
different objectives by rewriting configuration registers.  This example
runs three Pythia configurations on a Ligra workload:

* **basic** — the default (substrate-tuned Table 2 analogue);
* **strict** — punishes inaccuracy harder, favours not prefetching
  (the paper's Ligra customization, Fig 15);
* **custom features** — a state-vector swapped to PC+Offset /
  last-4-offsets, demonstrating feature customization (§6.6.2).

Each variant is a :class:`repro.api.PrefetcherSpec`: a registry name
plus keyword overrides forwarded to the factory — no hand-built
``PythiaConfig`` plumbing needed.

Run:  python examples/customize_pythia.py
"""

from repro.api import PrefetcherSpec, Session
from repro.core.features import ControlFlow, DataFlow, FeatureSpec


def main() -> None:
    session = Session(trace_length=15_000)

    offset_features = (
        FeatureSpec(ControlFlow.PC, DataFlow.OFFSET),
        FeatureSpec(ControlFlow.NONE, DataFlow.LAST4_OFFSETS),
    )
    variants = [
        PrefetcherSpec("pythia", label="basic"),
        PrefetcherSpec("pythia_strict", label="strict"),
        PrefetcherSpec(
            "pythia",
            overrides=(("features", offset_features),),
            label="pc+offset features",
        ),
    ]
    results = session.run(
        session.experiment("customize-pythia")
        .with_traces("ligra/pagerankdelta-1")
        .with_prefetchers(*variants)
    )

    baseline = results[0].baseline
    print(f"workload: {results[0].trace_name}, baseline IPC {baseline.ipc:.3f}\n")
    for record in results:
        print(
            f"{record.prefetcher:20s} speedup {record.speedup:.3f}  "
            f"overprediction {100 * record.overprediction:5.1f}%  "
            f"prefetch DRAM reads {record.result.dram_prefetch_reads}"
        )
    print(
        "\nNo hardware changed between rows — only the reward and feature"
        " registers, exactly the customization story of the paper."
    )


if __name__ == "__main__":
    main()
