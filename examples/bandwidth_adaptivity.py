"""Bandwidth adaptivity: the paper's core argument, on one graph kernel.

Sweeps the DRAM transfer rate from a server-like slice (300 MTPS) to an
overprovisioned desktop (9600 MTPS) on a Ligra-CC-like workload and
shows how aggressive prefetchers (MLOP) collapse when bandwidth is
scarce while Pythia's bandwidth-aware rewards keep it safe — Fig 8b's
crossover in miniature.

The whole sweep is one declarative experiment: ``sweep_mtps`` puts the
bandwidth axis on the system dimension, and the pivot query shapes the
table.  Independent cells fan out across cores via the process-pool
executor.

Run:  python examples/bandwidth_adaptivity.py
"""

from repro.api import ProcessPoolExecutor, Session

MTPS_POINTS = [300, 1200, 2400, 9600]
PREFETCHERS = ["spp", "bingo", "mlop", "pythia"]


def main() -> None:
    session = Session(executor=ProcessPoolExecutor(), trace_length=15_000)

    experiment = (
        session.experiment("bandwidth-adaptivity")
        .with_traces("ligra/cc-1")
        .with_prefetchers(*PREFETCHERS)
        .sweep_mtps(MTPS_POINTS)
    )
    results = session.run(experiment)

    print("workload: ligra/cc-1 (bandwidth-hungry graph kernel)\n")
    print(results.table(rows="system", cols="prefetcher", metric="speedup"))
    print(
        "\nReading the table: as MTPS shrinks, overpredicting prefetchers"
        " fall below 1.0 (slower than no prefetching) while Pythia trades"
        " coverage for accuracy and stays on top."
    )


if __name__ == "__main__":
    main()
