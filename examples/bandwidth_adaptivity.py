"""Bandwidth adaptivity: the paper's core argument, on one graph kernel.

Sweeps the DRAM transfer rate from a server-like slice (300 MTPS) to an
overprovisioned desktop (9600 MTPS) on a Ligra-CC-like workload and
shows how aggressive prefetchers (MLOP) collapse when bandwidth is
scarce while Pythia's bandwidth-aware rewards keep it safe — Fig 8b's
crossover in miniature.

Run:  python examples/bandwidth_adaptivity.py
"""

from repro.prefetchers import create
from repro.sim import baseline_single_core, simulate
from repro.sim.metrics import speedup
from repro.workloads import generate_trace

MTPS_POINTS = [300, 1200, 2400, 9600]
PREFETCHERS = ["spp", "bingo", "mlop", "pythia"]


def main() -> None:
    trace = generate_trace("ligra/cc", length=15_000, seed=1)
    print(f"workload: {trace.name} (bandwidth-hungry graph kernel)\n")
    header = f"{'MTPS':>6} " + " ".join(f"{p:>8}" for p in PREFETCHERS)
    print(header)
    for mtps in MTPS_POINTS:
        config = baseline_single_core().with_mtps(mtps)
        baseline = simulate(trace, config)
        row = f"{mtps:>6} "
        for name in PREFETCHERS:
            result = simulate(trace, config, create(name))
            row += f" {speedup(result, baseline):8.3f}"
        print(row)
    print(
        "\nReading the table: as MTPS shrinks, overpredicting prefetchers"
        " fall below 1.0 (slower than no prefetching) while Pythia trades"
        " coverage for accuracy and stays on top."
    )


if __name__ == "__main__":
    main()
