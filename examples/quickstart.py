"""Quickstart: run Pythia against SPP and Bingo on one workload.

Generates a GemsFDTD-like trace (recurring in-page delta patterns),
simulates the paper's single-core baseline with each prefetcher, and
prints speedup, coverage, and overprediction — plus the prefetch
offsets Pythia learned to favour (the paper's Fig 13 analysis).

Run:  python examples/quickstart.py
"""

from repro.core import Pythia
from repro.prefetchers import create
from repro.sim import baseline_single_core, simulate
from repro.sim.metrics import coverage, overprediction, speedup
from repro.workloads import generate_trace


def main() -> None:
    trace = generate_trace("spec06/gemsfdtd", length=20_000, seed=1)
    config = baseline_single_core()

    print(f"workload: {trace.name} ({len(trace)} accesses)")
    baseline = simulate(trace, config)
    print(f"no prefetching: IPC {baseline.ipc:.3f}, "
          f"{baseline.llc_load_misses} LLC load misses\n")

    for name in ["spp", "bingo", "pythia"]:
        prefetcher = create(name)
        result = simulate(trace, config, prefetcher)
        print(
            f"{name:8s} speedup {speedup(result, baseline):.3f}  "
            f"coverage {100 * coverage(result, baseline):5.1f}%  "
            f"overprediction {100 * overprediction(result, baseline):5.1f}%"
        )
        if isinstance(prefetcher, Pythia):
            top = prefetcher.top_actions(3)
            print(f"         Pythia's favourite offsets: "
                  + ", ".join(f"{o:+d} ({c} times)" for o, c in top))


if __name__ == "__main__":
    main()
