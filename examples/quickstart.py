"""Quickstart: run Pythia against SPP and Bingo on one workload.

Uses the unified :class:`repro.api.Session` front door: declare the
experiment (traces × prefetchers), run it, and query the result set.
Results land in a persistent content-addressed store (``~/.cache/
repro-pythia`` or ``$REPRO_CACHE_DIR``), so re-running this script —
or any other experiment touching the same cells — simulates nothing.

Run:  python examples/quickstart.py
"""

from repro.api import Session


def main() -> None:
    session = Session()  # persistent result store, serial executor

    experiment = (
        session.experiment("quickstart")
        .with_traces("spec06/gemsfdtd-1")
        .with_prefetchers("spp", "bingo", "pythia")
        .with_length(20_000)
    )
    results = session.run(experiment)

    baseline = results[0].baseline
    print(f"workload: {results[0].trace_name} "
          f"({baseline.instructions} measured instructions)")
    print(f"no prefetching: IPC {baseline.ipc:.3f}, "
          f"{baseline.llc_load_misses} LLC load misses\n")

    for record in results:
        print(
            f"{record.prefetcher:8s} speedup {record.speedup:.3f}  "
            f"coverage {100 * record.coverage:5.1f}%  "
            f"overprediction {100 * record.overprediction:5.1f}%"
        )

    stats = results.stats
    print(
        f"\nsimulated {stats['simulated']} of {stats['cells']} cells "
        f"({stats['cached']} served by the result store) — "
        "run me again and everything hits the store."
    )


if __name__ == "__main__":
    main()
