"""Tests for external trace ingestion (:mod:`repro.workloads.ingest`)
and its ``file/`` registry namespace.

Covers the round trip (write → load → simulate), both on-disk formats
(text and ChampSim-like binary, plain and gzipped), malformed-line and
truncated-file error reporting, and the property the result store leans
on: fingerprints of ``file/`` cells change when the file's bytes change.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path

import pytest

from repro import registry
from repro.api import Cell, PrefetcherSpec, ResultStore, Session, SystemSpec
from repro.sim.trace import TraceRecord
from repro.workloads.ingest import (
    BINARY_RECORD,
    TraceIngestError,
    detect_format,
    file_stamp,
    load_trace_file,
    parse_text_line,
)

pytestmark = pytest.mark.quick

SAMPLES = Path(__file__).parent / "data" / "traces"
SAMPLE_FILES = [
    "stream.csv",
    "stride_writes.csv.gz",
    "pointer.bin",
    "mixed.champsim.gz",
]


def _write_text(path: Path, lines: list[str], gz: bool = False) -> Path:
    data = ("\n".join(lines) + "\n").encode()
    if gz:
        path.write_bytes(gzip.compress(data))
    else:
        path.write_bytes(data)
    return path


# ---- parsing --------------------------------------------------------------


def test_parse_text_line_variants():
    rec = parse_text_line("0x400100,0x1f40,1")
    assert rec is not None and rec.pc == 0x400100 and not rec.is_load
    assert parse_text_line("1024,2048").is_load  # decimal, default read
    assert parse_text_line("1024,2048,w").is_load is False
    assert parse_text_line("1024,2048,R").is_load is True
    assert parse_text_line("") is None
    assert parse_text_line("# comment") is None


@pytest.mark.parametrize(
    "bad",
    ["justonefield", "1,2,3,4", "0xzz,12", "12,notanint", "1,2,maybe", "-1,2"],
)
def test_parse_text_line_rejects(bad):
    with pytest.raises(TraceIngestError):
        parse_text_line(bad)


def test_detect_format():
    assert detect_format("a/b.csv") == "text"
    assert detect_format("a/b.trace.gz") == "text"
    assert detect_format("a/b.champsim.gz") == "binary"
    assert detect_format("a/b.bin") == "binary"
    with pytest.raises(TraceIngestError):
        detect_format("a/b.dat")


# ---- the committed samples ------------------------------------------------


@pytest.mark.parametrize("sample", SAMPLE_FILES)
def test_samples_load_and_simulate(sample):
    trace = load_trace_file(SAMPLES / sample, length=120)
    assert 0 < len(trace) <= 120
    assert trace.content_stamp == file_stamp(SAMPLES / sample)
    record = Session(store=ResultStore(), trace_length=120).run_one(
        f"file/{SAMPLES / sample}", "stride"
    )
    assert record.suite == "FILE"
    assert record.result.instructions > 0


def test_sample_mixed_has_writes():
    trace = load_trace_file(SAMPLES / "mixed.champsim.gz")
    kinds = {r.is_load for r in trace}
    assert kinds == {True, False}


# ---- round trip -----------------------------------------------------------


def test_text_round_trip(tmp_path):
    lines = ["# header comment"] + [
        f"0x{0x400 + i % 3:x},0x{(1000 + 7 * i) * 64:x},{i % 5 == 0:d}"
        for i in range(50)
    ]
    path = _write_text(tmp_path / "rt.csv", lines)
    trace = load_trace_file(path)
    assert len(trace) == 50
    assert sum(not r.is_load for r in trace) == 10
    gz = _write_text(tmp_path / "rt2.csv.gz", lines, gz=True)
    assert load_trace_file(gz).content_stamp == trace.content_stamp  # same bytes


def test_binary_round_trip(tmp_path):
    records = [(0x400 + i, (5000 + i * 3) * 64, i % 4 == 0) for i in range(64)]
    raw = b"".join(BINARY_RECORD.pack(pc, addr, w) for pc, addr, w in records)
    path = tmp_path / "rt.bin"
    path.write_bytes(raw)
    trace = load_trace_file(path)
    assert len(trace) == 64
    assert [r.pc for r in trace] == [pc for pc, _, _ in records]
    assert [not r.is_load for r in trace] == [w for _, _, w in records]


def test_length_caps_but_stamps_whole_file(tmp_path):
    path = _write_text(
        tmp_path / "cap.csv", [f"0x400,{i * 64}" for i in range(100)]
    )
    short = load_trace_file(path, length=10)
    assert len(short) == 10
    assert short.content_stamp == file_stamp(path)  # stamp covers all bytes


# ---- error cases ----------------------------------------------------------


def test_malformed_line_reports_location(tmp_path):
    path = _write_text(tmp_path / "bad.csv", ["0x400,64", "0x400,nonsense,1"])
    with pytest.raises(TraceIngestError, match=r"bad\.csv:2"):
        load_trace_file(path)


def test_truncated_binary_rejected(tmp_path):
    good = BINARY_RECORD.pack(0x400, 64, 0) * 5
    path = tmp_path / "trunc.bin"
    path.write_bytes(good + b"\x01\x02\x03")  # 3 trailing bytes
    with pytest.raises(TraceIngestError, match="truncated"):
        load_trace_file(path)


def test_empty_and_missing_files_rejected(tmp_path):
    empty = _write_text(tmp_path / "empty.csv", ["# only comments"])
    with pytest.raises(TraceIngestError, match="no records"):
        load_trace_file(empty)
    with pytest.raises(TraceIngestError, match="cannot read"):
        load_trace_file(tmp_path / "missing.csv")


# ---- registry namespace ---------------------------------------------------


def test_registry_direct_path_and_alias(tmp_path):
    path = _write_text(tmp_path / "t.csv", [f"0x400,{i * 64}" for i in range(30)])
    direct = registry.cached_trace(f"file/{path}", 30)
    assert direct.name == f"file/{path}"
    assert registry.suite_of(f"file/{path}") == "FILE"

    name = registry.register_trace_file("aliased", path, suite="CUSTOM")
    assert name == "file/aliased"
    assert name in registry.registered_trace_files()
    aliased = registry.cached_trace(name, 30)
    assert aliased.suite == "CUSTOM"
    assert aliased.content_stamp == direct.content_stamp
    with pytest.raises(ValueError):
        registry.register_trace_file("no/slashes", path)


def test_alias_shadowing_real_file_is_an_error(tmp_path, monkeypatch):
    """An alias must never silently win over an existing file of the
    same name — that would load the wrong trace with no error."""
    monkeypatch.chdir(tmp_path)
    _write_text(tmp_path / "data.csv", ["0x400,64"])
    _write_text(tmp_path / "other.csv", ["0x500,128", "0x500,256"])
    registry.register_trace_file("data.csv", tmp_path / "other.csv")
    try:
        with pytest.raises(KeyError, match="ambiguous"):
            registry.cached_trace("file/data.csv", 10)
        # The unambiguous spellings both still work.
        assert len(registry.cached_trace("file/./data.csv", 10)) == 1
        registry.register_trace_file("elsewhere", tmp_path / "other.csv")
        assert len(registry.cached_trace("file/elsewhere", 10)) == 2
    finally:
        registry._TRACE_FILES.pop("data.csv", None)
        registry._TRACE_FILES.pop("elsewhere", None)


def test_stamp_cache_tracks_rewrites(tmp_path):
    """The stat-validated stamp cache must re-CRC a rewritten file and
    serve an unchanged one without a fresh read."""
    path = _write_text(tmp_path / "c.csv", ["0x400,64"])
    first = registry.trace_stamp(f"file/{path}")
    assert registry.trace_stamp(f"file/{path}") == first
    _write_text(path, ["0x400,128"])
    assert registry.trace_stamp(f"file/{path}") != first


def test_file_traces_are_not_reseedable(tmp_path):
    path = _write_text(tmp_path / "t.csv", ["0x400,64"])
    assert registry.reseed_trace_name(f"file/{path}", 2) is None
    assert registry.base_workload_name(f"file/{path}") == f"file/{path}"


# ---- store-fingerprint invalidation ---------------------------------------


def _file_cell(path, length=40) -> Cell:
    return Cell(
        trace=f"file/{path}",
        prefetcher=PrefetcherSpec("stride"),
        system=SystemSpec.of("1c"),
        trace_length=length,
        warmup_fraction=0.2,
    )


def test_fingerprint_tracks_file_bytes(tmp_path):
    path = _write_text(tmp_path / "v.csv", [f"0x400,{i * 64}" for i in range(40)])
    before = _file_cell(path).fingerprint()
    assert before == _file_cell(path).fingerprint()  # stable while unchanged
    _write_text(path, [f"0x400,{i * 128}" for i in range(40)])
    assert _file_cell(path).fingerprint() != before


def test_store_reruns_after_file_change(tmp_path):
    path = _write_text(tmp_path / "s.csv", [f"0x400,{i * 64}" for i in range(40)])
    session = Session(store=ResultStore(tmp_path / "store"), trace_length=40)
    experiment = (
        session.experiment("file-invalidation")
        .with_traces(f"file/{path}")
        .with_prefetchers("stride")
    )
    first = session.run(experiment)
    assert first.stats["simulated"] == first.stats["cells"] == 2

    again = session.run(experiment)
    assert again.stats["simulated"] == 0  # unchanged file: served from store

    _write_text(path, [f"0x400,{i * 192}" for i in range(40)])
    changed = session.run(experiment)
    assert changed.stats["simulated"] == changed.stats["cells"] == 2
    assert (
        changed[0].result.llc_load_misses != first[0].result.llc_load_misses
        or changed[0].result.ipc != first[0].result.ipc
    )
