"""Tests for the tile-coded plane indexing."""

from collections import Counter

from hypothesis import given, strategies as st

from repro.core.tile_coding import DEFAULT_PLANE_SHIFTS, hash_index, plane_indices


def test_deterministic():
    assert hash_index(12345, 0, 128) == hash_index(12345, 0, 128)


@given(value=st.integers(min_value=0, max_value=2**32 - 1))
def test_index_in_range(value):
    for shift in DEFAULT_PLANE_SHIFTS:
        assert 0 <= hash_index(value, shift, 128) < 128


def test_plane_indices_one_per_shift():
    idx = plane_indices(999, DEFAULT_PLANE_SHIFTS, 128)
    assert len(idx) == len(DEFAULT_PLANE_SHIFTS)


def test_shift_generalizes_nearby_values():
    """Values identical above the shifted-away bits share a tile."""
    shift = 5
    a = 0b1010100000
    b = a | 0b11  # differs only in low (shifted-away) bits
    assert hash_index(a, shift, 128) == hash_index(b, shift, 128)


def test_zero_shift_separates_nearby_values():
    hits = sum(
        1 for v in range(100) if hash_index(v, 0, 128) == hash_index(v + 1, 0, 128)
    )
    assert hits < 10  # the finest plane keeps resolution


def test_distribution_roughly_uniform():
    counts = Counter(hash_index(v * 7919, 0, 128) for v in range(10_000))
    assert len(counts) > 100  # most buckets used
    assert max(counts.values()) < 400  # no pathological hot bucket
