"""Tests for the trace format: records, slicing, serialization."""

from hypothesis import given, strategies as st

from repro.sim.trace import Trace, TraceRecord


def _record_strategy():
    return st.builds(
        TraceRecord,
        pc=st.integers(min_value=0, max_value=2**32 - 1),
        line=st.integers(min_value=0, max_value=2**40 - 1),
        is_load=st.booleans(),
        gap=st.integers(min_value=0, max_value=200),
    )


def test_record_instruction_count():
    record = TraceRecord(pc=1, line=2, is_load=True, gap=9)
    assert record.instruction_count == 10


def test_trace_basics():
    records = [TraceRecord(pc=i, line=i, gap=3) for i in range(5)]
    trace = Trace("t", records, suite="S")
    assert len(trace) == 5
    assert trace[0].pc == 0
    assert trace.suite == "S"
    assert trace.total_instructions == 5 * 4
    assert [r.pc for r in trace] == list(range(5))


def test_trace_slice():
    records = [TraceRecord(pc=i, line=i) for i in range(10)]
    trace = Trace("t", records)
    sub = trace.slice(2, 5)
    assert len(sub) == 3
    assert sub[0].pc == 2
    assert sub.suite == trace.suite


def test_from_byte_addresses():
    trace = Trace.from_byte_addresses("t", [(0x400, 0), (0x404, 64)], gap=2)
    assert trace[0].line == 0
    assert trace[1].line == 1
    assert trace[0].gap == 2


def test_serialization_roundtrip_simple():
    records = [
        TraceRecord(pc=0x400100, line=12345, is_load=True, gap=7),
        TraceRecord(pc=0x400200, line=54321, is_load=False, gap=0),
    ]
    trace = Trace("my-trace", records, suite="SPEC06")
    loaded = Trace.loads(trace.dumps())
    assert loaded.name == "my-trace"
    assert loaded.suite == "SPEC06"
    assert loaded.records == records


@given(st.lists(_record_strategy(), max_size=50))
def test_serialization_roundtrip_property(records):
    trace = Trace("prop", records, suite="X")
    loaded = Trace.loads(trace.dumps())
    assert loaded.records == records
    assert loaded.suite == "X"


def test_save_load_file(tmp_path):
    records = [TraceRecord(pc=1, line=2, gap=3)]
    trace = Trace("file-trace", records)
    path = tmp_path / "trace.txt"
    trace.save(str(path))
    loaded = Trace.load(str(path))
    assert loaded.records == records
