"""Tests for the storage (Table 4) and area/power (Table 8) models."""

import dataclasses

import pytest

from repro.core.config import PythiaConfig
from repro.hwmodel import (
    PROCESSOR_SKUS,
    overhead_table,
    storage_overhead,
    synthesize,
)
from repro.hwmodel.storage import action_index_bits, eq_bytes, qvstore_bytes


def paper_config():
    return dataclasses.replace(PythiaConfig(), eq_size=256)


def test_table4_total_exact():
    """Table 4: 24 KB QVStore + 1.5 KB EQ = 25.5 KB."""
    breakdown = storage_overhead(paper_config())
    assert breakdown.qvstore_bytes == 24 * 1024
    assert breakdown.eq_bytes == 1536
    assert breakdown.total_kib == pytest.approx(25.5)


def test_qvstore_scales_with_vaults():
    cfg = paper_config()
    from repro.core.features import all_feature_specs

    three = dataclasses.replace(cfg, features=tuple(all_feature_specs()[:3]))
    assert qvstore_bytes(three) == qvstore_bytes(cfg) * 3 // 2


def test_eq_scales_with_entries():
    cfg = paper_config()
    double = dataclasses.replace(cfg, eq_size=512)
    assert eq_bytes(double) == 2 * eq_bytes(cfg)


def test_action_index_bits():
    assert action_index_bits(paper_config()) == 5  # Table 4's 5 bits


def test_table8_area_power():
    """Table 8: 0.33 mm² and 55.11 mW per core at the paper geometry."""
    estimate = synthesize(paper_config())
    assert estimate.area_mm2 == pytest.approx(0.33, rel=1e-6)
    assert estimate.power_mw == pytest.approx(55.11, rel=1e-6)


def test_table8_overhead_percentages():
    rows = overhead_table(paper_config())
    by_sku = {sku: (area, power) for sku, area, power in rows}
    area, power = by_sku["Skylake D-2123IT (4-core, 60W)"]
    assert area == pytest.approx(1.03, abs=0.02)
    assert power == pytest.approx(0.37, abs=0.02)
    area28, power28 = by_sku["Skylake Platinum 8180M (28-core, 205W)"]
    assert area28 == pytest.approx(1.33, abs=0.02)
    assert power28 == pytest.approx(0.75, abs=0.01)


def test_overhead_monotone_in_cores():
    rows = overhead_table(paper_config())
    areas = [area for _, area, _ in rows]
    assert areas == sorted(areas)


def test_bigger_config_costs_more():
    small = synthesize(paper_config())
    big_cfg = dataclasses.replace(paper_config(), plane_entries=256)
    big = synthesize(big_cfg)
    assert big.area_mm2 > small.area_mm2
    assert big.power_mw > small.power_mw


def test_skus_defined():
    assert len(PROCESSOR_SKUS) == 3
