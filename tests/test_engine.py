"""Windowed-engine invariants: telemetry, checkpoint/resume, state round-trips.

The :mod:`repro.sim.engine` refactor must be a pure re-arrangement of
the replay loop: windows, checkpoints, progress, and cancellation may
only *observe* simulation state, never perturb it.  This suite pins
that from several directions:

* windowed / chunked / interrupted replay produces the byte-identical
  ``SimulationResult`` of a plain run;
* ``EngineState`` round-trips — capture → pickle → restore → continue —
  equal uninterrupted replay, property-tested over seeded random
  interruption points for Pythia (both Q-store implementations) and
  SPP;
* resume compatibility rules: drain-history and prefix-stamp mismatches
  are rejected instead of silently corrupting results;
* the store checkpoint namespace: round-trip, prefix listing, and the
  size cap's oldest-first eviction;
* timeline semantics: contiguous coverage, window-sum == run totals,
  phase segmentation.
"""

from __future__ import annotations

import dataclasses
import pickle
import random

import pytest

from repro import registry
from repro.api.store import ResultStore
from repro.sim.engine import (
    EngineState,
    SimulationCancelled,
    SimulationEngine,
    Timeline,
)
from repro.sim.system import simulate, simulate_multi
from repro.sim.config import baseline_multi_core

pytestmark = pytest.mark.quick

SEEDS = [0, 1, 2]
TRACE = "spec06/lbm-1"
LENGTH = 3_000


class MemorySink:
    """Minimal in-memory checkpoint namespace (the engine's duck type)."""

    def __init__(self) -> None:
        self.states: dict[tuple[int, tuple[int, ...]], EngineState] = {}
        self.loads = 0

    def entries(self):
        return sorted(self.states)

    def has(self, records, drained_at):
        return (records, drained_at) in self.states

    def load(self, records, drained_at):
        self.loads += 1
        return self.states.get((records, drained_at))

    def save(self, state):
        self.states[(state.records, state.drained_at)] = state


def result_dict(result):
    return dataclasses.asdict(result)


def make_prefetcher(spec: str):
    if spec == "pythia-python":
        return registry.create("pythia", qvstore_impl="python")
    if spec == "pythia-numpy":
        return registry.create("pythia", qvstore_impl="numpy")
    return registry.create(spec)


PREFETCHER_SPECS = ["pythia-numpy", "pythia-python", "spp"]


class TestWindowedEquivalence:
    @pytest.mark.parametrize("spec", PREFETCHER_SPECS)
    def test_telemetry_windows_do_not_perturb(self, spec):
        trace = registry.cached_trace(TRACE, LENGTH)
        plain = simulate(trace, prefetcher=make_prefetcher(spec))
        windowed = simulate(
            trace, prefetcher=make_prefetcher(spec), telemetry_window=500
        )
        expected = result_dict(plain)
        got = result_dict(windowed)
        timeline = got.pop("timeline")
        expected.pop("timeline")
        assert got == expected
        assert timeline["window"] == 500
        # Rows break at window multiples plus the warmup split (600).
        split = int(LENGTH * 0.2)
        boundaries = sorted({*range(500, LENGTH + 1, 500), split, LENGTH})
        assert len(timeline["rows"]) == len(boundaries)
        assert [r["end_record"] for r in timeline["rows"]] == boundaries

    def test_timeline_rows_are_contiguous_and_sum_to_totals(self):
        trace = registry.cached_trace(TRACE, LENGTH)
        result = simulate(
            trace, prefetcher=registry.create("spp"), telemetry_window=700
        )
        timeline = Timeline.from_payload(result.timeline)
        assert timeline.rows[0].start_record == 0
        assert timeline.rows[-1].end_record == LENGTH
        split = int(LENGTH * 0.2)
        for prev, row in zip(timeline.rows, timeline.rows[1:]):
            assert row.start_record == prev.end_record
        for row in timeline.rows:
            # No row straddles the warmup split, and the flag matches
            # the side of the split the row's records lie on.
            assert row.end_record <= split or row.start_record >= split
            assert row.warmup == (row.end_record <= split)
        assert [row.index for row in timeline.rows] == list(
            range(len(timeline.rows))
        )
        # Windows tile the whole run, so deltas must sum to run totals
        # (warmup rows included; the result counts post-warmup only, so
        # compare against full-run counters via a zero-warmup run).
        full = simulate(
            trace, prefetcher=registry.create("spp"), warmup_fraction=0.0
        )
        assert sum(r.instructions for r in timeline.rows) == full.instructions
        assert (
            sum(r.prefetches_issued for r in timeline.rows)
            == full.prefetches_issued
        )

    def test_progress_and_cancellation(self):
        trace = registry.cached_trace(TRACE, LENGTH)
        seen = []
        simulate(
            trace,
            prefetcher=registry.create("none"),
            telemetry_window=1_000,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (LENGTH, LENGTH)
        assert all(total == LENGTH for _, total in seen)

        polls = {"count": 0}

        def cancel():
            polls["count"] += 1
            return polls["count"] > 2

        engine = SimulationEngine(
            trace,
            prefetcher=registry.create("none"),
            telemetry_window=500,
            cancel=cancel,
        )
        with pytest.raises(SimulationCancelled):
            engine.run()
        assert 0 < engine.position < LENGTH
        # The engine stays valid: clearing the cancel finishes the run
        # with a result identical to an uninterrupted one.
        engine.cancel = None
        resumed = result_dict(engine.run())
        plain = result_dict(simulate(trace, prefetcher=registry.create("none")))
        assert resumed.pop("timeline") is not None
        plain.pop("timeline")
        assert resumed == plain

    def test_multi_core_telemetry_does_not_perturb(self):
        config = baseline_multi_core(2)
        traces = [
            registry.cached_trace("spec06/lbm-1", 1_500),
            registry.cached_trace("ligra/cc-1", 1_500),
        ]
        plain = simulate_multi(traces, config, lambda: registry.create("spp"))
        windowed = simulate_multi(
            traces, config, lambda: registry.create("spp"), telemetry_window=500
        )
        expected = result_dict(plain)
        got = result_dict(windowed)
        assert got.pop("timeline") is not None
        expected.pop("timeline")
        assert got == expected


class TestEngineStateRoundTrip:
    """Capture → pickle → restore → continue equals uninterrupted replay."""

    @pytest.mark.parametrize("spec", PREFETCHER_SPECS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_roundtrip_at_random_interruption(self, spec, seed):
        rng = random.Random(seed)
        trace = registry.cached_trace(TRACE, LENGTH)
        stop_at = rng.randrange(1, LENGTH)
        warmup_records = rng.choice([0, 600, 1_200])

        uninterrupted = simulate(
            trace, prefetcher=make_prefetcher(spec), warmup_records=warmup_records
        )

        engine = SimulationEngine(
            trace,
            prefetcher=make_prefetcher(spec),
            warmup_records=warmup_records,
            checkpoint_every=stop_at,  # forces an epoch boundary at stop_at
            checkpoints=MemorySink(),
        )
        engine.cancel = lambda: engine.position >= stop_at
        with pytest.raises(SimulationCancelled):
            engine.run()
        assert engine.position == stop_at

        # Serialize across the interruption, restore into a fresh engine.
        state = pickle.loads(pickle.dumps(engine.capture_state()))
        assert state.records == stop_at
        fresh = SimulationEngine(
            trace, prefetcher=make_prefetcher(spec), warmup_records=warmup_records
        )
        fresh.adopt_state(state)
        resumed = fresh.run()
        assert result_dict(resumed) == result_dict(uninterrupted)

    def test_adoption_rejects_incompatible_states(self):
        trace = registry.cached_trace(TRACE, LENGTH)
        sink = MemorySink()
        engine = SimulationEngine(
            trace,
            prefetcher=registry.create("spp"),
            warmup_records=600,
            checkpoints=sink,
            checkpoint_every=1_000,
        )
        engine.run()
        state = sink.states[(1_000, (600,))]

        # Wrong drain history for the adopter's warmup split.
        other_split = SimulationEngine(
            trace, prefetcher=registry.create("spp"), warmup_records=900
        )
        with pytest.raises(ValueError, match="drained"):
            other_split.adopt_state(state)

        # Wrong trace content for the claimed prefix.
        other_trace = SimulationEngine(
            registry.cached_trace("ligra/cc-1", LENGTH),
            prefetcher=registry.create("spp"),
            warmup_records=600,
        )
        with pytest.raises(ValueError, match="prefix stamp"):
            other_trace.adopt_state(state)

        # Beyond the adopter's trace.
        short = SimulationEngine(
            registry.cached_trace(TRACE, 800),
            prefetcher=registry.create("spp"),
            warmup_records=600,
        )
        with pytest.raises(ValueError, match="consumed"):
            short.adopt_state(state)

    def test_numpy_qvstore_views_survive_pickling(self):
        """The restored Q-store must keep table/flat/ravel aliased."""
        prefetcher = registry.create("pythia", qvstore_impl="numpy")
        store = pickle.loads(pickle.dumps(prefetcher)).agent.qvstore
        state = (3, 7)
        before = list(store.q_values(state))
        store.sarsa_update(state, 0, 5.0, state, 0)
        after = list(store.q_values(state))
        assert after != before  # update visible through the views


class TestCheckpointResume:
    @pytest.mark.parametrize("spec", ["pythia-numpy", "spp"])
    def test_extension_resumes_bit_identical(self, spec):
        """Growing trace_length resumes from the shorter run's snapshot."""
        sink = MemorySink()
        short_trace = registry.cached_trace(TRACE, 2_000)
        long_trace = registry.cached_trace(TRACE, 4_000)
        SimulationEngine(
            short_trace,
            prefetcher=make_prefetcher(spec),
            warmup_records=400,
            checkpoints=sink,
            checkpoint_every=1_000,
        ).run()
        assert (2_000, (400,)) in sink.states

        resumed_engine = SimulationEngine(
            long_trace,
            prefetcher=make_prefetcher(spec),
            warmup_records=400,
            checkpoints=sink,
            checkpoint_every=1_000,
        )
        resumed = resumed_engine.run()
        assert resumed_engine.resumed_from == 2_000
        fresh = simulate(
            long_trace, prefetcher=make_prefetcher(spec), warmup_records=400
        )
        assert result_dict(resumed) == result_dict(fresh)

    def test_fractional_warmup_reuses_pre_drain_prefix_only(self):
        """With fractional warmup the split moves with the length, so
        only pre-drain snapshots are compatible — and results must still
        be bit-identical."""
        sink = MemorySink()
        short_trace = registry.cached_trace(TRACE, 2_000)
        long_trace = registry.cached_trace(TRACE, 4_000)
        SimulationEngine(
            short_trace,
            prefetcher=registry.create("spp"),
            warmup_fraction=0.2,
            checkpoints=sink,
            checkpoint_every=200,
        ).run()
        engine = SimulationEngine(
            long_trace,
            prefetcher=registry.create("spp"),
            warmup_fraction=0.2,
            checkpoints=sink,
        )
        resumed = engine.run()
        # Longest compatible snapshot is the short run's warmup split
        # (pre-drain); everything after it carries the wrong drain point.
        assert engine.resumed_from == 400
        fresh = simulate(long_trace, prefetcher=registry.create("spp"))
        assert result_dict(resumed) == result_dict(fresh)

    def test_telemetry_disables_adoption_but_still_saves(self):
        sink = MemorySink()
        trace = registry.cached_trace(TRACE, 2_000)
        SimulationEngine(
            trace,
            prefetcher=registry.create("spp"),
            warmup_records=400,
            checkpoints=sink,
        ).run()
        saved = dict(sink.states)
        engine = SimulationEngine(
            trace,
            prefetcher=registry.create("spp"),
            warmup_records=400,
            telemetry_window=500,
            checkpoints=sink,
        )
        result = engine.run()
        assert engine.resumed_from == 0  # no adoption under telemetry
        # Window multiples {500..2000} plus the warmup split at 400.
        assert len(Timeline.from_payload(result.timeline).rows) == 5
        assert set(saved) <= set(sink.states)


class TestStoreCheckpointNamespace:
    def test_roundtrip_and_listing(self, tmp_path):
        store = ResultStore(tmp_path)
        trace = registry.cached_trace(TRACE, 1_000)
        engine = SimulationEngine(
            trace,
            prefetcher=registry.create("spp"),
            warmup_records=200,
            checkpoints=store.checkpoints("ab" * 32),
            checkpoint_every=500,
        )
        engine.run()
        namespace = store.checkpoints("ab" * 32)
        assert namespace.entries() == [(500, (200,)), (1_000, (200,))]
        state = namespace.load(1_000, (200,))
        assert isinstance(state, EngineState)
        assert state.records == 1_000

        # A second store over the same directory sees the disk layer.
        reopened = ResultStore(tmp_path).checkpoints("ab" * 32)
        assert reopened.entries() == namespace.entries()
        assert reopened.load(500, (200,)).records == 500
        assert store.stats["checkpoint_puts"] == 2

    def test_cap_evicts_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path)
        trace = registry.cached_trace(TRACE, 1_000)
        namespace = store.checkpoints("cd" * 32)
        engine = SimulationEngine(
            trace,
            prefetcher=registry.create("none"),
            warmup_records=0,
            checkpoints=namespace,
            checkpoint_every=250,
        )
        engine.run()
        assert len(namespace.entries()) == 4
        one_state = namespace.load(1_000, ())
        # Shrink the cap below the live footprint: oldest snapshots go,
        # newest survive, and the result layer is untouched.
        store.checkpoint_cap_bytes = 2 * one_state.size_bytes
        store._enforce_checkpoint_cap()
        remaining = namespace.entries()
        assert 0 < len(remaining) < 4
        assert remaining[-1] == (1_000, ())
        assert store.stats["checkpoint_evictions"] > 0

    def test_clear_drops_checkpoints(self, tmp_path):
        store = ResultStore(tmp_path)
        trace = registry.cached_trace(TRACE, 500)
        SimulationEngine(
            trace,
            prefetcher=registry.create("none"),
            checkpoints=store.checkpoints("ef" * 32),
        ).run()
        assert store.checkpoints("ef" * 32).entries()
        store.clear()
        assert not store.checkpoints("ef" * 32).entries()


class TestPhases:
    def test_phase_segmentation_finds_the_switch(self):
        rows = []
        for i, ipc in enumerate([1.0, 1.02, 0.98, 2.0, 2.05, 1.95]):
            rows.append(
                dict(
                    index=i,
                    start_record=i * 100,
                    end_record=(i + 1) * 100,
                    warmup=False,
                    instructions=int(ipc * 100),
                    cycles=100.0,
                    llc_demand_hits=0,
                    llc_load_misses=0,
                    dram_reads=0,
                    dram_demand_reads=0,
                    dram_prefetch_reads=0,
                    prefetches_issued=0,
                    useful_prefetches=0,
                    useless_prefetches=0,
                    late_prefetch_merges=0,
                    bw_buckets=(1.0, 0.0, 0.0, 0.0),
                )
            )
        timeline = Timeline.from_payload({"window": 100, "rows": rows})
        phases = timeline.phases(metric="ipc", rel_tol=0.25)
        assert len(phases) == 2
        assert phases[0].windows == 3 and phases[1].windows == 3
        assert phases[0].mean == pytest.approx(1.0, rel=0.05)
        assert phases[1].mean == pytest.approx(2.0, rel=0.05)
        assert phases[1].start_record == 300
