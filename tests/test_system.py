"""Tests for the simulation loops (single- and multi-core)."""

import pytest

from repro.prefetchers import create
from repro.sim import baseline_multi_core, baseline_single_core, simulate, simulate_multi
from repro.sim.trace import Trace, TraceRecord
from repro.types import make_line


def stride_trace(n=2000, stride=1, gap=20, name="stride"):
    records = [
        TraceRecord(pc=0x400, line=make_line(100, 0) + i * stride, gap=gap)
        for i in range(n)
    ]
    return Trace(name, records, suite="TEST")


def test_simulate_returns_sane_result():
    result = simulate(stride_trace(), baseline_single_core())
    assert result.instructions > 0
    assert result.cycles > 0
    assert 0 < result.ipc <= 4.0
    assert result.prefetcher_name == "none"
    assert result.llc_load_misses > 0


def test_warmup_excluded_from_stats():
    trace = stride_trace(2000)
    full = simulate(trace, baseline_single_core(), warmup_fraction=0.0)
    warmed = simulate(trace, baseline_single_core(), warmup_fraction=0.5)
    assert warmed.instructions < full.instructions
    assert warmed.llc_load_misses < full.llc_load_misses


def test_prefetcher_improves_stride_trace():
    trace = stride_trace(4000)
    base = simulate(trace, baseline_single_core())
    result = simulate(trace, baseline_single_core(), create("stride"))
    assert result.llc_load_misses < base.llc_load_misses
    assert result.ipc >= base.ipc * 0.95


def test_simulate_is_deterministic():
    trace = stride_trace()
    a = simulate(trace, baseline_single_core(), create("spp"))
    b = simulate(trace, baseline_single_core(), create("spp"))
    assert a.ipc == b.ipc
    assert a.dram_reads == b.dram_reads


def test_prefetch_accuracy_property():
    trace = stride_trace(3000)
    result = simulate(trace, baseline_single_core(), create("stride"))
    assert 0.0 <= result.prefetch_accuracy <= 1.0


def test_multi_core_requires_matching_traces():
    config = baseline_multi_core(2)
    with pytest.raises(ValueError):
        simulate_multi([stride_trace()], config, lambda: create("none"))


def test_multi_core_runs_and_reports_per_core_ipc():
    config = baseline_multi_core(2)
    traces = [stride_trace(name="a"), stride_trace(name="b")]
    result = simulate_multi(
        traces, config, lambda: create("none"), records_per_core=800
    )
    assert len(result.per_core_ipc) == 2
    assert all(ipc > 0 for ipc in result.per_core_ipc)
    assert result.instructions > 0


def test_multi_core_prefetching_reduces_misses():
    config = baseline_multi_core(2)
    traces = [stride_trace(name="a"), stride_trace(name="b")]
    base = simulate_multi(traces, config, lambda: create("none"), records_per_core=800)
    pf = simulate_multi(traces, config, lambda: create("stride"), records_per_core=800)
    assert pf.llc_load_misses < base.llc_load_misses


def test_channel_scaling_with_cores():
    assert baseline_multi_core(1).dram.channels == 1
    assert baseline_multi_core(4).dram.channels == 2
    assert baseline_multi_core(8).dram.channels == 4
    assert baseline_multi_core(12).dram.channels == 4


def test_config_sweeps():
    base = baseline_single_core()
    assert base.with_mtps(150).dram.mtps == 150
    assert base.scaled_llc(0.5).llc.size_bytes == base.llc.size_bytes // 2
