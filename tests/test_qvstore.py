"""Tests for the QVStore: vaults, planes, Eqn 3, and SARSA updates."""

import dataclasses

import pytest

from repro.core.config import PythiaConfig
from repro.core.qvstore import QVStore, Vault


def config(**kwargs):
    return dataclasses.replace(PythiaConfig(), **kwargs)


def test_initial_q_is_optimistic():
    cfg = config()
    store = QVStore(cfg)
    q = store.q_values((1, 2))
    expected = cfg.initial_q
    for value in q:
        assert value == pytest.approx(expected)


def test_vault_q_row_is_sum_of_planes():
    cfg = config()
    vault = Vault(cfg)
    value = 42
    vault.update(value, action=3, step=1.0)  # +1 in each of 3 planes
    row = vault.q_row(value)
    assert row[3] == pytest.approx(cfg.initial_q + cfg.num_planes)
    assert row[0] == pytest.approx(cfg.initial_q)


def test_qvstore_max_over_vaults():
    """Eqn 3: Q(S,A) = max over features of the feature-action Q."""
    cfg = config()
    store = QVStore(cfg)
    store.vaults[0].update(7, action=5, step=2.0)
    store.vaults[1].update(9, action=5, step=-2.0)
    q = store.q_values((7, 9))
    assert q[5] == pytest.approx(cfg.initial_q + cfg.num_planes * 2.0)


def test_best_action_tracks_updates():
    store = QVStore(config())
    store.vaults[0].update(7, action=4, step=5.0)
    action, q = store.best_action((7, 9))
    assert action == 4
    assert q > config().initial_q


def test_sarsa_update_moves_toward_target():
    cfg = config(alpha=0.1)
    store = QVStore(cfg)
    state = (1, 2)
    q_before = store.q_value(state, 0)
    td = store.sarsa_update(state, 0, reward=20.0, next_state=state, next_action=0)
    q_after = store.q_value(state, 0)
    expected_td = 20.0 + cfg.gamma * q_before - q_before
    assert td == pytest.approx(expected_td)
    # All planes of both vaults step by alpha*td: total change per vault
    # is num_planes * alpha * td (before the max across vaults).
    assert q_after - q_before == pytest.approx(
        cfg.num_planes * cfg.alpha * expected_td
    )


def test_sarsa_converges_to_reward_fixpoint():
    cfg = config(alpha=0.05)
    store = QVStore(cfg)
    state = (11, 22)
    for _ in range(3000):
        store.sarsa_update(state, 2, reward=10.0, next_state=state, next_action=2)
    fixpoint = 10.0 / (1.0 - cfg.gamma)
    assert store.q_value(state, 2) == pytest.approx(fixpoint, rel=0.05)


def test_negative_rewards_depress_q():
    store = QVStore(config(alpha=0.1))
    state = (5, 6)
    before = store.q_value(state, 1)
    for _ in range(100):
        store.sarsa_update(state, 1, reward=-12.0, next_state=state, next_action=1)
    assert store.q_value(state, 1) < before


def test_storage_entries_matches_table4_geometry():
    cfg = config()
    store = QVStore(cfg)
    # 2 vaults x 3 planes x 128 entries x 16 actions = 12288 entries.
    assert store.storage_entries == 2 * 3 * 128 * 16


def test_distinct_states_learn_independently_mostly():
    store = QVStore(config(alpha=0.1))
    state_a, state_b = (100, 200), (300, 400)
    for _ in range(200):
        store.sarsa_update(state_a, 0, -12.0, state_a, 0)
    # state_a's Q is driven down; state_b shares tiles only by hash
    # collision and should remain near the optimistic initial value.
    assert store.q_value(state_a, 0) < store.q_value(state_b, 0)
