"""End-to-end integration tests crossing module boundaries.

These check the qualitative behaviours the paper's figures rely on, at
tiny scale so the whole file runs in well under a minute.
"""

import pytest

from repro.api import ResultStore, Session
from repro.core import Pythia, PythiaConfig
from repro.prefetchers import create
from repro.sim import baseline_multi_core, baseline_single_core, simulate, simulate_multi
from repro.sim.metrics import coverage, overprediction, speedup
from repro.workloads import generate_trace, homogeneous_mix


@pytest.fixture(scope="module")
def session():
    # Long enough for Pythia's optimistic exploration to settle on the
    # noise workloads; short enough that the whole module stays fast.
    return Session(store=ResultStore(), trace_length=10_000)


def test_pythia_learns_delta_workload(session):
    """GemsFDTD-like: Pythia's top offsets should be the pattern deltas."""
    trace = session.trace("spec06/gemsfdtd-1")
    pythia = create("pythia")
    simulate(trace, baseline_single_core(), pythia)
    top_offsets = [offset for offset, _ in pythia.top_actions(4)]
    assert 23 in top_offsets or 11 in top_offsets


def test_pythia_beats_baseline_on_prefetchable(session):
    record = session.run_one("spec06/lbm-1", "pythia")
    assert record.speedup > 1.02
    assert record.coverage > 0.3


def test_pythia_low_overprediction_on_irregular(session):
    """On mcf-like noise Pythia learns to hold back (low overprediction).

    Early in the run the optimistic initialization makes Pythia try its
    prefetch actions; by the end of a 10k-access trace the measured
    overprediction must have decayed well below an always-prefetching
    policy (which would sit near 1.0).
    """
    record = session.run_one("spec06/mcf-1", "pythia")
    assert record.overprediction < 0.45


def test_bingo_wins_region_workloads(session):
    """Fig 1 regime: footprint predictors dominate sphinx/canneal."""
    bingo = session.run_one("parsec/canneal-1", "bingo")
    spp = session.run_one("parsec/canneal-1", "spp")
    assert bingo.coverage > spp.coverage


def test_spp_handles_delta_workloads(session):
    spp = session.run_one("spec06/gemsfdtd-1", "spp")
    assert spp.coverage > 0.2
    assert spp.speedup > 1.0


def test_mlop_overpredicts_more_than_pythia(session):
    """Fig 7's overprediction ordering on an irregular-heavy workload."""
    mlop = session.run_one("ligra/cc-1", "mlop")
    pythia = session.run_one("ligra/cc-1", "pythia")
    assert mlop.overprediction > pythia.overprediction


def test_bandwidth_constrained_flips_ordering():
    """Fig 8b's crossover: aggressive prefetchers lose at low MTPS."""
    trace = generate_trace("ligra/cc", length=8000, seed=1)
    constrained = baseline_single_core().with_mtps(300)
    base = simulate(trace, constrained)
    mlop = simulate(trace, constrained, create("mlop"))
    pythia = simulate(trace, constrained, create("pythia"))
    assert speedup(pythia, base) > speedup(mlop, base)


def test_bw_oblivious_pythia_worse_when_constrained():
    """Fig 11: bandwidth awareness matters at low MTPS."""
    trace = generate_trace("ligra/pagerankdelta", length=8000, seed=1)
    constrained = baseline_single_core().with_mtps(300)
    base = simulate(trace, constrained)
    basic = simulate(trace, constrained, create("pythia"))
    oblivious = simulate(trace, constrained, create("pythia_bw_oblivious"))
    # Allow a small tolerance: at tiny scale the gap can be noisy, but
    # the oblivious variant must not be meaningfully better.
    assert speedup(oblivious, base) <= speedup(basic, base) + 0.05


def test_multicore_end_to_end():
    traces = homogeneous_mix("spec06/lbm", 2, length=8000)
    config = baseline_multi_core(2)
    base = simulate_multi(traces, config, lambda: create("none"), records_per_core=4000)
    pythia = simulate_multi(traces, config, lambda: create("pythia"), records_per_core=4000)
    assert pythia.prefetches_issued > 0
    assert pythia.llc_load_misses < base.llc_load_misses
    # At this tiny scale Pythia is still converging; require it to be
    # at worst mildly below baseline and typically above.
    assert pythia.ipc > base.ipc * 0.9


def test_multilevel_stride_plus_pythia(session):
    """Fig 8d: L1 stride + L2 Pythia runs and helps."""
    trace = session.trace("spec06/leslie3d-1")
    base = session.baseline("spec06/leslie3d-1", baseline_single_core())
    result = simulate(
        trace,
        baseline_single_core(),
        create("pythia"),
        l1_prefetcher=create("stride"),
    )
    assert speedup(result, base) > 0.95


def test_prefetcher_combination_overpredicts_more(session):
    """Fig 9b/10b: combining prefetchers combines overpredictions."""
    combo = session.run_one("ligra/bfs-1", "st+s+b+d+m")
    single = session.run_one("ligra/bfs-1", "spp")
    assert combo.overprediction >= single.overprediction - 0.05


def test_strict_pythia_reduces_traffic_on_ligra(session):
    basic = session.run_one("ligra/cc-1", "pythia")
    strict = session.run_one("ligra/cc-1", "pythia_strict")
    assert strict.result.dram_prefetch_reads <= basic.result.dram_prefetch_reads * 1.1


def test_unseen_traces_run(session):
    record = session.run_one("cvp/fp-solver-1", "pythia")
    assert record.speedup > 0.8
