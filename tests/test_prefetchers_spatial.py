"""Tests for the spatial prefetchers: SPP, PPF, Bingo, DSPatch, MLOP, IPCP."""

from repro.prefetchers import (
    BingoPrefetcher,
    DspatchPrefetcher,
    IpcpPrefetcher,
    MlopPrefetcher,
    SppPpfPrefetcher,
    SppPrefetcher,
)
from repro.prefetchers.base import DemandContext
from repro.prefetchers.spp import update_signature
from repro.types import LINES_PER_PAGE, make_line, offset_of_line


def ctx(pc, page, offset, bw_high=False):
    return DemandContext(
        pc=pc, line=make_line(page, offset), cycle=0, bandwidth_high=bw_high
    )


class TestSpp:
    def test_signature_folds_deltas(self):
        sig = update_signature(0, 3)
        assert sig == 3
        assert update_signature(sig, 3) == ((3 << 3) ^ 3) & 0xFFF

    def test_signature_encodes_negative_deltas(self):
        assert update_signature(0, -3) != update_signature(0, 3)

    def test_learns_recurring_delta_path(self):
        pf = SppPrefetcher(prefetch_threshold=0.25)
        # Train several pages with the same delta program 0→8→16→24...
        for page in range(30):
            for step in range(6):
                pf.train(ctx(0x400, page, step * 8))
        out = pf.train(ctx(0x400, 100, 0))  # seed
        out = pf.train(ctx(0x400, 100, 8))
        assert make_line(100, 16) in out

    def test_lookahead_depth_multiplies_confidence(self):
        pf = SppPrefetcher(prefetch_threshold=0.25, max_lookahead=8)
        for page in range(40):
            for step in range(8):
                pf.train(ctx(0x400, page, step * 4))
        pf.train(ctx(0x400, 200, 0))
        out = pf.train(ctx(0x400, 200, 4))
        assert len(out) >= 2  # confident path walks several steps

    def test_stops_at_page_boundary(self):
        pf = SppPrefetcher(prefetch_threshold=0.1)
        for page in range(30):
            for step in range(3):
                pf.train(ctx(0x400, page, step * 30))
        pf.train(ctx(0x400, 99, 0))
        out = pf.train(ctx(0x400, 99, 30))
        assert all(offset_of_line(line) < LINES_PER_PAGE for line in out)

    def test_no_delta_no_prefetch(self):
        pf = SppPrefetcher()
        pf.train(ctx(0x400, 5, 10))
        assert pf.train(ctx(0x400, 5, 10)) == []


class TestSppPpf:
    def test_filters_learn_from_useless(self):
        pf = SppPpfPrefetcher(accept_threshold=0)
        # Train a delta path, then punish everything it issues.
        for page in range(40):
            for step in range(5):
                candidates = pf.train(ctx(0x400, page, step * 6))
                for line in candidates:
                    pf.on_prefetch_useless(line, 0)
        # After sustained punishment the filter rejects the pattern.
        out = []
        for step in range(5):
            out = pf.train(ctx(0x400, 500, step * 6))
        assert out == []

    def test_useful_feedback_keeps_accepting(self):
        pf = SppPpfPrefetcher(accept_threshold=-2)
        accepted_any = False
        for page in range(40):
            for step in range(5):
                for line in pf.train(ctx(0x400, page, step * 6)):
                    accepted_any = True
                    pf.on_demand_hit_prefetched(line, 0)
        assert accepted_any


class TestBingo:
    def _train_regions(self, pf, pages, footprint, pc=0x700):
        for page in pages:
            for off in footprint:
                pf.train(ctx(pc, page, off))

    def test_predicts_footprint_from_pc_offset(self):
        pf = BingoPrefetcher(at_size=4)
        footprint = [0, 5, 9]
        self._train_regions(pf, range(100, 120), footprint)
        out = pf.train(ctx(0x700, 999, 0))
        assert make_line(999, 5) in out
        assert make_line(999, 9) in out

    def test_continuation_issues_remaining(self):
        pf = BingoPrefetcher(at_size=4)
        footprint = list(range(0, 20))
        self._train_regions(pf, range(100, 110), footprint)
        first = pf.train(ctx(0x700, 999, 0))
        second = pf.train(ctx(0x700, 999, 1))
        assert set(second) <= set(first)  # remaining predicted lines
        assert make_line(999, 1) not in second  # demanded line excluded

    def test_most_recent_footprint_wins(self):
        pf = BingoPrefetcher(at_size=1)
        self._train_regions(pf, [10], [0, 3])
        self._train_regions(pf, [20], [0, 7])
        pf.train(ctx(0x700, 30, 0))  # evicts region 20 into PHT
        out = pf.train(ctx(0x700, 99, 0))
        # most recent committed footprint is from region 20 (or 30)
        assert make_line(99, 3) not in out

    def test_unknown_trigger_no_prefetch(self):
        pf = BingoPrefetcher()
        assert pf.train(ctx(0x700, 5, 0)) == []


class TestDspatch:
    def test_covp_is_union_accp_is_intersection(self):
        pf = DspatchPrefetcher(tracker_size=1)
        # Region A: offsets {0,2}; region B: offsets {0,4}.
        for page, extra in [(10, 2), (20, 4), (30, 2), (40, 4)]:
            pf.train(ctx(0x800, page, 0))
            pf.train(ctx(0x800, page, extra))
        low_bw = pf.train(ctx(0x800, 99, 0))
        assert make_line(99, 2) in low_bw and make_line(99, 4) in low_bw
        pf2 = DspatchPrefetcher(tracker_size=1)
        for page, extra in [(10, 2), (20, 4), (30, 2), (40, 4)]:
            pf2.train(ctx(0x800, page, 0, bw_high=True))
            pf2.train(ctx(0x800, page, extra, bw_high=True))
        high_bw = pf2.train(ctx(0x800, 99, 0, bw_high=True))
        assert make_line(99, 2) not in high_bw
        assert make_line(99, 4) not in high_bw

    def test_dense_covp_demoted(self):
        pf = DspatchPrefetcher(tracker_size=1)
        # Wildly varying footprints accumulate a dense CovP.
        import random
        rng = random.Random(0)
        for page in range(2, 60):
            pf.train(ctx(0x800, page, 0))
            for _ in range(3):
                pf.train(ctx(0x800, page, rng.randrange(1, 64)))
        out = pf.train(ctx(0x800, 999, 0))
        assert len(out) <= 20  # falls back to AccP, not the dense union


class TestMlop:
    def test_learns_dominant_offset(self):
        pf = MlopPrefetcher(update_period=100, degree=4, qualify_fraction=0.1)
        for i in range(400):
            page, off = divmod(i * 2, 64)
            pf.train(ctx(0x900, 100 + page, off))
        assert 2 in pf.active_offsets

    def test_no_offsets_on_random_noise(self):
        import random
        rng = random.Random(1)
        pf = MlopPrefetcher(update_period=200, qualify_fraction=0.25)
        for _ in range(600):
            pf.train(ctx(0x900, rng.randrange(4096), rng.randrange(64)))
        assert pf.active_offsets == [] or len(pf.active_offsets) <= 2

    def test_reset(self):
        pf = MlopPrefetcher()
        pf.train(ctx(0x900, 1, 1))
        pf.reset()
        assert pf.active_offsets == [1]


class TestIpcp:
    def test_constant_stride_class(self):
        pf = IpcpPrefetcher(cs_degree=2)
        out = []
        for i in range(6):
            out = pf.train(ctx(0xA00, 10, i * 3))
        assert make_line(10, 18) in out
        assert make_line(10, 21) in out

    def test_unknown_pc_no_prefetch(self):
        pf = IpcpPrefetcher()
        assert pf.train(ctx(0xA00, 10, 0)) == []
