"""Tests for the unified repro.api layer: experiments, executors, store,
session caching — plus the baseline-keying regression the old Runner had."""

import dataclasses

import pytest

from repro.api import (
    Experiment,
    PrefetcherSpec,
    ProcessPoolExecutor,
    ResultStore,
    SerialExecutor,
    Session,
    SystemSpec,
    fingerprint,
)
from repro.sim.config import SystemConfig

pytestmark = pytest.mark.quick

LENGTH = 1200


@pytest.fixture()
def session(tmp_path):
    return Session(store=ResultStore(tmp_path / "store"), trace_length=LENGTH)


# ---- experiment expansion -------------------------------------------------


def test_experiment_expansion_cross_product():
    ex = (
        Experiment.define("mini")
        .with_traces("spec06/lbm-1", "spec06/mcf-1")
        .with_prefetchers("stride", "spp", "none")
        .with_systems("1c", "1c@mtps=600")
    )
    cells = ex.cells()
    assert len(cells) == 2 * 3 * 2 == len(ex)
    assert len({c.fingerprint() for c in cells}) == len(cells)
    labels = {c.system.label for c in cells}
    assert labels == {"1c", "1c@mtps=600"}


def test_experiment_builder_is_immutable():
    base = Experiment.define("base").with_traces("spec06/lbm-1")
    derived = base.with_prefetchers("stride")
    assert base.prefetchers == ()
    assert derived.traces == base.traces


def test_experiment_without_axes_raises():
    with pytest.raises(ValueError):
        Experiment.define("empty").with_prefetchers("stride").cells()
    with pytest.raises(ValueError):
        Experiment.define("empty").with_traces("spec06/lbm-1").cells()


def test_prefetcher_spec_coercion_and_labels():
    spec = PrefetcherSpec.of(("pythia", {"alpha": 0.1}))
    assert spec.name == "pythia"
    assert spec.display == "pythia[alpha]"
    assert PrefetcherSpec.of("spp").display == "spp"
    labelled = PrefetcherSpec("pythia", label="tuned")
    assert labelled.display == "tuned"


def test_cell_fingerprint_covers_overrides():
    ex = Experiment.define("fp").with_traces("spec06/lbm-1")
    plain = ex.with_prefetchers("pythia").cells()[0]
    tuned = ex.with_prefetchers(("pythia", {"alpha": 0.1})).cells()[0]
    assert plain.fingerprint() != tuned.fingerprint()
    # ... but both share the same no-prefetching baseline cell.
    assert plain.baseline_cell().fingerprint() == tuned.baseline_cell().fingerprint()


def test_with_seeds_expansion():
    ex = (
        Experiment.define("rep")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("stride")
        .with_seeds(3)
    )
    cells = ex.cells()
    assert [c.trace for c in cells] == ["spec06/lbm-1", "spec06/lbm-2", "spec06/lbm-3"]
    assert [c.seed for c in cells] == [1, 2, 3]
    assert all(c.base_trace == "spec06/lbm" for c in cells)
    assert len(ex) == 3
    # A replicate shares its fingerprint (and so its store entry) with
    # the equivalent unreplicated cell on the same seeded trace.
    plain = (
        Experiment.define("plain")
        .with_traces("spec06/lbm-2")
        .with_prefetchers("stride")
        .cells()[0]
    )
    assert cells[1].fingerprint() == plain.fingerprint()
    with pytest.raises(ValueError):
        ex.with_seeds(0)


def test_with_seeds_collapses_multi_seed_trace_axes():
    """A suite-style axis listing several seeds of one workload must
    expand to one replicate set, not one per listed seed — duplicates
    would inflate n and understate std/ci95."""
    ex = (
        Experiment.define("rep")
        .with_traces("spec06/lbm-1", "spec06/lbm-2", "spec06/mcf-1")
        .with_prefetchers("stride")
        .with_seeds(2)
    )
    cells = ex.cells()
    assert [(c.trace, c.seed) for c in cells] == [
        ("spec06/lbm-1", 1),
        ("spec06/lbm-2", 2),
        ("spec06/mcf-1", 1),
        ("spec06/mcf-2", 2),
    ]
    assert len({c.fingerprint() for c in cells}) == len(cells)


# ---- store ----------------------------------------------------------------


def test_store_round_trip_and_persistence(tmp_path, session):
    ex = (
        session.experiment("rt")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("stride")
    )
    first = session.run(ex)
    assert first.stats["simulated"] == first.stats["cells"] == 2  # cell + baseline

    # A brand-new store on the same directory serves everything from disk.
    fresh = Session(store=ResultStore(tmp_path / "store"), trace_length=LENGTH)
    again = fresh.run(ex)
    assert again.stats["simulated"] == 0
    assert dataclasses.asdict(again[0].result) == dataclasses.asdict(first[0].result)


def test_store_memory_only_mode():
    store = ResultStore()
    assert not store.persistent
    ex = Experiment.define("mem").with_traces("spec06/lbm-1").with_prefetchers("none")
    session = Session(store=store, trace_length=LENGTH)
    session.run(ex)
    assert len(store) > 0


def test_repeated_run_hits_store_with_zero_resimulation(session):
    ex = (
        session.experiment("cache")
        .with_traces("spec06/lbm-1", "spec06/mcf-1")
        .with_prefetchers("stride", "spp")
    )
    session.run(ex)
    repeat = session.run(ex)
    assert repeat.stats["simulated"] == 0
    assert repeat.stats["cached"] == repeat.stats["cells"]
    # Overlapping experiments reuse shared cells too.
    overlap = session.run(
        session.experiment("overlap")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("stride", "streamer")
    )
    assert overlap.stats["simulated"] == 1  # only streamer is new


# ---- executors ------------------------------------------------------------


def test_process_pool_matches_serial(tmp_path):
    ex = (
        Experiment.define("eq")
        .with_traces("spec06/lbm-1", "spec06/mcf-1")
        .with_prefetchers("stride", "spp")
        .with_length(LENGTH)
    )
    serial = Session(store=ResultStore(), executor=SerialExecutor()).run(ex)
    pooled = Session(
        store=ResultStore(), executor=ProcessPoolExecutor(max_workers=2)
    ).run(ex)
    assert len(serial) == len(pooled)
    for a, b in zip(serial, pooled):
        assert dataclasses.asdict(a.result) == dataclasses.asdict(b.result)
        assert dataclasses.asdict(a.baseline) == dataclasses.asdict(b.baseline)


# ---- result set queries ---------------------------------------------------


def test_resultset_queries(session):
    results = session.run(
        session.experiment("queries")
        .with_traces("spec06/lbm-1", "parsec/canneal-1")
        .with_prefetchers("stride", "spp")
    )
    assert set(results.rollup("suite")) == {"SPEC06", "PARSEC"}
    pivoted = results.pivot("suite", "prefetcher")
    assert set(pivoted["SPEC06"]) == {"stride", "spp"}
    only_stride = results.filter(prefetcher="stride")
    assert len(only_stride) == 2
    assert only_stride.geomean() > 0
    rows = results.to_rows()
    assert len(rows) == 4 and {"trace", "suite", "prefetcher", "system",
                               "speedup"} <= set(rows[0])
    text = results.table(rows="suite")
    assert "SPEC06" in text and "stride" in text


def test_none_prefetcher_is_its_own_baseline(session):
    record = session.run_one("spec06/lbm-1", "none")
    assert record.speedup == pytest.approx(1.0)
    assert record.result is record.baseline


# ---- the historical baseline under-keying bug -----------------------------


def test_baselines_distinct_when_only_l2_differs(session):
    """Regression: configs differing only in L2 geometry must not share a
    cached baseline (the old Runner._config_key ignored L1/L2/length/warmup)."""
    small_l2 = SystemConfig()
    big_l2 = dataclasses.replace(
        small_l2, l2=dataclasses.replace(small_l2.l2, size_bytes=1024 * 1024)
    )
    a = session.baseline("spec06/lbm-1", small_l2)
    b = session.baseline("spec06/lbm-1", big_l2)
    assert a is not b
    assert fingerprint(small_l2) != fingerprint(big_l2)


def test_baselines_distinct_across_length_and_warmup(session):
    a = session.baseline("spec06/lbm-1", SystemConfig())
    b = session.baseline("spec06/lbm-1", SystemConfig(), trace_length=LENGTH // 2)
    c = session.baseline("spec06/lbm-1", SystemConfig(), warmup_fraction=0.5)
    assert a is not b and a is not c
    assert b.instructions < a.instructions


def test_run_mix_cached(session):
    from repro.sim.config import baseline_multi_core

    config = baseline_multi_core(2)
    result, baseline = session.run_mix(
        ["spec06/lbm-1", "spec06/mcf-1"], "stride", config
    )
    assert result.instructions > 0 and baseline.prefetcher_name == "none"
    before = session.store.puts
    result2, _ = session.run_mix(["spec06/lbm-1", "spec06/mcf-1"], "stride", config)
    assert session.store.puts == before  # fully cached
    assert result2 is result
