"""Tests for the unified repro.api layer: experiments, executors, store,
session caching — plus the baseline-keying regression the old Runner had."""

import dataclasses

import pytest

from repro.api import (
    Experiment,
    PrefetcherSpec,
    ProcessPoolExecutor,
    ResultStore,
    SerialExecutor,
    Session,
    SystemSpec,
    fingerprint,
)
from repro.sim.config import SystemConfig

pytestmark = pytest.mark.quick

LENGTH = 1200


@pytest.fixture()
def session(tmp_path):
    return Session(store=ResultStore(tmp_path / "store"), trace_length=LENGTH)


# ---- experiment expansion -------------------------------------------------


def test_experiment_expansion_cross_product():
    ex = (
        Experiment.define("mini")
        .with_traces("spec06/lbm-1", "spec06/mcf-1")
        .with_prefetchers("stride", "spp", "none")
        .with_systems("1c", "1c@mtps=600")
    )
    cells = ex.cells()
    assert len(cells) == 2 * 3 * 2 == len(ex)
    assert len({c.fingerprint() for c in cells}) == len(cells)
    labels = {c.system.label for c in cells}
    assert labels == {"1c", "1c@mtps=600"}


def test_experiment_builder_is_immutable():
    base = Experiment.define("base").with_traces("spec06/lbm-1")
    derived = base.with_prefetchers("stride")
    assert base.prefetchers == ()
    assert derived.traces == base.traces


def test_experiment_without_axes_raises():
    with pytest.raises(ValueError):
        Experiment.define("empty").with_prefetchers("stride").cells()
    with pytest.raises(ValueError):
        Experiment.define("empty").with_traces("spec06/lbm-1").cells()


def test_prefetcher_spec_coercion_and_labels():
    spec = PrefetcherSpec.of(("pythia", {"alpha": 0.1}))
    assert spec.name == "pythia"
    assert spec.display == "pythia[alpha]"
    assert PrefetcherSpec.of("spp").display == "spp"
    labelled = PrefetcherSpec("pythia", label="tuned")
    assert labelled.display == "tuned"


def test_cell_fingerprint_covers_overrides():
    ex = Experiment.define("fp").with_traces("spec06/lbm-1")
    plain = ex.with_prefetchers("pythia").cells()[0]
    tuned = ex.with_prefetchers(("pythia", {"alpha": 0.1})).cells()[0]
    assert plain.fingerprint() != tuned.fingerprint()
    # ... but both share the same no-prefetching baseline cell.
    assert plain.baseline_cell().fingerprint() == tuned.baseline_cell().fingerprint()


def test_with_seeds_expansion():
    ex = (
        Experiment.define("rep")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("stride")
        .with_seeds(3)
    )
    cells = ex.cells()
    assert [c.trace for c in cells] == ["spec06/lbm-1", "spec06/lbm-2", "spec06/lbm-3"]
    assert [c.seed for c in cells] == [1, 2, 3]
    assert all(c.base_trace == "spec06/lbm" for c in cells)
    assert len(ex) == 3
    # A replicate shares its fingerprint (and so its store entry) with
    # the equivalent unreplicated cell on the same seeded trace.
    plain = (
        Experiment.define("plain")
        .with_traces("spec06/lbm-2")
        .with_prefetchers("stride")
        .cells()[0]
    )
    assert cells[1].fingerprint() == plain.fingerprint()
    with pytest.raises(ValueError):
        ex.with_seeds(0)


def test_with_seeds_collapses_multi_seed_trace_axes():
    """A suite-style axis listing several seeds of one workload must
    expand to one replicate set, not one per listed seed — duplicates
    would inflate n and understate std/ci95."""
    ex = (
        Experiment.define("rep")
        .with_traces("spec06/lbm-1", "spec06/lbm-2", "spec06/mcf-1")
        .with_prefetchers("stride")
        .with_seeds(2)
    )
    cells = ex.cells()
    assert [(c.trace, c.seed) for c in cells] == [
        ("spec06/lbm-1", 1),
        ("spec06/lbm-2", 2),
        ("spec06/mcf-1", 1),
        ("spec06/mcf-2", 2),
    ]
    assert len({c.fingerprint() for c in cells}) == len(cells)


# ---- store ----------------------------------------------------------------


def test_store_round_trip_and_persistence(tmp_path, session):
    ex = (
        session.experiment("rt")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("stride")
    )
    first = session.run(ex)
    assert first.stats["simulated"] == first.stats["cells"] == 2  # cell + baseline

    # A brand-new store on the same directory serves everything from disk.
    fresh = Session(store=ResultStore(tmp_path / "store"), trace_length=LENGTH)
    again = fresh.run(ex)
    assert again.stats["simulated"] == 0
    assert dataclasses.asdict(again[0].result) == dataclasses.asdict(first[0].result)


def test_store_memory_only_mode():
    store = ResultStore()
    assert not store.persistent
    ex = Experiment.define("mem").with_traces("spec06/lbm-1").with_prefetchers("none")
    session = Session(store=store, trace_length=LENGTH)
    session.run(ex)
    assert len(store) > 0


def test_repeated_run_hits_store_with_zero_resimulation(session):
    ex = (
        session.experiment("cache")
        .with_traces("spec06/lbm-1", "spec06/mcf-1")
        .with_prefetchers("stride", "spp")
    )
    session.run(ex)
    repeat = session.run(ex)
    assert repeat.stats["simulated"] == 0
    assert repeat.stats["cached"] == repeat.stats["cells"]
    # Overlapping experiments reuse shared cells too.
    overlap = session.run(
        session.experiment("overlap")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("stride", "streamer")
    )
    assert overlap.stats["simulated"] == 1  # only streamer is new


# ---- executors ------------------------------------------------------------


def test_process_pool_matches_serial(tmp_path):
    ex = (
        Experiment.define("eq")
        .with_traces("spec06/lbm-1", "spec06/mcf-1")
        .with_prefetchers("stride", "spp")
        .with_length(LENGTH)
    )
    serial = Session(store=ResultStore(), executor=SerialExecutor()).run(ex)
    pooled = Session(
        store=ResultStore(), executor=ProcessPoolExecutor(max_workers=2)
    ).run(ex)
    assert len(serial) == len(pooled)
    for a, b in zip(serial, pooled):
        assert dataclasses.asdict(a.result) == dataclasses.asdict(b.result)
        assert dataclasses.asdict(a.baseline) == dataclasses.asdict(b.baseline)


# ---- result set queries ---------------------------------------------------


def test_resultset_queries(session):
    results = session.run(
        session.experiment("queries")
        .with_traces("spec06/lbm-1", "parsec/canneal-1")
        .with_prefetchers("stride", "spp")
    )
    assert set(results.rollup("suite")) == {"SPEC06", "PARSEC"}
    pivoted = results.pivot("suite", "prefetcher")
    assert set(pivoted["SPEC06"]) == {"stride", "spp"}
    only_stride = results.filter(prefetcher="stride")
    assert len(only_stride) == 2
    assert only_stride.geomean() > 0
    rows = results.to_rows()
    assert len(rows) == 4 and {"trace", "suite", "prefetcher", "system",
                               "speedup"} <= set(rows[0])
    text = results.table(rows="suite")
    assert "SPEC06" in text and "stride" in text


def test_none_prefetcher_is_its_own_baseline(session):
    record = session.run_one("spec06/lbm-1", "none")
    assert record.speedup == pytest.approx(1.0)
    assert record.result is record.baseline


# ---- the historical baseline under-keying bug -----------------------------


def test_baselines_distinct_when_only_l2_differs(session):
    """Regression: configs differing only in L2 geometry must not share a
    cached baseline (the old Runner._config_key ignored L1/L2/length/warmup)."""
    small_l2 = SystemConfig()
    big_l2 = dataclasses.replace(
        small_l2, l2=dataclasses.replace(small_l2.l2, size_bytes=1024 * 1024)
    )
    a = session.baseline("spec06/lbm-1", small_l2)
    b = session.baseline("spec06/lbm-1", big_l2)
    assert a is not b
    assert fingerprint(small_l2) != fingerprint(big_l2)


def test_baselines_distinct_across_length_and_warmup(session):
    a = session.baseline("spec06/lbm-1", SystemConfig())
    b = session.baseline("spec06/lbm-1", SystemConfig(), trace_length=LENGTH // 2)
    c = session.baseline("spec06/lbm-1", SystemConfig(), warmup_fraction=0.5)
    assert a is not b and a is not c
    assert b.instructions < a.instructions


def test_run_mix_cached(session):
    from repro.sim.config import baseline_multi_core

    config = baseline_multi_core(2)
    result, baseline = session.run_mix(
        ["spec06/lbm-1", "spec06/mcf-1"], "stride", config
    )
    assert result.instructions > 0 and baseline.prefetcher_name == "none"
    before = session.store.puts
    result2, _ = session.run_mix(["spec06/lbm-1", "spec06/mcf-1"], "stride", config)
    assert session.store.puts == before  # fully cached
    assert result2 is result


# ---- telemetry and checkpointed resume (ISSUE 5) --------------------------


def test_with_telemetry_attaches_timelines(session):
    experiment = (
        session.experiment("telemetry")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("spp")
        .with_telemetry(window=300)
    )
    results = session.run(experiment)
    record = results[0]
    timeline = record.timeline()
    assert timeline.window == 300
    # Window multiples plus the warmup split (rows break there too).
    split = int(LENGTH * 0.2)
    assert len(timeline) == len({*range(300, LENGTH + 1, 300), split, LENGTH})
    assert timeline.rows[-1].end_record == LENGTH
    assert record.phases() == record.timeline().phases()
    rows = results.timeline_rows()
    assert len(rows) == len(timeline)
    assert rows[0]["prefetcher"] == "spp" and rows[0]["trace"] == "spec06/lbm-1"
    assert all(row["ipc"] > 0 for row in rows)


def test_telemetry_rerun_upgrades_cached_results(session):
    """A result cached without telemetry is re-simulated (bit-identically)
    when telemetry is requested — and the upgraded entry then serves both
    telemetry and non-telemetry requests from the store."""
    plain = session.run_one("spec06/lbm-1", "spp")
    assert plain.result.timeline is None

    simulated_before = session.store.puts
    with_rows = session.run_one("spec06/lbm-1", "spp", telemetry_window=400)
    assert session.store.puts > simulated_before  # re-simulated + re-stored
    assert with_rows.result.timeline is not None

    plain_dict = dataclasses.asdict(plain.result)
    rows_dict = dataclasses.asdict(with_rows.result)
    assert rows_dict.pop("timeline") is not None
    plain_dict.pop("timeline")
    assert rows_dict == plain_dict  # telemetry never perturbs results

    # Same-window request now hits the upgraded entry; a plain request
    # is happy with the entry too (extra rows are harmless).
    before = session.store.puts
    again = session.run_one("spec06/lbm-1", "spp", telemetry_window=400)
    assert session.store.puts == before
    assert again.result is with_rows.result
    assert session.run_one("spec06/lbm-1", "spp").result is with_rows.result


def test_session_checkpointing_resumes_extension(tmp_path):
    """Growing trace_length under Session(checkpoint_every=...) resumes
    from the shorter run's snapshots instead of re-simulating."""
    store = ResultStore(tmp_path / "ckpt-store")
    session = Session(store=store, checkpoint_every=400)
    short = session.run_one(
        "spec06/lbm-1", "spp", trace_length=800, warmup_records=200
    )
    assert short.result.instructions > 0
    hits_before = store.checkpoint_hits
    extended = session.run_one(
        "spec06/lbm-1", "spp", trace_length=1600, warmup_records=200
    )
    assert store.checkpoint_hits > hits_before

    fresh = Session(store=ResultStore(tmp_path / "plain-store")).run_one(
        "spec06/lbm-1", "spp", trace_length=1600, warmup_records=200
    )
    assert dataclasses.asdict(extended.result) == dataclasses.asdict(fresh.result)
    assert dataclasses.asdict(extended.baseline) == dataclasses.asdict(
        fresh.baseline
    )


def test_checkpointed_experiment_run_matches_executor_run(tmp_path):
    """Session.run with checkpointing on (cells execute in-session) equals
    the executor path, table for table."""
    def experiment(session):
        return (
            session.experiment("ckpt-run")
            .with_traces("spec06/lbm-1", "spec06/mcf-1")
            .with_prefetchers("stride", "spp")
            .with_warmup(records=200)
        )

    plain = Session(store=ResultStore(tmp_path / "a"), trace_length=LENGTH)
    checkpointed = Session(
        store=ResultStore(tmp_path / "b"),
        trace_length=LENGTH,
        checkpoint_every=500,
    )
    table_plain = plain.run(experiment(plain)).table()
    table_ckpt = checkpointed.run(experiment(checkpointed)).table()
    assert table_plain == table_ckpt
    assert checkpointed.store.stats["checkpoint_puts"] > 0


def test_pool_workers_adopt_store_checkpoints(tmp_path):
    """A ProcessPoolExecutor session ships its store path to workers:
    checkpointable cells fan out, snapshot into the shared namespace,
    and a longer re-run resumes from them with results identical to a
    fresh serial simulation."""
    store = ResultStore(tmp_path / "pool-store")
    pool = ProcessPoolExecutor(max_workers=2)
    session = Session(
        store=store, executor=pool, trace_length=800, checkpoint_every=400
    )
    short = (
        session.experiment("pooled-ckpt")
        .with_traces("spec06/lbm-1", "spec06/mcf-1")
        .with_prefetchers("spp")
        .with_warmup(records=200)
    )
    session.run(short)
    # Session auto-configured the pool from its own store; the snapshot
    # files were written by the workers, so look on disk rather than at
    # this process's put counters.
    assert pool.store_path == store.path
    assert pool.resumes_checkpoints
    ckpt_root = store.path / "checkpoints"
    assert any(f.is_file() for f in ckpt_root.glob("**/*"))

    before = {f: f.stat().st_mtime_ns for f in ckpt_root.glob("**/*") if f.is_file()}

    extended_store = ResultStore(tmp_path / "pool-store")
    extended = Session(
        store=extended_store,
        executor=ProcessPoolExecutor(max_workers=2),
        trace_length=1600,
        checkpoint_every=400,
    )
    long_run = (
        extended.experiment("pooled-ckpt-ext")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("spp")
        .with_warmup(records=200)
    )
    table_resumed = extended.run(long_run).table()
    # Workers resumed from the short run's snapshots: snapshots past the
    # short length appeared, and the pre-existing ones were not
    # rewritten (a from-zero replay would overwrite every cadence —
    # put_checkpoint replaces files unconditionally).
    after = {f: f.stat().st_mtime_ns for f in ckpt_root.glob("**/*") if f.is_file()}
    assert len(after) > len(before)
    assert all(after[f] == mtime for f, mtime in before.items())

    fresh = Session(store=ResultStore(tmp_path / "fresh"), trace_length=1600)
    fresh_run = (
        fresh.experiment("pooled-ckpt-fresh")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("spp")
        .with_warmup(records=200)
    )
    assert table_resumed == fresh.run(fresh_run).table()


def test_warmup_records_fingerprint_semantics():
    """warmup_records participates in fingerprints; fraction-only cells
    keep their historical payload (store survival)."""
    base = dict(
        trace="spec06/lbm-1",
        prefetcher=PrefetcherSpec.of("spp"),
        system=SystemSpec.of("1c"),
        trace_length=LENGTH,
        warmup_fraction=0.2,
    )
    from repro.api import Cell

    fractional = Cell(**base)
    absolute = Cell(**base, warmup_records=240)
    other_absolute = Cell(**base, warmup_records=480)
    assert fractional.fingerprint() != absolute.fingerprint()
    assert absolute.fingerprint() != other_absolute.fingerprint()
    # telemetry is non-semantic: same fingerprint with it on or off
    observed = Cell(**base, telemetry_window=300)
    assert observed.fingerprint() == fractional.fingerprint()
    # the prefix namespace drops every length axis
    longer = dataclasses.replace(absolute, trace_length=4 * LENGTH)
    assert absolute.prefix_fingerprint() == longer.prefix_fingerprint()
    assert absolute.prefix_fingerprint() == fractional.prefix_fingerprint()


def test_baseline_not_resimulated_for_telemetry(session):
    """Telemetry requests must not re-simulate cached baselines: the
    baseline's timeline is unreachable through the API, so the pairing
    reuses the cached plain run."""
    session.run_one("spec06/lbm-1", "spp")  # caches spp + none
    puts_before = session.store.puts
    record = session.run_one("spec06/lbm-1", "spp", telemetry_window=400)
    assert record.result.timeline is not None
    assert record.baseline.timeline is None  # cached baseline, untouched
    assert session.store.puts == puts_before + 1  # only the spp cell re-ran


def test_explicit_none_cell_still_gets_telemetry(session):
    """An explicitly requested 'none' cell keeps its window even though
    implicit baselines drop theirs — the dedup prefers the windowed cell."""
    results = session.run(
        session.experiment("none-telemetry")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("spp", "none")
        .with_telemetry(window=400)
    )
    none_record = results.filter(prefetcher="none")[0]
    assert none_record.result.timeline is not None
    assert len(none_record.timeline()) > 0


def test_mix_warmup_records_honored():
    """with_warmup(records=...) must reach MixCells (and their fingerprints)."""
    from repro.api import MixCell

    base = (
        Experiment.define("mix-warmup")
        .with_mixes(("m", ("spec06/lbm-1", "spec06/mcf-1")))
        .with_prefetchers("stride")
        .with_length(LENGTH)
    )
    fractional = base.cells()[0]
    absolute = base.with_warmup(records=200).cells()[0]
    assert isinstance(absolute, MixCell)
    assert absolute.warmup_records == 200
    assert absolute.fingerprint() != fractional.fingerprint()

    store_session = Session(store=ResultStore(), trace_length=LENGTH)
    warmed = store_session.run(base.with_warmup(records=200))[0]
    unwarmed = store_session.run(base.with_warmup(records=600))[0]
    # Different warmup splits measure different regions.
    assert warmed.result.instructions != unwarmed.result.instructions


# ---- single-flight deduplication ------------------------------------------


class _GatedExecutor:
    """Serial executor that parks inside run_cells until released, so a
    test can hold one thread mid-simulation while another joins it."""

    def __init__(self):
        import threading

        self.calls = 0
        self.entered = threading.Event()
        self.release = threading.Event()

    def run_cells(self, cells):
        self.calls += 1
        self.entered.set()
        assert self.release.wait(timeout=60)
        return SerialExecutor().run_cells(cells)


def test_single_flight_two_threads_simulate_once():
    """ISSUE 9 acceptance: two threads running the identical cell
    against one Session produce exactly one simulation (store puts == 1)
    and two identical ResultSets."""
    import threading

    store = ResultStore()
    gate = _GatedExecutor()
    shared = Session(store=store, executor=gate, trace_length=LENGTH)
    ex = (
        shared.experiment("dedup")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("none")  # its own baseline: one fingerprint
    )

    outcomes: dict[int, object] = {}

    def run(slot):
        outcomes[slot] = shared.run(ex)

    first = threading.Thread(target=run, args=(0,))
    first.start()
    assert gate.entered.wait(timeout=60)  # thread 0 owns the simulation
    second = threading.Thread(target=run, args=(1,))
    second.start()
    # Thread 1 joins the in-flight cell rather than simulating; only
    # after the gate opens can either finish.
    gate.release.set()
    first.join(timeout=60)
    second.join(timeout=60)
    assert not first.is_alive() and not second.is_alive()

    assert gate.calls == 1  # one executor batch total
    assert store.stats["puts"] == 1  # exactly one simulation stored
    a, b = outcomes[0][0], outcomes[1][0]
    assert a.result == b.result
    assert a.baseline == b.baseline


def test_single_flight_run_one_threads_share_result():
    """run_one from many threads dedups through the same registry."""
    import threading

    store = ResultStore()
    shared = Session(store=store, trace_length=LENGTH)
    barrier = threading.Barrier(4)
    records = []

    def run():
        barrier.wait()
        records.append(shared.run_one("spec06/lbm-1", "stride"))

    threads = [threading.Thread(target=run) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert len(records) == 4
    # stride cell + its baseline: exactly two simulations ever ran,
    # however the four threads interleaved.
    assert store.stats["puts"] == 2
    assert all(r.result == records[0].result for r in records)


def test_single_flight_owner_failure_lets_waiter_retry(monkeypatch):
    """A waiter must not inherit the owner's failure: it retries and
    simulates the cell itself."""
    import threading

    from repro.api import experiment as experiment_module

    store = ResultStore()
    shared = Session(store=store, trace_length=LENGTH)

    real_execute = experiment_module.Cell.execute
    entered = threading.Event()
    release = threading.Event()
    fail_first = {"armed": True}

    def flaky(self, checkpoints=None, checkpoint_every=0):
        if fail_first["armed"]:
            fail_first["armed"] = False
            entered.set()
            assert release.wait(timeout=60)
            raise RuntimeError("owner died mid-simulation")
        return real_execute(
            self, checkpoints=checkpoints, checkpoint_every=checkpoint_every
        )

    monkeypatch.setattr(experiment_module.Cell, "execute", flaky)

    outcome = {}

    def owner():
        try:
            shared.run_one("spec06/lbm-1", "none")
        except RuntimeError as exc:
            outcome["owner"] = exc

    def waiter():
        entered.wait(timeout=60)
        outcome["waiter"] = shared.run_one("spec06/lbm-1", "none")

    threads = [threading.Thread(target=owner), threading.Thread(target=waiter)]
    for t in threads:
        t.start()
    # Let the waiter reach the in-flight registry, then fail the owner.
    release.set()
    for t in threads:
        t.join(timeout=120)

    assert isinstance(outcome["owner"], RuntimeError)  # error propagated
    assert outcome["waiter"].result.instructions > 0  # waiter recovered
    assert store.stats["puts"] == 1  # the retry's simulation
