"""Tests for the reward scheme and the pipelined-search timing model."""

import pytest

from repro.core.config import BASIC_ACTIONS, PythiaConfig
from repro.core.pipeline import (
    PIPELINE_STAGES,
    prediction_latency,
    search_timing,
)
from repro.core.rewards import (
    BASIC_REWARDS,
    BW_OBLIVIOUS_REWARDS,
    STRICT_REWARDS,
    RewardConfig,
)


def test_reward_level_ordering():
    """Accurate > late > no-prefetch > inaccurate/coverage-loss."""
    r = BASIC_REWARDS
    assert r.accurate_timely > r.accurate_late > 0
    assert r.accurate_late > r.no_prefetch_high_bw
    assert r.inaccurate_high_bw < r.no_prefetch_high_bw
    assert r.coverage_loss < 0


def test_bandwidth_selectors():
    r = RewardConfig()
    assert r.inaccurate(True) == r.inaccurate_high_bw
    assert r.inaccurate(False) == r.inaccurate_low_bw
    assert r.no_prefetch(True) == r.no_prefetch_high_bw
    assert r.no_prefetch(False) == r.no_prefetch_low_bw


def test_high_bandwidth_punishes_inaccuracy_harder():
    r = BASIC_REWARDS
    assert r.inaccurate_high_bw < r.inaccurate_low_bw
    assert r.no_prefetch_high_bw >= r.no_prefetch_low_bw


def test_paper_table2_values():
    r = RewardConfig.paper_table2()
    assert r.accurate_timely == 20
    assert r.accurate_late == 12
    assert r.coverage_loss == -12
    assert r.inaccurate_high_bw == -14
    assert r.inaccurate_low_bw == -8
    assert r.no_prefetch_high_bw == -2
    assert r.no_prefetch_low_bw == -4


def test_strict_rewards_direction():
    """§6.6.1: strict punishes inaccuracy harder and relaxes no-prefetch."""
    assert STRICT_REWARDS.inaccurate_high_bw < BASIC_REWARDS.inaccurate_high_bw
    assert STRICT_REWARDS.no_prefetch_low_bw >= BASIC_REWARDS.no_prefetch_low_bw


def test_bw_oblivious_collapses_variants():
    r = BW_OBLIVIOUS_REWARDS
    assert r.inaccurate_high_bw == r.inaccurate_low_bw
    assert r.no_prefetch_high_bw == r.no_prefetch_low_bw


def test_basic_actions_match_table2():
    assert BASIC_ACTIONS == (-6, -3, -1, 0, 1, 3, 4, 5, 10, 11, 12, 16, 22, 23, 30, 32)
    assert 0 in BASIC_ACTIONS
    assert len(BASIC_ACTIONS) == 16


def test_pipeline_has_five_stages():
    assert len(PIPELINE_STAGES) == 5


def test_search_timing_formula():
    timing = search_timing(PythiaConfig())
    assert timing.fill_latency == 5
    assert timing.total_latency == 5 + 16 - 1
    assert timing.throughput == 1.0


def test_longer_action_list_costs_latency():
    import dataclasses

    short = PythiaConfig()
    long = dataclasses.replace(short, actions=tuple(range(-63, 64)))
    assert prediction_latency(long) > prediction_latency(short)


def test_config_customization_helpers():
    cfg = PythiaConfig()
    strict = cfg.with_rewards(STRICT_REWARDS)
    assert strict.rewards is STRICT_REWARDS
    assert strict.actions == cfg.actions
    from repro.core.features import PC_DELTA

    single = cfg.with_features((PC_DELTA,))
    assert len(single.features) == 1


def test_initial_q_optimistic():
    cfg = PythiaConfig()
    assert cfg.initial_q == pytest.approx(
        cfg.rewards.accurate_timely / (1 - cfg.gamma)
    )
