"""Tests for named workloads, suites, mixes, and the unseen CVP traces."""

import pytest

from repro.workloads import (
    SUITES,
    WORKLOADS,
    all_trace_names,
    cvp_trace_names,
    generate_cvp_trace,
    generate_trace,
    heterogeneous_mixes,
    homogeneous_mix,
    motivation_traces,
    suite_traces,
    workload_names,
)
from repro.workloads.suites import suite_trace_names


def test_workload_counts_match_table6():
    """Table 6: 16 SPEC06, 12 SPEC17, 5 PARSEC, 13 Ligra, 4 Cloudsuite —
    plus the extra SYNTH stress suite (not part of the paper's 50)."""
    assert len(workload_names("SPEC06")) == 16
    assert len(workload_names("SPEC17")) == 12
    assert len(workload_names("PARSEC")) == 5
    assert len(workload_names("LIGRA")) == 13
    assert len(workload_names("CLOUDSUITE")) == 4
    assert len(workload_names("SYNTH")) == 4
    assert len(WORKLOADS) == 54


def test_synth_suite_outside_paper_trace_list():
    """The SYNTH families widen scenario coverage without changing "the
    paper's 1C traces": addressable by suite, absent from SUITES."""
    assert "SYNTH" not in SUITES
    synth = suite_trace_names("SYNTH")
    assert len(synth) == 8  # 4 workloads x 2 seeds
    assert set(synth).isdisjoint(all_trace_names())
    trace = generate_trace("synth/phase-adversarial-1", length=800)
    assert len(trace) == 800 and trace.suite == "SYNTH"
    walk = generate_trace("synth/llist-deep-2", length=800)
    assert len(walk) == 800 and walk.suite == "SYNTH"


def test_generate_trace_deterministic():
    a = generate_trace("spec06/mcf", length=500, seed=3)
    b = generate_trace("spec06/mcf", length=500, seed=3)
    assert a.records == b.records


def test_generate_trace_seeds_differ():
    a = generate_trace("spec06/mcf", length=500, seed=1)
    b = generate_trace("spec06/mcf", length=500, seed=2)
    assert a.records != b.records


def test_generate_trace_seed_suffix():
    a = generate_trace("spec06/mcf-2", length=300)
    b = generate_trace("spec06/mcf", length=300, seed=2)
    assert a.records == b.records


def test_generate_trace_unknown():
    with pytest.raises(KeyError):
        generate_trace("spec06/notaworkload")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_every_workload_generates(name):
    trace = generate_trace(name, length=300, seed=1)
    assert len(trace) == 300
    assert trace.suite == WORKLOADS[name].suite
    assert all(r.line >= 0 and r.pc > 0 for r in trace)


def test_suite_trace_names_structure():
    names = suite_trace_names("SPEC06")
    assert len(names) == 32  # 16 workloads x 2 seeds
    assert all("-" in n for n in names)


def test_all_trace_names_cover_suites():
    names = all_trace_names()
    assert len(names) == len(set(names))
    for suite in SUITES:
        assert any(n.startswith(suite.lower().replace("suite", "suite")) or True for n in names)
    assert len(names) > 100  # the paper's "150 traces" scale


def test_suite_traces_instantiates():
    traces = suite_traces("PARSEC", length=200)
    assert len(traces) == 10
    assert all(len(t) == 200 for t in traces)


def test_motivation_traces_are_fig1_workloads():
    traces = motivation_traces(length=200)
    assert len(traces) == 6
    names = [t.name for t in traces]
    assert "spec06/sphinx3-1" in names
    assert "ligra/cc-1" in names


def test_homogeneous_mix_distinct_seeds():
    mix = homogeneous_mix("spec06/mcf", num_cores=4, length=300)
    assert len(mix) == 4
    assert len({tuple((r.pc, r.line) for r in t) for t in mix}) == 4


def test_heterogeneous_mixes_deterministic():
    a = heterogeneous_mixes(num_cores=2, num_mixes=3, length=200, seed=5)
    b = heterogeneous_mixes(num_cores=2, num_mixes=3, length=200, seed=5)
    assert [name for name, _ in a] == [name for name, _ in b]
    assert all(len(traces) == 2 for _, traces in a)


def test_cvp_traces_disjoint_and_generate():
    names = cvp_trace_names()
    assert len(names) == 16
    trace = generate_cvp_trace(names[0], length=200)
    assert len(trace) == 200
    assert trace.suite.startswith("CVP")


def test_cvp_unknown_raises():
    with pytest.raises(KeyError):
        generate_cvp_trace("cvp/bogus-1")
