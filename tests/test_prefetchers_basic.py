"""Tests for stride, streamer, composite, and the registry."""

import pytest

from repro.prefetchers import (
    CompositePrefetcher,
    NoPrefetcher,
    StridePrefetcher,
    StreamerPrefetcher,
    available,
    create,
)
from repro.prefetchers.base import DemandContext
from repro.types import make_line


def ctx(pc, page, offset, cycle=0, bw_high=False):
    return DemandContext(
        pc=pc, line=make_line(page, offset), cycle=cycle, bandwidth_high=bw_high
    )


class TestNoPrefetcher:
    def test_never_prefetches(self):
        pf = NoPrefetcher()
        assert pf.train(ctx(1, 1, 0)) == []


class TestStride:
    def test_learns_constant_stride(self):
        pf = StridePrefetcher(degree=2, confidence_threshold=2)
        assert pf.train(ctx(0x400, 10, 0)) == []
        assert pf.train(ctx(0x400, 10, 3)) == []   # first stride observed
        # Second identical stride reaches the confidence threshold.
        out = pf.train(ctx(0x400, 10, 6))
        assert out == [make_line(10, 9), make_line(10, 12)]

    def test_stride_change_resets_confidence(self):
        pf = StridePrefetcher(degree=1, confidence_threshold=2)
        for offset in [0, 3, 6, 9]:
            pf.train(ctx(0x400, 10, offset))
        assert pf.train(ctx(0x400, 10, 11)) == []  # stride changed to 2

    def test_different_pcs_tracked_separately(self):
        pf = StridePrefetcher(degree=1, confidence_threshold=2)
        for offset in [0, 2, 4, 6]:
            pf.train(ctx(0x400, 10, offset))
            pf.train(ctx(0x500, 20, 63 - offset))
        out_a = pf.train(ctx(0x400, 10, 8))
        assert make_line(10, 9) not in out_a
        assert make_line(10, 10) in out_a

    def test_table_eviction(self):
        pf = StridePrefetcher(table_size=2)
        for pc in range(5):
            pf.train(ctx(0x400 + pc, 10, 0))
        assert len(pf._table) == 2

    def test_reset(self):
        pf = StridePrefetcher()
        pf.train(ctx(0x400, 10, 0))
        pf.reset()
        assert len(pf._table) == 0


class TestStreamer:
    def test_streams_after_monotone_run(self):
        pf = StreamerPrefetcher(depth=2, train_count=2)
        pf.train(ctx(1, 10, 0))
        pf.train(ctx(1, 10, 1))
        out = pf.train(ctx(1, 10, 2))
        assert out == [make_line(10, 3), make_line(10, 4)]

    def test_descending_direction(self):
        pf = StreamerPrefetcher(depth=2, train_count=2)
        pf.train(ctx(1, 10, 20))
        pf.train(ctx(1, 10, 19))
        out = pf.train(ctx(1, 10, 18))
        assert out == [make_line(10, 17), make_line(10, 16)]

    def test_direction_change_resets(self):
        pf = StreamerPrefetcher(depth=2, train_count=3)
        for off in [0, 1, 2]:
            pf.train(ctx(1, 10, off))
        assert pf.train(ctx(1, 10, 1)) == []  # direction flip

    def test_stays_in_page(self):
        pf = StreamerPrefetcher(depth=4, train_count=2)
        pf.train(ctx(1, 10, 60))
        pf.train(ctx(1, 10, 61))
        out = pf.train(ctx(1, 10, 62))
        assert out == [make_line(10, 63)]


class TestComposite:
    def test_union_and_dedup(self):
        pf = CompositePrefetcher(
            [StreamerPrefetcher(depth=2, train_count=1), StridePrefetcher(degree=2)]
        )
        pf.train(ctx(1, 10, 0))
        pf.train(ctx(1, 10, 1))
        out = pf.train(ctx(1, 10, 2))
        assert len(out) == len(set(out))

    def test_requires_members(self):
        with pytest.raises(ValueError):
            CompositePrefetcher([])

    def test_name_join(self):
        pf = CompositePrefetcher([StridePrefetcher(), StreamerPrefetcher()])
        assert pf.name == "stride+streamer"

    def test_callbacks_fan_out(self):
        class Recorder(NoPrefetcher):
            def __init__(self):
                self.events = []

            def on_prefetch_fill(self, line, cycle):
                self.events.append(("fill", line))

            def on_demand_hit_prefetched(self, line, cycle):
                self.events.append(("hit", line))

        a, b = Recorder(), Recorder()
        pf = CompositePrefetcher([a, b])
        pf.on_prefetch_fill(5, 0)
        pf.on_demand_hit_prefetched(6, 0)
        assert a.events == b.events == [("fill", 5), ("hit", 6)]


class TestRegistry:
    def test_available_contains_paper_prefetchers(self):
        names = available()
        for expected in [
            "spp", "bingo", "mlop", "dspatch", "spp_ppf", "pythia",
            "pythia_strict", "pythia_bw_oblivious", "stride", "streamer",
            "ipcp", "cp_hw", "power7", "st+s+b+d+m",
        ]:
            assert expected in names

    def test_create_unknown(self):
        with pytest.raises(KeyError):
            create("not-a-prefetcher")

    @pytest.mark.parametrize("name", ["spp", "bingo", "mlop", "pythia", "st+s"])
    def test_create_fresh_instances(self, name):
        a = create(name)
        b = create(name)
        assert a is not b
        assert a.train(ctx(1, 1, 0)) == b.train(ctx(1, 1, 0))
