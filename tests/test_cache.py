"""Tests for the set-associative cache and its prefetch bookkeeping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import Cache
from repro.sim.config import CacheGeometry


def small_cache(ways: int = 2, sets: int = 4, replacement: str = "lru") -> Cache:
    geometry = CacheGeometry(
        size_bytes=ways * sets * 64, ways=ways, latency=4, mshrs=8,
        replacement=replacement,
    )
    return Cache("T", geometry)


def test_geometry_num_sets():
    geometry = CacheGeometry(32 * 1024, 8, 4, 16)
    assert geometry.num_sets == 64


def test_miss_then_hit():
    cache = small_cache()
    result = cache.lookup(100, pc=1, is_load=True, is_prefetch=False)
    assert not result.hit
    assert cache.stats.demand_misses == 1
    assert cache.stats.load_misses == 1
    cache.fill(100, pc=1, is_prefetch=False)
    result = cache.lookup(100, pc=1, is_load=True, is_prefetch=False)
    assert result.hit
    assert cache.stats.demand_hits == 1


def test_store_miss_not_load_miss():
    cache = small_cache()
    cache.lookup(100, pc=1, is_load=False, is_prefetch=False)
    assert cache.stats.demand_misses == 1
    assert cache.stats.load_misses == 0


def test_eviction_on_full_set():
    cache = small_cache(ways=2, sets=1)
    cache.fill(0, pc=1, is_prefetch=False)
    cache.fill(1, pc=1, is_prefetch=False)
    evicted = cache.fill(2, pc=1, is_prefetch=False)
    assert evicted is not None
    assert cache.stats.evictions == 1
    assert cache.occupancy == 2


def test_prefetched_line_first_use_flagged():
    cache = small_cache()
    cache.fill(50, pc=0, is_prefetch=True)
    assert cache.stats.prefetch_fills == 1
    result = cache.lookup(50, pc=1, is_load=True, is_prefetch=False)
    assert result.hit
    assert result.was_prefetched_line
    assert result.first_use_of_prefetch
    assert cache.stats.useful_prefetches == 1
    # Second use is not "first use" again.
    result = cache.lookup(50, pc=1, is_load=True, is_prefetch=False)
    assert not result.first_use_of_prefetch
    assert cache.stats.useful_prefetches == 1


def test_useless_prefetch_eviction_counted():
    cache = small_cache(ways=1, sets=1)
    cache.fill(0, pc=0, is_prefetch=True)
    evicted = cache.fill(1, pc=0, is_prefetch=False)
    assert evicted is not None
    assert evicted.prefetched and not evicted.used
    assert cache.stats.useless_evictions == 1


def test_duplicate_fill_keeps_line():
    cache = small_cache()
    cache.fill(7, pc=0, is_prefetch=False)
    assert cache.fill(7, pc=0, is_prefetch=True) is None
    assert cache.occupancy == 1


def test_invalidate():
    cache = small_cache()
    cache.fill(9, pc=0, is_prefetch=False)
    assert cache.invalidate(9)
    assert not cache.probe(9)
    assert not cache.invalidate(9)


def test_prefetch_lookup_stats():
    cache = small_cache()
    cache.lookup(3, pc=0, is_load=False, is_prefetch=True)
    assert cache.stats.prefetch_misses == 1
    cache.fill(3, pc=0, is_prefetch=True)
    cache.lookup(3, pc=0, is_load=False, is_prefetch=True)
    assert cache.stats.prefetch_hits == 1


def test_prefetch_accuracy():
    cache = small_cache(ways=1, sets=1)
    cache.fill(0, pc=0, is_prefetch=True)
    cache.lookup(0, pc=0, is_load=True, is_prefetch=False)  # useful
    cache.fill(1, pc=0, is_prefetch=True)  # evicts nothing prefetch-wise
    cache.fill(2, pc=0, is_prefetch=False)  # evicts unused prefetch 1
    assert cache.stats.useful_prefetches == 1
    assert cache.stats.useless_evictions == 1
    assert cache.stats.prefetch_accuracy == pytest.approx(0.5)


def test_hit_rate():
    cache = small_cache()
    assert cache.stats.demand_hit_rate == 0.0
    cache.fill(1, pc=0, is_prefetch=False)
    cache.lookup(1, pc=0, is_load=True, is_prefetch=False)
    cache.lookup(2, pc=0, is_load=True, is_prefetch=False)
    assert cache.stats.demand_hit_rate == pytest.approx(0.5)


@settings(max_examples=50, deadline=None)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200),
    replacement=st.sampled_from(["lru", "ship"]),
)
def test_occupancy_never_exceeds_capacity(lines, replacement):
    cache = small_cache(ways=2, sets=4, replacement=replacement)
    for line in lines:
        if not cache.lookup(line, pc=line & 0xFF, is_load=True, is_prefetch=False).hit:
            cache.fill(line, pc=line & 0xFF, is_prefetch=False)
    assert cache.occupancy <= cache.capacity_lines


@settings(max_examples=50, deadline=None)
@given(lines=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=100))
def test_filled_line_is_probeable_until_evicted(lines):
    cache = small_cache(ways=4, sets=16)  # big enough: no evictions for <=64 lines
    for line in lines:
        cache.fill(line, pc=0, is_prefetch=False)
    for line in lines:
        assert cache.probe(line)
