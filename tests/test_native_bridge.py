"""Bridge-layer tests for the native replay kernel (ISSUE 10).

Small-trace, quick-tier drivers of ``repro.sim._native.bridge``: the
full Python → C → Python state round trip for both the training
(Pythia) and non-training (no-prefetch) kernels, the configuration
``supports()`` gate, and the short-span delegation back to the batched
backend.  The heavyweight bit-identity matrix (five trace families,
windowed, cross-backend checkpointed resumes) lives in
``tests/test_hotpath_equivalence.py``; this file is the fast coverage
driver the traced coverage run can afford
(``scripts/coverage.py``).

The whole module skips when no C compiler is available — the engine
then never reaches the bridge (``tests/test_native_build.py`` pins
that fallback).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import registry
from repro.sim import _native
from repro.sim._native import bridge
from repro.sim.config import SystemConfig
from repro.sim.system import simulate

pytestmark = pytest.mark.quick


@pytest.fixture(autouse=True)
def native_kernel(monkeypatch):
    if not _native.available():
        pytest.skip("no C compiler: native replay backend unavailable")
    # 2000-record traces produce spans well under the production
    # threshold; force them through the C kernel.
    monkeypatch.setattr(bridge, "MIN_NATIVE_SPAN", 0)


def _config(backend: str) -> SystemConfig:
    return dataclasses.replace(SystemConfig(), replay_backend=backend)


def _cell(backend: str, pf_name: str):
    trace = registry.cached_trace("spec06/lbm-1", 2000)
    return dataclasses.asdict(
        simulate(
            trace,
            config=_config(backend),
            prefetcher=registry.create(pf_name),
            warmup_fraction=0.2,
        )
    )


@pytest.mark.parametrize("pf_name", ["pythia", "none"])
def test_round_trip_bit_identical(pf_name):
    """One training and one non-training cell through the C kernel.

    Covers the full import/export of caches (LRU + SHiP on the LLC),
    MSHR, DRAM channels, core, and — for pythia — the Q-table,
    evaluation queue, page table, and RNG stream.
    """
    assert _cell("native", pf_name) == _cell("batched", pf_name)


def test_supports_gates_unsupported_configurations():
    from repro.sim.engine import SimulationEngine

    trace = registry.cached_trace("spec06/lbm-1", 2000)

    supported = SimulationEngine(
        trace, config=_config("native"), prefetcher=registry.create("pythia")
    )
    assert bridge.supports(supported.hierarchy)
    assert bridge.usable(supported.hierarchy)

    # A prefetcher the kernel has no implementation for.
    spp = SimulationEngine(
        trace, config=_config("native"), prefetcher=registry.create("spp")
    )
    assert not bridge.supports(spp.hierarchy)

    # An L1 prefetcher disables every fast backend before the bridge is
    # even consulted.
    l1 = SimulationEngine(
        trace,
        config=_config("native"),
        prefetcher=registry.create("pythia"),
        l1_prefetcher=registry.create("spp"),
    )
    assert not l1._use_native


def test_short_spans_delegate_to_batched(monkeypatch):
    """Below the span threshold the bridge hands off to the batched
    kernel wholesale — same results, no C round trip."""
    monkeypatch.setattr(bridge, "MIN_NATIVE_SPAN", 1 << 30)
    calls = []
    real_get_lib = bridge.get_lib

    def counting_get_lib():
        lib = real_get_lib()
        calls.append(lib)
        return lib

    monkeypatch.setattr(bridge, "get_lib", counting_get_lib)
    assert _cell("native", "pythia") == _cell("batched", "pythia")
    # The engine probed the kernel for usability, but every span was
    # delegated — so no span entered the C entry point (get_lib calls
    # come only from usable()).
    assert all(lib is not None for lib in calls)
