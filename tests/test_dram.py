"""Tests for the DRAM model: latency, banking, priority, utilization."""

import pytest

from repro.sim.config import DramConfig
from repro.sim.dram import Dram


def test_cycles_per_transfer():
    config = DramConfig(mtps=2400, core_mhz=4000)
    assert config.cycles_per_transfer == pytest.approx(8 * 4000 / 2400)


def test_single_access_latency():
    dram = Dram(DramConfig())
    completion = dram.access(line=0, now=0, is_prefetch=False)
    config = dram.config
    expected = config.row_miss_latency + config.cycles_per_transfer
    assert completion == int(expected)
    assert dram.row_misses == 1


def test_row_hit_faster_than_row_miss():
    dram = Dram(DramConfig())
    first = dram.access(line=0, now=0, is_prefetch=False)
    second = dram.access(line=1, now=first, is_prefetch=False)
    assert second - first < first  # row hit latency < row miss latency
    assert dram.row_hits == 1


def test_bank_conflict_serializes():
    config = DramConfig()
    dram = Dram(config)
    # Same bank, different rows: second access waits for bank occupancy.
    stride = config.row_size_lines * config.banks_per_channel
    c1 = dram.access(line=0, now=0, is_prefetch=False)
    c2 = dram.access(line=stride, now=0, is_prefetch=False)
    assert c2 > c1


def test_demand_priority_over_prefetch():
    """A demand issued after a burst of prefetches jumps the bus queue."""
    config = DramConfig()
    flooded = Dram(config)
    for i in range(32):
        flooded.access(line=1000 + i, now=0, is_prefetch=True)
    demand_after_prefetches = flooded.access(line=5000, now=0, is_prefetch=False)

    clean = Dram(config)
    demand_clean = clean.access(line=5000, now=0, is_prefetch=False)
    # Bank contention may add a little, but the demand must not queue
    # behind 32 prefetch bursts on the bus.
    assert demand_after_prefetches < demand_clean + 32 * config.cycles_per_transfer / 2


def test_prefetch_queues_behind_everything():
    config = DramConfig()
    dram = Dram(config)
    for i in range(16):
        dram.access(line=2000 + i, now=0, is_prefetch=False)
    late_prefetch = dram.access(line=9000, now=0, is_prefetch=True)
    clean = Dram(config)
    lone_prefetch = clean.access(line=9000, now=0, is_prefetch=True)
    assert late_prefetch > lone_prefetch


def test_request_counters():
    dram = Dram(DramConfig())
    dram.access(0, 0, is_prefetch=False)
    dram.access(64, 0, is_prefetch=True)
    assert dram.total_requests == 2
    assert dram.demand_requests == 1
    assert dram.prefetch_requests == 1


def test_utilization_rises_with_traffic():
    config = DramConfig(utilization_window=1000)
    dram = Dram(config)
    assert dram.utilization(0) == 0.0
    for i in range(50):
        dram.access(line=i * 7, now=i * 10, is_prefetch=False)
    assert dram.utilization(500) > 0.1


def test_utilization_capped_at_one():
    config = DramConfig(utilization_window=100)
    dram = Dram(config)
    for i in range(200):
        dram.access(line=i * 33, now=50, is_prefetch=False)
    assert dram.utilization(60) <= 1.0


def test_bandwidth_high_threshold():
    config = DramConfig(utilization_window=100)
    dram = Dram(config)
    assert not dram.bandwidth_high(0, threshold=0.5)
    for i in range(100):
        dram.access(line=i * 33, now=50, is_prefetch=False)
    assert dram.bandwidth_high(60, threshold=0.5)


def test_bucket_fractions_sum_to_one():
    dram = Dram(DramConfig())
    for i in range(100):
        dram.access(line=i, now=i * 20, is_prefetch=False)
    fractions = dram.bucket_fractions()
    assert len(fractions) == 4
    assert sum(fractions) == pytest.approx(1.0)


def test_channel_interleaving():
    config = DramConfig(channels=2)
    dram = Dram(config)
    # Consecutive lines land on alternating channels: both can proceed.
    c1 = dram.access(line=0, now=0, is_prefetch=False)
    c2 = dram.access(line=1, now=0, is_prefetch=False)
    single = Dram(DramConfig(channels=1))
    s1 = single.access(line=0, now=0, is_prefetch=False)
    s2 = single.access(line=64, now=0, is_prefetch=False)  # same channel+bank region
    assert max(c1, c2) <= max(s1, s2)
