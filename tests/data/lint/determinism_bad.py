"""Fixture: every determinism violation class (analyzed as repro.sim.*)."""

import time
from datetime import datetime
from random import randrange

import random


def seed_from_name(name: str) -> int:
    return hash(name) % 2**31


def jitter() -> float:
    return random.random()


def pick(options):
    return random.choice(options)


def stamp() -> float:
    return time.time() + datetime.now().timestamp() + randrange(10)
