"""Fixture: the sanctioned deterministic forms (analyzed as repro.sim.*)."""

import random
import zlib


def seed_from_name(name: str) -> int:
    return zlib.crc32(name.encode())


def jitter(seed: int) -> float:
    return random.Random(seed).random()
