"""Checkpoint object graphs that cannot round-trip.

Loaded via importlib; ``graphs()`` feeds ``CheckpointCoverageRule`` as
injected graphs.  The partial ``__getstate__`` drops slot ``b``, the
``__setstate__``-less class cannot restore, and the lambda member does
not pickle at all.
"""


class PartialGetstate:
    __slots__ = ("a", "b")

    def __init__(self):
        self.a, self.b = 1, 2

    def __getstate__(self):
        return {"a": self.a}

    def __setstate__(self, state):
        self.a = state["a"]


class NoSetstate:
    __slots__ = ("a",)

    def __init__(self):
        self.a = 1

    def __getstate__(self):
        return {"a": self.a}


class Unpicklable:
    def __init__(self):
        self.hook = lambda: None


def graphs():
    return [
        ("partial", PartialGetstate()),
        ("nosetstate", NoSetstate()),
        ("lambda", Unpicklable()),
    ]
