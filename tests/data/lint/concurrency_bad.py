"""Deliberate concurrency violations.

Analyzed as ``repro.api.badfixture`` via ``ProjectContext.from_sources``:
every module-level write below sits in a function reachable from a
worker entry point (``_init_worker`` directly, ``helper`` through
``SweepCell.execute``), so each one must fire.  The ``Session`` class
mutates its thread-shared single-flight registry outside the session
lock, so both mutations fire the guarded-state check.
"""

_SHARED_COUNTER = 0
_SHARED_TABLE = {}


def _init_worker(config):
    global _SHARED_COUNTER
    _SHARED_COUNTER = 0
    _SHARED_TABLE.update(config)


def helper(value):
    _SHARED_TABLE["latest"] = value


class SweepCell:
    def execute(self):
        helper(1)


class Session:
    def claim(self, key):
        self._inflight[key] = object()  # unguarded subscript write
        return self._inflight.pop(key, None)  # unguarded pop
