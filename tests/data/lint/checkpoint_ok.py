"""Checkpoint-clean object graph: the twin of ``checkpoint_bad.py``.

Slots fully covered by default pickling, containers of slotted
members, everything round-trips.
"""


class SlottedGood:
    __slots__ = ("a", "b")

    def __init__(self):
        self.a, self.b = 1, 2


def graphs():
    return [("good", (SlottedGood(), [1, 2], {"k": SlottedGood()}))]
