"""Native-clean twin of ``native_bad.py``.

The identical ``ctypes`` usage is legal when the module lives inside
``repro.sim._native`` (analyzed as ``repro.sim._native.okfixture``);
everything else goes through the package's public helpers.
"""

import ctypes
from ctypes import c_int64


def bound_entry(lib_path):
    lib = ctypes.CDLL(lib_path)
    lib.some_entry.restype = c_int64
    return lib.some_entry()
