"""Fingerprint-stable config tree: the clean twin of
``fingerprint_bad.py``.

Every field is a canonicalizable scalar, tuple, dict, optional, nested
config dataclass, or explicitly tagged non-semantic.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NestedCfg:
    depth: int = 3


@dataclass(frozen=True)
class GoodCfg:
    name: str = "x"
    weights: tuple[float, ...] = (1.0,)
    nested: NestedCfg = field(default_factory=NestedCfg)
    table: dict[str, int] = field(default_factory=dict)
    maybe: int | None = None
    impl: str = field(default="auto", metadata={"semantic": False})
