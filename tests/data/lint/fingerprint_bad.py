"""Config shapes that defeat fingerprint canonicalization.

Loaded via importlib and handed to ``FingerprintCompletenessRule``
as injected roots: the callable, the set, and the ``Any`` field must
each be flagged; the tagged non-semantic hook must not; the plain
class must be rejected as a non-dataclass root.
"""

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class BadCfg:
    score_fn: Callable[[int], float] = max
    tags: set = field(default_factory=set)
    blob: Any = None
    # Tagged non-semantic: exempt even though a callable.
    hook: Callable[[], None] = field(default=print, metadata={"semantic": False})


class NotADataclassCfg:
    pass
