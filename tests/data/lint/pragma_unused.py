"""Fixture: a pragma with nothing to suppress must itself be reported."""

import zlib  # repro: ignore[determinism]


def seed(name: str) -> int:
    return zlib.crc32(name.encode())
