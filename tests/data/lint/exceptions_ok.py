"""Compliant handlers: the clean twin of ``exceptions_bad.py``.

Narrow catches never fire; broad catches are fine when they re-raise
(bare or wrapped) or actually use the bound exception.
"""


def narrow(task):
    try:
        task()
    except (ValueError, KeyError):
        return None


def reraise(task):
    try:
        task()
    except Exception:
        raise


def wrap(task):
    try:
        task()
    except Exception as exc:
        raise RuntimeError("task failed") from exc


def record(task, log):
    try:
        task()
    except Exception as exc:
        log.append(exc)
        return None
