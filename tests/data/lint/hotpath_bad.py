"""Deliberate hot-loop impurities.

Analyzed via ``ProjectContext.from_sources`` with ``replay`` injected
into the hot registry: every per-iteration allocation / resolution
class the rule knows about appears once inside the loop body.
"""

_MODE = "fast"


def set_mode(mode):
    global _MODE
    _MODE = mode


class Entry:
    def __init__(self, line):
        self.line = line


def replay(records):
    total = 0
    for rec in records:
        try:
            total += rec
        except ValueError:
            pass
        buckets = {}
        tags = [rec]
        entry = Entry(rec)
        scratch = list(tags)
        bump = lambda x: x + 1  # noqa: E731
        squares = [x * x for x in tags]
        if _MODE:
            total += len(squares)
    return total, buckets, entry, scratch, bump
