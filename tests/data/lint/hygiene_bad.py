"""Fixture: hygiene violations (analyzed as a hot-path repro.sim module)."""

from dataclasses import dataclass


def accumulate(value, into=[]):
    into.append(value)
    return into


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts


def collect(*, seen=set()):
    return seen


@dataclass
class PerRecordThing:
    line: int
    useful: bool
