"""Deliberate exception-swallowing handlers.

Analyzed as ``repro.sim.badfixture``: every handler below either
catches broadly or names a sensitive type, and none re-raises or uses
a bound exception — all five must fire.  (The fixture is never
imported, so the undefined ``SimulationCancelled`` name is inert.)
"""


def swallow_bare(task):
    try:
        task()
    except:  # noqa: E722
        return None


def swallow_broad(task):
    try:
        task()
    except Exception:
        return None


def swallow_sensitive(task):
    try:
        task()
    except SimulationCancelled:  # noqa: F821
        return None


def swallow_keyboard(task):
    try:
        task()
    except (KeyboardInterrupt, ValueError):
        return None


def bound_but_unused(task):
    try:
        task()
    except Exception as exc:  # noqa: F841
        return None
