"""Fixture: ctypes leaks outside ``repro.sim._native``.

Analyzed as ``repro.sim.badfixture`` — both import forms of ``ctypes``
must fire the ``native`` rule.
"""

import ctypes
from ctypes import c_int64


def raw_ffi_call(lib_path):
    lib = ctypes.CDLL(lib_path)
    lib.some_entry.restype = c_int64
    return lib.some_entry()
