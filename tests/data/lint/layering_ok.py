"""Layering-clean twin of ``layering_bad.py``.

Analyzed as ``repro.sim.okfixture`` (rank 3): module-level imports go
only sideways or down the DAG, and the one upward reference uses the
sanctioned function-scoped escape hatch.
"""

import repro.types
from repro.core import qvstore  # noqa: F401
from repro.sim import cache  # noqa: F401


def lazy_upward_hop():
    # Function-scoped upward import: legal by design.
    from repro.api.store import ResultStore

    return ResultStore(path=None)


def use(line):
    return repro.types.__name__, line
