"""Fixture: violations silenced by pragmas (analyzed as repro.sim.*)."""

import time  # repro: ignore[determinism]


def seed(name: str) -> int:
    # repro: ignore[determinism]
    return hash(name)


def multi(xs=[]):  # repro: ignore[hygiene, determinism]
    return xs
