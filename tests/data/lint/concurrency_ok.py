"""Concurrency-clean twin of ``concurrency_bad.py``.

Module state is assigned only at import time (read-only afterwards),
everything the worker entry points touch is function-local, and the
``Session`` class only mutates its single-flight registry inside
``with self._lock`` (``__init__`` construction is exempt by design).
"""

import threading

LIMIT = 8
_TABLE = {"a": 1}


def _init_worker(config):
    local = dict(config)
    return local


def lookup(key):
    return _TABLE.get(key, LIMIT)


class SweepCell:
    def execute(self):
        return lookup("a")


class Session:
    def __init__(self):
        self._lock = threading.RLock()
        self._inflight = {}  # construction precedes sharing

    def claim(self, key):
        with self._lock:
            self._inflight[key] = object()
            return self._inflight.pop(key, None)

    def peek(self, key):
        return self._inflight.get(key)  # reads are out of scope
