"""Concurrency-clean twin of ``concurrency_bad.py``.

Module state is assigned only at import time (read-only afterwards),
and everything the worker entry points touch is function-local.
"""

LIMIT = 8
_TABLE = {"a": 1}


def _init_worker(config):
    local = dict(config)
    return local


def lookup(key):
    return _TABLE.get(key, LIMIT)


class SweepCell:
    def execute(self):
        return lookup("a")
