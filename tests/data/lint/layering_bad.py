"""Fixture: layering inversions (analyzed as a repro.sim module)."""

from repro.api import Session
from repro.prefetchers.registry import create

import repro.harness


def legal_runtime_hop():
    # Function-scoped upward imports are the sanctioned escape hatch.
    from repro.api import ResultStore

    return ResultStore
