"""Fixture: TraceRecord construction on the batched replay path
(analyzed as repro.sim.* / repro.core.*)."""

from repro.sim.trace import TraceRecord

from repro.sim import trace


def rebuild_record(pc: int, line: int) -> TraceRecord:
    return TraceRecord(pc=pc, line=line, is_load=True, gap=1)


def rebuild_qualified(pc: int, line: int):
    return trace.TraceRecord(pc=pc, line=line, is_load=True, gap=1)
