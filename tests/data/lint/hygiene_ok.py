"""Hygiene-clean twin of ``hygiene_bad.py``.

Immutable defaults everywhere (None-and-construct-inside for the
mutable cases), and the hot-module dataclass carries ``slots=True`` —
analyzed as ``repro.sim.cache`` this must produce zero findings.
"""

from dataclasses import dataclass


def accumulate(values=(), into=None):
    store = [] if into is None else into
    store.extend(values)
    return store


def tally(counts=None):
    return dict(counts or {})


@dataclass(slots=True)
class PerRecordThing:
    address: int = 0
    hits: int = 0


class SlottedByHand:
    __slots__ = ("a", "b")
