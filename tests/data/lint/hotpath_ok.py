"""Hot-loop discipline: the clean twin of ``hotpath_bad.py``.

Everything the loop touches is hoisted to a local above it; the only
shapes inside the body are the deliberate exemptions — tuple displays,
calls through hoisted local aliases, plain project-function calls, and
loads of single-assignment module constants.
"""

TICK_SCALE = 2


def helper(x):
    return x + 1


def replay(records):
    scale = TICK_SCALE
    bump = helper
    total = 0
    scratch = []
    append = scratch.append
    key = None
    for rec in records:
        key = (rec, scale)
        total += bump(rec)
        total += helper(rec)
        total += TICK_SCALE
        append(total)
    return total, key
