"""Fixture: batched-path code that touches TraceRecord without
constructing it (annotations, isinstance) stays clean."""

from repro.sim.trace import TraceRecord


def pc_of(record: TraceRecord) -> int:
    return record.pc


def is_record(value: object) -> bool:
    return isinstance(value, TraceRecord)
