"""The whole-program analysis layer: project context, call graph, and
the cross-file rule families.

Three layers again, mirroring ``test_analysis.py``:

* **unit** — :class:`ProjectContext` built from inline sources pins the
  symbol table, the mutable-global write index (import-time vs
  function-scope writes, mutator methods, ``global`` declarations), and
  :class:`CallGraph` resolution through import aliases, methods, and
  the deliberate unknown-receiver fallback;
* **fixture snippets** — each new rule family fires on its bad fixture
  and stays silent on the good twin, exactly like the AST rules;
* **meta** — every registered rule must ship a ``<rule>_bad.py`` /
  ``<rule>_ok.py`` pair under ``tests/data/lint/``, so a rule added
  without fixtures fails loudly here.
"""

from __future__ import annotations

import importlib.util
import re
import sys
from pathlib import Path

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.project import ProjectContext
from repro.analysis.rules import all_rule_names
from repro.analysis.rules.checkpoints import CheckpointCoverageRule
from repro.analysis.rules.concurrency import ConcurrencyRule, entry_points
from repro.analysis.rules.fingerprints import FingerprintCompletenessRule
from repro.analysis.rules.hotpath import HotpathRule

FIXTURES = Path(__file__).parent / "data" / "lint"


def fixture_project(name: str, module: str) -> ProjectContext:
    return ProjectContext.from_sources(
        {module: (FIXTURES / name).read_text()}
    )


def load_fixture_module(name: str):
    spec = importlib.util.spec_from_file_location(
        f"lint_fixture_{name}", FIXTURES / f"{name}.py"
    )
    mod = importlib.util.module_from_spec(spec)
    # Registered so the pickle round-trip probe can resolve the classes.
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


# ---------------------------------------------------------------------------
# ProjectContext: symbols and the write index
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_project_symbol_table_and_import_time_writes():
    ctx = ProjectContext.from_sources(
        {
            "repro.sim.alpha": (
                "LIMIT = 4\n"
                "TABLE = {}\n"
                "TABLE = {'seeded': True}\n"  # module-level reassign
                "def helper(x):\n"
                "    return x + LIMIT\n"
                "class Gadget:\n"
                "    def spin(self):\n"
                "        return helper(1)\n"
            )
        }
    )
    minfo = ctx.modules["repro.sim.alpha"]
    assert set(minfo.globals_) == {"LIMIT", "TABLE"}
    assert "LIMIT" in minfo.constants  # single assignment, immutable
    assert "TABLE" not in minfo.constants
    assert "repro.sim.alpha.helper" in ctx.functions
    assert "repro.sim.alpha.Gadget.spin" in ctx.functions
    assert "Gadget" in minfo.classes
    # The import-time reassign is recorded but writer-less: benign.
    reassigns = [w for w in ctx.writes if w.kind == "reassign"]
    assert len(reassigns) == 1 and reassigns[0].writer is None
    assert ctx.function_writes() == []
    assert ctx.mutable_globals() == set()


@pytest.mark.quick
def test_project_function_write_index_kinds():
    ctx = ProjectContext.from_sources(
        {
            "repro.sim.alpha": (
                "COUNT = 0\n"
                "CACHE = {}\n"
                "def bump():\n"
                "    global COUNT\n"
                "    COUNT = COUNT + 1\n"
                "def stash(k, v):\n"
                "    CACHE[k] = v\n"
                "def merge(other):\n"
                "    CACHE.update(other)\n"
                "def pure(x):\n"
                "    cache = {}\n"
                "    cache[x] = x\n"
                "    return cache\n"
            )
        }
    )
    writes = {(w.name, w.kind, w.writer) for w in ctx.function_writes()}
    assert ("COUNT", "assign", "repro.sim.alpha.bump") in writes
    assert ("CACHE", "mutate", "repro.sim.alpha.stash") in writes
    assert ("CACHE", "mutate", "repro.sim.alpha.merge") in writes
    # `pure` only touches its local shadow.
    assert not any(w.writer.endswith(".pure") for w in ctx.function_writes())
    assert ctx.mutable_globals() == {
        ("repro.sim.alpha", "COUNT"),
        ("repro.sim.alpha", "CACHE"),
    }


@pytest.mark.quick
def test_project_cross_module_writes_through_import_alias():
    ctx = ProjectContext.from_sources(
        {
            "repro.registry": "_TABLE = {}\n",
            "repro.api.exec": (
                "from repro import registry\n"
                "def seed(extra):\n"
                "    registry._TABLE.update(extra)\n"
            ),
        }
    )
    writes = ctx.function_writes()
    assert len(writes) == 1
    assert (writes[0].module, writes[0].name) == ("repro.registry", "_TABLE")
    assert writes[0].writer == "repro.api.exec.seed"


# ---------------------------------------------------------------------------
# CallGraph
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_callgraph_resolves_aliases_methods_and_classes():
    ctx = ProjectContext.from_sources(
        {
            "repro.sim.lib": (
                "def leaf():\n"
                "    return 1\n"
                "class Widget:\n"
                "    def __init__(self):\n"
                "        self.n = leaf()\n"
                "    def spin(self):\n"
                "        return self.twirl()\n"
                "    def twirl(self):\n"
                "        return leaf()\n"
            ),
            "repro.api.user": (
                "from repro.sim.lib import Widget, leaf as tiny\n"
                "def drive():\n"
                "    w = Widget()\n"  # class call -> __init__
                "    return tiny() + w.spin()\n"
            ),
        }
    )
    graph = CallGraph.build(ctx)
    reached = graph.reachable_from(["repro.api.user.drive"])
    assert "repro.sim.lib.Widget.__init__" in reached
    assert "repro.sim.lib.leaf" in reached  # through the `tiny` alias
    # self.spin -> self.twirl -> leaf via the unknown-receiver fallback
    # or self-method resolution; either way the closure contains twirl.
    assert "repro.sim.lib.Widget.twirl" in reached
    chain = graph.chain(reached, "repro.sim.lib.leaf")
    assert chain[0] == "repro.api.user.drive"
    assert chain[-1] == "repro.sim.lib.leaf"


@pytest.mark.quick
def test_entry_point_suffix_matching():
    ctx = ProjectContext.from_sources(
        {
            "repro.api.exec": (
                "def _init_worker():\n    pass\n"
                "class MixCell:\n"
                "    def execute(self):\n        pass\n"
                "class Session:\n"
                "    def run(self):\n        pass\n"
                "class Unrelated:\n"
                "    def launch(self):\n        pass\n"
            )
        }
    )
    assert entry_points(ctx) == [
        "repro.api.exec.MixCell.execute",
        "repro.api.exec.Session.run",
        "repro.api.exec._init_worker",
    ]


# ---------------------------------------------------------------------------
# concurrency rule
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_concurrency_fires_on_reachable_writes():
    project = fixture_project("concurrency_bad.py", "repro.api.badfixture")
    findings = [
        f
        for f in ConcurrencyRule().check(project)
        if "module-level state" in f.message
    ]
    assert len(findings) == 3
    names = {f.message.split("'")[1] for f in findings}
    assert names == {
        "repro.api.badfixture._SHARED_COUNTER",
        "repro.api.badfixture._SHARED_TABLE",
    }
    # The helper write reports its call chain from the cell entry.
    helper = [f for f in findings if "helper" in f.message]
    assert helper and any("execute" in f.message for f in helper)


@pytest.mark.quick
def test_concurrency_fires_on_unguarded_single_flight_mutations():
    """Session methods mutating the in-flight registry outside the
    session lock fire once per mutation site."""
    project = fixture_project("concurrency_bad.py", "repro.api.badfixture")
    findings = [
        f
        for f in ConcurrencyRule().check(project)
        if "thread-shared" in f.message
    ]
    assert len(findings) == 2
    assert all("self._inflight" in f.message for f in findings)
    assert all("with self._lock" in f.message for f in findings)


@pytest.mark.quick
def test_concurrency_clean_on_import_time_and_local_state():
    project = fixture_project("concurrency_ok.py", "repro.api.okfixture")
    assert list(ConcurrencyRule().check(project)) == []


@pytest.mark.quick
def test_concurrency_guard_covers_all_mutation_shapes():
    """Subscript assignment, del, rebinding, and mutating mapping
    methods all require the lock; __init__ and plain reads never do."""
    project = ProjectContext.from_sources(
        {
            "repro.api.session": (
                "class Session:\n"
                "    def __init__(self):\n"
                "        self._inflight = {}\n"  # exempt: construction
                "    def a(self, k):\n"
                "        self._inflight[k] = 1\n"  # fires
                "    def b(self, k):\n"
                "        del self._inflight[k]\n"  # fires
                "    def c(self):\n"
                "        self._inflight = {}\n"  # fires: rebind
                "    def d(self, k):\n"
                "        self._inflight.update({k: 1})\n"  # fires
                "    def e(self, k):\n"
                "        with self._lock:\n"
                "            self._inflight.pop(k, None)\n"  # guarded
                "    def f(self, k):\n"
                "        return self._inflight.get(k)\n"  # read only
            )
        }
    )
    findings = [
        f
        for f in ConcurrencyRule().check(project)
        if "thread-shared" in f.message
    ]
    assert len(findings) == 4
    offenders = {f.message.split("in '")[1].split("'")[0] for f in findings}
    assert offenders == {
        "repro.api.session.Session.a",
        "repro.api.session.Session.b",
        "repro.api.session.Session.c",
        "repro.api.session.Session.d",
    }


@pytest.mark.quick
def test_concurrency_ignores_unreachable_writers():
    project = ProjectContext.from_sources(
        {
            "repro.api.tool": (
                "_STATE = {}\n"
                "def offline_repair(k):\n"  # no entry point reaches this
                "    _STATE[k] = 1\n"
            )
        }
    )
    assert list(ConcurrencyRule().check(project)) == []


@pytest.mark.quick
def test_concurrency_store_write_discipline():
    project = ProjectContext.from_sources(
        {
            "repro.api.store": (
                "import os, pickle\n"
                "def _atomic_write_text(path, text):\n"
                "    tmp = path.with_suffix('.tmp')\n"
                "    tmp.write_text(text)\n"
                "    os.replace(tmp, path)\n"
                "def put(file, payload):\n"
                "    file.write_text(payload)\n"
                "def put_pickled(file, obj):\n"
                "    with file.open('wb') as f:\n"
                "        pickle.dump(obj, f)\n"
                "def get(file):\n"
                "    return file.read_text()\n"
            )
        }
    )
    findings = list(ConcurrencyRule().check(project))
    # The helper itself is exempt; put/put_pickled each fire (open+dump
    # both match in put_pickled); reads never fire.
    assert all("atomic-write helpers" in f.message for f in findings)
    offenders = {
        re.search(r"in '([^']+)':", f.message).group(1) for f in findings
    }
    assert offenders == {"repro.api.store.put", "repro.api.store.put_pickled"}


# ---------------------------------------------------------------------------
# hotpath rule
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_hotpath_fires_on_every_impurity_class():
    project = fixture_project("hotpath_bad.py", "repro.sim.badfixture")
    rule = HotpathRule(hot=("repro.sim.badfixture.replay",))
    messages = [f.message for f in rule.check(project)]
    assert any("try frame" in m for m in messages)
    assert any("dict literal" in m for m in messages)
    assert any("list literal" in m for m in messages)
    assert any("constructs repro.sim.badfixture.Entry" in m for m in messages)
    assert any("constructs a list()" in m for m in messages)
    assert any("closure" in m for m in messages)
    assert any("comprehension" in m for m in messages)
    assert any("mutable module global '_MODE'" in m for m in messages)


@pytest.mark.quick
def test_hotpath_clean_on_hoisted_loop():
    project = fixture_project("hotpath_ok.py", "repro.sim.okfixture")
    rule = HotpathRule(hot=("repro.sim.okfixture.replay",))
    assert list(rule.check(project)) == []


@pytest.mark.quick
def test_hotpath_only_checks_registered_functions():
    project = fixture_project("hotpath_bad.py", "repro.sim.badfixture")
    # Same impure source, but `replay` is not in the registry: silent.
    rule = HotpathRule(hot=("repro.sim.other.replay",))
    assert list(rule.check(project)) == []


@pytest.mark.quick
def test_hotpath_real_registry_entries_exist():
    """Every registry entry must name a real function — a rename that
    orphans an entry silently un-guards that kernel."""
    import repro
    from repro.analysis.rules.hotpath import HOT_FUNCTIONS

    ctx = ProjectContext.build(Path(repro.__file__).parent)
    missing = [q for q in HOT_FUNCTIONS if q not in ctx.functions]
    assert missing == []


# ---------------------------------------------------------------------------
# exceptions rule (AST; via the engine like the other per-file rules)
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_exceptions_fires_on_every_swallowing_shape():
    from repro.analysis import run

    report = run(
        [FIXTURES / "exceptions_bad.py"],
        module_override="repro.sim.badfixture",
        introspect=False,
    )
    findings = [f for f in report.findings if f.rule == "exceptions"]
    assert len(findings) == 5
    assert any("bare except" in f.message for f in findings)
    assert any("except Exception" in f.message for f in findings)
    assert any("SimulationCancelled" in f.message for f in findings)
    assert any("KeyboardInterrupt" in f.message for f in findings)


@pytest.mark.quick
def test_exceptions_clean_on_compliant_handlers():
    from repro.analysis import run

    report = run(
        [FIXTURES / "exceptions_ok.py"],
        module_override="repro.sim.okfixture",
        introspect=False,
    )
    assert [f for f in report.findings if f.rule == "exceptions"] == []


@pytest.mark.quick
def test_exceptions_scoped_to_api_and_sim():
    from repro.analysis import run

    report = run(
        [FIXTURES / "exceptions_bad.py"],
        module_override="repro.harness.plotting",
        introspect=False,
    )
    assert [f for f in report.findings if f.rule == "exceptions"] == []


# ---------------------------------------------------------------------------
# introspection fixtures (fingerprint / checkpoint)
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_fingerprint_fixture_pair():
    bad = load_fixture_module("fingerprint_bad")
    findings = list(
        FingerprintCompletenessRule(
            roots=[bad.BadCfg, bad.NotADataclassCfg]
        ).check()
    )
    flagged = {f.message.split(":")[0].split(".")[-1] for f in findings}
    assert {"score_fn", "tags", "blob"} <= flagged
    assert any("not a dataclass" in f.message for f in findings)
    assert not any("hook" in f.message for f in findings)

    good = load_fixture_module("fingerprint_ok")
    assert list(FingerprintCompletenessRule(roots=[good.GoodCfg]).check()) == []


@pytest.mark.quick
def test_checkpoint_fixture_pair():
    bad = load_fixture_module("checkpoint_bad")
    findings = list(CheckpointCoverageRule(graphs=bad.graphs()).check())
    assert any("does not cover slot 'b'" in f.message for f in findings)
    assert any("no __setstate__" in f.message for f in findings)
    assert any("does not pickle round-trip" in f.message for f in findings)

    good = load_fixture_module("checkpoint_ok")
    assert list(CheckpointCoverageRule(graphs=good.graphs()).check()) == []


# ---------------------------------------------------------------------------
# meta: the fixture corpus is complete
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_every_registered_rule_has_a_fixture_pair():
    """Adding a rule without ``<rule>_bad.py`` / ``<rule>_ok.py``
    fixtures fails here, not in a review comment."""
    for rule in all_rule_names():
        stem = rule.replace("-", "_")
        for suffix in ("bad", "ok"):
            path = FIXTURES / f"{stem}_{suffix}.py"
            assert path.exists(), f"rule {rule!r} is missing {path.name}"
