"""Property-based invariants for the cache model and replacement policies.

The PR 2 hot-path rework replaced the cache's linear way scans with
tag→way dicts, free-way heaps, and inlined LRU bookkeeping; these tests
pin the structural invariants that rework must preserve, by driving
random (seeded, stdlib ``random``) operation sequences against
:class:`repro.sim.cache.Cache` and checking after every step:

* occupancy never exceeds capacity, per-set residency never exceeds the
  way count;
* a hit never evicts (and never changes occupancy);
* every eviction's victim was resident immediately before the fill —
  for LRU, it is exactly the least-recently-touched line of the set
  (checked against an independent shadow model);
* the tag→way index, the way array, and the free-way heap stay mutually
  consistent.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.cache import Cache
from repro.sim.config import CacheGeometry
from repro.sim.replacement import LruPolicy, ShipMeta, ShipPolicy
from repro.types import LINE_SIZE

pytestmark = pytest.mark.quick

SEEDS = [0, 1, 2, 3]


def small_cache(replacement: str, sets: int = 8, ways: int = 4) -> Cache:
    geometry = CacheGeometry(
        size_bytes=sets * ways * LINE_SIZE,
        ways=ways,
        latency=1,
        mshrs=8,
        replacement=replacement,
    )
    return Cache("T", geometry)


def assert_structurally_consistent(cache: Cache) -> None:
    """Tag index ↔ way array ↔ free heap agreement, and capacity bounds."""
    for set_idx in range(cache.num_sets):
        tags = cache._tags[set_idx]
        ways = cache._sets[set_idx]
        free = set(cache._free[set_idx])
        assert len(tags) <= cache.ways
        for tag, way in tags.items():
            assert ways[way].valid and ways[way].tag == tag
            assert way not in free
        # Every way is either indexed or free (never both, never neither).
        assert len(tags) + len(free) == cache.ways
    assert cache.occupancy <= cache.capacity_lines


def resident_lines(cache: Cache, set_idx: int) -> set[int]:
    return set(cache._tags[set_idx])


@pytest.mark.parametrize("replacement", ["lru", "ship"])
@pytest.mark.parametrize("seed", SEEDS)
def test_random_op_sequence_invariants(replacement, seed):
    rng = random.Random(seed)
    cache = small_cache(replacement)
    # A working set ~4x capacity keeps sets full and evictions frequent.
    lines = [rng.randrange(cache.capacity_lines * 4) for _ in range(64)]
    for step in range(1500):
        line = rng.choice(lines)
        set_idx = line % cache.num_sets
        before = resident_lines(cache, set_idx)
        op = rng.random()
        if op < 0.45:
            evictions_before = cache.stats.evictions
            occupancy_before = cache.occupancy
            result = cache.lookup(
                line, pc=rng.randrange(1 << 12), is_load=True,
                is_prefetch=rng.random() < 0.2,
            )
            # Lookups never change residency, hit or miss.
            assert resident_lines(cache, set_idx) == before
            assert cache.occupancy == occupancy_before
            assert result.hit == (line in before)
            # A hit never evicts.
            if result.hit:
                assert cache.stats.evictions == evictions_before
        elif op < 0.9:
            was_resident = line in before
            evicted = cache.fill(
                line, pc=rng.randrange(1 << 12),
                is_prefetch=rng.random() < 0.3, cycle=step,
            )
            after = resident_lines(cache, set_idx)
            assert line in after
            if was_resident:
                # Duplicate fill: refresh only, no eviction.
                assert evicted is None
                assert after == before
            elif evicted is not None:
                # The victim was resident, is gone, and came from a full set.
                assert evicted.line in before
                assert evicted.line not in after
                assert len(before) == cache.ways
            else:
                assert after == before | {line}
        else:
            present = cache.invalidate(line)
            assert present == (line in before)
            assert resident_lines(cache, set_idx) == before - {line}
        assert_structurally_consistent(cache)


@pytest.mark.parametrize("seed", SEEDS)
def test_lru_victim_is_least_recently_touched(seed):
    """Differential shadow model: the evicted line must always be the
    set's least-recently-touched resident line (fills and hits both
    count as touches)."""
    rng = random.Random(seed)
    cache = small_cache("lru", sets=4, ways=4)
    shadow: dict[int, list[int]] = {i: [] for i in range(cache.num_sets)}  # MRU last
    for step in range(1200):
        line = rng.randrange(cache.capacity_lines * 3)
        set_idx = line % cache.num_sets
        order = shadow[set_idx]
        if rng.random() < 0.5:
            result = cache.lookup(line, pc=0x400, is_load=True, is_prefetch=False)
            if result.hit:
                order.remove(line)
                order.append(line)
        else:
            evicted = cache.fill(line, pc=0x400, is_prefetch=False, cycle=step)
            if line in order:
                assert evicted is None
                # Cache.fill refreshes a resident line's metadata only on
                # the LRU inline path via _tick; duplicate fills do not
                # call the policy.  The shadow mirrors residency, not
                # recency, for this case — and fill() indeed leaves
                # recency untouched for duplicates, so nothing to do.
            else:
                if evicted is not None:
                    assert order and evicted.line == order[0]
                    order.pop(0)
                order.append(line)
        assert set(order) == resident_lines(cache, set_idx)


def test_lru_policy_victim_matches_min_scan():
    policy = LruPolicy()
    meta = [5, 3, 9, 3]
    # Victim is the lowest tick; ties break to the lowest way index,
    # matching the inlined ``meta.index(min(meta))`` in Cache.fill.
    assert policy.victim(meta) == 1


@pytest.mark.parametrize("seed", SEEDS)
def test_ship_victim_always_resident_and_aging_saturates(seed):
    """SHiP's victim must be a resident way of the full set, and the
    one-pass aging must leave the victim at RRPV max with every way aged
    by the same distance."""
    rng = random.Random(seed)
    policy = ShipPolicy()
    ways = 4
    meta = [policy.new_meta() for _ in range(ways)]
    for way in range(ways):
        policy.on_fill(meta, way, pc=rng.randrange(1 << 12), is_prefetch=False, tick=way)
    for step in range(400):
        if rng.random() < 0.5:
            policy.on_hit(meta, rng.randrange(ways), pc=rng.randrange(1 << 12), tick=step)
        before = [m.rrpv for m in meta]
        victim = policy.victim(meta)
        assert 0 <= victim < ways
        age = ShipPolicy.RRPV_MAX - max(before)
        assert meta[victim].rrpv == ShipPolicy.RRPV_MAX
        assert [m.rrpv for m in meta] == [r + age for r in before]
        # The victim is the lowest-indexed way holding the max RRPV.
        assert victim == before.index(max(before))
        policy.on_evict(meta, victim, meta[victim].reused)
        policy.on_fill(
            meta, victim, pc=rng.randrange(1 << 12),
            is_prefetch=rng.random() < 0.3, tick=step,
        )


def test_ship_shct_counters_stay_bounded():
    rng = random.Random(9)
    policy = ShipPolicy()
    meta = [policy.new_meta() for _ in range(4)]
    for way in range(4):
        policy.on_fill(meta, way, pc=way, is_prefetch=False, tick=0)
    for step in range(2000):
        op = rng.random()
        way = rng.randrange(4)
        if op < 0.4:
            policy.on_hit(meta, way, pc=rng.randrange(64), tick=step)
        elif op < 0.7:
            policy.on_evict(meta, way, meta[way].reused)
            policy.on_fill(meta, way, pc=rng.randrange(64), is_prefetch=False, tick=step)
        else:
            policy.victim(meta)
        assert all(0 <= c <= ShipPolicy.SHCT_MAX for c in policy._shct)
        assert all(isinstance(m, ShipMeta) and m.rrpv >= 0 for m in meta)
