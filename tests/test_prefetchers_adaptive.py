"""Tests for CP-HW (contextual bandit) and the POWER7 adaptive prefetcher."""

from repro.prefetchers import CpHwPrefetcher, Power7Prefetcher
from repro.prefetchers.base import DemandContext
from repro.prefetchers.power7 import _DEPTH_LEVELS
from repro.types import make_line


def ctx(pc, page, offset):
    return DemandContext(pc=pc, line=make_line(page, offset), cycle=0)


class TestCpHw:
    def test_learns_from_positive_feedback(self):
        pf = CpHwPrefetcher(epsilon=0.0, seed=1)
        # Reward offset +1 whenever chosen; punish everything else.
        chosen_plus_one = 0
        for i in range(3000):
            page, off = divmod(i, 32)
            out = pf.train(ctx(0xB00, page, off))
            for line in out:
                if line == make_line(page, off + 1):
                    pf.on_demand_hit_prefetched(line, 0)
                    chosen_plus_one += 1
                else:
                    pf.on_prefetch_useless(line, 0)
        # After training, +1 should dominate its selections.
        out = pf.train(ctx(0xB00, 999, 0))
        assert out == [make_line(999, 1)]
        assert chosen_plus_one > 0

    def test_no_prefetch_action_possible(self):
        pf = CpHwPrefetcher(epsilon=0.0, seed=1)
        # Punish every prefetch: the bandit should settle on action 0.
        for i in range(4000):
            page, off = divmod(i, 32)
            for line in pf.train(ctx(0xB00, page, off)):
                pf.on_prefetch_useless(line, 0)
        assert pf.train(ctx(0xB00, 999, 0)) == []

    def test_myopic_no_qvalue_bootstrap(self):
        """CP-HW has no discount factor: its estimates are immediate only."""
        pf = CpHwPrefetcher()
        assert not hasattr(pf, "gamma")

    def test_reset(self):
        pf = CpHwPrefetcher()
        pf.train(ctx(0xB00, 1, 0))
        pf.reset()
        assert len(pf._estimates) == 0


class TestPower7:
    def test_depth_levels_monotone(self):
        assert list(_DEPTH_LEVELS) == sorted(_DEPTH_LEVELS)
        assert _DEPTH_LEVELS[0] == 0

    def test_depth_increases_on_accuracy(self):
        pf = Power7Prefetcher(epoch_length=50)
        start = pf.depth
        for _ in range(3):
            for _ in range(20):
                pf.on_demand_hit_prefetched(0, 0)
            for _ in range(50):
                pf.train(ctx(0xC00, 10, 0))
        assert pf.depth >= start

    def test_depth_decreases_on_inaccuracy(self):
        pf = Power7Prefetcher(epoch_length=50)
        start = pf.depth
        for _ in range(3):
            for _ in range(20):
                pf.on_prefetch_useless(0, 0)
            for _ in range(50):
                pf.train(ctx(0xC00, 10, 0))
        assert pf.depth <= start

    def test_can_switch_streaming_off_and_back(self):
        pf = Power7Prefetcher(epoch_length=20)
        # Hammer with useless feedback until depth 0.
        for _ in range(20):
            for _ in range(16):
                pf.on_prefetch_useless(0, 0)
            for _ in range(20):
                pf.train(ctx(0xC00, 10, 0))
        assert pf.depth == 0
        # Then reward heavily: depth should recover.
        for _ in range(20):
            for _ in range(16):
                pf.on_demand_hit_prefetched(0, 0)
            for _ in range(20):
                pf.train(ctx(0xC00, 10, 0))
        assert pf.depth > 0

    def test_reset(self):
        pf = Power7Prefetcher()
        pf.train(ctx(0xC00, 1, 0))
        pf.reset()
        assert pf.depth == _DEPTH_LEVELS[2]
