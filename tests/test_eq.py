"""Tests for the evaluation queue."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.eq import EqEntry, EvaluationQueue


def entry(line=None, action=0):
    return EqEntry(state=(1, 2), action=action, prefetch_line=line)


def test_capacity_positive():
    with pytest.raises(ValueError):
        EvaluationQueue(0)


def test_fifo_eviction_order():
    eq = EvaluationQueue(2)
    first = entry(line=10)
    first.reward = 1.0
    second = entry(line=20)
    second.reward = 1.0
    assert eq.insert(first) is None
    assert eq.insert(second) is None
    third = entry(line=30)
    evicted = eq.insert(third)
    assert evicted is first
    assert len(eq) == 2
    assert eq.head is second


def test_search_finds_most_recent():
    eq = EvaluationQueue(4)
    old = entry(line=10)
    new = entry(line=10)
    eq.insert(old)
    eq.insert(new)
    assert eq.search(10) is new


def test_search_miss():
    eq = EvaluationQueue(4)
    eq.insert(entry(line=10))
    assert eq.search(99) is None


def test_no_prefetch_entries_not_searchable():
    eq = EvaluationQueue(4)
    eq.insert(entry(line=None))
    assert eq.search(0) is None


def test_mark_filled():
    eq = EvaluationQueue(4)
    e = entry(line=10)
    eq.insert(e)
    assert eq.mark_filled(10)
    assert e.filled
    assert not eq.mark_filled(99)


def test_eviction_cleans_lookup_index():
    eq = EvaluationQueue(1)
    first = entry(line=10)
    first.reward = 0.0
    eq.insert(first)
    eq.insert(entry(line=20))
    assert eq.search(10) is None
    assert eq.search(20) is not None


def test_eviction_keeps_newer_duplicate_in_index():
    eq = EvaluationQueue(2)
    old = entry(line=10)
    old.reward = 0.0
    eq.insert(old)
    new = entry(line=10)
    eq.insert(new)
    eq.insert(entry(line=30))  # evicts old
    assert eq.search(10) is new


def test_clear():
    eq = EvaluationQueue(4)
    eq.insert(entry(line=10))
    eq.clear()
    assert len(eq) == 0
    assert eq.head is None
    assert eq.search(10) is None


def test_has_reward():
    e = entry()
    assert not e.has_reward
    e.reward = -8.0
    assert e.has_reward
    e.reward = 0.0
    assert e.has_reward  # zero is a real reward


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=16),
    lines=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=100),
)
def test_size_never_exceeds_capacity(capacity, lines):
    eq = EvaluationQueue(capacity)
    for line in lines:
        e = entry(line=line)
        e.reward = 0.0
        eq.insert(e)
        assert len(eq) <= capacity


@settings(max_examples=50, deadline=None)
@given(lines=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=64))
def test_resident_entries_always_searchable(lines):
    eq = EvaluationQueue(64)
    inserted = {}
    for line in lines:
        e = entry(line=line)
        eq.insert(e)
        inserted[line] = e
    for line, e in inserted.items():
        assert eq.search(line) is e
