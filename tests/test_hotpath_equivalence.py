"""Hot-path equivalence: the PR 2 fast paths are pinned to the originals.

The simulator's per-record fast paths (NumPy Q-store, fused
observe+encode, O(1) DRAM counters, dict-indexed caches) are pure
optimizations: simulated behaviour must be *identical*.  This suite pins
that, at three levels:

1. Q-store: the NumPy and pure-Python implementations produce identical
   action selections and Q-updates on scripted and randomized episodes.
2. Feature path: the fused ``observe_basic`` equals observe+encode for
   the paper's basic state-vector, including interleaved calls.
3. End to end: full ``SimulationResult`` stats match across store
   implementations, and the quick-smoke matrix matches the
   pre-optimization reference captured in
   ``tests/data/quick_smoke_expected.json`` (within 1e-6 relative).
4. Engine paths: the windowed :mod:`repro.sim.engine` replay — fresh,
   telemetry-windowed, and checkpoint-resumed — is pinned against the
   same pre-optimization reference, so resumable replay introduces no
   behaviour of its own.
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path

import pytest

from repro import registry
from repro.core.config import PythiaConfig
from repro.sim.config import SystemConfig
from repro.core.features import (
    BASIC_FEATURES,
    FeatureExtractor,
    compile_encoder,
    encode_feature,
)
from repro.core.qvstore import NumpyQVStore, QVStore, make_qvstore
from repro.prefetchers.base import DemandContext
from repro.sim.system import simulate
from repro.types import make_line

EXPECTED_FILE = Path(__file__).parent / "data" / "quick_smoke_expected.json"


def both_stores(**config_kwargs):
    config = dataclasses.replace(PythiaConfig(), **config_kwargs)
    return QVStore(config), NumpyQVStore(config)


def assert_q_equal(py_store, np_store, state):
    py_q = py_store.q_values(state)
    np_q = np_store.q_values(state)
    assert list(py_q) == list(np_q), f"Q-rows diverge for state {state}"
    assert py_store.best_action(state) == np_store.best_action(state)


class TestStoreEquivalence:
    def test_make_qvstore_selects_implementation(self):
        assert isinstance(make_qvstore(PythiaConfig(qvstore_impl="python")), QVStore)
        assert isinstance(make_qvstore(PythiaConfig(qvstore_impl="numpy")), NumpyQVStore)
        assert isinstance(make_qvstore(PythiaConfig()), (QVStore, NumpyQVStore))
        with pytest.raises(ValueError):
            make_qvstore(PythiaConfig(qvstore_impl="fortran"))

    def test_initial_rows_identical(self):
        py_store, np_store = both_stores()
        for state in [(0, 0), (1, 2), (12345, 67890)]:
            assert_q_equal(py_store, np_store, state)

    def test_scripted_episode_identical(self):
        """A fixed train/select/update script leaves both stores equal."""
        py_store, np_store = both_stores(alpha=0.1)
        states = [(7, 9), (7, 11), (100, 200), (7, 9)]
        script = [
            (states[0], 3, 12.0, states[1], 5),
            (states[1], 5, -4.0, states[2], 0),
            (states[2], 0, -12.0, states[0], 3),
            (states[0], 3, 20.0, states[3], 3),  # revisit after update
        ]
        for s, a, r, ns, na in script:
            td_py = py_store.sarsa_update(s, a, r, ns, na)
            td_np = np_store.sarsa_update(s, a, r, ns, na)
            assert td_py == td_np
            for state in states:
                assert_q_equal(py_store, np_store, state)

    def test_vault_updates_identical(self):
        """Direct vault pokes (the introspection API) stay in sync."""
        py_store, np_store = both_stores()
        for store in (py_store, np_store):
            store.vaults[0].update(7, action=5, step=2.0)
            store.vaults[1].update(9, action=5, step=-2.0)
        assert_q_equal(py_store, np_store, (7, 9))
        assert list(py_store.vaults[0].q_row(7)) == list(np_store.vaults[0].q_row(7))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_episode_identical(self, seed):
        """Random interleavings of updates/selects over a small state set
        (heavy revisiting exercises the version-counter invalidation)."""
        rng = random.Random(seed)
        py_store, np_store = both_stores(alpha=0.05)
        state_pool = [(rng.randrange(1 << 16), rng.randrange(1 << 16)) for _ in range(12)]
        for _ in range(400):
            op = rng.random()
            state = rng.choice(state_pool)
            if op < 0.5:
                next_state = rng.choice(state_pool)
                action = rng.randrange(16)
                next_action = rng.randrange(16)
                reward = rng.uniform(-22.0, 20.0)
                td_py = py_store.sarsa_update(state, action, reward, next_state, next_action)
                td_np = np_store.sarsa_update(state, action, reward, next_state, next_action)
                assert td_py == td_np
            elif op < 0.75:
                assert py_store.best_action(state) == np_store.best_action(state)
            else:
                action = rng.randrange(16)
                assert py_store.q_value(state, action) == np_store.q_value(state, action)
        for state in state_pool:
            assert_q_equal(py_store, np_store, state)

    def test_storage_entries_match(self):
        py_store, np_store = both_stores()
        assert py_store.storage_entries == np_store.storage_entries


class TestFeaturePathEquivalence:
    @staticmethod
    def _contexts(count=300, seed=3):
        rng = random.Random(seed)
        return [
            DemandContext(
                pc=rng.choice([0x400, 0x404, 0x890]),
                line=make_line(rng.randrange(300), rng.randrange(64)),
                cycle=i,
            )
            for i in range(count)
        ]

    def test_observe_basic_matches_observe_plus_encode(self):
        fused = FeatureExtractor()
        generic = FeatureExtractor()
        for ctx in self._contexts():
            state_fused = fused.observe_basic(ctx)
            obs = generic.observe(ctx)
            state_generic = tuple(
                encode_feature(spec, obs) for spec in BASIC_FEATURES
            )
            assert state_fused == state_generic

    def test_observe_basic_interleaves_safely(self):
        """Mixing the fused and generic paths advances state identically."""
        mixed = FeatureExtractor()
        generic = FeatureExtractor()
        for i, ctx in enumerate(self._contexts()):
            obs = generic.observe(ctx)
            expected = tuple(encode_feature(spec, obs) for spec in BASIC_FEATURES)
            if i % 2 == 0:
                assert mixed.observe_basic(ctx) == expected
            else:
                obs_mixed = mixed.observe(ctx)
                assert obs_mixed == obs

    def test_compiled_encoders_match_encode_feature(self):
        from repro.core.features import all_feature_specs

        extractor = FeatureExtractor()
        observations = [extractor.observe(ctx) for ctx in self._contexts(100)]
        for spec in all_feature_specs():
            compiled = compile_encoder(spec)
            for obs in observations:
                assert compiled(obs) == encode_feature(spec, obs)


#: One committed sample of the external-trace ingestion path
#: (tests/data/traces), exercised through the ``file/`` namespace.
SAMPLE_FILE_TRACE = (
    f"file/{Path(__file__).parent / 'data' / 'traces' / 'mixed.champsim.gz'}"
)


class TestSimulationEquivalence:
    @pytest.mark.parametrize(
        "trace_name",
        [
            "spec06/lbm-1",
            "ligra/cc-1",
            # The ISSUE 4 scenario-engine additions: both new synthetic
            # families, and an externally-ingested file trace — every new
            # scenario source must keep the fast Q-store bit-identical.
            "synth/llist-small-1",
            "synth/llist-deep-1",
            "synth/phase-regular-1",
            "synth/phase-adversarial-1",
            SAMPLE_FILE_TRACE,
        ],
    )
    def test_store_implementations_bit_identical(self, trace_name):
        """Pythia with the NumPy store == Pythia with the Python store."""
        trace = registry.cached_trace(trace_name, 2000)
        results = {}
        for impl in ("python", "numpy"):
            pf = registry.create("pythia", qvstore_impl=impl)
            results[impl] = dataclasses.asdict(
                simulate(trace, prefetcher=pf, warmup_fraction=0.2)
            )
        assert results["python"] == results["numpy"]

    @staticmethod
    def _assert_matches_reference(key: str, exp: dict, result: dict) -> None:
        for field_name, value in exp.items():
            got = result[field_name]
            if isinstance(value, list):
                assert got == pytest.approx(value, rel=1e-6), (
                    f"{key}.{field_name}"
                )
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                assert got == pytest.approx(value, rel=1e-6), (
                    f"{key}.{field_name}: {value!r} -> {got!r}"
                )
            else:
                assert got == value, f"{key}.{field_name}"

    @pytest.mark.parametrize("backend", ["batched", "scalar"])
    def test_quick_smoke_matrix_matches_preoptimization_reference(self, backend):
        """Stats match the values captured before the hot-loop rework.

        The reference JSON was recorded from the seed implementation; a
        1e-6 relative drift budget is allowed, but in practice the fast
        paths are bit-identical.  Both replay backends are pinned to the
        same reference, so batched == scalar == seed.
        """
        config = dataclasses.replace(SystemConfig(), replay_backend=backend)
        expected = json.loads(EXPECTED_FILE.read_text())
        for key, exp in expected.items():
            trace_name, pf_name = key.split("|")
            trace = registry.cached_trace(trace_name, 2000)
            result = dataclasses.asdict(
                simulate(
                    trace,
                    config=config,
                    prefetcher=registry.create(pf_name),
                    warmup_fraction=0.2,
                )
            )
            self._assert_matches_reference(key, exp, result)

    def test_engine_paths_match_preoptimization_reference(self):
        """Windowed and checkpoint-resumed replay are pinned to the seed.

        For every reference cell, three engine configurations — fresh
        full run, telemetry-windowed run, and a run resumed from a
        mid-trace checkpoint — must all reproduce the pre-optimization
        values; fresh and resumed must additionally be *equal* to each
        other field for field.
        """
        from repro.sim.engine import SimulationEngine

        class Sink:
            def __init__(self):
                self.states = {}

            def entries(self):
                return sorted(self.states)

            def has(self, records, drained_at):
                return (records, drained_at) in self.states

            def load(self, records, drained_at):
                return self.states.get((records, drained_at))

            def save(self, state):
                self.states[(state.records, state.drained_at)] = state

        expected = json.loads(EXPECTED_FILE.read_text())
        for key, exp in expected.items():
            trace_name, pf_name = key.split("|")
            trace = registry.cached_trace(trace_name, 2000)

            fresh = simulate(
                trace, prefetcher=registry.create(pf_name), warmup_fraction=0.2
            )

            windowed = dataclasses.asdict(
                simulate(
                    trace,
                    prefetcher=registry.create(pf_name),
                    warmup_fraction=0.2,
                    telemetry_window=500,
                )
            )
            windowed.pop("timeline")
            self._assert_matches_reference(key, exp, windowed)

            # Interrupt a checkpointing run mid-trace, then resume it in
            # a brand-new engine from the stored snapshot.
            sink = Sink()
            first = SimulationEngine(
                trace,
                prefetcher=registry.create(pf_name),
                warmup_fraction=0.2,
                checkpoints=sink,
                checkpoint_every=700,
            )
            first.cancel = lambda: first.position >= 1400
            with pytest.raises(Exception):
                first.run()
            second = SimulationEngine(
                trace,
                prefetcher=registry.create(pf_name),
                warmup_fraction=0.2,
                checkpoints=sink,
            )
            resumed = second.run()
            assert second.resumed_from == 1400, key
            assert dataclasses.asdict(resumed) == dataclasses.asdict(fresh), key
            self._assert_matches_reference(key, exp, dataclasses.asdict(resumed))


class TestBatchedBackendEquivalence:
    """The ISSUE 7 batched epoch kernel is pinned to the scalar engine.

    ``replay_backend`` is a non-semantic toggle: every trace family the
    scenario engine can produce must simulate bit-identically under both
    backends, and a checkpoint written by one run must resume into the
    exact state a fresh replay reaches.
    """

    @staticmethod
    def _config(backend):
        return dataclasses.replace(SystemConfig(), replay_backend=backend)

    @pytest.mark.parametrize("pf_name", ["pythia", "spp"])
    @pytest.mark.parametrize(
        "trace_name",
        [
            "spec06/lbm-1",
            "spec06/mcf-1",
            "synth/llist-small-1",
            "synth/phase-adversarial-1",
            SAMPLE_FILE_TRACE,
        ],
    )
    def test_backends_bit_identical(self, trace_name, pf_name):
        trace = registry.cached_trace(trace_name, 2000)
        results = {}
        for backend in ("batched", "scalar"):
            results[backend] = dataclasses.asdict(
                simulate(
                    trace,
                    config=self._config(backend),
                    prefetcher=registry.create(pf_name),
                    warmup_fraction=0.2,
                )
            )
        assert results["batched"] == results["scalar"]

    def test_backend_rejects_unknown_value(self):
        trace = registry.cached_trace("spec06/lbm-1", 2000)
        with pytest.raises(ValueError, match="replay_backend"):
            simulate(trace, config=self._config("simd"))

    def test_checkpoint_resume_100k_to_200k(self):
        """The perfbench-scale extension: run 100k records under the
        batched backend, checkpoint, then resume the checkpoint into a
        200k replay.  The resumed result must equal both a fresh batched
        and a fresh scalar 200k run bit for bit (the checkpoint payload
        is backend-agnostic)."""
        from repro.sim.engine import SimulationEngine

        class Sink:
            def __init__(self):
                self.states = {}

            def entries(self):
                return sorted(self.states)

            def has(self, records, drained_at):
                return (records, drained_at) in self.states

            def load(self, records, drained_at):
                return self.states.get((records, drained_at))

            def save(self, state):
                self.states[(state.records, state.drained_at)] = state

        warmup = 20_000
        trace100 = registry.cached_trace("spec06/lbm-1", 100_000)
        trace200 = registry.cached_trace("spec06/lbm-1", 200_000)

        sink = Sink()
        first = SimulationEngine(
            trace100,
            config=self._config("batched"),
            prefetcher=registry.create("pythia"),
            warmup_records=warmup,
            checkpoints=sink,
        )
        first.run()
        assert sink.has(100_000, (warmup,))

        second = SimulationEngine(
            trace200,
            config=self._config("batched"),
            prefetcher=registry.create("pythia"),
            warmup_records=warmup,
            checkpoints=sink,
        )
        resumed = dataclasses.asdict(second.run())
        assert second.resumed_from == 100_000

        fresh_batched = dataclasses.asdict(
            simulate(
                trace200,
                config=self._config("batched"),
                prefetcher=registry.create("pythia"),
                warmup_records=warmup,
            )
        )
        fresh_scalar = dataclasses.asdict(
            simulate(
                trace200,
                config=self._config("scalar"),
                prefetcher=registry.create("pythia"),
                warmup_records=warmup,
            )
        )
        assert resumed == fresh_batched
        assert fresh_batched == fresh_scalar


class TestNativeBackendEquivalence:
    """The ISSUE 10 compiled C kernel is pinned to batched and scalar.

    ``replay_backend="native"`` must be invisible in results: every
    trace family simulates bit-identically under all three backends
    (fresh and telemetry-windowed), and checkpoints cross backends in
    both directions — a native run resumes a batched snapshot and vice
    versa, landing on the exact same state.  The whole class skips when
    no C compiler is available (the engine then falls back to batched;
    ``tests/test_native_build.py`` pins that path).
    """

    @staticmethod
    def _config(backend):
        return dataclasses.replace(SystemConfig(), replay_backend=backend)

    @pytest.fixture(autouse=True)
    def _native_kernel(self, monkeypatch):
        from repro.sim import _native
        from repro.sim._native import bridge

        if not _native.available():
            pytest.skip("no C compiler: native replay backend unavailable")
        # Small traces must exercise the C kernel, not the short-span
        # delegation back to the batched backend.
        monkeypatch.setattr(bridge, "MIN_NATIVE_SPAN", 0)

    @pytest.mark.parametrize("pf_name", ["pythia", "spp"])
    @pytest.mark.parametrize(
        "trace_name",
        [
            "spec06/lbm-1",
            "spec06/mcf-1",
            "synth/llist-small-1",
            "synth/phase-adversarial-1",
            SAMPLE_FILE_TRACE,
        ],
    )
    def test_backends_bit_identical(self, trace_name, pf_name):
        # spp is deliberately in the matrix: the native kernel does not
        # support it, so those cells pin the per-cell fallback to
        # batched rather than the C path itself.
        trace = registry.cached_trace(trace_name, 2000)
        results = {}
        for backend in ("native", "batched", "scalar"):
            results[backend] = dataclasses.asdict(
                simulate(
                    trace,
                    config=self._config(backend),
                    prefetcher=registry.create(pf_name),
                    warmup_fraction=0.2,
                )
            )
        assert results["native"] == results["batched"]
        assert results["batched"] == results["scalar"]

    def test_windowed_runs_bit_identical(self):
        trace = registry.cached_trace("spec06/lbm-1", 2000)
        results = {}
        for backend in ("native", "batched", "scalar"):
            results[backend] = dataclasses.asdict(
                simulate(
                    trace,
                    config=self._config(backend),
                    prefetcher=registry.create("pythia"),
                    warmup_fraction=0.2,
                    telemetry_window=500,
                )
            )
        # Full comparison including the telemetry timeline.
        assert results["native"] == results["batched"]
        assert results["batched"] == results["scalar"]

    def test_checkpoint_resume_crosses_backends(self):
        """100k→200k resume crossing backends, both directions.

        A checkpoint written by a native 100k run must resume under the
        batched backend (and vice versa) into the exact state of a
        fresh 200k run — the snapshot payload is backend-agnostic.
        ``TestBatchedBackendEquivalence`` pins fresh batched == fresh
        scalar at this scale, so equality here chains to all three.
        """
        from repro.sim.engine import SimulationEngine

        class Sink:
            def __init__(self):
                self.states = {}

            def entries(self):
                return sorted(self.states)

            def has(self, records, drained_at):
                return (records, drained_at) in self.states

            def load(self, records, drained_at):
                return self.states.get((records, drained_at))

            def save(self, state):
                self.states[(state.records, state.drained_at)] = state

        warmup = 20_000
        trace100 = registry.cached_trace("spec06/lbm-1", 100_000)
        trace200 = registry.cached_trace("spec06/lbm-1", 200_000)

        fresh = {}
        for backend in ("native", "batched"):
            fresh[backend] = dataclasses.asdict(
                simulate(
                    trace200,
                    config=self._config(backend),
                    prefetcher=registry.create("pythia"),
                    warmup_records=warmup,
                )
            )
        assert fresh["native"] == fresh["batched"]

        for writer, resumer in (("native", "batched"), ("batched", "native")):
            sink = Sink()
            first = SimulationEngine(
                trace100,
                config=self._config(writer),
                prefetcher=registry.create("pythia"),
                warmup_records=warmup,
                checkpoints=sink,
            )
            first.run()
            assert sink.has(100_000, (warmup,))

            second = SimulationEngine(
                trace200,
                config=self._config(resumer),
                prefetcher=registry.create("pythia"),
                warmup_records=warmup,
                checkpoints=sink,
            )
            resumed = dataclasses.asdict(second.run())
            assert second.resumed_from == 100_000, (writer, resumer)
            assert resumed == fresh["native"], (writer, resumer)
