"""Unit tier for the batched-epoch replay kernel (`repro.sim.batch`).

The long differential tiers live in ``tests/test_hotpath_equivalence.py``;
this suite is the fast, coverage-traced half: it stresses the kernel's
rare branches — evictions at every level, SHiP (non-LRU) hit/fill/evict
hooks, MSHR merges and structural stalls, prefetch drops, DRAM
bandwidth-feedback reads — on deliberately tiny geometries, always
asserting bit-identity against the scalar loop on the same cell.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace

import pytest

from repro import registry
from repro.sim import batch
from repro.sim.config import CacheGeometry, SystemConfig
from repro.sim.system import simulate

#: A pressure-cooker geometry: caches a few lines big (every fill
#: evicts), two MSHRs (merges + structural stalls), SHiP at every level
#: (the non-LRU hooks), and a short utilization window (the bandwidth
#: feedback and stale-head paths).
STRESS = replace(
    SystemConfig(),
    l1=CacheGeometry(4 * 64, 2, 4, 2, "ship"),
    l2=CacheGeometry(8 * 64, 2, 14, 2, "ship"),
    llc=CacheGeometry(16 * 64, 2, 34, 2, "ship"),
    dram=replace(SystemConfig().dram, utilization_window=64),
    max_prefetch_degree=2,
)


def _run(config: SystemConfig, prefetcher: str, trace_name: str, length: int):
    trace = registry.cached_trace(trace_name, length)
    return simulate(
        trace,
        config=config,
        prefetcher=registry.create(prefetcher),
        warmup_fraction=0.2,
    )


def test_available() -> None:
    # The container ships NumPy; the batched default relies on it.
    assert batch.available()


@pytest.mark.parametrize("prefetcher", ["pythia", "spp", "none"])
def test_stress_geometry_bit_identical(prefetcher: str) -> None:
    """Tiny SHiP caches + 2 MSHRs: every rare kernel branch fires, and
    the result still matches the scalar loop field-for-field."""
    batched = replace(STRESS, replay_backend="batched")
    scalar = replace(STRESS, replay_backend="scalar")
    got = _run(batched, prefetcher, "spec06/mcf-1", 3_000)
    want = _run(scalar, prefetcher, "spec06/mcf-1", 3_000)
    assert dataclasses.asdict(got) == dataclasses.asdict(want)
    # The geometry is small enough that the stress paths actually ran:
    # nearly everything misses the few-line LLC, and prefetchers issue
    # into (and get dropped by) the two-entry MSHRs.
    assert got.llc_load_misses > 0
    if prefetcher == "pythia":  # spp stays quiet on mcf's pointer chase
        assert got.prefetches_issued > 0


def test_default_geometry_bit_identical_quick() -> None:
    """The default (paper) geometry on a short slice — the common-case
    branches, LRU L1/L2 + SHiP LLC."""
    batched = replace(SystemConfig(), replay_backend="batched")
    scalar = replace(SystemConfig(), replay_backend="scalar")
    got = _run(batched, "pythia", "synth/phase-regular-1", 2_500)
    want = _run(scalar, "pythia", "synth/phase-regular-1", 2_500)
    assert dataclasses.asdict(got) == dataclasses.asdict(want)


def test_epoch_constant_matches_engine_chunk() -> None:
    from repro.sim import engine

    assert batch.EPOCH == engine._CONTROL_CHUNK
