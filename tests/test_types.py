"""Unit and property tests for address arithmetic in repro.types."""

import pytest
from hypothesis import given, strategies as st

from repro.types import (
    LINE_SIZE,
    LINES_PER_PAGE,
    PAGE_SIZE,
    AccessType,
    MemoryRequest,
    line_of,
    make_line,
    offset_of_line,
    page_of_line,
    same_page,
)


def test_constants_consistent():
    assert PAGE_SIZE // LINE_SIZE == LINES_PER_PAGE
    assert LINES_PER_PAGE == 64


def test_line_of_byte_address():
    assert line_of(0) == 0
    assert line_of(63) == 0
    assert line_of(64) == 1
    assert line_of(PAGE_SIZE) == LINES_PER_PAGE


def test_page_and_offset_of_line():
    line = make_line(5, 17)
    assert page_of_line(line) == 5
    assert offset_of_line(line) == 17


def test_make_line_rejects_bad_offset():
    with pytest.raises(ValueError):
        make_line(1, LINES_PER_PAGE)
    with pytest.raises(ValueError):
        make_line(1, -1)


def test_same_page():
    assert same_page(make_line(3, 0), make_line(3, 63))
    assert not same_page(make_line(3, 63), make_line(4, 0))


def test_access_type_is_demand():
    assert AccessType.LOAD.is_demand
    assert AccessType.STORE.is_demand
    assert not AccessType.PREFETCH.is_demand


def test_memory_request_properties():
    req = MemoryRequest(pc=0x400, line=make_line(7, 9), access=AccessType.LOAD)
    assert req.page == 7
    assert req.offset == 9
    assert req.core == 0


@given(page=st.integers(min_value=0, max_value=2**40), offset=st.integers(0, 63))
def test_make_line_roundtrip(page, offset):
    line = make_line(page, offset)
    assert page_of_line(line) == page
    assert offset_of_line(line) == offset


@given(line=st.integers(min_value=0, max_value=2**46))
def test_page_offset_decompose(line):
    assert make_line(page_of_line(line), offset_of_line(line)) == line


@given(addr=st.integers(min_value=0, max_value=2**52))
def test_line_of_is_monotone(addr):
    assert line_of(addr) <= line_of(addr + LINE_SIZE)
    assert line_of(addr + LINE_SIZE) == line_of(addr) + 1
