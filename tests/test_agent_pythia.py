"""Tests for the SARSA agent and the Pythia prefetcher (Algorithm 1)."""

import dataclasses

import pytest

from repro.core import Pythia, PythiaConfig
from repro.core.agent import SarsaAgent
from repro.core.eq import EqEntry
from repro.core.rewards import STRICT_REWARDS
from repro.prefetchers.base import DemandContext
from repro.types import LINES_PER_PAGE, make_line


def ctx(pc, page, offset, bw_high=False, cycle=0):
    return DemandContext(
        pc=pc, line=make_line(page, offset), cycle=cycle, bandwidth_high=bw_high
    )


def small_config(**kwargs):
    return dataclasses.replace(PythiaConfig(), **kwargs)


class TestSarsaAgent:
    def test_greedy_selects_best(self):
        cfg = small_config(epsilon=0.0)
        agent = SarsaAgent(cfg)
        state = (1, 2)
        agent.qvstore.vaults[0].update(1, action=7, step=10.0)
        assert agent.select_action(state) == 7

    def test_epsilon_one_explores(self):
        cfg = small_config(epsilon=1.0)
        agent = SarsaAgent(cfg)
        actions = {agent.select_action((1, 2)) for _ in range(200)}
        assert len(actions) > 4
        assert agent.explorations == 200

    def test_eviction_assigns_inaccurate_reward(self):
        cfg = small_config(eq_size=1, epsilon=0.0)
        agent = SarsaAgent(cfg)
        unrewarded = EqEntry(state=(1, 2), action=0, prefetch_line=50)
        agent.record(unrewarded, bandwidth_high=False)
        agent.record(EqEntry(state=(1, 2), action=0), bandwidth_high=False)
        assert unrewarded.reward == cfg.rewards.inaccurate_low_bw

    def test_eviction_respects_bandwidth(self):
        cfg = small_config(eq_size=1)
        agent = SarsaAgent(cfg)
        unrewarded = EqEntry(state=(1, 2), action=0, prefetch_line=50)
        agent.record(unrewarded, bandwidth_high=True)
        agent.record(EqEntry(state=(1, 2), action=0), bandwidth_high=True)
        assert unrewarded.reward == cfg.rewards.inaccurate_high_bw

    def test_eviction_triggers_update(self):
        cfg = small_config(eq_size=1)
        agent = SarsaAgent(cfg)
        e = EqEntry(state=(1, 2), action=0)
        e.reward = 5.0
        agent.record(e)
        agent.record(EqEntry(state=(1, 2), action=0))
        assert agent.updates == 1


class TestPythia:
    def test_no_prefetch_action_rewarded_immediately(self):
        pythia = Pythia(small_config(epsilon=0.0))
        # Force action 0-offset by depressing everything else.
        # Simpler: run once and inspect the recorded entry kinds.
        pythia.train(ctx(1, 10, 0))
        total = sum(pythia.rewards_assigned.values()) + len(pythia.agent.eq)
        assert total >= 1

    def test_out_of_page_action_gets_coverage_loss(self):
        cfg = small_config(actions=(0, 32), epsilon=0.0, eq_size=4)
        pythia = Pythia(cfg)
        # Make +32 attractive, then demand at offset 40: 40+32 > 63.
        pythia.agent.qvstore.vaults[0].update(
            pythia._encode_state(pythia.extractor.observe(ctx(1, 10, 40)))[0],
            action=1,
            step=50.0,
        )
        pythia.reset_counts = None
        before = pythia.rewards_assigned["coverage_loss"]
        pythia.train(ctx(1, 10, 40))
        # Either CL assigned (if +32 selected) or not; force by checking
        # both action paths with a crafted Q-value is brittle — instead
        # drive many demands at high offsets and require CL to appear.
        for i in range(200):
            pythia.train(ctx(1, 20 + i, 50))
        assert pythia.rewards_assigned["coverage_loss"] > before

    def test_demand_hit_assigns_accurate_late_without_fill(self):
        cfg = small_config(actions=(0, 1), epsilon=0.0, eq_size=16)
        pythia = Pythia(cfg)
        pythia.agent.qvstore.vaults[0].update(
            pythia._encode_state(pythia.extractor.observe(ctx(1, 10, 0)))[0],
            action=1,
            step=100.0,
        )
        pythia.extractor.reset()
        out = pythia.train(ctx(1, 10, 0))
        if out:  # prefetch of line(10,1) in EQ, not yet filled
            pythia.train(ctx(1, 10, 1))
            assert pythia.rewards_assigned["accurate_late"] >= 1

    def test_fill_then_demand_assigns_accurate_timely(self):
        cfg = small_config(actions=(0, 1), epsilon=0.0, eq_size=16)
        pythia = Pythia(cfg)
        # Seed Q so that +1 is chosen for every state.
        for vault in pythia.agent.qvstore.vaults:
            for row_value in range(200):
                vault.update(row_value, action=1, step=10.0)
        out = pythia.train(ctx(1, 10, 0))
        assert out == [make_line(10, 1)]
        pythia.on_prefetch_fill(make_line(10, 1), cycle=100)
        pythia.train(ctx(1, 10, 1))
        assert pythia.rewards_assigned["accurate_timely"] >= 1

    def test_action_counts_track_selections(self):
        pythia = Pythia(small_config())
        for i in range(50):
            pythia.train(ctx(1, i, 0))
        assert sum(pythia.action_counts) == 50

    def test_top_actions_sorted(self):
        pythia = Pythia(small_config())
        for i in range(100):
            pythia.train(ctx(1, i, i % 30))
        top = pythia.top_actions(3)
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)

    def test_reset_clears_learning(self):
        pythia = Pythia(small_config())
        for i in range(50):
            pythia.train(ctx(1, i, 0))
        pythia.reset()
        assert sum(pythia.action_counts) == 0
        assert pythia.agent.updates == 0

    def test_prefetch_lines_always_in_page(self):
        pythia = Pythia(small_config(epsilon=0.5, seed=3))
        for i in range(500):
            page, offset = divmod(i * 13, 64)
            for line in pythia.train(ctx(1, 10 + page, offset)):
                assert 0 <= line - make_line(10 + page, 0) < LINES_PER_PAGE

    def test_strict_config_prefetches_less_on_noise(self):
        import random
        rng = random.Random(0)
        demands = [(rng.randrange(4096), rng.randrange(64)) for _ in range(4000)]

        def issued(config):
            pythia = Pythia(config)
            count = 0
            for page, offset in demands:
                count += len(pythia.train(ctx(1, page, offset, bw_high=True)))
            return count

        basic = issued(small_config(seed=1))
        strict = issued(small_config(rewards=STRICT_REWARDS, seed=1))
        assert strict <= basic

    def test_named_configs(self):
        assert PythiaConfig.named("basic").rewards.no_prefetch_high_bw == 0.0
        assert PythiaConfig.named("strict").rewards.inaccurate_high_bw == -22.0
        bwob = PythiaConfig.named("bw_oblivious").rewards
        assert bwob.inaccurate_high_bw == bwob.inaccurate_low_bw
        assert bwob.no_prefetch_high_bw == bwob.no_prefetch_low_bw
        with pytest.raises(KeyError):
            PythiaConfig.named("bogus")

    def test_convergence_on_pure_stride(self):
        """On a constant-stride stream Pythia converges to one dominant
        far offset and earns mostly accurate rewards."""
        pythia = Pythia(small_config(seed=2))
        line = 0
        for step in range(6000):
            page, offset = divmod(line, 64)
            out = pythia.train(ctx(0x400, 100 + page, offset))
            for pf_line in out:
                pythia.on_prefetch_fill(pf_line, cycle=step)
            line += 1
        offset, count = pythia.top_actions(1)[0]
        assert count > 2000  # a dominant action emerged
        accurate = (
            pythia.rewards_assigned["accurate_timely"]
            + pythia.rewards_assigned["accurate_late"]
        )
        assert accurate > 2000
