"""Tests for the programmatic figure builders."""

import pytest

from repro.api import ResultStore, Session
from repro.harness.figures import (
    fig1_motivation,
    fig8b_bandwidth_sweep,
    fig9a_per_suite,
    fig9a_per_suite_ci,
    fig9b_combinations,
    fig15_strict_vs_basic,
)


@pytest.fixture(scope="module")
def session():
    return Session(store=ResultStore(), trace_length=2500)


def test_fig1_rows(session):
    rows = fig1_motivation(session, ["spec06/lbm-1"], prefetchers=("spp",))
    assert len(rows) == 1
    row = rows[0]
    assert {"workload", "prefetcher", "coverage", "overprediction",
            "ipc_improvement"} <= set(row)


def test_fig8b_series_structure(session):
    series = fig8b_bandwidth_sweep(
        session, ["spec06/lbm-1"], mtps_points=[600, 2400],
        prefetchers=("spp",),
    )
    assert set(series) == {"spp"}
    assert set(series["spp"]) == {600, 2400}
    assert all(v > 0 for v in series["spp"].values())


def test_fig9a_nested_rollup(session):
    rollup = fig9a_per_suite(
        session,
        {"SPEC06": ["spec06/lbm-1"], "LIGRA": ["ligra/cc-1"]},
        prefetchers=("stride",),
    )
    assert set(rollup) == {"SPEC06", "LIGRA"}
    assert "stride" in rollup["SPEC06"]


def test_fig9a_ci_reports_seed_noise(session):
    stats = fig9a_per_suite_ci(
        session,
        {"SPEC06": ["spec06/lbm-1", "spec06/mcf-1"]},
        prefetchers=("stride",),
        seeds=2,
    )
    entry = stats["SPEC06"]["stride"]
    assert entry["workloads"] == 2 and entry["n"] == 4
    assert entry["mean"] > 0
    # The error bar is seed spread averaged per workload — it must not
    # absorb the (much larger) lbm-vs-mcf cross-workload spread.
    pooled = [r.speedup for r in session.run(
        session.experiment("fig9a-ci")
        .with_traces("spec06/lbm-1", "spec06/mcf-1")
        .with_prefetchers("stride")
        .with_seeds(2)
    )]
    cross_workload = max(pooled) - min(pooled)
    assert entry["seed_std"] <= cross_workload


def test_fig9b_combos(session):
    result = fig9b_combinations(session, ["spec06/lbm-1"], combos=("st", "st+s"))
    assert set(result) == {"st", "st+s"}


def test_fig15_rows(session):
    rows = fig15_strict_vs_basic(session, ["ligra/cc-1"])
    assert len(rows) == 1
    assert rows[0]["basic"] > 0 and rows[0]["strict"] > 0


def test_phase_behavior_windows_and_phases(session):
    from repro.harness.figures import phase_behavior

    data = phase_behavior(
        session, "spec06/lbm-1", prefetchers=("spp",), window=500
    )
    assert set(data) == {"spp"}
    windows = data["spp"]["windows"]
    phases = data["spp"]["phases"]
    assert windows, "measured region must produce at least one window"
    # Measured region only: the first window starts at/after the warmup
    # split, rows are contiguous, and every row carries the metric.
    assert windows[0]["start_record"] >= 500
    for prev, row in zip(windows, windows[1:]):
        assert row["start_record"] == prev["end_record"]
    assert all(row["ipc"] > 0 for row in windows)
    # Phases tile the measured windows.
    assert sum(p["windows"] for p in phases) == len(windows)
    assert phases[0]["start_record"] == windows[0]["start_record"]
    assert phases[-1]["end_record"] == windows[-1]["end_record"]
