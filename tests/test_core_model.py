"""Tests for the ROB-occupancy core timing model."""

import pytest

from repro.sim.config import CoreConfig
from repro.sim.core import CoreModel


def make_core(width=4, rob=256):
    return CoreModel(CoreConfig(width=width, rob_size=rob))


def test_advance_accumulates_ipc_width():
    core = make_core(width=4)
    core.advance(400)
    assert core.cycle == pytest.approx(100)
    assert core.instructions == 400
    assert core.ipc == pytest.approx(4.0)


def test_hitting_load_does_not_stall():
    core = make_core()
    core.advance(10)
    core.issue_load(core.cycle + 4)  # L1 hit
    assert core.stall_cycles == 0


def test_rob_fill_causes_stall():
    core = make_core(width=4, rob=32)
    core.advance(4)
    miss_completion = core.cycle + 1000
    core.issue_load(miss_completion)
    core.advance(100)  # far beyond the 32-entry ROB window
    assert core.stall_cycles > 0
    assert core.cycle >= miss_completion


def test_mlp_overlap():
    """Two misses inside the ROB window overlap: one stall, not two."""
    serial = make_core(width=1, rob=16)
    serial.issue_load(serial.cycle + 500)
    serial.advance(20)  # forces wait for first miss
    first_wait = serial.cycle
    serial.issue_load(serial.cycle + 500)
    serial.advance(20)
    total_serial = serial.cycle
    assert total_serial >= first_wait + 450

    parallel = make_core(width=1, rob=64)
    parallel.issue_load(parallel.cycle + 500)
    parallel.issue_load(parallel.cycle + 500)
    parallel.advance(20)  # within ROB: no stall yet
    assert parallel.stall_cycles == 0


def test_shorter_miss_means_less_stall():
    def run(latency):
        core = make_core(width=4, rob=16)
        for _ in range(50):
            core.advance(4)
            core.issue_load(core.cycle + latency)
        core.drain()
        return core.cycle

    assert run(50) < run(400)


def test_drain_waits_for_outstanding():
    core = make_core()
    core.issue_load(core.cycle + 300)
    core.drain()
    assert core.cycle >= 300


def test_ipc_zero_before_run():
    assert make_core().ipc == 0.0


def test_advance_zero_is_noop():
    core = make_core()
    core.advance(0)
    assert core.cycle == 0
    assert core.instructions == 0
