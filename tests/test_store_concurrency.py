"""Concurrency tests for the ResultStore and the Session's single-flight.

The stress half is the multiprocess × multithread harness ISSUE 9 asked
for: N worker processes, each running M threads, hammer one store
directory with ``put`` / ``put_checkpoint`` (under a deliberately tiny
``checkpoint_cap_bytes``, so eviction runs constantly) / ``get`` /
``clear``, and the test asserts no worker raised, no persisted file is
torn, and everything written after the dust settles reads back.

The regression half pins the specific races this PR fixed: the
eviction-vs-adoption race (a snapshot vanishing between ``entries()``
and ``load()``), the empty-``REPRO_CACHE_DIR`` default, and the
checkpoint disk-footprint accounting drifting negative or stale under
concurrent eviction.
"""

import json
import multiprocessing
import threading

import pytest

import repro.api.store as store_module
from repro.api.experiment import Cell, PrefetcherSpec, SystemSpec
from repro.api.store import CACHE_DIR_ENV, ResultStore
from repro.sim.engine import EngineState, SimulationResult

pytestmark = pytest.mark.quick

TRACE = "spec06/lbm-1"


def _result(tag: int) -> SimulationResult:
    return SimulationResult(
        trace_name=f"t{tag}",
        prefetcher_name="none",
        instructions=tag,
        cycles=float(tag + 1),
        llc_load_misses=0,
        llc_demand_hits=0,
        dram_reads=0,
        dram_demand_reads=0,
        dram_prefetch_reads=0,
        prefetches_issued=0,
        useful_prefetches=0,
        useless_prefetches=0,
        late_prefetch_merges=0,
        stall_cycles=0.0,
    )


def _state(records: int, payload_size: int = 512) -> EngineState:
    return EngineState(
        trace_name="stress",
        records=records,
        prefix_stamp=records,
        drained_at=(),
        mark=None,
        payload=bytes(payload_size),
    )


# ---- stress harness -------------------------------------------------------


def _hammer_worker(store_path, proc_index, thread_count, ops, errq):
    """One process of the stress fleet: *thread_count* threads sharing
    one store instance, all four mutating operations in the mix."""
    try:
        store = ResultStore(store_path, checkpoint_cap_bytes=8 * 1024)
        failures = []

        def loop(tid):
            try:
                for i in range(ops):
                    key = f"shared-{(proc_index * 7 + tid * 3 + i) % 6:02d}"
                    store.put(key, _result(i), meta={"proc": proc_index})
                    store.get(key)
                    store.put_checkpoint(f"pf{(tid + i) % 3:02d}", _state(100 + i))
                    if proc_index == 0 and tid == 0 and i == ops // 2:
                        store.clear()
            except BaseException as exc:  # noqa: BLE001 - reported to parent
                failures.append(f"thread {tid}: {exc!r}")

        threads = [
            threading.Thread(target=loop, args=(tid,)) for tid in range(thread_count)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for failure in failures:
            errq.put(f"proc {proc_index} {failure}")
    except BaseException as exc:  # noqa: BLE001 - reported to parent
        errq.put(f"proc {proc_index}: {exc!r}")


def test_stress_processes_times_threads_share_one_store(tmp_path):
    processes, threads, ops = 3, 3, 25
    root = tmp_path / "stress-store"
    errq = multiprocessing.Queue()
    procs = [
        multiprocessing.Process(
            target=_hammer_worker, args=(str(root), p, threads, ops, errq)
        )
        for p in range(processes)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
    assert all(p.exitcode == 0 for p in procs)
    errors = []
    while not errq.empty():
        errors.append(errq.get())
    assert errors == []

    # No torn files: every surviving result parses, every surviving
    # checkpoint unpickles (via the store's own reader), and no
    # orphaned tmp files remain once all writers have exited.
    survivor = ResultStore(root)
    for file in root.glob("*/*.json"):
        payload = json.loads(file.read_text())
        key = payload["fingerprint"]
        assert survivor.get(key) is not None
    assert list(root.glob("**/*.tmp.*")) == []
    for prefix in ("pf00", "pf01", "pf02"):
        for records, drained_at in survivor.checkpoint_entries(prefix):
            state = survivor.get_checkpoint(prefix, records, drained_at)
            # A concurrent process may still have evicted it; what
            # loads must be intact.
            assert state is None or isinstance(state, EngineState)

    # Everything written after the dust settles reads back exactly.
    final = ResultStore(root)
    for i in range(8):
        final.put(f"final-{i:02d}", _result(1000 + i))
    fresh = ResultStore(root)
    for i in range(8):
        read = fresh.get(f"final-{i:02d}")
        assert read is not None and read.instructions == 1000 + i


# ---- eviction-vs-adoption race -------------------------------------------


class _EvictingNamespace:
    """Checkpoint namespace that loses every snapshot between list and
    load — the worst-case concurrent evictor."""

    def __init__(self, store, prefix):
        self.store = store
        self.prefix = prefix
        self.vanished = 0

    def entries(self):
        return self.store.checkpoint_entries(self.prefix)

    def has(self, records, drained_at):
        return self.store.has_checkpoint(self.prefix, records, drained_at)

    def load(self, records, drained_at):
        file = self.store._checkpoint_file(self.prefix, records, drained_at)
        file.unlink(missing_ok=True)
        self.vanished += 1
        return self.store.get_checkpoint(self.prefix, records, drained_at)

    def save(self, state):
        self.store.put_checkpoint(self.prefix, state)


def _cell(length: int) -> Cell:
    return Cell(
        trace=TRACE,
        prefetcher=PrefetcherSpec.of("none"),
        system=SystemSpec.of("1c"),
        trace_length=length,
        warmup_fraction=0.2,
        warmup_records=200,
    )


def test_resume_falls_back_when_snapshot_evicted_between_list_and_load(tmp_path):
    """A snapshot listed by entries() but evicted before load() must not
    be fatal: the run falls back (here all the way to a fresh run) and
    still produces the bit-identical result."""
    seed_store = ResultStore(tmp_path / "race-store")
    short = _cell(800)
    short.execute(
        checkpoints=seed_store.checkpoints(short.prefix_fingerprint()),
        checkpoint_every=200,
    )

    racy_store = ResultStore(tmp_path / "race-store")
    extended = _cell(1600)
    namespace = _EvictingNamespace(racy_store, extended.prefix_fingerprint())
    assert namespace.entries()  # snapshots exist to race against
    raced = extended.execute(checkpoints=namespace, checkpoint_every=200)
    assert namespace.vanished > 0
    assert racy_store.stats["checkpoint_misses"] > 0

    fresh = _cell(1600).execute()
    assert raced == fresh


class _RaisingNamespace:
    """Namespace whose listing (or loading) raises like a directory
    swept by a concurrent clear()."""

    def __init__(self, raise_on: str):
        self.raise_on = raise_on

    def entries(self):
        if self.raise_on == "entries":
            raise OSError("directory vanished")
        return [(400, ())]

    def has(self, records, drained_at):
        return False

    def load(self, records, drained_at):
        raise OSError("file vanished")

    def save(self, state):
        pass


@pytest.mark.parametrize("raise_on", ["entries", "load"])
def test_resume_tolerates_namespace_errors(raise_on):
    """entries()/load() raising mid-resume degrades to a fresh run."""
    raced = _cell(800).execute(
        checkpoints=_RaisingNamespace(raise_on), checkpoint_every=0
    )
    assert raced == _cell(800).execute()


# ---- ResultStore.default() with empty env ---------------------------------


def test_default_store_treats_empty_cache_dir_env_as_unset(tmp_path, monkeypatch):
    monkeypatch.setenv("HOME", str(tmp_path))
    monkeypatch.setenv(CACHE_DIR_ENV, "")
    store = ResultStore.default()
    assert store.path == tmp_path / ".cache" / "repro-pythia"


def test_default_store_honors_cache_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "explicit"))
    assert ResultStore.default().path == tmp_path / "explicit"


# ---- checkpoint disk accounting under concurrent eviction -----------------


def test_checkpoint_disk_accounting_clamps_at_zero(tmp_path):
    """A stale incremental total must never drift negative when the
    replaced file shrank more than the cached total believed existed."""
    store = ResultStore(tmp_path / "acct")
    prefix = "pfx0"
    store.put_checkpoint(prefix, _state(100, payload_size=4096))
    assert store._ckpt_disk_bytes is not None and store._ckpt_disk_bytes > 0
    # A concurrent evictor re-synced the namespace down to "empty"
    # behind our back; our next replacing put shrinks the file.
    with store._lock:
        store._ckpt_disk_bytes = 0
    store.put_checkpoint(prefix, _state(100, payload_size=64))
    assert store._ckpt_disk_bytes is not None
    assert store._ckpt_disk_bytes >= 0


def test_checkpoint_disk_accounting_rescans_after_stat_failure(tmp_path, monkeypatch):
    """If the freshly-written snapshot cannot be stat'd (a concurrent
    evictor removed it), the cached total is dropped and the next cap
    check does a real scan instead of trusting stale numbers."""
    store = ResultStore(tmp_path / "acct2")
    store.put_checkpoint("pfx0", _state(100, payload_size=256))
    assert store._ckpt_disk_bytes is not None

    before = store._ckpt_disk_bytes
    real_stat = store_module._stat_or_none
    monkeypatch.setattr(store_module, "_stat_or_none", lambda file: None)
    store.put_checkpoint("pfx0", _state(200, payload_size=256))
    # The poisoned total was dropped and immediately re-scanned by the
    # cap check — under the failing stat the scan sees nothing, so the
    # total is 0, not `before + delta` computed from stale numbers.
    assert store._ckpt_disk_bytes == 0
    assert store._ckpt_disk_bytes != before

    monkeypatch.setattr(store_module, "_stat_or_none", real_stat)
    store.put_checkpoint("pfx0", _state(300, payload_size=256))
    assert store._ckpt_disk_bytes is not None  # incremental resumes
    assert store._ckpt_disk_bytes >= 0


def test_atomic_writes_tolerate_concurrent_clear_sweep(tmp_path, monkeypatch):
    """A clear() racing a writer may sweep the writer's tmp file before
    its atomic rename; the write is then dropped silently (the store
    was being emptied anyway) instead of raising FileNotFoundError."""
    store = ResultStore(tmp_path / "sweep")

    def swept(src, dst):
        raise FileNotFoundError(2, "tmp swept by concurrent clear()")

    monkeypatch.setattr(store_module.os, "replace", swept)
    store.put("cc-key", _result(3))  # must not raise
    store.put_checkpoint("pfx0", _state(100))  # must not raise
    monkeypatch.undo()

    # The memory layer kept the objects; nothing landed on disk.
    assert store.get("cc-key") is not None
    fresh = ResultStore(tmp_path / "sweep")
    assert fresh.get("cc-key") is None
    assert list((tmp_path / "sweep").glob("**/*.tmp.*")) == []


def test_clear_holds_locks_and_resets_accounting(tmp_path):
    store = ResultStore(tmp_path / "clr", checkpoint_cap_bytes=1 << 20)
    store.put("ck-one", _result(1))
    store.put_checkpoint("pfx0", _state(100))
    store.clear()
    assert store.get("ck-one") is None
    assert store.checkpoint_entries("pfx0") == []
    assert store._ckpt_disk_bytes is None


def test_stats_snapshot_is_consistent_dict(tmp_path):
    store = ResultStore(tmp_path / "st")
    store.put("aa-key", _result(1))
    assert store.get("aa-key") is not None
    snapshot = store.stats
    assert snapshot["puts"] == 1
    assert snapshot["hits"] == 1
    # The snapshot is a copy: later activity must not mutate it.
    store.put("bb-key", _result(2))
    assert snapshot["puts"] == 1
