"""Tests for Pythia's feature space and extractor."""

from hypothesis import given, strategies as st

from repro.core.features import (
    BASIC_FEATURES,
    ControlFlow,
    DataFlow,
    FeatureExtractor,
    FeatureSpec,
    all_feature_specs,
    encode_feature,
)
from repro.prefetchers.base import DemandContext
from repro.types import make_line


def ctx(pc, page, offset):
    return DemandContext(pc=pc, line=make_line(page, offset), cycle=0)


def test_feature_space_is_32():
    """Table 3: 4 control-flow x 8 data-flow components."""
    assert len(all_feature_specs()) == 32


def test_basic_features_are_table2_winners():
    pc_delta, last4 = BASIC_FEATURES
    assert pc_delta.control is ControlFlow.PC
    assert pc_delta.data is DataFlow.DELTA
    assert last4.control is ControlFlow.NONE
    assert last4.data is DataFlow.LAST4_DELTAS


def test_labels():
    assert FeatureSpec(ControlFlow.PC, DataFlow.DELTA).label == "pc+delta"
    assert FeatureSpec(ControlFlow.NONE, DataFlow.NONE).label == "none"
    assert FeatureSpec(ControlFlow.PC, DataFlow.NONE).label == "pc"


def test_first_access_to_page_has_delta_zero():
    """Fig 13's trigger: first load to a page has delta 0."""
    extractor = FeatureExtractor()
    obs = extractor.observe(ctx(0x436A81, 100, 17))
    assert obs.delta == 0


def test_delta_is_per_page():
    extractor = FeatureExtractor()
    extractor.observe(ctx(1, 100, 0))
    extractor.observe(ctx(1, 200, 50))  # different page: no cross-page delta
    obs = extractor.observe(ctx(1, 100, 23))
    assert obs.delta == 23


def test_last4_deltas_window():
    extractor = FeatureExtractor()
    offsets = [0, 2, 6, 12, 20, 30]
    obs = None
    for off in offsets:
        obs = extractor.observe(ctx(1, 100, off))
    assert obs.last4_deltas == (4, 6, 8, 10)
    assert obs.last4_offsets == (6, 12, 20, 30)


def test_pc_path_xors_history():
    extractor = FeatureExtractor()
    extractor.observe(ctx(0xA, 1, 0))
    extractor.observe(ctx(0xB, 1, 1))
    obs = extractor.observe(ctx(0xC, 1, 2))
    assert obs.pc_path == 0xA ^ 0xB ^ 0xC
    assert obs.pc_xor_prev == 0xC ^ 0xB


def test_page_table_lru_bound():
    extractor = FeatureExtractor(page_table_size=4)
    for page in range(10):
        extractor.observe(ctx(1, page, 0))
    assert len(extractor._pages) == 4


def test_encode_distinguishes_components():
    extractor = FeatureExtractor()
    obs = extractor.observe(ctx(0x1234, 7, 9))
    values = {spec.label: encode_feature(spec, obs) for spec in all_feature_specs()}
    assert values["pc"] == 0x1234
    assert values["offset"] == 9
    assert values["page"] == 7


def test_encode_none_none_is_zero():
    extractor = FeatureExtractor()
    obs = extractor.observe(ctx(1, 1, 1))
    assert encode_feature(FeatureSpec(ControlFlow.NONE, DataFlow.NONE), obs) == 0


def test_reset_clears_histories():
    extractor = FeatureExtractor()
    extractor.observe(ctx(1, 100, 0))
    extractor.reset()
    obs = extractor.observe(ctx(1, 100, 23))
    assert obs.delta == 0  # history gone: first access again


@given(
    pc=st.integers(min_value=1, max_value=2**32 - 1),
    page=st.integers(min_value=0, max_value=2**20),
    offset=st.integers(min_value=0, max_value=63),
)
def test_encoding_is_deterministic(pc, page, offset):
    e1 = FeatureExtractor()
    e2 = FeatureExtractor()
    obs1 = e1.observe(ctx(pc, page, offset))
    obs2 = e2.observe(ctx(pc, page, offset))
    for spec in all_feature_specs():
        assert encode_feature(spec, obs1) == encode_feature(spec, obs2)


@given(
    pc=st.integers(min_value=1, max_value=2**32 - 1),
    page=st.integers(min_value=0, max_value=2**20),
    offset=st.integers(min_value=0, max_value=63),
)
def test_encoded_values_are_32bit_nonnegative(pc, page, offset):
    extractor = FeatureExtractor()
    obs = extractor.observe(ctx(pc, page, offset))
    for spec in all_feature_specs():
        value = encode_feature(spec, obs)
        assert 0 <= value < 2**32
