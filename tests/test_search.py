"""Tests for the declarative search subsystem (repro.api.search) and the
mix-aware experiment layer: ParamSpace expansion, two-phase leaderboards,
mix cells, and serial/process-pool equivalence down to store fingerprints.
"""

import dataclasses

import pytest

from repro.api import (
    Experiment,
    MixCell,
    MixCellResult,
    ParamSpace,
    ProcessPoolExecutor,
    ResultStore,
    SerialExecutor,
    Session,
)

pytestmark = pytest.mark.quick

LENGTH = 1200
TRACES = ("spec06/lbm-1", "spec06/gemsfdtd-1")
MIX = ("m0", ("spec06/lbm-1", "spec06/mcf-1"))


@pytest.fixture()
def session(tmp_path):
    return Session(store=ResultStore(tmp_path / "store"), trace_length=LENGTH)


# ---- parameter spaces -----------------------------------------------------


def test_param_space_points_cross_product():
    space = ParamSpace.of(alpha=(0.1, 0.2), gamma=(0.5,), epsilon=(1, 2, 3))
    assert len(space) == 6
    points = space.points()
    assert len(points) == 6
    assert points[0] == {"alpha": 0.1, "gamma": 0.5, "epsilon": 1}
    assert len({tuple(sorted(p.items())) for p in points}) == 6


def test_param_space_rejects_empty_axis():
    with pytest.raises(ValueError):
        ParamSpace.of(alpha=())


def test_search_without_traces_or_points_raises(session):
    with pytest.raises(ValueError):
        session.search("x").over(alpha=(0.1,)).run()
    with pytest.raises(ValueError):
        session.search("x").phase1(TRACES).run()


# ---- grid search ----------------------------------------------------------


def test_search_leaderboard_sorted_and_typed(session):
    result = (
        session.search("lead")
        .over(epsilon=(0.005, 0.5))
        .with_prefetcher("pythia")
        .phase1(TRACES)
        .run()
    )
    assert len(result) == 2
    scores = [entry.score for entry in result]
    assert scores == sorted(scores, reverse=True)
    assert result.best is result.entries[0]
    assert result.best.point in ({"epsilon": 0.005}, {"epsilon": 0.5})
    assert result.best.spec.name == "pythia"
    assert "epsilon" in result.table()


def test_search_two_phase_reranks_on_full_traces(session):
    result = (
        session.search("two-phase")
        .over(epsilon=(0.005, 0.05, 0.5))
        .with_prefetcher("pythia")
        .phase1(TRACES[:1])
        .phase2(TRACES, top_k=2)
        .run()
    )
    assert len(result.phase1_entries) == 3
    assert len(result.entries) == 2  # only the finalists survive
    assert all(entry.phase2_score is not None for entry in result)
    assert result.stats["phase2"]["cells"] > 0
    # Finalists were chosen by phase-1 rank.
    finalist_points = {tuple(e.point.items()) for e in result}
    top2_phase1 = {tuple(e.point.items()) for e in result.phase1_entries[:2]}
    assert finalist_points == top2_phase1


def test_search_repeat_hits_store(session):
    def run():
        return (
            session.search("cached")
            .over(alpha=(0.01, 0.05))
            .with_prefetcher("pythia")
            .phase1(TRACES[:1])
            .run()
        )

    run()
    again = run()
    assert again.stats["phase1"]["simulated"] == 0
    assert again.stats["phase1"]["cached"] == again.stats["phase1"]["cells"]


def test_search_base_overrides_and_mapper(session):
    result = (
        session.search("mapped")
        .over(level=(1, 2))
        .with_prefetcher("pythia", gamma=0.5)
        .map_points(lambda point: {"epsilon": point["level"] / 100.0})
        .phase1(TRACES[:1])
        .run()
    )
    for entry in result:
        overrides = dict(entry.spec.overrides)
        assert overrides["gamma"] == 0.5
        assert overrides["epsilon"] == entry.point["level"] / 100.0


# ---- mixes as experiment cells --------------------------------------------


def test_experiment_mix_expansion():
    ex = (
        Experiment.define("mix")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("stride", "none")
        .with_mixes(MIX)
        .with_length(LENGTH)
    )
    cells = ex.cells()
    assert len(cells) == len(ex) == 4
    mix_cells = [c for c in cells if isinstance(c, MixCell)]
    assert len(mix_cells) == 2
    assert all(c.system.config.num_cores == 2 for c in mix_cells)
    assert len({c.fingerprint() for c in cells}) == 4


def test_mix_system_core_count_mismatch_rejected():
    with pytest.raises(ValueError):
        Experiment.define("bad").with_prefetchers("stride").with_mixes(
            ("m", ("spec06/lbm-1", "spec06/mcf-1"), "4c")
        )


def test_mix_results_carry_per_core_records(session):
    results = session.run(
        session.experiment("mixres").with_mixes(MIX).with_prefetchers("stride")
    )
    (record,) = list(results)
    assert isinstance(record, MixCellResult)
    assert record.suite == "MIX"
    assert record.traces == MIX[1]
    per_core = record.per_core()
    assert [row["trace"] for row in per_core] == list(MIX[1])
    assert per_core == results.per_core_rows()
    assert record.per_core_speedups == pytest.approx(
        [row["speedup"] for row in per_core]
    )


def test_run_mix_is_thin_wrapper_over_cells(session):
    """Session.run_mix and the declarative mix path share cache entries."""
    results = session.run(
        session.experiment("shared").with_mixes(MIX).with_prefetchers("stride")
    )
    result, baseline = session.run_mix(MIX[1], "stride", "2c")
    assert result is results[0].result
    assert baseline is results[0].baseline


def test_run_mix_stores_meta(tmp_path):
    """Regression: mix store entries must carry their canonical meta."""
    import json

    store = ResultStore(tmp_path / "meta-store")
    session = Session(store=store, trace_length=LENGTH)
    session.run_mix(MIX[1], "stride", "2c")
    payloads = [
        json.loads(f.read_text()) for f in store.path.glob("*/*.json")
    ]
    assert len(payloads) == 2  # mix + its baseline
    for payload in payloads:
        assert payload["meta"] is not None
        assert payload["meta"]["__class__"] == "MixCell"


# ---- executor equivalence -------------------------------------------------


def _sweep_experiment(session):
    return (
        session.experiment("eq")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("stride", "spp")
        .with_mixes(MIX)
    )


def _run_everything(tmp_path, executor, tag):
    """One mix sweep + one small grid search on a fresh disk store."""
    session = Session(
        store=ResultStore(tmp_path / tag),
        executor=executor,
        trace_length=LENGTH,
    )
    sweep = session.run(_sweep_experiment(session))
    search = (
        session.search("eq-grid")
        .over(epsilon=(0.005, 0.05))
        .with_prefetcher("pythia")
        .phase1(TRACES)
        .run()
    )
    keys = {f.stem for f in session.store.path.glob("*/*.json")}
    return sweep, search, keys


def test_executor_equivalence_mix_and_search(tmp_path):
    """The same experiment + search under SerialExecutor and
    ProcessPoolExecutor must produce identical ResultSet tables and
    identical store fingerprints."""
    serial_sweep, serial_search, serial_keys = _run_everything(
        tmp_path, SerialExecutor(), "serial"
    )
    pool_sweep, pool_search, pool_keys = _run_everything(
        tmp_path, ProcessPoolExecutor(max_workers=2), "pool"
    )

    assert serial_keys == pool_keys
    assert serial_sweep.table() == pool_sweep.table()
    for a, b in zip(serial_sweep, pool_sweep):
        assert dataclasses.asdict(a.result) == dataclasses.asdict(b.result)
        assert dataclasses.asdict(a.baseline) == dataclasses.asdict(b.baseline)
    assert [e.point for e in serial_search] == [e.point for e in pool_search]
    assert [e.score for e in serial_search] == pytest.approx(
        [e.score for e in pool_search]
    )
