"""Tests for the low-level access-pattern primitives."""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.types import LINES_PER_PAGE, offset_of_line, page_of_line
from repro.workloads import patterns


def take(gen, n):
    return list(itertools.islice(gen, n))


def test_stream_is_sequential():
    accesses = take(patterns.stream(pc=1, start_page=10, gap=4), 100)
    lines = [line for _, line, _ in accesses]
    assert all(b - a == 1 for a, b in zip(lines, lines[1:]))
    assert all(pc == 1 for pc, _, _ in accesses)


def test_strided_stride():
    accesses = take(patterns.strided(pc=1, start_page=10, stride=7), 50)
    lines = [line for _, line, _ in accesses]
    assert all(b - a == 7 for a, b in zip(lines, lines[1:]))


def test_delta_sequence_deltas():
    gen = patterns.delta_sequence(
        pc_base=0x400, start_page=5, deltas=[23], accesses_per_page=3
    )
    accesses = take(gen, 9)
    # Page 5: offsets 0, 23, 46; page 6: same; ...
    offsets = [offset_of_line(line) for _, line, _ in accesses]
    assert offsets[:3] == [0, 23, 46]
    pages = [page_of_line(line) for _, line, _ in accesses]
    assert pages[:3] == [5, 5, 5]
    assert pages[3:6] == [6, 6, 6]


def test_delta_sequence_random_start_stays_predictable():
    rng = random.Random(1)
    gen = patterns.delta_sequence(
        pc_base=0x400, start_page=5, deltas=[11], accesses_per_page=3,
        rng=rng, max_start_offset=8,
    )
    for _ in range(20):
        chunk = take(gen, 1)  # can't know count boundaries; just sanity
        assert chunk


def test_region_footprint_trigger_is_first():
    rng = random.Random(2)
    gen = patterns.region_footprint(
        pc=0x500, footprint=[0, 3, 7], num_regions=8, start_page=100,
        rng=rng, shuffle_prob=1.0, member_prob=1.0, noise_prob=0.0,
    )
    accesses = take(gen, 30)
    # Group by page: first offset of every region visit is footprint[0].
    current_page = None
    for _, line, _ in accesses:
        page = page_of_line(line)
        if page != current_page:
            assert offset_of_line(line) == 0
            current_page = page


def test_region_footprint_members_only_without_noise():
    rng = random.Random(3)
    footprint = [0, 5, 9, 20]
    gen = patterns.region_footprint(
        pc=0x500, footprint=footprint, num_regions=8, start_page=100,
        rng=rng, member_prob=1.0, noise_prob=0.0,
    )
    for _, line, _ in take(gen, 200):
        assert offset_of_line(line) in footprint


def test_irregular_bounded_working_set():
    rng = random.Random(4)
    gen = patterns.irregular(
        pc=1, working_set_pages=10, start_page=50, rng=rng, locality=0.0
    )
    for _, line, _ in take(gen, 500):
        assert 50 <= page_of_line(line) < 60


def test_irregular_burst_consecutive():
    rng = random.Random(5)
    gen = patterns.irregular(
        pc=1, working_set_pages=100, start_page=0, rng=rng,
        locality=0.0, burst_lines=4,
    )
    accesses = take(gen, 300)
    consecutive = sum(
        1 for a, b in zip(accesses, accesses[1:]) if b[1] - a[1] == 1
    )
    assert consecutive > 30  # bursts create consecutive-line runs


def test_pointer_chase_is_cyclic_and_deterministic():
    gen1 = patterns.pointer_chase(pc=1, num_nodes=50, start_page=7, rng=random.Random(9))
    gen2 = patterns.pointer_chase(pc=1, num_nodes=50, start_page=7, rng=random.Random(9))
    a = take(gen1, 120)
    b = take(gen2, 120)
    assert a == b
    lines = [line for _, line, _ in a]
    assert lines[:50] == lines[50:100]  # permutation cycle repeats
    assert len(set(lines[:50])) == 50


def test_interleave_length_and_sources():
    s1 = patterns.stream(pc=1, start_page=0)
    s2 = patterns.stream(pc=2, start_page=1000)
    merged = patterns.interleave([s1, s2], [1.0, 1.0], 200, random.Random(0))
    assert len(merged) == 200
    pcs = {pc for pc, _, _ in merged}
    assert pcs == {1, 2}


def test_interleave_respects_weights():
    s1 = patterns.stream(pc=1, start_page=0)
    s2 = patterns.stream(pc=2, start_page=1000)
    merged = patterns.interleave([s1, s2], [9.0, 1.0], 1000, random.Random(0))
    count1 = sum(1 for pc, _, _ in merged if pc == 1)
    assert count1 > 700


def test_interleave_mismatch_raises():
    import pytest

    with pytest.raises(ValueError):
        patterns.interleave([patterns.stream(1, 0)], [1.0, 2.0], 10, random.Random(0))


@settings(max_examples=20, deadline=None)
@given(
    stride=st.integers(min_value=1, max_value=16),
    n=st.integers(min_value=2, max_value=100),
)
def test_strided_property(stride, n):
    accesses = take(patterns.strided(pc=1, start_page=3, stride=stride), n)
    lines = [line for _, line, _ in accesses]
    assert all(b - a == stride for a, b in zip(lines, lines[1:]))
