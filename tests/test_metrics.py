"""Tests for the paper's evaluation metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.metrics import (
    coverage,
    geomean,
    geomean_speedup,
    mpki,
    overprediction,
    speedup,
)
from repro.sim.system import SimulationResult


def make_result(ipc_instr=1000, cycles=1000.0, llc_misses=100, dram_reads=100):
    return SimulationResult(
        trace_name="t",
        prefetcher_name="p",
        instructions=ipc_instr,
        cycles=cycles,
        llc_load_misses=llc_misses,
        llc_demand_hits=0,
        dram_reads=dram_reads,
        dram_demand_reads=dram_reads,
        dram_prefetch_reads=0,
        prefetches_issued=0,
        useful_prefetches=0,
        useless_prefetches=0,
        late_prefetch_merges=0,
        stall_cycles=0.0,
    )


def test_speedup():
    base = make_result(cycles=2000)
    fast = make_result(cycles=1000)
    assert speedup(fast, base) == pytest.approx(2.0)


def test_coverage_formula():
    base = make_result(llc_misses=100)
    result = make_result(llc_misses=30)
    assert coverage(result, base) == pytest.approx(0.7)


def test_coverage_zero_baseline():
    assert coverage(make_result(), make_result(llc_misses=0)) == 0.0


def test_overprediction_formula():
    base = make_result(dram_reads=100)
    result = make_result(dram_reads=180)
    assert overprediction(result, base) == pytest.approx(0.8)


def test_overprediction_can_be_negative():
    # Prefetching that eliminates more demand reads than it adds.
    base = make_result(dram_reads=100)
    result = make_result(dram_reads=90)
    assert overprediction(result, base) == pytest.approx(-0.1)


def test_geomean_known():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)


def test_geomean_empty_and_invalid():
    assert geomean([]) == 0.0
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_geomean_speedup_mismatch():
    with pytest.raises(ValueError):
        geomean_speedup([make_result()], [])


def test_mpki():
    result = make_result(ipc_instr=10_000, llc_misses=50)
    assert mpki(result) == pytest.approx(5.0)


@given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=20))
def test_geomean_bounded_by_min_max(values):
    g = geomean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


@given(
    st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=10),
    st.floats(min_value=0.1, max_value=10),
)
def test_geomean_scales_linearly(values, k):
    scaled = [v * k for v in values]
    assert geomean(scaled) == pytest.approx(geomean(values) * k, rel=1e-6)
