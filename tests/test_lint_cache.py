"""The incremental analysis cache: reuse, invalidation, and decay.

Each test builds a small repro-shaped tree under ``tmp_path`` and runs
the real engine against a real :class:`AnalysisCache` sidecar, pinning
the contract the CLI leans on:

* a warm rerun re-parses **nothing** (every file served by CRC stamp,
  the cross-file pass by the combined stamp);
* touching one file re-analyzes exactly that file — plus the
  cross-file pass, which any stamp change must invalidate;
* bumping any rule's ``version`` changes the ruleset signature and
  invalidates everything;
* suppression always re-runs over cached raw findings, so cache hits
  can never serve a stale pragma/baseline decision;
* a corrupt sidecar degrades to a cold run instead of crashing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, run
from repro.analysis.__main__ import main
from repro.analysis.cache import AnalysisCache, ruleset_signature
from repro.analysis.rules import AST_RULES

CLEAN_ALPHA = (
    "def scale(values, factor):\n"
    "    return [v * factor for v in values]\n"
)
CLEAN_EXEC = (
    "LIMIT = 8\n"
    "def dispatch(cells):\n"
    "    return [c() for c in cells][:LIMIT]\n"
)


def write_tree(tmp_path: Path) -> Path:
    pkg = tmp_path / "repro"
    (pkg / "sim").mkdir(parents=True)
    (pkg / "api").mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "sim" / "__init__.py").write_text("")
    (pkg / "api" / "__init__.py").write_text("")
    (pkg / "sim" / "alpha.py").write_text(CLEAN_ALPHA)
    (pkg / "api" / "exec.py").write_text(CLEAN_EXEC)
    return pkg


def run_cached(pkg: Path, cache: AnalysisCache):
    return run(
        [pkg],
        baseline=Baseline(),
        introspect=False,
        cache=cache,
    )


@pytest.mark.quick
def test_warm_rerun_reuses_every_file_and_the_project_pass(tmp_path):
    pkg = write_tree(tmp_path)
    sidecar = tmp_path / "cache.json"

    cold = run_cached(pkg, AnalysisCache(sidecar))
    assert cold.findings == []
    assert cold.files_reused == 0
    assert cold.files_reparsed == cold.files_checked == 5
    assert not cold.project_reused
    assert sidecar.exists()

    warm = run_cached(pkg, AnalysisCache(sidecar))
    assert warm.findings == []
    assert warm.files_reused == warm.files_checked == 5
    assert warm.files_reparsed == 0
    assert warm.project_reused


@pytest.mark.quick
def test_touching_one_file_reanalyzes_exactly_it(tmp_path):
    pkg = write_tree(tmp_path)
    sidecar = tmp_path / "cache.json"
    run_cached(pkg, AnalysisCache(sidecar))

    (pkg / "sim" / "alpha.py").write_text(CLEAN_ALPHA + "\n# touched\n")
    rerun = run_cached(pkg, AnalysisCache(sidecar))
    assert rerun.files_reparsed == 1  # exactly the touched file
    assert rerun.files_reused == rerun.files_checked - 1
    # Any stamp movement invalidates the whole-program pass.
    assert not rerun.project_reused

    # And the run after that is fully warm again.
    warm = run_cached(pkg, AnalysisCache(sidecar))
    assert warm.files_reparsed == 0
    assert warm.project_reused


@pytest.mark.quick
def test_rule_version_bump_invalidates_everything(tmp_path, monkeypatch):
    pkg = write_tree(tmp_path)
    sidecar = tmp_path / "cache.json"
    run_cached(pkg, AnalysisCache(sidecar))
    before = ruleset_signature()

    monkeypatch.setattr(AST_RULES["hygiene"], "version", 99)
    assert ruleset_signature() != before
    bumped = run_cached(pkg, AnalysisCache(sidecar))
    assert bumped.files_reused == 0
    assert bumped.files_reparsed == bumped.files_checked
    assert not bumped.project_reused


@pytest.mark.quick
def test_cache_hits_rerun_suppression_over_raw_findings(tmp_path):
    pkg = write_tree(tmp_path)
    (pkg / "sim" / "beta.py").write_text(
        "def collect(into=[]):\n"
        "    return into\n"
        "def tally(counts={}):  # repro: ignore[hygiene]\n"
        "    return counts\n"
    )
    sidecar = tmp_path / "cache.json"

    cold = run_cached(pkg, AnalysisCache(sidecar))
    assert [f.rule for f in cold.findings] == ["hygiene"]
    assert cold.suppressed == 1

    warm = run_cached(pkg, AnalysisCache(sidecar))
    assert warm.files_reparsed == 0
    # Identical verdicts from cached raw findings + re-run suppression.
    assert warm.findings == cold.findings
    assert warm.suppressed == 1

    # A baseline recorded now suppresses the cached finding too.
    baseline_file = tmp_path / "baseline.json"
    Baseline.save(baseline_file, cold.findings)
    grandfathered = run(
        [pkg],
        baseline=Baseline.load(baseline_file),
        introspect=False,
        cache=AnalysisCache(sidecar),
    )
    assert grandfathered.findings == []
    assert grandfathered.suppressed == 2


@pytest.mark.quick
def test_corrupt_sidecar_degrades_to_cold_run(tmp_path):
    pkg = write_tree(tmp_path)
    sidecar = tmp_path / "cache.json"
    sidecar.write_text("{not json")

    report = run_cached(pkg, AnalysisCache(sidecar))
    assert report.findings == []
    assert report.files_reused == 0
    # The rewrite leaves a loadable sidecar behind.
    assert json.loads(sidecar.read_text())
    warm = run_cached(pkg, AnalysisCache(sidecar))
    assert warm.files_reparsed == 0


@pytest.mark.quick
def test_cli_warm_summary_reports_zero_reparsed(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # no committed baseline in reach
    pkg = write_tree(tmp_path)
    args = [str(pkg), "--no-introspect", "--cache", str(tmp_path / "c.json")]

    assert main(args) == 0
    assert "re-parsed" in capsys.readouterr().out
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "0 re-parsed" in out
    assert "5 cached" in out
    assert "clean" in out


@pytest.mark.quick
def test_no_cache_flag_never_writes_a_sidecar(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    pkg = write_tree(tmp_path)
    assert (
        main([str(pkg), "--no-introspect", "--no-cache", "--cache", "c.json"])
        == 0
    )
    capsys.readouterr()
    assert not (tmp_path / "c.json").exists()
