"""Replicated multi-seed experiments end-to-end (the ISSUE 4 acceptance
path): a ``file/`` trace and a ``with_seeds(3)`` replicated experiment
both run through :class:`SerialExecutor` and
:class:`ProcessPoolExecutor` with identical :class:`ResultSet` tables,
hit the persistent store on rerun (``cached == cells``), and ``rollup``
reports mean/std across seeds.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.api import (
    ProcessPoolExecutor,
    ReplicatedCell,
    ResultStore,
    SerialExecutor,
    Session,
)

pytestmark = pytest.mark.quick

LENGTH = 1200
SEEDS = 3
FILE_TRACE = f"file/{Path(__file__).parent / 'data' / 'traces' / 'stream.csv'}"
TRACES = ("spec06/lbm-1", "synth/phase-regular-1", FILE_TRACE)

EXECUTORS = {
    "serial": SerialExecutor,
    "process-pool": lambda: ProcessPoolExecutor(max_workers=2),
}


def _experiment(session: Session):
    return (
        session.experiment("replication")
        .with_traces(*TRACES)
        .with_prefetchers("stride", "spp")
        .with_seeds(SEEDS)
    )


@pytest.fixture(params=sorted(EXECUTORS))
def replicated_session(request, tmp_path):
    return Session(
        store=ResultStore(tmp_path / "store"),
        executor=EXECUTORS[request.param](),
        trace_length=LENGTH,
    )


def test_replicated_experiment_end_to_end(replicated_session):
    session = replicated_session
    results = session.run(_experiment(session))

    # 2 generated traces × 3 seeds × 2 prefetchers, + the file trace
    # (not reseedable: one replicate) × 2 prefetchers.
    assert len(results) == 2 * SEEDS * 2 + 2
    assert {r.seed for r in results} == {1, 2, 3}

    # Replicates of one workload share a trace_name; seeds stay distinct.
    lbm = results.filter(trace_name="spec06/lbm", prefetcher="stride")
    assert [r.seed for r in lbm] == [1, 2, 3]
    assert len({r.result.trace_name for r in lbm}) == SEEDS  # distinct traces

    # Variance rollups: mean/std/ci95 across seeds per workload.
    mean = results.rollup("trace_name", "prefetcher", agg="mean")
    std = results.rollup("trace_name", "prefetcher", agg="std")
    assert set(mean) == {"spec06/lbm", "synth/phase-regular", FILE_TRACE}
    assert std["spec06/lbm"]["stride"] >= 0.0
    assert std[FILE_TRACE]["stride"] == 0.0  # single replicate: no spread
    summary = lbm.summary("speedup")
    assert summary["n"] == SEEDS
    assert summary["mean"] == pytest.approx(mean["spec06/lbm"]["stride"])
    assert summary["ci95"] >= summary["std"] / SEEDS  # t-scaled half-width

    # Rerun on a fresh session over the same disk store: zero simulation.
    fresh = Session(
        store=ResultStore(session.store.path),
        executor=session.executor,
        trace_length=LENGTH,
    )
    again = fresh.run(_experiment(fresh))
    assert again.stats["simulated"] == 0
    assert again.stats["cached"] == again.stats["cells"]
    assert again.table() == results.table()


def test_serial_and_pool_tables_identical(tmp_path):
    def run(executor):
        session = Session(
            store=ResultStore(tmp_path / f"store-{executor.name}"),
            executor=executor,
            trace_length=LENGTH,
        )
        return session.run(_experiment(session))

    serial = run(SerialExecutor())
    pooled = run(ProcessPoolExecutor(max_workers=2))
    assert serial.table() == pooled.table()
    for a, b in zip(serial, pooled):
        assert (a.trace_name, a.seed, a.prefetcher) == (b.trace_name, b.seed, b.prefetcher)
        assert dataclasses.asdict(a.result) == dataclasses.asdict(b.result)
        assert dataclasses.asdict(a.baseline) == dataclasses.asdict(b.baseline)


def test_replicates_share_store_entries_with_plain_cells(tmp_path):
    """Seed replicates add no new cache keys: a later unreplicated run on
    the seeded trace is served entirely from the store."""
    session = Session(store=ResultStore(tmp_path / "store"), trace_length=LENGTH)
    replicated = session.run(
        session.experiment("rep")
        .with_traces("spec06/lbm-1")
        .with_prefetchers("stride")
        .with_seeds(2)
    )
    assert all(isinstance(c, ReplicatedCell) for c in
               session.experiment("rep").with_traces("spec06/lbm-1")
               .with_prefetchers("stride").with_seeds(2).cells())
    plain = session.run(
        session.experiment("plain")
        .with_traces("spec06/lbm-2")
        .with_prefetchers("stride")
    )
    assert plain.stats["simulated"] == 0
    assert plain[0].result is replicated.filter(seed=2)[0].result
