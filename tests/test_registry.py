"""Tests for the unified string-addressable registry (repro.registry)."""

import pytest

from repro import registry
from repro.sim.config import SystemConfig

pytestmark = pytest.mark.quick


def test_available_prefetchers_covers_paper_names():
    names = registry.available_prefetchers()
    assert {"none", "spp", "bingo", "mlop", "pythia", "st+s+b+d+m"} <= set(names)


def test_create_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown prefetcher"):
        registry.create("nonexistent")


def test_create_forwards_overrides_to_pythia():
    prefetcher = registry.create("pythia", alpha=0.08, epsilon=0.01)
    assert prefetcher.config.alpha == 0.08
    assert prefetcher.config.epsilon == 0.01


def test_create_accepts_full_config_object():
    from repro.core import PythiaConfig

    config = PythiaConfig.named("strict")
    prefetcher = registry.create("pythia", config=config)
    assert prefetcher.config is config


def test_create_fresh_instances():
    assert registry.create("stride") is not registry.create("stride")


def test_combo_rejects_overrides():
    with pytest.raises(TypeError):
        registry.create("st+s", degree=4)


def test_register_prefetcher_extension():
    from repro.prefetchers.base import NoPrefetcher

    registry.register_prefetcher("custom-test", NoPrefetcher)
    try:
        assert "custom-test" in registry.available_prefetchers()
        assert isinstance(registry.create("custom-test"), NoPrefetcher)
    finally:
        registry._EXTRA_PREFETCHERS.pop("custom-test")


def test_legacy_registry_module_still_works():
    from repro.prefetchers.registry import available, create

    assert "pythia" in available()
    assert create("none").name == "none"


def test_make_trace_handles_cvp_namespace():
    trace = registry.make_trace("cvp/fp-stencil-1", length=500)
    assert trace.suite == "CVP-FP"
    assert len(trace) == 500


def test_suite_of_without_generation():
    assert registry.suite_of("spec06/lbm-1") == "SPEC06"
    assert registry.suite_of("ligra/cc") == "LIGRA"
    assert registry.suite_of("cvp/server-db-2") == "CVP-SERVER"
    with pytest.raises(KeyError):
        registry.suite_of("nope/nothing-1")


def test_system_names_and_modifiers():
    assert registry.system("1c").num_cores == 1
    assert registry.system("4c").num_cores == 4
    assert registry.system("4c").dram.channels == 2
    modified = registry.system("1c@mtps=600,llc_scale=0.5")
    assert modified.dram.mtps == 600
    assert modified.llc.size_bytes == SystemConfig().llc.size_bytes // 2
    with pytest.raises(KeyError):
        registry.system("1c@bogus=1")
    with pytest.raises(KeyError):
        registry.system("warpcore")


def test_system_passthrough_and_registration():
    config = SystemConfig(num_cores=2)
    assert registry.system(config) is config
    registry.register_system("test-sys", lambda: SystemConfig(num_cores=8))
    try:
        assert registry.system("test-sys").num_cores == 8
        assert "test-sys" in registry.available_systems()
    finally:
        registry._EXTRA_SYSTEMS.pop("test-sys")


def test_trace_generation_is_process_stable():
    """Trace content must not depend on PYTHONHASHSEED (the store and the
    process-pool executor both require cross-process determinism)."""
    import pathlib
    import subprocess
    import sys

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    code = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.workloads.generators import generate_trace\n"
        "t = generate_trace('spec06/lbm-1', length=50)\n"
        "print([(r.pc, r.line) for r in t])\n"
    )
    outputs = {
        subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            cwd=repo_root,
        ).stdout
        for seed in ("1", "2")
    }
    assert len(outputs) == 1 and outputs != {""}
