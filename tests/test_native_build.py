"""Build-layer tests for the native replay kernel (ISSUE 10).

Pins the build cache's contracts rather than simulation semantics
(``tests/test_hotpath_equivalence.py`` owns bit-identity):

* the shared-object cache is keyed by the C source's CRC, so editing
  the source forces a rebuild and an untouched source is a cache hit;
* with no C compiler reachable, ``replay_backend="native"`` degrades
  transparently to the batched backend — the full ``Session`` path
  still runs and produces the batched result, with one logged notice;
* a corrupt cached ``.so`` is discarded and rebuilt, not fatal.

Every test resets the package's latched build/load state on the way in
and out so outcomes cannot leak between tests (or into other files).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import registry
from repro.sim import _native
from repro.sim._native import build
from repro.sim.config import SystemConfig
from repro.sim.system import simulate

pytestmark = pytest.mark.quick


@pytest.fixture(autouse=True)
def fresh_native_state(tmp_path, monkeypatch):
    """Isolate the build cache and un-latch load state around each test."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
    _native.reset()
    yield
    _native.reset()


def _config(backend: str) -> SystemConfig:
    return dataclasses.replace(SystemConfig(), replay_backend=backend)


TINY_KERNEL = b"""
#include <stdint.h>
int64_t repro_abi_sizeof(void) { return -1; }
int64_t repro_replay_span(void *args) { (void)args; return -2; }
"""


def test_build_caches_by_source_crc(tmp_path):
    if build.compiler() is None:
        pytest.skip("no C compiler on PATH")
    src = tmp_path / "tiny.c"
    out = tmp_path / "out"
    src.write_bytes(TINY_KERNEL)

    first = build.build(source=src, directory=out)
    assert first is not None and first.exists()
    assert build.was_rebuilt()

    # Unchanged source: cache hit, no recompile.
    again = build.build(source=src, directory=out)
    assert again == first
    assert not build.was_rebuilt()

    # Edited source: new CRC, new object file, recompiled.
    src.write_bytes(TINY_KERNEL + b"/* edited */\n")
    changed = build.build(source=src, directory=out)
    assert changed is not None and changed.exists()
    assert changed != first
    assert build.was_rebuilt()


def test_corrupt_cached_object_is_rebuilt():
    if build.compiler() is None:
        pytest.skip("no C compiler on PATH")
    so = build.build()
    assert so is not None
    # Truncate the cached object so dlopen fails; load() must discard
    # it and compile a fresh one instead of latching a failure.
    so.write_bytes(b"not an ELF object")
    assert _native.available()
    assert build.was_rebuilt()


def test_abi_mismatch_falls_back(monkeypatch, tmp_path):
    if build.compiler() is None:
        pytest.skip("no C compiler on PATH")
    # A kernel that loads but reports the wrong struct size must be
    # rejected by the bridge's ABI check, not trusted.
    src = tmp_path / "tiny.c"
    src.write_bytes(TINY_KERNEL)
    monkeypatch.setattr(build, "kernel_source_path", lambda: src)
    assert not _native.available()


def test_no_compiler_falls_back_to_batched(monkeypatch, caplog):
    # Mask the compiler: $CC wins over `cc` and points nowhere.
    monkeypatch.setenv("CC", "no-such-compiler-for-test")
    assert build.compiler() is None
    with caplog.at_level("INFO", logger="repro.sim.native"):
        assert not _native.available()
    assert any("no C compiler" in r.message for r in caplog.records)

    trace = registry.cached_trace("spec06/lbm-1", 2000)
    native = simulate(
        trace,
        config=_config("native"),
        prefetcher=registry.create("pythia"),
        warmup_fraction=0.2,
    )
    batched = simulate(
        trace,
        config=_config("batched"),
        prefetcher=registry.create("pythia"),
        warmup_fraction=0.2,
    )
    assert dataclasses.asdict(native) == dataclasses.asdict(batched)


def test_no_compiler_session_runs_transparently(monkeypatch, tmp_path):
    """The acceptance path: a full ``Session`` cell with
    ``replay_backend="native"`` and no compiler anywhere."""
    from repro.api import ResultStore, Session

    monkeypatch.setenv("CC", "no-such-compiler-for-test")
    session = Session(store=ResultStore(path=None), trace_length=2000)
    record = session.run_one("spec06/lbm-1", "pythia", system=_config("native"))
    reference = session.run_one("spec06/lbm-1", "pythia", system=_config("batched"))
    assert dataclasses.asdict(record.result) == dataclasses.asdict(reference.result)
