"""Tests for the MSHR file."""

import pytest

from repro.sim.mshr import MshrFile


def test_requires_positive_capacity():
    with pytest.raises(ValueError):
        MshrFile(0)


def test_allocate_and_reclaim():
    mshr = MshrFile(2)
    mshr.allocate(10, completion=100, is_prefetch=False)
    assert len(mshr) == 1
    assert mshr.outstanding(10) is not None
    mshr.reclaim(99)
    assert len(mshr) == 1
    mshr.reclaim(100)
    assert len(mshr) == 0
    assert mshr.outstanding(10) is None


def test_full_behaviour():
    mshr = MshrFile(2)
    mshr.allocate(1, 50, False)
    mshr.allocate(2, 80, True)
    assert mshr.is_full()
    with pytest.raises(RuntimeError):
        mshr.allocate(3, 90, False)
    assert mshr.earliest_completion() == 50


def test_merge_counts():
    mshr = MshrFile(4)
    mshr.allocate(5, 60, True)
    entry = mshr.merge(5)
    assert entry.completion == 60
    assert mshr.merged == 1


def test_earliest_completion_empty():
    mshr = MshrFile(1)
    with pytest.raises(RuntimeError):
        mshr.earliest_completion()
