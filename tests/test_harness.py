"""Tests for the harness layer: rollup helpers over Session records.

Execution behaviour (caching, baselines, mixes, replication) is covered
by ``test_api_session.py``/``test_search.py``/``test_replication.py``;
this module checks the rollup helpers against Session-produced records.
"""

import pytest

from repro.api import ResultStore, Session
from repro.harness import per_prefetcher_geomean, per_suite_geomean
from repro.harness.rollup import coverage_rollup, format_table, sorted_speedups


@pytest.fixture(scope="module")
def session():
    return Session(store=ResultStore(), trace_length=3000)


def test_run_record_metrics(session):
    record = session.run_one("spec06/lbm-1", "stride")
    assert record.suite == "SPEC06"
    assert record.speedup > 0
    assert -1.0 <= record.coverage <= 1.0


def test_cvp_namespace(session):
    record = session.run_one("cvp/fp-stencil-1", "stride")
    assert record.suite == "CVP-FP"


def test_synth_namespace(session):
    record = session.run_one("synth/llist-small-1", "stride")
    assert record.suite == "SYNTH"


def test_rollups(session):
    results = session.run(
        session.experiment("mini")
        .with_traces("spec06/lbm-1", "parsec/canneal-1")
        .with_prefetchers("stride", "spp")
    )
    records = list(results)
    flat = per_prefetcher_geomean(records)
    assert set(flat) == {"stride", "spp"}
    nested = per_suite_geomean(records)
    assert set(nested) == {"SPEC06", "PARSEC"}
    cov = coverage_rollup(records)
    assert "stride" in cov["SPEC06"]
    line = sorted_speedups(records, "spp")
    assert len(line) == 2
    assert line[0][1] <= line[1][1]


def test_format_table():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
