"""Tests for the experiment harness: runner, caching, rollups."""

import pytest

from repro.harness import Runner, per_prefetcher_geomean, per_suite_geomean
from repro.harness.experiment import ExperimentSpec
from repro.harness.rollup import coverage_rollup, format_table, sorted_speedups
from repro.sim.config import SystemConfig


@pytest.fixture(scope="module")
def runner():
    return Runner(trace_length=3000)


def test_trace_caching(runner):
    a = runner.trace("spec06/lbm-1")
    b = runner.trace("spec06/lbm-1")
    assert a is b


def test_baseline_caching(runner):
    config = SystemConfig()
    a = runner.baseline("spec06/lbm-1", config)
    b = runner.baseline("spec06/lbm-1", config)
    assert a is b


def test_baseline_not_shared_across_configs(runner):
    a = runner.baseline("spec06/lbm-1", SystemConfig())
    b = runner.baseline("spec06/lbm-1", SystemConfig().with_mtps(300))
    assert a is not b


def test_run_record_metrics(runner):
    record = runner.run("spec06/lbm-1", "stride")
    assert record.suite == "SPEC06"
    assert record.speedup > 0
    assert -1.0 <= record.coverage <= 1.0


def test_none_prefetcher_speedup_is_one(runner):
    record = runner.run("spec06/lbm-1", "none")
    assert record.speedup == pytest.approx(1.0)
    assert record.coverage == pytest.approx(0.0)


def test_cvp_namespace(runner):
    record = runner.run("cvp/fp-stencil-1", "stride")
    assert record.suite == "CVP-FP"


def test_run_experiment(runner):
    spec = ExperimentSpec(
        name="mini",
        trace_names=("spec06/lbm-1", "spec06/mcf-1"),
        prefetchers=("none", "stride"),
    )
    records = runner.run_experiment(spec)
    assert len(records) == 4


def test_rollups(runner):
    spec = ExperimentSpec(
        name="mini",
        trace_names=("spec06/lbm-1", "parsec/canneal-1"),
        prefetchers=("stride", "spp"),
    )
    records = runner.run_experiment(spec)
    flat = per_prefetcher_geomean(records)
    assert set(flat) == {"stride", "spp"}
    nested = per_suite_geomean(records)
    assert set(nested) == {"SPEC06", "PARSEC"}
    cov = coverage_rollup(records)
    assert "stride" in cov["SPEC06"]
    line = sorted_speedups(records, "spp")
    assert len(line) == 2
    assert line[0][1] <= line[1][1]


def test_run_mix(runner):
    from repro.sim.config import baseline_multi_core
    from repro.workloads import homogeneous_mix

    traces = homogeneous_mix("spec06/lbm", 2, length=2000)
    result, baseline = runner.run_mix(traces, "stride", baseline_multi_core(2))
    assert result.instructions > 0
    assert baseline.prefetcher_name == "none"


def test_format_table():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
