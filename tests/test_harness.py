"""Tests for the harness layer: rollups, legacy specs, deprecated shim.

Execution behaviour (caching, baselines, mixes) is covered by
``test_api_session.py``/``test_search.py``; this module checks the
rollup helpers against Session-produced records, the legacy
``ExperimentSpec`` bridge, and that the deprecated ``Runner`` stub still
forwards while warning.
"""

import pytest

from repro.api import ResultStore, Session
from repro.harness import Runner, per_prefetcher_geomean, per_suite_geomean
from repro.harness.experiment import ExperimentSpec
from repro.harness.rollup import coverage_rollup, format_table, sorted_speedups


@pytest.fixture(scope="module")
def session():
    return Session(store=ResultStore(), trace_length=3000)


def test_run_record_metrics(session):
    record = session.run_one("spec06/lbm-1", "stride")
    assert record.suite == "SPEC06"
    assert record.speedup > 0
    assert -1.0 <= record.coverage <= 1.0


def test_cvp_namespace(session):
    record = session.run_one("cvp/fp-stencil-1", "stride")
    assert record.suite == "CVP-FP"


def test_experiment_spec_bridge(session):
    spec = ExperimentSpec(
        name="mini",
        trace_names=("spec06/lbm-1", "spec06/mcf-1"),
        prefetchers=("none", "stride"),
        trace_length=3000,
    )
    records = session.run(spec)
    assert len(records) == 4


def test_rollups(session):
    results = session.run(
        session.experiment("mini")
        .with_traces("spec06/lbm-1", "parsec/canneal-1")
        .with_prefetchers("stride", "spp")
    )
    records = list(results)
    flat = per_prefetcher_geomean(records)
    assert set(flat) == {"stride", "spp"}
    nested = per_suite_geomean(records)
    assert set(nested) == {"SPEC06", "PARSEC"}
    cov = coverage_rollup(records)
    assert "stride" in cov["SPEC06"]
    line = sorted_speedups(records, "spp")
    assert len(line) == 2
    assert line[0][1] <= line[1][1]


def test_format_table():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]


# ---- the deprecated Runner stub -------------------------------------------


def test_runner_stub_warns_and_forwards(session):
    with pytest.deprecated_call():
        runner = Runner(session=session)
    record = runner.run("spec06/lbm-1", "stride")
    assert record.prefetcher == "stride"
    assert record.speedup > 0
    # The shim shares its session's store: no extra simulation happened.
    assert record.result is session.run_one("spec06/lbm-1", "stride").result


def test_runner_stub_mix_forwards(session):
    from repro.workloads import homogeneous_mix_names

    with pytest.deprecated_call():
        runner = Runner(session=session)
    names = homogeneous_mix_names("spec06/lbm", 2)
    result, baseline = runner.run_mix(names, "stride", "2c")
    assert result.instructions > 0
    assert baseline.prefetcher_name == "none"
    direct, _ = session.run_mix(names, "stride", "2c")
    assert direct is result
