"""Tests for the automated design-space exploration (§4.3)."""

import pytest

from repro.core.features import (
    BASIC_FEATURES,
    ControlFlow,
    DataFlow,
    FeatureSpec,
)
from repro.harness import Runner
from repro.tuning import (
    evaluate_feature_vector,
    feature_selection,
    grid_search_hyperparameters,
    grid_search_rewards,
    prune_actions,
)
from repro.tuning.feature_selection import candidate_vectors


@pytest.fixture(scope="module")
def runner():
    return Runner(trace_length=2500)


TRACES = ["spec06/lbm-1", "spec06/gemsfdtd-1"]


def test_candidate_vectors_counts():
    any1 = candidate_vectors(1)
    assert len(any1) == 31  # 32 minus the all-none feature
    any2 = candidate_vectors(2)
    assert len(any2) == 31 + 31 * 30 // 2


def test_evaluate_feature_vector(runner):
    score = evaluate_feature_vector(BASIC_FEATURES, TRACES, runner)
    assert score.geomean_speedup > 0
    assert "pc+delta" in score.label


def test_feature_selection_ranks(runner):
    vectors = [
        BASIC_FEATURES,
        (FeatureSpec(ControlFlow.PC, DataFlow.NONE),),
    ]
    scores = feature_selection(TRACES, runner, vectors=vectors)
    assert len(scores) == 2
    assert scores[0].geomean_speedup >= scores[1].geomean_speedup


def test_prune_actions_keeps_no_prefetch(runner):
    initial = (-3, -1, 0, 1, 3, 30)
    pruned, impacts = prune_actions(
        TRACES, initial, keep=4, runner=runner
    )
    assert 0 in pruned
    assert len(pruned) >= 4
    assert len(impacts) == len(initial) - 1  # all but action 0 evaluated


def test_grid_search_hyperparameters(runner):
    results = grid_search_hyperparameters(
        TRACES,
        alphas=(0.02,),
        gammas=(0.556,),
        epsilons=(0.005, 0.05),
        top_k=2,
        runner=runner,
    )
    assert len(results) == 2
    assert results[0].geomean_speedup >= results[1].geomean_speedup


def test_grid_search_rewards(runner):
    results = grid_search_rewards(
        TRACES,
        accurate_late_values=(8.0,),
        inaccurate_high_values=(-12.0,),
        no_prefetch_high_values=(0.0, -2.0),
        runner=runner,
    )
    assert len(results) == 2
    assert all(r.geomean_speedup > 0 for r in results)
