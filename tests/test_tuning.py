"""Tests for the automated design-space exploration (§4.3).

The tuning loops are thin layers over :mod:`repro.api.search`; they run
on a shared :class:`repro.api.Session` here so candidate evaluations and
baselines are cached across the module.
"""

import pytest

from repro.api import ResultStore, Session
from repro.core.features import (
    BASIC_FEATURES,
    ControlFlow,
    DataFlow,
    FeatureSpec,
)
from repro.tuning import (
    evaluate_feature_vector,
    feature_selection,
    grid_search_hyperparameters,
    grid_search_rewards,
    prune_actions,
)
from repro.tuning.feature_selection import candidate_vectors


@pytest.fixture(scope="module")
def session():
    return Session(store=ResultStore(), trace_length=2500)


TRACES = ["spec06/lbm-1", "spec06/gemsfdtd-1"]


def test_tuning_is_runner_free():
    """The loops must speak repro.api natively: no Runner imports."""
    import sys

    import repro.tuning.action_pruning
    import repro.tuning.feature_selection
    import repro.tuning.grid_search  # noqa: F401  (imported for the check)

    for name, module in sys.modules.items():
        if not (name or "").startswith("repro.tuning"):
            continue
        assert "Runner" not in vars(module), f"{name} imports Runner"
        assert not any(
            getattr(value, "__module__", "") == "repro.harness.runner"
            for value in vars(module).values()
        ), f"{name} imports from repro.harness.runner"


def test_candidate_vectors_counts():
    any1 = candidate_vectors(1)
    assert len(any1) == 31  # 32 minus the all-none feature
    any2 = candidate_vectors(2)
    assert len(any2) == 31 + 31 * 30 // 2


def test_evaluate_feature_vector(session):
    score = evaluate_feature_vector(BASIC_FEATURES, TRACES, session)
    assert score.geomean_speedup > 0
    assert "pc+delta" in score.label


def test_feature_selection_ranks(session):
    vectors = [
        BASIC_FEATURES,
        (FeatureSpec(ControlFlow.PC, DataFlow.NONE),),
    ]
    scores = feature_selection(TRACES, session, vectors=vectors)
    assert len(scores) == 2
    assert scores[0].geomean_speedup >= scores[1].geomean_speedup


def test_prune_actions_keeps_no_prefetch(session):
    initial = (-3, -1, 0, 1, 3, 30)
    pruned, impacts = prune_actions(
        TRACES, initial, keep=4, session=session
    )
    assert 0 in pruned
    assert len(pruned) >= 4
    assert len(impacts) == len(initial) - 1  # all but action 0 evaluated


def test_grid_search_hyperparameters(session):
    results = grid_search_hyperparameters(
        TRACES,
        alphas=(0.02,),
        gammas=(0.556,),
        epsilons=(0.005, 0.05),
        top_k=2,
        session=session,
    )
    assert len(results) == 2
    assert results[0].geomean_speedup >= results[1].geomean_speedup


def test_grid_search_phase2_reuses_phase1_scores():
    """Regression: with ``full_traces is test_traces`` phase 2 must not
    re-simulate the finalists — phase-1 scores are reused outright."""
    store = ResultStore()
    session = Session(store=store, trace_length=2000)
    puts_before = store.puts
    results = grid_search_hyperparameters(
        TRACES,
        full_traces=TRACES,
        alphas=(0.02,),
        gammas=(0.556,),
        epsilons=(0.005, 0.05),
        top_k=2,
        session=session,
    )
    # Phase 1: 2 grid cells per trace + 1 baseline per trace.
    assert store.puts - puts_before == len(TRACES) * 3
    assert len(results) == 2

    # The declarative search reports it explicitly too.
    search_result = (
        session.search("reuse")
        .over(epsilon=(0.005, 0.05))
        .with_prefetcher("pythia")
        .phase1(TRACES)
        .phase2(TRACES, top_k=1)
        .run()
    )
    assert search_result.stats["phase2"] == {
        "cells": 0,
        "simulated": 0,
        "cached": 0,
    }
    assert search_result.best.phase2_score == search_result.best.phase1_score


def test_grid_search_rewards(session):
    results = grid_search_rewards(
        TRACES,
        accurate_late_values=(8.0,),
        inaccurate_high_values=(-12.0,),
        no_prefetch_high_values=(0.0, -2.0),
        session=session,
    )
    assert len(results) == 2
    assert all(r.geomean_speedup > 0 for r in results)
