"""The invariant checker: rules, pragmas, baseline, CLI, and the gate.

Three layers of assurance:

* **fixture snippets** (``tests/data/lint/``) — each AST rule fires on
  its bad fixture, stays silent on the good one, and every suppression
  channel (trailing pragma, standalone pragma, baseline entry) holds;
* **introspection rules** — synthetic config dataclasses and slotted
  classes with deliberately broken pickle hooks are injected as rule
  roots, pinning each failure mode the rules exist to catch (callable
  / set / untyped fields reaching fingerprints; ``__getstate__``
  missing a slot; an unpicklable member in a checkpoint graph);
* **the real tree** — ``run(src/repro)`` with every rule and
  introspection on must come back clean, which is exactly the CI gate
  (``make lint``), so a regression in the tree and a regression in the
  checker are both loud.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import pytest

import repro
from repro.analysis import Baseline, Finding, PragmaIndex, run
from repro.analysis.__main__ import main
from repro.analysis.engine import module_name_of
from repro.analysis.rules.checkpoints import CheckpointCoverageRule
from repro.analysis.rules.fingerprints import FingerprintCompletenessRule

FIXTURES = Path(__file__).parent / "data" / "lint"
SRC_REPRO = Path(repro.__file__).parent


def run_fixture(name: str, module: str, rules=None, **kwargs):
    return run(
        [FIXTURES / name],
        rules=rules,
        module_override=module,
        introspect=False,
        **kwargs,
    )


def rules_fired(report) -> set[str]:
    return {f.rule for f in report.findings}


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_determinism_fires_on_every_violation_class():
    report = run_fixture("determinism_bad.py", "repro.sim.badfixture")
    messages = [f.message for f in report.findings if f.rule == "determinism"]
    assert any("hash()" in m for m in messages)
    assert any("random.random()" in m for m in messages)
    assert any("random.choice()" in m for m in messages)
    assert any("'time'" in m for m in messages)
    assert any("'datetime'" in m for m in messages)
    assert any("from random import randrange" in m for m in messages)


@pytest.mark.quick
def test_determinism_allows_seeded_random_and_crc():
    report = run_fixture("determinism_ok.py", "repro.sim.okfixture")
    assert report.findings == []


@pytest.mark.quick
def test_determinism_scoped_to_simulation_packages():
    # The identical source analyzed as a harness module is legal.
    report = run_fixture("determinism_bad.py", "repro.harness.timing")
    assert "determinism" not in rules_fired(report)


# ---------------------------------------------------------------------------
# hygiene
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_hygiene_mutable_defaults_and_unslotted_hot_dataclass():
    report = run_fixture("hygiene_bad.py", "repro.sim.cache")
    hygiene = [f for f in report.findings if f.rule == "hygiene"]
    mutable = [f for f in hygiene if "mutable default" in f.message]
    assert {m for f in mutable for m in [f.message.split(" in ")[1].split("(")[0]]} == {
        "accumulate",
        "tally",
        "collect",
    }
    assert any(
        "PerRecordThing" in f.message and "slots=True" in f.message for f in hygiene
    )


@pytest.mark.quick
def test_hygiene_slots_requirement_only_in_hot_modules():
    report = run_fixture("hygiene_bad.py", "repro.harness.rollup")
    hygiene = [f for f in report.findings if f.rule == "hygiene"]
    # Mutable defaults fire everywhere; the slots rule is hot-path only.
    assert all("mutable default" in f.message for f in hygiene)
    assert len(hygiene) == 3


# ---------------------------------------------------------------------------
# layering
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_layering_inversions_and_legacy_deep_path():
    report = run_fixture("layering_bad.py", "repro.sim.badfixture")
    layering = [f for f in report.findings if f.rule == "layering"]
    assert any("repro.api" in f.message and "inversion" in f.message for f in layering)
    assert any("repro.harness" in f.message for f in layering)
    assert any("legacy" in f.message for f in layering)
    # The function-scoped upward import is the sanctioned escape hatch.
    assert not any("ResultStore" in f.message for f in layering)


@pytest.mark.quick
def test_layering_deep_path_banned_even_downhill():
    # harness outranks prefetchers, so only the deep-path ban fires.
    report = run_fixture("layering_bad.py", "repro.harness.badfixture")
    layering = [f for f in report.findings if f.rule == "layering"]
    assert len(layering) == 1 and "legacy" in layering[0].message


# ---------------------------------------------------------------------------
# batching
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_batching_fires_on_record_construction_in_replay_packages():
    for module in ("repro.sim.badfixture", "repro.core.badfixture"):
        report = run_fixture("batching_bad.py", module)
        batching = [f for f in report.findings if f.rule == "batching"]
        # Both the bare and the attribute-qualified construction fire.
        assert len(batching) == 2
        assert all("struct-of-arrays" in f.message for f in batching)


@pytest.mark.quick
def test_batching_allows_annotations_and_isinstance():
    report = run_fixture("batching_ok.py", "repro.sim.okfixture")
    assert "batching" not in rules_fired(report)


@pytest.mark.quick
def test_batching_scoped_to_replay_packages_and_trace_module():
    # Producers (workloads) may build records...
    report = run_fixture("batching_bad.py", "repro.workloads.generators")
    assert "batching" not in rules_fired(report)
    # ...and so may the defining module itself.
    report = run_fixture("batching_bad.py", "repro.sim.trace")
    assert "batching" not in rules_fired(report)


# ---------------------------------------------------------------------------
# native
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_native_fires_on_ctypes_outside_the_native_package():
    report = run_fixture("native_bad.py", "repro.sim.badfixture")
    native = [f for f in report.findings if f.rule == "native"]
    # Both the bare import and the from-import fire.
    assert len(native) == 2
    assert all("repro.sim._native" in f.message for f in native)


@pytest.mark.quick
def test_native_allows_ctypes_inside_the_native_package():
    report = run_fixture("native_ok.py", "repro.sim._native.okfixture")
    assert "native" not in rules_fired(report)


@pytest.mark.quick
def test_native_crc_pin_detects_kernel_drift(tmp_path):
    kernel = tmp_path / "kernel.c"
    kernel.write_bytes(b"int kernel(void) { return 0; }\n")
    import zlib

    crc = zlib.crc32(kernel.read_bytes()) & 0xFFFFFFFF
    build = tmp_path / "build.py"

    build.write_text(f"KERNEL_SOURCE_CRC = 0x{crc:08X}\n")
    report = run(
        [build], module_override="repro.sim._native.build", introspect=False
    )
    assert "native" not in rules_fired(report)

    build.write_text(f"KERNEL_SOURCE_CRC = 0x{crc ^ 1:08X}\n")
    report = run(
        [build], module_override="repro.sim._native.build", introspect=False
    )
    messages = [f.message for f in report.findings if f.rule == "native"]
    assert any("stale-binding guard" in m for m in messages)

    build.write_text("OTHER = 1\n")
    report = run(
        [build], module_override="repro.sim._native.build", introspect=False
    )
    messages = [f.message for f in report.findings if f.rule == "native"]
    assert any("must pin KERNEL_SOURCE_CRC" in m for m in messages)


@pytest.mark.quick
def test_native_crc_pin_matches_the_committed_kernel():
    # The real build module's pinned constant must match the shipped
    # kernel.c — this is the check CI relies on.
    report = run(
        [SRC_REPRO / "sim" / "_native" / "build.py"],
        module_override="repro.sim._native.build",
        introspect=False,
    )
    assert "native" not in rules_fired(report)


# ---------------------------------------------------------------------------
# pragmas and baseline
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_pragmas_suppress_trailing_standalone_and_multirule():
    report = run_fixture("pragma_ok.py", "repro.sim.fixture")
    assert report.findings == []
    assert report.suppressed == 3


@pytest.mark.quick
def test_unused_pragma_is_reported():
    report = run_fixture("pragma_unused.py", "repro.sim.fixture")
    assert rules_fired(report) == {"unused-pragma"}


@pytest.mark.quick
def test_standalone_pragma_above_decorators_governs_the_def(tmp_path):
    # The pragma rides above the decorator stack but must govern the
    # decorated statement, not the decorator line.
    source = (
        "import functools\n"
        "\n"
        "# repro: ignore[hygiene]\n"
        "@functools.lru_cache\n"
        "@functools.wraps(print)\n"
        "def collect(into=[]):\n"
        "    return into\n"
    )
    index = PragmaIndex(source)
    assert index.suppresses(6, "hygiene")  # the def line
    assert not index.suppresses(4, "hygiene")  # not the decorator

    fixture = tmp_path / "decorated.py"
    fixture.write_text(source)
    report = run([fixture], module_override="repro.sim.fixture", introspect=False)
    assert report.findings == []
    assert report.suppressed == 1


@pytest.mark.quick
def test_pragma_entries_round_trip():
    # The cache's warm path rebuilds indexes from serialized entries;
    # suppression and unused-pragma bookkeeping must survive the trip.
    source = (
        "x = eval('1')  # repro: ignore[hygiene]\n"
        "# repro: ignore[determinism]\n"
        "y = 2\n"
    )
    index = PragmaIndex(source)
    rebuilt = PragmaIndex.from_entries(index.entries())
    assert rebuilt.suppresses(1, "hygiene")
    assert rebuilt.suppresses(3, "determinism")
    assert not rebuilt.suppresses(2, "determinism")
    # `suppresses` marks pragmas used; a fresh rebuild is all-unused.
    untouched = PragmaIndex.from_entries(index.entries())
    assert {tuple(sorted(p.rules)) for p in untouched.unused()} == {
        ("determinism",),
        ("hygiene",),
    }


@pytest.mark.quick
def test_pragma_examples_in_docstrings_are_inert():
    index = PragmaIndex('"""docs: # repro: ignore[determinism]"""\nx = 1\n')
    assert not index.suppresses(1, "determinism")
    assert not index.suppresses(2, "determinism")


@pytest.mark.quick
def test_baseline_suppresses_and_reports_stale(tmp_path):
    report = run_fixture("determinism_bad.py", "repro.sim.badfixture")
    assert report.findings
    baseline_file = tmp_path / "baseline.json"
    Baseline.save(baseline_file, report.findings)

    grandfathered = run_fixture(
        "determinism_bad.py",
        "repro.sim.badfixture",
        baseline=Baseline.load(baseline_file),
    )
    assert grandfathered.findings == []
    assert grandfathered.suppressed == len(report.findings)

    # An entry that no longer fires must decay loudly.
    stale = run_fixture(
        "determinism_ok.py",
        "repro.sim.okfixture",
        baseline=Baseline.load(baseline_file),
    )
    assert rules_fired(stale) == {"stale-baseline"}


# ---------------------------------------------------------------------------
# fingerprint completeness (introspection)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _NestedCfg:
    depth: int = 3


@dataclass(frozen=True)
class _GoodCfg:
    name: str = "x"
    weights: tuple[float, ...] = (1.0,)
    nested: _NestedCfg = field(default_factory=_NestedCfg)
    table: dict[str, int] = field(default_factory=dict)
    maybe: int | None = None
    impl: str = field(default="auto", metadata={"semantic": False})


@dataclass(frozen=True)
class _BadCfg:
    score_fn: Callable[[int], float] = max
    tags: set[str] = field(default_factory=set)
    blob: Any = None
    # Tagged non-semantic: exempt even though a callable.
    hook: Callable[[], None] = field(default=print, metadata={"semantic": False})


class _NotADataclassCfg:
    pass


@pytest.mark.quick
def test_fingerprint_rule_accepts_stable_config_tree():
    assert list(FingerprintCompletenessRule(roots=[_GoodCfg]).check()) == []


@pytest.mark.quick
def test_fingerprint_rule_flags_unstable_fields():
    findings = list(FingerprintCompletenessRule(roots=[_BadCfg]).check())
    flagged = {f.message.split(":")[0].split(".")[-1] for f in findings}
    assert flagged == {"score_fn", "tags", "blob"}


@pytest.mark.quick
def test_fingerprint_rule_flags_non_dataclass_roots():
    findings = list(FingerprintCompletenessRule(roots=[_NotADataclassCfg]).check())
    assert len(findings) == 1 and "not a dataclass" in findings[0].message


# ---------------------------------------------------------------------------
# checkpoint coverage (introspection)
# ---------------------------------------------------------------------------


class _SlottedGood:
    __slots__ = ("a", "b")

    def __init__(self) -> None:
        self.a, self.b = 1, 2


class _SlottedPartialGetstate:
    __slots__ = ("a", "b")

    def __init__(self) -> None:
        self.a, self.b = 1, 2

    def __getstate__(self):
        return {"a": self.a}

    def __setstate__(self, state) -> None:
        self.a = state["a"]


class _SlottedNoSetstate:
    __slots__ = ("a",)

    def __init__(self) -> None:
        self.a = 1

    def __getstate__(self):
        return {"a": self.a}


class _Unpicklable:
    def __init__(self) -> None:
        self.hook = lambda: None


@pytest.mark.quick
def test_checkpoint_rule_accepts_clean_graph():
    graph = ("good", (_SlottedGood(), [1, 2], {"k": _SlottedGood()}))
    assert list(CheckpointCoverageRule(graphs=[graph]).check()) == []


@pytest.mark.quick
def test_checkpoint_rule_flags_getstate_missing_a_slot():
    findings = list(
        CheckpointCoverageRule(graphs=[("partial", _SlottedPartialGetstate())]).check()
    )
    assert any("does not cover slot 'b'" in f.message for f in findings)
    assert not any("slot 'a'" in f.message for f in findings)


@pytest.mark.quick
def test_checkpoint_rule_flags_missing_setstate():
    findings = list(
        CheckpointCoverageRule(graphs=[("nosetstate", _SlottedNoSetstate())]).check()
    )
    assert any("no __setstate__" in f.message for f in findings)


@pytest.mark.quick
def test_checkpoint_rule_flags_unpicklable_member():
    findings = list(
        CheckpointCoverageRule(graphs=[("lambda", _Unpicklable())]).check()
    )
    assert any("does not pickle round-trip" in f.message for f in findings)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


@pytest.mark.quick
def test_cli_exit_codes_and_json(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # no committed baseline in reach
    bad = FIXTURES / "determinism_bad.py"
    # Fixture paths carry no repro module prefix, so package-scoped
    # rules skip them unless the tree is laid out as repro/... — build
    # a tiny repro-shaped tree to exercise the real path derivation.
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "badfixture.py").write_text(bad.read_text())

    assert main([str(pkg), "--no-introspect", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert all(f["rule"] == "determinism" for f in payload["findings"])
    assert payload["findings"][0]["line"] > 0

    clean = FIXTURES / "determinism_ok.py"
    (pkg / "badfixture.py").write_text(clean.read_text())
    assert main([str(pkg), "--no-introspect"]) == 0
    assert "clean" in capsys.readouterr().out


@pytest.mark.quick
def test_cli_update_baseline_then_gate(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "fixture.py").write_text((FIXTURES / "determinism_bad.py").read_text())
    baseline = tmp_path / "baseline.json"

    args = [str(pkg), "--no-introspect", "--baseline", str(baseline)]
    assert main(args + ["--update-baseline"]) == 0
    assert baseline.exists()
    capsys.readouterr()
    # Grandfathered: same tree now passes against the recorded baseline.
    assert main(args) == 0
    assert "suppressed" in capsys.readouterr().out


@pytest.mark.quick
def test_cli_rejects_unknown_rules():
    with pytest.raises(SystemExit):
        main(["--rules", "no-such-rule"])


@pytest.mark.quick
def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("determinism", "fingerprint", "checkpoint", "layering", "hygiene"):
        assert rule in out


@pytest.mark.quick
def test_module_name_derivation():
    assert module_name_of(Path("src/repro/sim/cache.py")) == "repro.sim.cache"
    assert module_name_of(Path("src/repro/api/__init__.py")) == "repro.api"
    assert module_name_of(Path("elsewhere/module.py")) is None


# ---------------------------------------------------------------------------
# the real tree: the CI gate
# ---------------------------------------------------------------------------


def test_full_tree_is_clean_including_introspection():
    """`python -m repro.analysis src/repro` must exit 0 on this tree.

    This is the committed-baseline-stays-empty guarantee: every rule
    (AST and introspection) over the real package, no suppressions
    needed.  Introspection warms a real replay graph per registered
    prefetcher, so this also pins "every prefetcher checkpoints".
    """
    report = run([SRC_REPRO], baseline=Baseline(), introspect=True)
    assert report.findings == []
    assert report.files_checked > 50
