"""Tests for LRU and SHiP replacement policies."""

import pytest

from repro.sim.replacement import LruPolicy, ShipPolicy, make_policy


def test_make_policy():
    assert isinstance(make_policy("lru"), LruPolicy)
    assert isinstance(make_policy("ship"), ShipPolicy)
    with pytest.raises(ValueError):
        make_policy("plru")


class TestLru:
    def test_prefers_invalid_way(self):
        policy = LruPolicy()
        meta = [5, 1, 9]
        valid = [True, False, True]
        assert policy.victim(meta, valid) == 1

    def test_evicts_least_recent(self):
        policy = LruPolicy()
        meta = [policy.new_meta() for _ in range(4)]
        valid = [True] * 4
        for tick, way in enumerate([0, 1, 2, 3]):
            policy.on_fill(meta, way, pc=0, is_prefetch=False, tick=tick)
        policy.on_hit(meta, 0, pc=0, tick=10)
        assert policy.victim(meta, valid) == 1

    def test_hit_promotes(self):
        policy = LruPolicy()
        meta = [1, 2]
        policy.on_hit(meta, 0, pc=0, tick=99)
        assert policy.victim(meta, [True, True]) == 1


class TestShip:
    def test_fill_sets_rrpv(self):
        policy = ShipPolicy()
        meta = [policy.new_meta() for _ in range(2)]
        policy.on_fill(meta, 0, pc=0x400, is_prefetch=False, tick=0)
        assert meta[0]["rrpv"] == ShipPolicy.RRPV_MAX - 1

    def test_prefetch_inserts_distant(self):
        policy = ShipPolicy()
        meta = [policy.new_meta() for _ in range(2)]
        policy.on_fill(meta, 0, pc=0x400, is_prefetch=True, tick=0)
        assert meta[0]["rrpv"] == ShipPolicy.RRPV_MAX

    def test_hit_resets_rrpv_and_trains(self):
        policy = ShipPolicy()
        meta = [policy.new_meta()]
        policy.on_fill(meta, 0, pc=0x400, is_prefetch=False, tick=0)
        sig = meta[0]["sig"]
        before = policy._shct[sig]
        policy.on_hit(meta, 0, pc=0x400, tick=1)
        assert meta[0]["rrpv"] == 0
        assert policy._shct[sig] == min(ShipPolicy.SHCT_MAX, before + 1)

    def test_victim_ages_until_distant(self):
        policy = ShipPolicy()
        meta = [policy.new_meta() for _ in range(2)]
        for way in range(2):
            policy.on_fill(meta, way, pc=0x400, is_prefetch=False, tick=way)
            policy.on_hit(meta, way, pc=0x400, tick=way + 10)
        victim = policy.victim(meta, [True, True])
        assert victim in (0, 1)

    def test_unreused_eviction_decrements_shct(self):
        policy = ShipPolicy()
        meta = [policy.new_meta()]
        policy.on_fill(meta, 0, pc=0x888, is_prefetch=False, tick=0)
        sig = meta[0]["sig"]
        before = policy._shct[sig]
        policy.on_evict(meta, 0, was_reused=False)
        assert policy._shct[sig] == max(0, before - 1)

    def test_untrained_signature_inserts_distant(self):
        policy = ShipPolicy()
        meta = [policy.new_meta()]
        pc = 0x123
        sig = policy._signature(pc)
        policy._shct[sig] = 0
        policy.on_fill(meta, 0, pc=pc, is_prefetch=False, tick=0)
        assert meta[0]["rrpv"] == ShipPolicy.RRPV_MAX
