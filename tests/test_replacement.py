"""Tests for LRU and SHiP replacement policies.

Policies only ever see full sets: the cache consumes invalid ways from
its per-set free pool before consulting ``victim`` (covered by
``tests/test_cache.py``), so ``victim(meta)`` takes no validity list.
"""

import pytest

from repro.sim.replacement import LruPolicy, ShipMeta, ShipPolicy, make_policy


def test_make_policy():
    assert isinstance(make_policy("lru"), LruPolicy)
    assert isinstance(make_policy("ship"), ShipPolicy)
    with pytest.raises(ValueError):
        make_policy("plru")


class TestLru:
    def test_evicts_least_recent(self):
        policy = LruPolicy()
        meta = [policy.new_meta() for _ in range(4)]
        for tick, way in enumerate([0, 1, 2, 3]):
            policy.on_fill(meta, way, pc=0, is_prefetch=False, tick=tick)
        policy.on_hit(meta, 0, pc=0, tick=10)
        assert policy.victim(meta) == 1

    def test_hit_promotes(self):
        policy = LruPolicy()
        meta = [1, 2]
        policy.on_hit(meta, 0, pc=0, tick=99)
        assert policy.victim(meta) == 1

    def test_tie_breaks_to_lowest_way(self):
        policy = LruPolicy()
        meta = [7, 3, 3, 9]
        assert policy.victim(meta) == 1


class TestShip:
    def test_fill_sets_rrpv(self):
        policy = ShipPolicy()
        meta = [policy.new_meta() for _ in range(2)]
        policy.on_fill(meta, 0, pc=0x400, is_prefetch=False, tick=0)
        assert meta[0].rrpv == ShipPolicy.RRPV_MAX - 1

    def test_prefetch_inserts_distant(self):
        policy = ShipPolicy()
        meta = [policy.new_meta() for _ in range(2)]
        policy.on_fill(meta, 0, pc=0x400, is_prefetch=True, tick=0)
        assert meta[0].rrpv == ShipPolicy.RRPV_MAX

    def test_hit_resets_rrpv_and_trains(self):
        policy = ShipPolicy()
        meta = [policy.new_meta()]
        policy.on_fill(meta, 0, pc=0x400, is_prefetch=False, tick=0)
        sig = meta[0].sig
        before = policy._shct[sig]
        policy.on_hit(meta, 0, pc=0x400, tick=1)
        assert meta[0].rrpv == 0
        assert policy._shct[sig] == min(ShipPolicy.SHCT_MAX, before + 1)

    def test_victim_ages_until_distant(self):
        policy = ShipPolicy()
        meta = [policy.new_meta() for _ in range(2)]
        for way in range(2):
            policy.on_fill(meta, way, pc=0x400, is_prefetch=False, tick=way)
            policy.on_hit(meta, way, pc=0x400, tick=way + 10)
        victim = policy.victim(meta)
        assert victim in (0, 1)
        # Aging saturated the chosen way at exactly RRPV_MAX.
        assert meta[victim].rrpv == ShipPolicy.RRPV_MAX

    def test_incremental_aging_matches_scan_loop(self):
        """One-pass victim == the textbook scan-and-increment rounds."""
        policy = ShipPolicy()
        meta = [ShipMeta(rrpv=r, sig=0, reused=False) for r in (1, 2, 0, 2)]
        reference = [e.rrpv for e in meta]
        victim = policy.victim(meta)
        # Reference: age everything until the first way reaches RRPV_MAX.
        while not any(r >= ShipPolicy.RRPV_MAX for r in reference):
            reference = [r + 1 for r in reference]
        expected_way = next(
            i for i, r in enumerate(reference) if r >= ShipPolicy.RRPV_MAX
        )
        assert victim == expected_way == 1
        assert [e.rrpv for e in meta] == reference

    def test_unreused_eviction_decrements_shct(self):
        policy = ShipPolicy()
        meta = [policy.new_meta()]
        policy.on_fill(meta, 0, pc=0x888, is_prefetch=False, tick=0)
        sig = meta[0].sig
        before = policy._shct[sig]
        policy.on_evict(meta, 0, was_reused=False)
        assert policy._shct[sig] == max(0, before - 1)

    def test_untrained_signature_inserts_distant(self):
        policy = ShipPolicy()
        meta = [policy.new_meta()]
        pc = 0x123
        sig = policy._signature(pc)
        policy._shct[sig] = 0
        policy.on_fill(meta, 0, pc=pc, is_prefetch=False, tick=0)
        assert meta[0].rrpv == ShipPolicy.RRPV_MAX
