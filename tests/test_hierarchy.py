"""Tests for the cache hierarchy: demand path, prefetch issue and fills."""

from repro.prefetchers.base import DemandContext, Prefetcher
from repro.sim.config import SystemConfig
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.trace import TraceRecord
from repro.types import make_line


class FixedPrefetcher(Prefetcher):
    """Test helper: always prefetches the configured offsets ahead."""

    name = "fixed"

    def __init__(self, offsets):
        self.offsets = offsets
        self.fills = []
        self.useful = []
        self.useless = []

    def train(self, ctx: DemandContext):
        return [ctx.line + o for o in self.offsets]

    def on_prefetch_fill(self, line, cycle):
        self.fills.append(line)

    def on_demand_hit_prefetched(self, line, cycle):
        self.useful.append(line)

    def on_prefetch_useless(self, line, cycle):
        self.useless.append(line)


def record(line, pc=0x400):
    return TraceRecord(pc=pc, line=line, is_load=True, gap=4)


def test_demand_miss_goes_to_dram():
    h = CacheHierarchy(SystemConfig())
    completion = h.demand_access(record(make_line(10, 0)), now=0)
    assert completion > h.llc.latency
    assert h.dram.demand_requests == 1
    assert h.llc.stats.load_misses == 1


def test_demand_hit_after_fill():
    h = CacheHierarchy(SystemConfig())
    line = make_line(10, 0)
    h.demand_access(record(line), now=0)
    completion = h.demand_access(record(line), now=1000)
    assert completion == 1000 + h.l1.latency
    assert h.dram.demand_requests == 1


def test_prefetch_issued_and_fills_l2_llc():
    h = CacheHierarchy(SystemConfig(), FixedPrefetcher([1]))
    line = make_line(10, 0)
    h.demand_access(record(line), now=0)
    assert h.prefetches_issued == 1
    assert h.dram.prefetch_requests == 1
    h.process_fills(now=10_000)
    assert h.l2.probe(line + 1)
    assert h.llc.probe(line + 1)
    assert not h.l1.probe(line + 1)  # L2-level prefetcher does not fill L1
    assert h.prefetcher.fills == [line + 1]


def test_timely_prefetch_hits_in_l2():
    h = CacheHierarchy(SystemConfig(), FixedPrefetcher([1]))
    line = make_line(10, 0)
    h.demand_access(record(line), now=0)
    completion = h.demand_access(record(line + 1), now=10_000)
    assert completion == 10_000 + h.l2.latency
    assert h.prefetcher.useful == [line + 1]


def test_late_prefetch_merges():
    h = CacheHierarchy(SystemConfig(), FixedPrefetcher([1]))
    line = make_line(10, 0)
    h.demand_access(record(line), now=0)
    # Demand the prefetched line immediately: the prefetch is in flight.
    completion = h.demand_access(record(line + 1), now=1)
    assert h.late_prefetch_merges == 1
    assert completion > 1 + h.l2.latency  # waits remaining latency
    # The merged demand must not create its own DRAM read: the only
    # reads are the first demand and the two trained prefetches.
    assert h.dram.demand_requests == 1
    # Merged-covered miss: not counted as an LLC load miss.
    assert h.llc.stats.load_misses == 1


def test_out_of_page_prefetches_dropped():
    h = CacheHierarchy(SystemConfig(), FixedPrefetcher([64]))  # next page
    h.demand_access(record(make_line(10, 0)), now=0)
    assert h.prefetches_issued == 0
    assert h.dram.prefetch_requests == 0


def test_degree_cap_enforced():
    config = SystemConfig(max_prefetch_degree=2)
    h = CacheHierarchy(config, FixedPrefetcher([1, 2, 3, 4, 5]))
    h.demand_access(record(make_line(10, 0)), now=0)
    assert h.prefetches_issued == 2


def test_duplicate_prefetches_filtered():
    h = CacheHierarchy(SystemConfig(), FixedPrefetcher([1, 1, 1]))
    h.demand_access(record(make_line(10, 0)), now=0)
    assert h.prefetches_issued == 1


def test_cached_lines_not_prefetched():
    h = CacheHierarchy(SystemConfig(), FixedPrefetcher([1]))
    line = make_line(10, 0)
    h.demand_access(record(line + 1), now=0)       # caches line+1, prefetches line+2
    issued_before = h.prefetches_issued
    h.demand_access(record(line), now=10_000)      # candidate line+1 is cached
    assert h.prefetches_issued == issued_before


def test_useless_prefetch_eviction_callback():
    # Tiny LLC: prefetched lines get evicted unused.
    import dataclasses
    config = SystemConfig()
    config = dataclasses.replace(
        config,
        llc=dataclasses.replace(config.llc, size_bytes=8 * 64 * 16),
    )
    pf = FixedPrefetcher([1])
    h = CacheHierarchy(config, pf)
    for i in range(64):
        h.demand_access(record(make_line(100 + i, 0)), now=i * 5000)
    assert pf.useless  # some prefetched lines evicted without use


def test_l1_prefetcher_fills_l1():
    h = CacheHierarchy(
        SystemConfig(), l1_prefetcher=FixedPrefetcher([1])
    )
    line = make_line(20, 0)
    h.demand_access(record(line), now=0)
    assert h.l1.probe(line + 1)
