#!/usr/bin/env python
"""Line coverage for the API + workloads surface, stdlib-only.

The container has no ``pytest-cov``/``coverage`` wheel, so this is a
small self-contained tracer with the same report shape: per-file
``Stmts / Miss / Cover / Missing`` (term-missing style) plus per-package
totals.  It runs a fixed, fast test selection (the suites that exercise
``repro.api`` and ``repro.workloads``) in-process under ``sys.settrace``
and compares the package percentages against the recorded floor in
``scripts/coverage_floor.json`` — CI fails when coverage drops below the
floor (see ``scripts/ci.sh`` / ``make coverage``).

Usage::

    python scripts/coverage.py              # report + floor check
    python scripts/coverage.py --update-floor   # re-record the floor
                                                # (measured minus margin)

Mechanics and caveats:

* Executable lines come from the compiled code objects' ``co_lines``
  tables — the same line table ``settrace`` events derive from, so the
  two sides agree by construction.  ``if TYPE_CHECKING:`` bodies and
  lines/blocks marked ``# pragma: no cover`` are excluded, mirroring
  coverage.py's defaults.
* Work shipped to :class:`ProcessPoolExecutor` workers runs in child
  processes the tracer cannot see; the serial executor paths cover the
  same simulation lines, so the floor is recorded accordingly.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import threading
from pathlib import Path
from types import CodeType, FrameType

REPO = Path(__file__).resolve().parent.parent
FLOOR_FILE = REPO / "scripts" / "coverage_floor.json"

#: Targets the floor is enforced on (repo-relative).  Directories
#: aggregate every ``.py`` under them; a ``.py`` entry records its own
#: floor (the engine module gets one beside its package, since it is
#: the resumable-replay core the ISSUE 5 refactor added).
TARGET_PACKAGES = [
    "src/repro/analysis",
    "src/repro/api",
    "src/repro/workloads",
    "src/repro/sim",
    "src/repro/sim/engine.py",
]

#: Margin subtracted from the measured percentage when recording a new
#: floor — room for innocuous drift without letting real regressions in.
FLOOR_MARGIN = 2.0

#: The test selection run under the tracer: every suite that drives the
#: API or workloads layers, small-trace and fast.  Deliberately explicit
#: (not "everything") so the traced run stays well under a minute.
COVERAGE_TESTS = [
    "tests/test_analysis.py",
    "tests/test_project_rules.py",
    "tests/test_lint_cache.py",
    "tests/test_api_session.py",
    "tests/test_search.py",
    "tests/test_registry.py",
    "tests/test_ingest.py",
    "tests/test_replication.py",
    "tests/test_generators.py",
    "tests/test_patterns.py",
    "tests/test_trace.py",
    "tests/test_harness.py",
    "tests/test_figures.py",
    "tests/test_tuning.py",
    # src/repro/sim drivers: the structural unit suites plus the engine
    # suite (windows, checkpoints, resume).  Kept to the small-trace
    # tests — per-line tracing multiplies simulation cost, so the long
    # replay tiers stay out of the traced run.
    "tests/test_system.py",
    "tests/test_engine.py",
    "tests/test_batch.py",
    "tests/test_native_build.py",
    "tests/test_native_bridge.py",
    "tests/test_cache.py",
    "tests/test_dram.py",
    "tests/test_mshr.py",
    "tests/test_core_model.py",
    "tests/test_hierarchy.py",
    "tests/test_replacement.py",
    "tests/test_metrics.py",
]


def _have_compiler() -> bool:
    import os
    import shutil

    return shutil.which(os.environ.get("CC", "cc")) is not None


def target_files() -> list[Path]:
    files: dict[Path, None] = {}
    # Without a C compiler the native bridge is unreachable (its suites
    # skip and the engine stays on the batched backend), so its lines
    # would read as misses on a box that cannot execute them.
    skip_native = not _have_compiler()
    if skip_native:
        print(
            "coverage: NOTICE: no C compiler — src/repro/sim/_native "
            "excluded from the measured set"
        )
    for package in TARGET_PACKAGES:
        root = REPO / package
        if root.suffix == ".py":
            files.setdefault(root)
        else:
            for file in sorted(root.rglob("*.py")):
                if skip_native and "_native" in file.parts:
                    continue
                files.setdefault(file)
    return list(files)


def _excluded_lines(tree: ast.Module, source_lines: list[str]) -> set[int]:
    """Lines not expected to execute: TYPE_CHECKING bodies and
    ``# pragma: no cover`` lines/blocks."""
    excluded: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If):
            test = node.test
            name = getattr(test, "id", getattr(test, "attr", None))
            if name == "TYPE_CHECKING":
                for child in node.body:
                    excluded.update(range(child.lineno, (child.end_lineno or child.lineno) + 1))
        lineno = getattr(node, "lineno", None)
        if lineno is not None and "pragma: no cover" in source_lines[lineno - 1]:
            excluded.update(range(node.lineno, (node.end_lineno or node.lineno) + 1))
    return excluded


def executable_lines(path: Path) -> set[int]:
    """All lines the interpreter can emit trace events for, minus
    exclusions."""
    source = path.read_text()
    code = compile(source, str(path), "exec")
    lines: set[int] = set()
    stack: list[CodeType] = [code]
    while stack:
        current = stack.pop()
        lines.update(line for _, _, line in current.co_lines() if line)
        stack.extend(c for c in current.co_consts if isinstance(c, CodeType))
    excluded = _excluded_lines(ast.parse(source), source.splitlines())
    return lines - excluded


class Tracer:
    """Per-file line collection restricted to the target set."""

    def __init__(self, targets: set[str]) -> None:
        self.targets = targets
        self.seen: dict[str, set[int]] = {t: set() for t in targets}

    def global_trace(self, frame: FrameType, event: str, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if filename in self.targets:
            self.seen[filename].add(frame.f_lineno)
            return self.local_trace
        return None

    def local_trace(self, frame: FrameType, event: str, arg):
        if event == "line":
            self.seen[frame.f_code.co_filename].add(frame.f_lineno)
        return self.local_trace

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def _ranges(lines: list[int]) -> str:
    """Compress sorted line numbers into ``a-b, c`` range notation."""
    out: list[str] = []
    start = prev = None
    for line in lines:
        if start is None:
            start = prev = line
        elif line == prev + 1:
            prev = line
        else:
            out.append(f"{start}-{prev}" if prev > start else str(start))
            start = prev = line
    if start is not None:
        out.append(f"{start}-{prev}" if prev > start else str(start))
    return ", ".join(out)


def run(update_floor: bool) -> int:
    files = target_files()
    targets = {str(f): f for f in files}
    tracer = Tracer(set(targets))

    tracer.install()
    try:
        import pytest

        exit_code = pytest.main(["-q", "-p", "no:cacheprovider", *COVERAGE_TESTS])
    finally:
        tracer.uninstall()
    if exit_code != 0:
        print(f"coverage: traced test run failed (pytest exit {exit_code})")
        return int(exit_code)

    per_package: dict[str, list[int]] = {p: [0, 0] for p in TARGET_PACKAGES}
    width = max(len(str(f.relative_to(REPO))) for f in files)
    print(f"\n{'Name'.ljust(width)}  Stmts  Miss  Cover  Missing")
    print("-" * (width + 40))
    for filename, path in sorted(targets.items()):
        statements = executable_lines(path)
        missed = sorted(statements - tracer.seen[filename])
        # A file may feed several targets (its package, plus its own
        # entry when floored individually, e.g. the engine module).
        for package in TARGET_PACKAGES:
            root = REPO / package
            if path == root or root in path.parents:
                per_package[package][0] += len(statements)
                per_package[package][1] += len(missed)
        percent = 100.0 * (1 - len(missed) / len(statements)) if statements else 100.0
        print(
            f"{str(path.relative_to(REPO)).ljust(width)}  "
            f"{len(statements):5d}  {len(missed):4d}  {percent:4.0f}%  {_ranges(missed)}"
        )

    measured: dict[str, float] = {}
    for package, (statements, missed) in per_package.items():
        measured[package] = (
            100.0 * (1 - missed / statements) if statements else 100.0
        )
    print("-" * (width + 40))
    for package, percent in measured.items():
        print(f"{package.ljust(width)}  {percent:6.2f}%")

    if update_floor:
        floors = {p: round(v - FLOOR_MARGIN, 1) for p, v in measured.items()}
        FLOOR_FILE.write_text(json.dumps(floors, indent=2, sort_keys=True) + "\n")
        print(f"\ncoverage: floor re-recorded in {FLOOR_FILE.relative_to(REPO)}: {floors}")
        return 0

    if not FLOOR_FILE.exists():
        print(f"\ncoverage: no floor recorded; run with --update-floor to create {FLOOR_FILE.name}")
        return 1
    floors = json.loads(FLOOR_FILE.read_text())
    failed = False
    for package, floor in floors.items():
        got = measured.get(package, 0.0)
        status = "ok" if got >= floor else "BELOW FLOOR"
        if got < floor:
            failed = True
        print(f"coverage: {package}: {got:.2f}% (floor {floor:.1f}%) {status}")
    if failed:
        print("coverage: FAILED — coverage dropped below the recorded floor")
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-floor",
        action="store_true",
        help=f"re-record the floor as measured minus {FLOOR_MARGIN} points",
    )
    args = parser.parse_args()
    # Drop the scripts/ dir the interpreter put first on sys.path —
    # scripts/profile.py would shadow the stdlib ``profile`` module that
    # pytest-benchmark imports — and make src/ importable instead.
    script_dir = str(Path(__file__).resolve().parent)
    sys.path[:] = [p for p in sys.path if str(Path(p or ".").resolve()) != script_dir]
    sys.path.insert(0, str(REPO / "src"))
    return run(update_floor=args.update_floor)


if __name__ == "__main__":
    sys.exit(main())
