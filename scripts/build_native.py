#!/usr/bin/env python
"""Compile (or reuse) the native replay kernel's shared object.

The engine builds the kernel on demand, so this script is never
*required* — it exists so CI and curious users can force the build
outside a simulation run and see exactly where the object landed::

    python scripts/build_native.py            # build into the shared cache
    python scripts/build_native.py --force    # recompile even on a cache hit
    REPRO_NATIVE_CACHE=/tmp/x python scripts/build_native.py

Exits 0 on success (printing the `.so` path and whether it was
rebuilt), 1 when no C compiler is on PATH or the compile fails — the
engine would fall back to the batched backend in that case.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force", action="store_true", help="recompile even if the cached .so is current"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="output directory (default: the shared cache)"
    )
    args = parser.parse_args(argv)

    from repro.sim._native import build

    directory = Path(args.cache_dir) if args.cache_dir else build.cache_dir()
    if args.force:
        import zlib

        crc = zlib.crc32(build.kernel_source_path().read_bytes()) & 0xFFFFFFFF
        stale = directory / f"kernel-{crc:08x}.so"
        stale.unlink(missing_ok=True)

    so = build.build(directory=directory)
    if so is None:
        cc = build.compiler()
        if cc is None:
            print("error: no C compiler on PATH (set $CC or install cc)", file=sys.stderr)
        else:
            print(f"error: compile failed with {cc} (see log output)", file=sys.stderr)
        return 1
    state = "rebuilt" if build.was_rebuilt() else "cached"
    print(f"{so} ({state})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
