#!/usr/bin/env python
"""One-command cProfile of a single simulation cell.

Every perf PR should start from data; this prints the hotspot tables
that motivated PR 2's hot-loop rework.  Typical use::

    make profile                                   # pythia on spec06/lbm-1
    PROFILE_ARGS="--prefetcher spp --length 50000" make profile
    PYTHONPATH=src python scripts/profile.py --trace ligra/cc-1 \\
        --prefetcher pythia --length 200000 --top 40

The cell is simulated once un-instrumented first (reported as raw
records/s — cProfile inflates call-heavy code 2-3x, so never quote
instrumented throughput), then once under cProfile, printing the top-N
functions by cumulative and by internal time.
"""

from __future__ import annotations

import sys
from pathlib import Path

# This file is named `profile.py`, which would shadow the stdlib
# `profile` module that `cProfile` imports — drop the script directory
# from sys.path before touching the profiler machinery.
_HERE = Path(__file__).resolve().parent
sys.path = [p for p in sys.path if Path(p or ".").resolve() != _HERE]
sys.path.insert(0, str(_HERE.parent / "src"))

import argparse
import cProfile
import io
import pstats
import time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="spec06/lbm-1", help="workload/trace name")
    parser.add_argument("--prefetcher", default="pythia", help="registry prefetcher name")
    parser.add_argument("--system", default="1c", help="system spec (e.g. 1c, 1c@mtps=600)")
    parser.add_argument("--length", type=int, default=200_000, help="records per trace")
    parser.add_argument("--warmup", type=float, default=0.2, help="warmup fraction")
    parser.add_argument("--top", type=int, default=25, help="rows per hotspot table")
    parser.add_argument(
        "--backend",
        choices=("native", "batched", "scalar"),
        default="batched",
        help="replay backend to profile (hotspot tables differ a lot)",
    )
    parser.add_argument(
        "--out", default=None, help="also dump raw pstats to this file (snakeviz etc.)"
    )
    args = parser.parse_args(argv)

    from dataclasses import replace

    from repro import registry
    from repro.sim import batch
    from repro.sim.system import simulate

    trace = registry.cached_trace(args.trace, args.length)
    system = replace(registry.system(args.system), replay_backend=args.backend)

    if args.backend == "native":
        # Surface the build-cache behaviour up front: a rebuild in the
        # timed region would corrupt the raw throughput figure.
        from repro.sim import _native
        from repro.sim._native import build as native_build

        if _native.available():
            so = native_build.build()
            state = "rebuilt" if native_build.was_rebuilt() else "cached"
            print(f"native kernel: {state} ({so})")
        else:
            print("native kernel: unavailable (falling back to batched)")

    def run() -> None:
        simulate(
            trace,
            config=system,
            prefetcher=registry.create(args.prefetcher),
            warmup_fraction=args.warmup,
        )

    start = time.perf_counter()
    run()
    raw = time.perf_counter() - start
    print(
        f"cell: trace={args.trace} prefetcher={args.prefetcher} "
        f"system={args.system} length={args.length} warmup={args.warmup}"
    )
    print(f"backend: {args.backend} (epoch size {batch.EPOCH:,} records)")
    print(f"raw: {raw:.2f}s = {args.length / raw:,.0f} records/s (un-instrumented)\n")

    profile = cProfile.Profile()
    profile.enable()
    run()
    profile.disable()

    if args.out:
        profile.dump_stats(args.out)
        print(f"pstats dumped to {args.out}\n")

    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    for sort in ("cumulative", "tottime"):
        buffer.write(f"==== top {args.top} by {sort} ====\n")
        stats.sort_stats(sort).print_stats(args.top)
    print(buffer.getvalue())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
