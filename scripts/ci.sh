#!/usr/bin/env bash
# CI entry point.
#
# Tier 1 (every push): the sweep smoke (tiny grid search + 2-core mix
# through both executors, `make sweep-smoke`), the resume smoke
# (checkpointed 100k -> 200k extension of a Pythia cell, pinned
# bit-identical to a fresh run, `make resume-smoke`), the store
# concurrency suite (`make stress-smoke`: the ISSUE 9 multiprocess x
# multithread stress harness plus the locking/eviction-race regression
# tests, tests/test_store_concurrency.py), then the
# sub-minute `quick` smoke tier — Session API end-to-end on small
# traces plus the perf smoke — followed by the full unit suite and the
# tracked throughput bench.  By default the bench
# enforces only machine-independent sanity floors; export
# REPRO_PERF_STRICT=1 on the calibrated reference runner to enforce the
# regression floors too (BENCH_perf.json is rewritten by
# `make perfbench`, not by CI).  Since ISSUE 7 the strict floors gate
# the batched replay backend — the Pythia floor is 16,000 records/s on
# the 100k reference cell (up from the scalar-era 14,000), with scalar
# rows kept in BENCH_perf.json for the trajectory.  ISSUE 10 adds the
# native compiled-kernel floors (pythia 90,000 records/s on the 100k
# cell and >=2x the batched row): they gate only when a C compiler is
# on PATH — without one the bench prints a visible NOTICE, omits the
# native rows, and the rest of the suite must still pass on the
# batched fallback.  The slow figure-regeneration suite
# (`make bench`) is a separate, scheduled job.
#
# After the resume smoke the invariant checker (python -m
# repro.analysis, `make lint`) gates the tree: the per-file rules
# (determinism, layering, hygiene, batching, exceptions), the
# whole-program rules (concurrency, hotpath), and the introspection
# rules (fingerprint, checkpoint) must all come back clean over
# src/repro + benchmarks + scripts + tests, modulo per-line pragmas and
# the committed baseline (scripts/lint_baseline.json).  The checker's
# summary line prints its wall time; warm reruns hit
# scripts/lint_cache.json and re-parse nothing.
#
# The final step re-runs the API/workloads-facing suites under the
# stdlib coverage tracer (scripts/coverage.py) and fails the build if
# line coverage of src/repro/api or src/repro/workloads drops below the
# floor recorded in scripts/coverage_floor.json.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

if command -v "${CC:-cc}" >/dev/null 2>&1; then
    echo "ci: C compiler present — native replay kernel floors will gate the perf bench"
else
    echo "ci: NOTICE: no C compiler on PATH — native kernel floors skipped (batched fallback covers the suite)"
fi

python -m pytest benchmarks/test_sweep_smoke.py -q
python -m pytest benchmarks/test_resume_smoke.py -q
python -m pytest tests/test_store_concurrency.py -q
python -m repro.analysis src/repro benchmarks scripts tests
python -m pytest -m quick -q --ignore=benchmarks/test_sweep_smoke.py --ignore=benchmarks/test_resume_smoke.py --ignore=tests/test_store_concurrency.py
python -m pytest tests -q -m "not quick"
python -m pytest benchmarks/test_perf_throughput.py -q -m "not quick"
python scripts/coverage.py
