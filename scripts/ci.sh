#!/usr/bin/env bash
# CI entry point.
#
# Tier 1 (every push): the sub-minute `quick` smoke tier — Session API
# end-to-end on small traces — followed by the full unit suite.
# The slow figure-regeneration suite (`make bench`) is a separate,
# scheduled job.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

python -m pytest -m quick -q
python -m pytest tests -q -m "not quick"
