"""MLOP: Multi-Lookahead Offset Prefetcher (Shakerinava et al. — ref [111]).

MLOP generalizes best-offset prefetching: an access-map table records
which lines of recent pages were touched; periodically (every
``update_period`` trainings) every candidate offset is scored by how
many recorded accesses it *would have* prefetched, at several lookahead
levels, and the best-scoring offsets become the active offset list until
the next evaluation.  The DPC-3 configuration the paper uses is a
128-entry access map with a 500-update period and degree 16 — an
aggressive multi-offset prefetcher, second only to Bingo in
overprediction in the paper's Fig 7.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.prefetchers.base import DemandContext, Prefetcher
from repro.types import LINES_PER_PAGE, make_line


class MlopPrefetcher(Prefetcher):
    """Access-map, multi-lookahead offset selection prefetcher.

    Args:
        amt_size: access-map table entries (pages).
        update_period: trainings between offset-list re-evaluations.
        degree: number of simultaneously active offsets.
        max_offset: candidate offset magnitude bound.
    """

    name = "mlop"

    def __init__(
        self,
        amt_size: int = 128,
        update_period: int = 500,
        degree: int = 16,
        max_offset: int = 16,
        qualify_fraction: float = 0.25,
    ) -> None:
        self.amt_size = amt_size
        self.update_period = update_period
        self.degree = degree
        self.max_offset = max_offset
        self.qualify_fraction = qualify_fraction
        # page -> bitmap of touched offsets
        self._amt: OrderedDict[int, int] = OrderedDict()
        self._scores: dict[int, int] = {}
        self._trainings = 0
        #: Currently active prefetch offsets, best first.
        self.active_offsets: list[int] = [1]

    def train(self, ctx: DemandContext) -> list[int]:
        bitmap = self._amt.get(ctx.page, 0)
        # Score every candidate offset d: a previously-touched line at
        # (offset - d) means offset d would have prefetched this access.
        for d in range(-self.max_offset, self.max_offset + 1):
            if d == 0:
                continue
            source = ctx.offset - d
            if 0 <= source < LINES_PER_PAGE and (bitmap >> source) & 1:
                self._scores[d] = self._scores.get(d, 0) + 1

        self._amt[ctx.page] = bitmap | (1 << ctx.offset)
        self._amt.move_to_end(ctx.page)
        while len(self._amt) > self.amt_size:
            self._amt.popitem(last=False)

        self._trainings += 1
        if self._trainings % self.update_period == 0:
            self._select_offsets()

        prefetches: list[int] = []
        for d in self.active_offsets[: self.degree]:
            target = ctx.offset + d
            if 0 <= target < LINES_PER_PAGE:
                prefetches.append(make_line(ctx.page, target))
        return prefetches

    def _select_offsets(self) -> None:
        """Adopt offsets that would have covered enough opportunities.

        An offset qualifies only if it would have prefetched at least
        ``qualify_fraction`` of the period's accesses *and* is within a
        factor of the best offset — without the absolute floor, random
        access patterns elect whichever offsets scored a handful of
        coincidental hits and MLOP sprays useless prefetches.
        """
        if not self._scores:
            self.active_offsets = []
            return
        best_score = max(self._scores.values())
        floor = max(2, int(self.update_period * self.qualify_fraction))
        threshold = max(floor, best_score // 2)
        ranked = sorted(
            (d for d, s in self._scores.items() if s >= threshold),
            key=lambda d: -self._scores[d],
        )
        self.active_offsets = ranked[: self.degree]
        self._scores.clear()

    def reset(self) -> None:
        self._amt.clear()
        self._scores.clear()
        self._trainings = 0
        self.active_offsets = [1]
