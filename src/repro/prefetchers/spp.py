"""SPP: Signature Path Prefetcher (Kim et al., MICRO 2016 — ref [78]).

SPP compresses the recent in-page delta history into a 12-bit
*signature*, looks the signature up in a pattern table of delta
predictions with confidence counters, and walks the predicted path
speculatively: each lookahead step multiplies the path confidence by the
chosen delta's confidence and prefetching continues while the product
stays above a threshold.  This is the paper's archetypal
"sequence-of-deltas" prefetcher — high accuracy, moderate coverage —
and one of Pythia's two inspiration features (``Sequence of last-4
deltas``).

The reproduction keeps the structure sizes of Table 7: a 256-entry
signature table and a 512-entry pattern table with 4 delta slots.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.prefetchers.base import DemandContext, Prefetcher
from repro.types import LINES_PER_PAGE, make_line

#: Signature arithmetic from the SPP paper: 12 bits, 3-bit shift per delta.
_SIG_BITS = 12
_SIG_MASK = (1 << _SIG_BITS) - 1
_SIG_SHIFT = 3


def update_signature(signature: int, delta: int) -> int:
    """Fold one in-page *delta* into the 12-bit path *signature*."""
    folded = delta if delta >= 0 else (abs(delta) | 0x40)
    return ((signature << _SIG_SHIFT) ^ folded) & _SIG_MASK


class _PatternEntry:
    """Per-signature delta predictions with saturating confidences."""

    __slots__ = ("deltas", "total")
    MAX_COUNT = 15
    NUM_SLOTS = 4

    def __init__(self) -> None:
        self.deltas: dict[int, int] = {}
        self.total = 0

    def train(self, delta: int) -> None:
        if self.total >= self.MAX_COUNT:
            # Global decay keeps confidences adaptive (SPP's counter halving).
            self.total //= 2
            for d in list(self.deltas):
                self.deltas[d] //= 2
                if self.deltas[d] == 0:
                    del self.deltas[d]
        if delta not in self.deltas and len(self.deltas) >= self.NUM_SLOTS:
            victim = min(self.deltas, key=self.deltas.get)
            del self.deltas[victim]
        self.deltas[delta] = self.deltas.get(delta, 0) + 1
        self.total += 1

    def best(self) -> tuple[int, float] | None:
        """Highest-confidence delta and its confidence fraction."""
        if not self.deltas or self.total == 0:
            return None
        delta = max(self.deltas, key=self.deltas.get)
        return delta, self.deltas[delta] / self.total


class SppPrefetcher(Prefetcher):
    """Signature Path Prefetcher with lookahead path confidence.

    Args:
        st_size: signature-table entries (tracked pages).
        pt_size: pattern-table entries (distinct signatures).
        prefetch_threshold: minimum path confidence to keep prefetching.
        max_lookahead: cap on speculative path depth.
    """

    name = "spp"

    def __init__(
        self,
        st_size: int = 256,
        pt_size: int = 512,
        prefetch_threshold: float = 0.30,
        max_lookahead: int = 8,
    ) -> None:
        self.st_size = st_size
        self.pt_size = pt_size
        self.prefetch_threshold = prefetch_threshold
        self.max_lookahead = max_lookahead
        # page -> [signature, last_offset]
        self._st: OrderedDict[int, list[int]] = OrderedDict()
        # signature -> _PatternEntry
        self._pt: OrderedDict[int, _PatternEntry] = OrderedDict()

    def _pattern(self, signature: int) -> _PatternEntry:
        entry = self._pt.get(signature)
        if entry is None:
            entry = _PatternEntry()
            self._pt[signature] = entry
            while len(self._pt) > self.pt_size:
                self._pt.popitem(last=False)
        else:
            self._pt.move_to_end(signature)
        return entry

    def train(self, ctx: DemandContext) -> list[int]:
        st_entry = self._st.get(ctx.page)
        if st_entry is None:
            # First access to the page: seed the signature with the
            # landing offset so the path is PC-position aware.
            self._st[ctx.page] = [update_signature(0, ctx.offset or 1), ctx.offset]
            while len(self._st) > self.st_size:
                self._st.popitem(last=False)
            return []

        self._st.move_to_end(ctx.page)
        signature, last_offset = st_entry
        delta = ctx.offset - last_offset
        if delta == 0:
            return []

        # Train the old signature with the observed delta, then advance.
        self._pattern(signature).train(delta)
        new_signature = update_signature(signature, delta)
        st_entry[0] = new_signature
        st_entry[1] = ctx.offset

        return self._lookahead(ctx, new_signature)

    def _lookahead(self, ctx: DemandContext, signature: int) -> list[int]:
        """Walk the predicted delta path while confidence holds."""
        prefetches: list[int] = []
        offset = ctx.offset
        path_confidence = 1.0
        sig = signature
        for _ in range(self.max_lookahead):
            entry = self._pt.get(sig)
            if entry is None:
                break
            best = entry.best()
            if best is None:
                break
            delta, confidence = best
            path_confidence *= confidence
            if path_confidence < self.prefetch_threshold:
                break
            offset = offset + delta
            if not 0 <= offset < LINES_PER_PAGE:
                break  # SPP stops at page boundaries (no GHR here)
            prefetches.append(make_line(ctx.page, offset))
            sig = update_signature(sig, delta)
        return prefetches

    def reset(self) -> None:
        self._st.clear()
        self._pt.clear()
