"""Composite prefetcher: run several prefetchers side by side.

Figures 9(b) and 10(b) evaluate cumulative combinations — Stride,
Stride+SPP, Stride+SPP+Bingo, and so on.  A hybrid's coverage is the
union of its members' coverage, but so are its overpredictions: exactly
the effect the paper uses to show that combining single-feature
prefetchers is not the same as learning over multiple features.

Members are consulted in the given order; candidates are deduplicated,
preserving the first proposer's priority (earlier members get the
shared degree budget first).
"""

from __future__ import annotations

from repro.prefetchers.base import DemandContext, Prefetcher


class CompositePrefetcher(Prefetcher):
    """Union of several member prefetchers behind one interface.

    Args:
        members: prefetchers consulted in priority order.
        name: reporting name; defaults to ``"+".join(member names)``.
    """

    def __init__(self, members: list[Prefetcher], name: str | None = None) -> None:
        if not members:
            raise ValueError("composite needs at least one member")
        self.members = members
        self.name = name if name is not None else "+".join(m.name for m in members)

    def train(self, ctx: DemandContext) -> list[int]:
        candidates: list[int] = []
        seen: set[int] = set()
        for member in self.members:
            for line in member.train(ctx):
                if line not in seen:
                    seen.add(line)
                    candidates.append(line)
        return candidates

    def on_prefetch_fill(self, line: int, cycle: int) -> None:
        for member in self.members:
            member.on_prefetch_fill(line, cycle)

    def on_demand_hit_prefetched(self, line: int, cycle: int) -> None:
        for member in self.members:
            member.on_demand_hit_prefetched(line, cycle)

    def on_prefetch_dropped(self, line: int, cycle: int) -> None:
        for member in self.members:
            member.on_prefetch_dropped(line, cycle)

    def on_prefetch_useless(self, line: int, cycle: int) -> None:
        for member in self.members:
            member.on_prefetch_useless(line, cycle)

    def reset(self) -> None:
        for member in self.members:
            member.reset()
