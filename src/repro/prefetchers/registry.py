"""Name → prefetcher factory registry used by the harness and benches.

Names follow the paper's labels: the five competitors of Table 7, the
auxiliary comparison points of the appendices, Pythia's three
configurations, and the cumulative combinations of Fig 9(b)/10(b)
(``st``, ``st+s``, ``st+s+b``, ``st+s+b+d``, ``st+s+b+d+m``).

Factories construct *fresh* instances — prefetcher state is per-core
hardware and must never leak between runs or cores.
"""

from __future__ import annotations

from typing import Callable

from repro.prefetchers.base import NoPrefetcher, Prefetcher


def _make_combo(*names: str) -> Callable[[], Prefetcher]:
    def factory() -> Prefetcher:
        from repro.prefetchers.composite import CompositePrefetcher

        return CompositePrefetcher([create(n) for n in names])

    return factory


def _pythia(config_name: str) -> Callable[[], Prefetcher]:
    def factory() -> Prefetcher:
        from repro.core import Pythia, PythiaConfig

        return Pythia(PythiaConfig.named(config_name))

    return factory


def _registry() -> dict[str, Callable[[], Prefetcher]]:
    from repro.prefetchers.bingo import BingoPrefetcher
    from repro.prefetchers.cp_hw import CpHwPrefetcher
    from repro.prefetchers.dspatch import DspatchPrefetcher
    from repro.prefetchers.ipcp import IpcpPrefetcher
    from repro.prefetchers.mlop import MlopPrefetcher
    from repro.prefetchers.power7 import Power7Prefetcher
    from repro.prefetchers.ppf import SppPpfPrefetcher
    from repro.prefetchers.spp import SppPrefetcher
    from repro.prefetchers.streamer import StreamerPrefetcher
    from repro.prefetchers.stride import StridePrefetcher

    return {
        "none": NoPrefetcher,
        "stride": StridePrefetcher,
        "streamer": StreamerPrefetcher,
        "spp": SppPrefetcher,
        "spp_ppf": SppPpfPrefetcher,
        "dspatch": DspatchPrefetcher,
        "bingo": BingoPrefetcher,
        "mlop": MlopPrefetcher,
        "ipcp": IpcpPrefetcher,
        "cp_hw": CpHwPrefetcher,
        "power7": Power7Prefetcher,
        "pythia": _pythia("basic"),
        "pythia_strict": _pythia("strict"),
        "pythia_bw_oblivious": _pythia("bw_oblivious"),
        # Fig 9b / 10b cumulative combinations.
        "st": StridePrefetcher,
        "st+s": _make_combo("stride", "spp"),
        "st+s+b": _make_combo("stride", "spp", "bingo"),
        "st+s+b+d": _make_combo("stride", "spp", "bingo", "dspatch"),
        "st+s+b+d+m": _make_combo("stride", "spp", "bingo", "dspatch", "mlop"),
        # Fig 8d multi-level comparators (L2 part; L1 stride is added by
        # the harness via the l1_prefetcher hook).
        "stride+streamer": _make_combo("stride", "streamer"),
    }


def available() -> list[str]:
    """All registered prefetcher names."""
    return sorted(_registry())


def create(name: str) -> Prefetcher:
    """Instantiate a fresh prefetcher by registry *name*."""
    registry = _registry()
    if name not in registry:
        raise KeyError(f"unknown prefetcher {name!r}; known: {sorted(registry)}")
    return registry[name]()
