"""Deprecated shim: the prefetcher registry moved to :mod:`repro.registry`.

This module remains so existing imports keep working; it forwards to the
unified string-addressable registry, which also gained keyword-override
support (``create("pythia", alpha=0.08)``).  New code should import from
:mod:`repro.registry` directly.
"""

from __future__ import annotations

from repro.prefetchers.base import Prefetcher


def available() -> list[str]:
    """All registered prefetcher names (see :func:`repro.registry.available_prefetchers`)."""
    from repro import registry

    return registry.available_prefetchers()


def create(name: str, **overrides) -> Prefetcher:
    """Instantiate a fresh prefetcher by name (see :func:`repro.registry.create`)."""
    from repro import registry

    return registry.create(name, **overrides)
