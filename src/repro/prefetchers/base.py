"""Prefetcher interface shared by Pythia and all baseline prefetchers.

Prefetchers in this reproduction sit where the paper puts them: they are
*trained on L1 demand misses* and their prefetched lines are *filled into
L2 and LLC* (§5.2).  The hierarchy calls :meth:`Prefetcher.train` for
every training event and issues the returned cacheline numbers, subject
to the system-wide degree cap, MSHR availability, and duplicate
filtering.

System-level feedback — the memory-bandwidth-usage signal Pythia
consumes — arrives with each training event in the
:class:`DemandContext`, so any prefetcher may be made bandwidth-aware
without a side channel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.types import page_of_line, offset_of_line


@dataclass(slots=True)
class DemandContext:
    """Everything a prefetcher may observe about one training event.

    One instance is built per training event (every L1 demand miss), so
    the class is slotted (and not frozen — frozen-dataclass ``__init__``
    pays an ``object.__setattr__`` per field) and the page/offset
    decomposition — which most prefetchers read several times per event
    — is computed once at construction rather than per property access.
    Treat instances as immutable: they are shared across every
    prefetcher observing the event.

    Attributes:
        pc: program counter of the demand instruction.
        line: demanded cacheline number.
        cycle: current core cycle.
        is_load: True for loads (stores also train, as in ChampSim).
        bandwidth_utilization: DRAM data-bus busy fraction (0..1).
        bandwidth_high: the thresholded high/low bandwidth signal.
        page: physical page number of the demanded line (derived).
        offset: in-page offset (0..63) of the demanded line (derived).
    """

    pc: int
    line: int
    cycle: int
    is_load: bool = True
    bandwidth_utilization: float = 0.0
    bandwidth_high: bool = False
    page: int = field(init=False)
    offset: int = field(init=False)

    def __post_init__(self) -> None:
        self.page = page_of_line(self.line)
        self.offset = offset_of_line(self.line)


class Prefetcher(ABC):
    """Abstract base class for all prefetchers.

    Subclasses implement :meth:`train` and may override the fill/hit
    callbacks to learn from prefetch outcomes.
    """

    #: Registry/reporting name; subclasses override.
    name = "base"

    @abstractmethod
    def train(self, ctx: DemandContext) -> list[int]:
        """Observe one demand training event; return prefetch candidates.

        Returns a list of cacheline numbers to prefetch.  The hierarchy
        applies the global degree cap and drops duplicates, in-flight
        lines, and already-cached lines.
        """

    def train_cols(
        self,
        pc: int,
        line: int,
        page: int,
        offset: int,
        cycle: int,
        is_load: bool,
        bandwidth_utilization: float,
        bandwidth_high: bool,
    ) -> list[int]:
        """Columnar-path training entry: :meth:`train` on scalar fields.

        The batched replay kernel (:mod:`repro.sim.batch`) already holds
        each record's decoded fields as loop locals, so it trains through
        this method instead of building a :class:`DemandContext` it would
        immediately pick apart.  The default wraps :meth:`train` so every
        prefetcher works under the batched backend unchanged; hot
        prefetchers (Pythia) override it with a fused path that is pinned
        bit-identical to ``train`` by the equivalence tests.
        """
        ctx = DemandContext(
            pc=pc,
            line=line,
            cycle=cycle,
            is_load=is_load,
            bandwidth_utilization=bandwidth_utilization,
            bandwidth_high=bandwidth_high,
        )
        return self.train(ctx)

    def on_prefetch_fill(self, line: int, cycle: int) -> None:
        """Called when a prefetch for *line* completes and fills the cache."""

    def on_demand_hit_prefetched(self, line: int, cycle: int) -> None:
        """Called on the first demand hit to a prefetched line."""

    def on_prefetch_dropped(self, line: int, cycle: int) -> None:
        """Called when the hierarchy drops a prefetch (MSHRs full, etc.)."""

    def on_prefetch_useless(self, line: int, cycle: int) -> None:
        """Called when a never-used prefetched line is evicted from the LLC."""

    def reset(self) -> None:
        """Clear all learned state (used between experiment runs)."""


class NoPrefetcher(Prefetcher):
    """The no-prefetching baseline: never issues anything."""

    name = "none"

    def train(self, ctx: DemandContext) -> list[int]:
        return []
