"""PC-based stride prefetcher (Fu & Patel; Jouppi — refs [55, 56, 73]).

The classic design: a table indexed by load PC records the last address
and last stride; when the same stride is seen twice in a row the entry
becomes confident and prefetches ``degree`` lines ahead along the
stride.  The paper uses this at L1 in the multi-level experiments
(Fig 8d) and as the first member of the prefetcher combinations (Fig 9b,
Fig 10b).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.prefetchers.base import DemandContext, Prefetcher
from repro.types import same_page


class StridePrefetcher(Prefetcher):
    """Reference PC-stride prefetcher.

    Args:
        table_size: number of tracked PCs (LRU-replaced).
        degree: prefetches issued per confident trigger.
        confidence_threshold: consecutive identical strides required
            before prefetching begins.
    """

    name = "stride"

    def __init__(
        self,
        table_size: int = 256,
        degree: int = 4,
        confidence_threshold: int = 2,
    ) -> None:
        self.table_size = table_size
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        # pc -> [last_line, stride, confidence]
        self._table: OrderedDict[int, list[int]] = OrderedDict()

    def train(self, ctx: DemandContext) -> list[int]:
        entry = self._table.get(ctx.pc)
        prefetches: list[int] = []
        if entry is None:
            self._table[ctx.pc] = [ctx.line, 0, 0]
            self._evict_lru()
            return prefetches

        self._table.move_to_end(ctx.pc)
        last_line, last_stride, confidence = entry
        stride = ctx.line - last_line
        if stride != 0:
            if stride == last_stride:
                confidence = min(confidence + 1, self.confidence_threshold)
            else:
                confidence = 1
            entry[1] = stride
            entry[2] = confidence
            if confidence >= self.confidence_threshold:
                for i in range(1, self.degree + 1):
                    target = ctx.line + stride * i
                    if target >= 0 and same_page(target, ctx.line):
                        prefetches.append(target)
        entry[0] = ctx.line
        return prefetches

    def _evict_lru(self) -> None:
        while len(self._table) > self.table_size:
            self._table.popitem(last=False)

    def reset(self) -> None:
        self._table.clear()
