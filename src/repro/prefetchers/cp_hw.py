"""CP-HW: the context prefetcher with hardware contexts (ref [104], §B.4).

Peled et al.'s context prefetcher formulates prefetching as a
*contextual bandit*: each context (a hash of program state) keeps an
estimated immediate reward per action, and the agent greedily picks the
best action with ε exploration.  The crucial differences from Pythia —
which §4.5 of the paper spells out — are reproduced here:

* **myopic**: rewards are immediate only; there is no Q-value
  bootstrapping, so long-term consequences (bandwidth pressure, future
  accuracy) never influence the decision;
* **no bandwidth awareness**: the reward is usefulness-only;
* the original relies on compiler hints; following the paper's fair
  comparison (Fig 21) this version uses hardware context only
  (PC ⊕ recent deltas).
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque

from repro.prefetchers.base import DemandContext, Prefetcher
from repro.types import LINES_PER_PAGE, make_line

#: Same pruned action list as Pythia's basic config, for a fair fight.
_DEFAULT_ACTIONS = (-6, -3, -1, 0, 1, 3, 4, 5, 10, 11, 12, 16, 22, 23, 30, 32)


class CpHwPrefetcher(Prefetcher):
    """Contextual-bandit prefetcher with hardware-only context.

    Args:
        actions: candidate prefetch offsets (0 = no prefetch).
        num_contexts: context table size.
        epsilon: exploration rate.
        learning_rate: EWMA factor for reward estimates.
        seed: RNG seed for exploration.
    """

    name = "cp_hw"

    def __init__(
        self,
        actions: tuple[int, ...] = _DEFAULT_ACTIONS,
        num_contexts: int = 2048,
        epsilon: float = 0.01,
        learning_rate: float = 0.2,
        seed: int = 11,
    ) -> None:
        self.actions = actions
        self.num_contexts = num_contexts
        self.epsilon = epsilon
        self.learning_rate = learning_rate
        self._rng = random.Random(seed)
        # context -> per-action estimated immediate reward
        self._estimates: OrderedDict[int, list[float]] = OrderedDict()
        # issued line -> (context, action index)
        self._issued: OrderedDict[int, tuple[int, int]] = OrderedDict()
        self._recent_deltas: deque[int] = deque(maxlen=2)
        self._last_offset: int | None = None

    def _context(self, ctx: DemandContext) -> int:
        sig = ctx.pc & 0xFFFF
        for i, delta in enumerate(self._recent_deltas):
            sig ^= (delta & 0x7F) << (4 * (i + 1))
        return sig % self.num_contexts

    #: Optimistic initial estimate so every action gets tried before the
    #: bandit settles (ties at 0 would deadlock on the first tied index).
    INITIAL_ESTIMATE = 0.5

    def _table(self, context: int) -> list[float]:
        row = self._estimates.get(context)
        if row is None:
            row = [self.INITIAL_ESTIMATE] * len(self.actions)
            self._estimates[context] = row
            while len(self._estimates) > self.num_contexts:
                self._estimates.popitem(last=False)
        else:
            self._estimates.move_to_end(context)
        return row

    def train(self, ctx: DemandContext) -> list[int]:
        if self._last_offset is not None:
            delta = ctx.offset - self._last_offset
            if delta != 0:
                self._recent_deltas.append(delta)
        self._last_offset = ctx.offset

        context = self._context(ctx)
        row = self._table(context)
        if self._rng.random() < self.epsilon:
            action_idx = self._rng.randrange(len(self.actions))
        else:
            action_idx = max(range(len(self.actions)), key=row.__getitem__)
        offset = self.actions[action_idx]
        if offset == 0:
            # Not prefetching earns a neutral reward: the estimate decays
            # toward 0, letting still-optimistic untried actions be tried.
            self._update(context, action_idx, 0.0)
            return []
        target = ctx.offset + offset
        if not 0 <= target < LINES_PER_PAGE:
            # Out-of-page choice: immediately learn it was worthless.
            self._update(context, action_idx, -1.0)
            return []
        line = make_line(ctx.page, target)
        self._issued[line] = (context, action_idx)
        while len(self._issued) > 512:
            stale_line, (c, a) = self._issued.popitem(last=False)
            del stale_line
            self._update(c, a, -1.0)
        return [line]

    def _update(self, context: int, action_idx: int, reward: float) -> None:
        row = self._table(context)
        row[action_idx] += self.learning_rate * (reward - row[action_idx])

    def on_demand_hit_prefetched(self, line: int, cycle: int) -> None:
        issued = self._issued.pop(line, None)
        if issued is not None:
            self._update(issued[0], issued[1], 1.0)

    def on_prefetch_useless(self, line: int, cycle: int) -> None:
        issued = self._issued.pop(line, None)
        if issued is not None:
            self._update(issued[0], issued[1], -1.0)

    def reset(self) -> None:
        self._estimates.clear()
        self._issued.clear()
        self._recent_deltas.clear()
        self._last_offset = None
