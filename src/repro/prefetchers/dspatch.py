"""DSPatch: Dual Spatial Pattern prefetcher (Bera et al., MICRO 2019 — [30]).

DSPatch learns *two* spatial bit-patterns per trigger PC over 64-line
regions: ``CovP`` (the OR of observed footprints — coverage-biased) and
``AccP`` (the AND — accuracy-biased), and selects between them using the
measured DRAM bandwidth: plenty of headroom → prefetch the aggressive
CovP; bandwidth tight → only the conservative AccP.  It is the
paper's example of bolted-on (rather than inherent) bandwidth awareness.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.prefetchers.base import DemandContext, Prefetcher
from repro.types import LINES_PER_PAGE, make_line

_FULL_MASK = (1 << LINES_PER_PAGE) - 1


def _rotate_left(bits: int, amount: int) -> int:
    """Rotate a 64-bit footprint left by *amount* (anchor alignment)."""
    amount %= LINES_PER_PAGE
    return ((bits << amount) | (bits >> (LINES_PER_PAGE - amount))) & _FULL_MASK


def _rotate_right(bits: int, amount: int) -> int:
    return _rotate_left(bits, LINES_PER_PAGE - (amount % LINES_PER_PAGE))


class _SptEntry:
    """Signature pattern table entry: dual patterns, anchored at trigger."""

    __slots__ = ("cov", "acc", "trained")

    def __init__(self) -> None:
        self.cov = 0
        self.acc = _FULL_MASK
        self.trained = False

    def update(self, anchored_footprint: int) -> None:
        self.cov |= anchored_footprint
        if self.trained:
            self.acc &= anchored_footprint
        else:
            self.acc = anchored_footprint
            self.trained = True


class DspatchPrefetcher(Prefetcher):
    """Dual-bit-pattern spatial prefetcher with bandwidth-based selection.

    Args:
        tracker_size: concurrently observed regions.
        spt_size: learned trigger-PC patterns.
    """

    name = "dspatch"

    def __init__(self, tracker_size: int = 64, spt_size: int = 256) -> None:
        self.tracker_size = tracker_size
        self.spt_size = spt_size
        # page -> [footprint_bits, trigger_pc, trigger_offset, predicted_bits]
        self._trackers: OrderedDict[int, list[int]] = OrderedDict()
        # pc -> _SptEntry
        self._spt: OrderedDict[int, _SptEntry] = OrderedDict()

    def _commit_region(self, page: int) -> None:
        footprint, trigger_pc, trigger_offset, _predicted = self._trackers[page]
        anchored = _rotate_right(footprint, trigger_offset)
        entry = self._spt.get(trigger_pc)
        if entry is None:
            entry = _SptEntry()
            self._spt[trigger_pc] = entry
            while len(self._spt) > self.spt_size:
                self._spt.popitem(last=False)
        else:
            self._spt.move_to_end(trigger_pc)
        entry.update(anchored)

    def train(self, ctx: DemandContext) -> list[int]:
        tracker = self._trackers.get(ctx.page)
        if tracker is not None:
            self._trackers.move_to_end(ctx.page)
            tracker[0] |= 1 << ctx.offset
            # Drain the remaining predicted pattern (queue semantics, as
            # in Bingo): the hierarchy's degree cap limits issue rate.
            return self._pending(ctx.page, tracker)

        # New region: commit the oldest tracked region's footprint if we
        # are at capacity, then predict this region from the trigger PC.
        self._trackers[ctx.page] = [1 << ctx.offset, ctx.pc, ctx.offset, 0]
        while len(self._trackers) > self.tracker_size:
            old_page, old_tracker = self._trackers.popitem(last=False)
            self._trackers[old_page] = old_tracker  # reinsert briefly for commit
            self._commit_region(old_page)
            del self._trackers[old_page]

        entry = self._spt.get(ctx.pc)
        if entry is None or not entry.trained:
            return []
        # Bandwidth-based pattern selection; a CovP that has accumulated
        # too many bits (unstable footprints) is demoted to AccP, the
        # paper's "bit-pattern quality" measure in DSPatch.
        use_accurate = ctx.bandwidth_high or bin(entry.cov).count("1") > 16
        pattern = entry.acc if use_accurate else entry.cov
        self._trackers[ctx.page][3] = _rotate_left(pattern, ctx.offset)
        return self._pending(ctx.page, self._trackers[ctx.page])

    def _pending(self, page: int, tracker: list[int]) -> list[int]:
        """Predicted-but-not-yet-demanded lines of a live region."""
        remaining = tracker[3] & ~tracker[0]
        if remaining == 0:
            return []
        return [
            make_line(page, off)
            for off in range(LINES_PER_PAGE)
            if (remaining >> off) & 1
        ]

    def reset(self) -> None:
        self._trackers.clear()
        self._spt.clear()
