"""Baseline prefetchers the paper compares Pythia against.

Every prefetcher implements :class:`repro.prefetchers.base.Prefetcher`:
it is trained on L1 demand misses and proposes cacheline numbers to
prefetch into L2/LLC.  See :mod:`repro.prefetchers.registry` for the
name → factory map used by the experiment harness.
"""

from repro.prefetchers.base import DemandContext, NoPrefetcher, Prefetcher
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.composite import CompositePrefetcher
from repro.prefetchers.cp_hw import CpHwPrefetcher
from repro.prefetchers.dspatch import DspatchPrefetcher
from repro.prefetchers.ipcp import IpcpPrefetcher
from repro.prefetchers.mlop import MlopPrefetcher
from repro.prefetchers.power7 import Power7Prefetcher
from repro.prefetchers.ppf import SppPpfPrefetcher
from repro.prefetchers.registry import available, create
from repro.prefetchers.spp import SppPrefetcher
from repro.prefetchers.streamer import StreamerPrefetcher
from repro.prefetchers.stride import StridePrefetcher

__all__ = [
    "DemandContext",
    "NoPrefetcher",
    "Prefetcher",
    "BingoPrefetcher",
    "CompositePrefetcher",
    "CpHwPrefetcher",
    "DspatchPrefetcher",
    "IpcpPrefetcher",
    "MlopPrefetcher",
    "Power7Prefetcher",
    "SppPpfPrefetcher",
    "SppPrefetcher",
    "StreamerPrefetcher",
    "StridePrefetcher",
    "available",
    "create",
]
