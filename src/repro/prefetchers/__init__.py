"""Baseline prefetchers the paper compares Pythia against.

Every prefetcher implements :class:`repro.prefetchers.base.Prefetcher`:
it is trained on L1 demand misses and proposes cacheline numbers to
prefetch into L2/LLC.  See :mod:`repro.registry` for the name → factory
map used by the experiment harness.
"""

from repro.prefetchers.base import DemandContext, NoPrefetcher, Prefetcher
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.composite import CompositePrefetcher
from repro.prefetchers.cp_hw import CpHwPrefetcher
from repro.prefetchers.dspatch import DspatchPrefetcher
from repro.prefetchers.ipcp import IpcpPrefetcher
from repro.prefetchers.mlop import MlopPrefetcher
from repro.prefetchers.power7 import Power7Prefetcher
from repro.prefetchers.ppf import SppPpfPrefetcher
from repro.prefetchers.spp import SppPrefetcher
from repro.prefetchers.streamer import StreamerPrefetcher
from repro.prefetchers.stride import StridePrefetcher


def available() -> list[str]:
    """All registered prefetcher names (forwards to :mod:`repro.registry`)."""
    from repro import registry

    return registry.available_prefetchers()


def create(name: str, **overrides) -> Prefetcher:
    """Instantiate a fresh prefetcher by name (forwards to :mod:`repro.registry`).

    The lazy function-scoped import keeps this package below the
    registry in the layering DAG — the registry imports prefetcher
    modules to register them, never the reverse at module level.
    """
    from repro import registry

    return registry.create(name, **overrides)

__all__ = [
    "DemandContext",
    "NoPrefetcher",
    "Prefetcher",
    "BingoPrefetcher",
    "CompositePrefetcher",
    "CpHwPrefetcher",
    "DspatchPrefetcher",
    "IpcpPrefetcher",
    "MlopPrefetcher",
    "Power7Prefetcher",
    "SppPpfPrefetcher",
    "SppPrefetcher",
    "StreamerPrefetcher",
    "StridePrefetcher",
    "available",
    "create",
]
