"""SPP+PPF: perceptron-filtered SPP (Bhatia et al., ISCA 2019 — ref [32]).

PPF lets SPP run with a *much* lower path-confidence threshold (more
candidate prefetches) and gates each candidate through a perceptron:
several hashed features of the candidate index small weight tables whose
sum must exceed a threshold for the prefetch to issue.  Weights are
trained online from prefetch outcomes — incremented when a prefetched
line is demanded, decremented when it is evicted unused.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.prefetchers.base import DemandContext, Prefetcher
from repro.prefetchers.spp import SppPrefetcher
from repro.types import offset_of_line, page_of_line


class _Perceptron:
    """Hashed-feature perceptron with saturating weights."""

    TABLE_SIZE = 1024
    WEIGHT_MAX = 15
    WEIGHT_MIN = -16

    def __init__(self, num_features: int) -> None:
        self._tables = [[0] * self.TABLE_SIZE for _ in range(num_features)]

    def _indices(self, features: list[int]) -> list[int]:
        return [f % self.TABLE_SIZE for f in features]

    def score(self, features: list[int]) -> int:
        return sum(
            table[idx] for table, idx in zip(self._tables, self._indices(features))
        )

    def train(self, features: list[int], useful: bool) -> None:
        for table, idx in zip(self._tables, self._indices(features)):
            if useful:
                table[idx] = min(self.WEIGHT_MAX, table[idx] + 1)
            else:
                table[idx] = max(self.WEIGHT_MIN, table[idx] - 1)


class SppPpfPrefetcher(Prefetcher):
    """Aggressive SPP gated by a perceptron prefetch filter.

    Args:
        accept_threshold: perceptron sum required to issue a candidate.
        spp_threshold: (lowered) SPP path-confidence cutoff.
        history_size: issued-prefetch feature records kept for training.
    """

    name = "spp_ppf"
    _NUM_FEATURES = 5

    def __init__(
        self,
        accept_threshold: int = -2,
        spp_threshold: float = 0.06,
        history_size: int = 1024,
    ) -> None:
        self.accept_threshold = accept_threshold
        self._spp = SppPrefetcher(prefetch_threshold=spp_threshold, max_lookahead=10)
        self._perceptron = _Perceptron(self._NUM_FEATURES)
        # line -> feature vector of the decision that issued it
        self._issued: OrderedDict[int, list[int]] = OrderedDict()
        self.history_size = history_size

    def _features(self, ctx: DemandContext, line: int, position: int) -> list[int]:
        delta = offset_of_line(line) - ctx.offset
        return [
            ctx.pc,
            ctx.pc ^ (delta & 0x7F),
            (ctx.pc >> 4) ^ offset_of_line(line),
            (page_of_line(line) & 0xFFF) ^ (delta & 0x7F),
            (delta & 0x7F) * 37 + position,
        ]

    def train(self, ctx: DemandContext) -> list[int]:
        candidates = self._spp.train(ctx)
        accepted: list[int] = []
        for position, line in enumerate(candidates):
            features = self._features(ctx, line, position)
            if self._perceptron.score(features) >= self.accept_threshold:
                accepted.append(line)
                self._remember(line, features)
        return accepted

    def _remember(self, line: int, features: list[int]) -> None:
        self._issued[line] = features
        while len(self._issued) > self.history_size:
            stale_line, stale_features = self._issued.popitem(last=False)
            del stale_line
            # Entries that age out without a demand hit count as useless.
            self._perceptron.train(stale_features, useful=False)

    def on_demand_hit_prefetched(self, line: int, cycle: int) -> None:
        features = self._issued.pop(line, None)
        if features is not None:
            self._perceptron.train(features, useful=True)

    def on_prefetch_useless(self, line: int, cycle: int) -> None:
        features = self._issued.pop(line, None)
        if features is not None:
            self._perceptron.train(features, useful=False)

    def reset(self) -> None:
        self._spp.reset()
        self._perceptron = _Perceptron(self._NUM_FEATURES)
        self._issued.clear()
