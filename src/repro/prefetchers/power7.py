"""IBM POWER7-style adaptive prefetcher (Jiménez et al., TOPC 2014 — [71]).

The POWER7 prefetch engine exposes a small set of aggressiveness levels
(stream depth, stride enable) that system software tunes by measuring
performance.  Following §B.5 of the paper, this model adapts *online*:
every epoch it compares the usefulness of its prefetches against
thresholds and moves the streamer depth up or down one level (including
fully off), optionally enabling a stride unit.

The important contrast with Pythia — visible in Fig 22 — is that
adaptation only selects among streaming depths; it cannot capture
non-streaming patterns no matter how it tunes itself.
"""

from __future__ import annotations

from repro.prefetchers.base import DemandContext, Prefetcher
from repro.prefetchers.streamer import StreamerPrefetcher
from repro.prefetchers.stride import StridePrefetcher

#: Selectable depth levels, off → shallow → deep (POWER7's DSCR-style knob).
_DEPTH_LEVELS = (0, 2, 4, 6, 8)


class Power7Prefetcher(Prefetcher):
    """Epoch-adaptive streamer + stride combination.

    Args:
        epoch_length: trainings per adaptation interval.
        raise_threshold: accuracy above which depth increases.
        lower_threshold: accuracy below which depth decreases.
    """

    name = "power7"

    def __init__(
        self,
        epoch_length: int = 2000,
        raise_threshold: float = 0.55,
        lower_threshold: float = 0.30,
    ) -> None:
        self.epoch_length = epoch_length
        self.raise_threshold = raise_threshold
        self.lower_threshold = lower_threshold
        self._level = 2  # start mid-depth, as the hardware default does
        self._streamer = StreamerPrefetcher(depth=_DEPTH_LEVELS[self._level])
        self._stride = StridePrefetcher(degree=2)
        self._trainings = 0
        self._useful = 0
        self._useless = 0

    @property
    def depth(self) -> int:
        """Current streamer depth (0 = streaming off)."""
        return _DEPTH_LEVELS[self._level]

    def train(self, ctx: DemandContext) -> list[int]:
        self._trainings += 1
        if self._trainings % self.epoch_length == 0:
            self._adapt()
        candidates = list(self._stride.train(ctx))
        if self.depth > 0:
            candidates.extend(self._streamer.train(ctx))
        else:
            # Keep the streamer trained while disabled so re-enabling works.
            self._streamer.train(ctx)
        return candidates

    def _adapt(self) -> None:
        judged = self._useful + self._useless
        if judged >= 16:
            accuracy = self._useful / judged
            if accuracy >= self.raise_threshold and self._level < len(_DEPTH_LEVELS) - 1:
                self._level += 1
            elif accuracy <= self.lower_threshold and self._level > 0:
                self._level -= 1
            self._streamer.depth = _DEPTH_LEVELS[self._level]
        self._useful = 0
        self._useless = 0

    def on_demand_hit_prefetched(self, line: int, cycle: int) -> None:
        self._useful += 1

    def on_prefetch_useless(self, line: int, cycle: int) -> None:
        self._useless += 1

    def reset(self) -> None:
        self._level = 2
        self._streamer = StreamerPrefetcher(depth=_DEPTH_LEVELS[self._level])
        self._stride = StridePrefetcher(degree=2)
        self._trainings = 0
        self._useful = 0
        self._useless = 0
