"""IPCP: Instruction Pointer Classifier-based Prefetching (ISCA 2020 — [103]).

IPCP classifies each load PC into one of three classes and prefetches
with the class's strategy:

* **CS** (constant stride): the PC's deltas are stable → stride runahead.
* **CPLX** (complex): deltas vary but are signature-predictable → one
  predicted delta per access.
* **GS** (global stream): the PC participates in a dense region sweep →
  aggressive next-line streaming.

The winner of DPC-3; the paper compares Stride(L1)+Pythia(L2) against
IPCP as a multi-level scheme in Fig 8d.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.prefetchers.base import DemandContext, Prefetcher
from repro.types import LINES_PER_PAGE, make_line


class _IpEntry:
    """Per-PC classification state."""

    __slots__ = ("last_line", "last_stride", "confidence", "sig", "last_offset")

    def __init__(self, line: int, offset: int) -> None:
        self.last_line = line
        self.last_stride = 0
        self.confidence = 0
        self.sig = 0
        self.last_offset = offset


class IpcpPrefetcher(Prefetcher):
    """Three-class IP classifier prefetcher.

    Args:
        table_size: tracked PCs.
        cs_degree: runahead depth for constant-stride PCs.
        gs_degree: stream depth for global-stream regions.
    """

    name = "ipcp"

    def __init__(
        self, table_size: int = 256, cs_degree: int = 4, gs_degree: int = 6
    ) -> None:
        self.table_size = table_size
        self.cs_degree = cs_degree
        self.gs_degree = gs_degree
        self._ips: OrderedDict[int, _IpEntry] = OrderedDict()
        # CPLX: delta-signature -> predicted next delta (with confidence)
        self._cplx: dict[int, list[int]] = {}
        # GS detector: page -> density counter
        self._page_density: OrderedDict[int, int] = OrderedDict()

    def train(self, ctx: DemandContext) -> list[int]:
        entry = self._ips.get(ctx.pc)
        if entry is None:
            entry = _IpEntry(ctx.line, ctx.offset)
            self._ips[ctx.pc] = entry
            while len(self._ips) > self.table_size:
                self._ips.popitem(last=False)
            return []
        self._ips.move_to_end(ctx.pc)

        stride = ctx.line - entry.last_line
        prefetches: list[int] = []

        density = self._page_density.get(ctx.page, 0) + 1
        self._page_density[ctx.page] = density
        self._page_density.move_to_end(ctx.page)
        while len(self._page_density) > 64:
            self._page_density.popitem(last=False)

        if stride != 0:
            if stride == entry.last_stride:
                entry.confidence = min(entry.confidence + 1, 3)
            else:
                entry.confidence = max(entry.confidence - 1, 0)

            if entry.confidence >= 2:
                # CS class: stride runahead.
                for i in range(1, self.cs_degree + 1):
                    target = ctx.line + stride * i
                    if target >= 0:
                        prefetches.append(target)
            elif density >= 12:
                # GS class: dense page sweep, stream next lines.
                direction = 1 if stride > 0 else -1
                for i in range(1, self.gs_degree + 1):
                    target = ctx.line + direction * i
                    if target >= 0:
                        prefetches.append(target)
            else:
                # CPLX class: signature-predicted single delta.
                predicted = self._cplx.get(entry.sig)
                if predicted is not None and predicted[1] >= 2:
                    target_offset = ctx.offset + predicted[0]
                    if 0 <= target_offset < LINES_PER_PAGE:
                        prefetches.append(make_line(ctx.page, target_offset))

            # Train the CPLX table with the delta that just happened.
            in_page_delta = ctx.offset - entry.last_offset
            if in_page_delta != 0:
                slot = self._cplx.setdefault(entry.sig, [in_page_delta, 0])
                if slot[0] == in_page_delta:
                    slot[1] = min(slot[1] + 1, 3)
                else:
                    slot[1] -= 1
                    if slot[1] <= 0:
                        self._cplx[entry.sig] = [in_page_delta, 1]
                entry.sig = ((entry.sig << 4) ^ (in_page_delta & 0x3F)) & 0xFFF

            entry.last_stride = stride
        entry.last_line = ctx.line
        entry.last_offset = ctx.offset
        return prefetches

    def reset(self) -> None:
        self._ips.clear()
        self._cplx.clear()
        self._page_density.clear()
