"""Bingo spatial prefetcher (Bakhshalipour et al., HPCA 2019 — ref [27]).

Bingo predicts a region's entire spatial footprint from the *first*
access to the region, keyed by the most specific matching event: it
looks up its pattern history table first with ``PC+Address`` and, on a
miss, with the more general ``PC+Offset``.  Footprints are harvested by
an accumulation table observing each live region until eviction.

This is the paper's archetypal aggressive spatial prefetcher: the whole
predicted footprint is issued at once, which makes it very timely and
very coverage-rich but the biggest overpredictor when the pattern does
not recur — the behaviour behind Fig 1's Ligra-CC example.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.prefetchers.base import DemandContext, Prefetcher
from repro.types import LINES_PER_PAGE, make_line


class BingoPrefetcher(Prefetcher):
    """Footprint prefetcher with PC+Address / PC+Offset association.

    Args:
        at_size: accumulation-table entries (live regions).
        pht_size: pattern-history-table entries.
    """

    name = "bingo"

    def __init__(self, at_size: int = 128, pht_size: int = 4096) -> None:
        self.at_size = at_size
        self.pht_size = pht_size
        # page -> [footprint_bits, trigger_pc, trigger_offset, predicted_bits]
        self._at: OrderedDict[int, list[int]] = OrderedDict()
        # "long" event (pc, page, offset) -> footprint; "short" (pc, offset) -> footprint
        self._pht_long: OrderedDict[tuple[int, int, int], int] = OrderedDict()
        self._pht_short: OrderedDict[tuple[int, int], int] = OrderedDict()

    def _commit(self, page: int, footprint: int, pc: int, offset: int) -> None:
        self._pht_long[(pc, page, offset)] = footprint
        self._pht_long.move_to_end((pc, page, offset))
        while len(self._pht_long) > self.pht_size:
            self._pht_long.popitem(last=False)
        # Most-recent footprint wins (as in Bingo's history update): OR-ing
        # footprints across visits would accumulate garbage on irregular
        # regions and turn every trigger into a dense spray.
        key = (pc, offset)
        self._pht_short[key] = footprint
        self._pht_short.move_to_end(key)
        while len(self._pht_short) > self.pht_size:
            self._pht_short.popitem(last=False)

    def train(self, ctx: DemandContext) -> list[int]:
        tracker = self._at.get(ctx.page)
        if tracker is not None:
            self._at.move_to_end(ctx.page)
            tracker[0] |= 1 << ctx.offset
            # Keep issuing the remaining predicted footprint: hardware
            # Bingo queues the whole footprint at trigger time and the
            # prefetch queue drains it over subsequent cycles; the
            # hierarchy's degree cap plays the queue's issue-rate role.
            return self._pending(ctx.page, tracker)

        # Region trigger: evict the oldest live region into the PHT.
        self._at[ctx.page] = [1 << ctx.offset, ctx.pc, ctx.offset, 0]
        while len(self._at) > self.at_size:
            old_page, (bits, pc, off, _pred) = self._at.popitem(last=False)
            self._commit(old_page, bits, pc, off)

        footprint = self._lookup(ctx)
        self._at[ctx.page][3] = footprint
        if footprint == 0:
            return []
        return self._pending(ctx.page, self._at[ctx.page])

    def _pending(self, page: int, tracker: list[int]) -> list[int]:
        """Predicted-but-not-yet-demanded lines of a live region."""
        remaining = tracker[3] & ~tracker[0]
        if remaining == 0:
            return []
        return [
            make_line(page, off)
            for off in range(LINES_PER_PAGE)
            if (remaining >> off) & 1
        ]

    def _lookup(self, ctx: DemandContext) -> int:
        long_key = (ctx.pc, ctx.page, ctx.offset)
        if long_key in self._pht_long:
            self._pht_long.move_to_end(long_key)
            return self._pht_long[long_key]
        return self._pht_short.get((ctx.pc, ctx.offset), 0)

    def reset(self) -> None:
        self._at.clear()
        self._pht_long.clear()
        self._pht_short.clear()
