"""Streamer prefetcher, the L2 "streamer" of commercial Intel parts [9, 35].

Tracks per-page access direction; once a monotone run is detected it
prefetches ``depth`` consecutive lines ahead of the demand in the run's
direction.  Used in Fig 8d's Stride(L1)+Streamer(L2) commercial baseline
and by the POWER7-style adaptive prefetcher, which modulates its depth.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.prefetchers.base import DemandContext, Prefetcher
from repro.types import same_page


class StreamerPrefetcher(Prefetcher):
    """Per-page direction-detecting stream prefetcher.

    Args:
        tracker_size: number of concurrently tracked pages.
        depth: how many lines ahead to prefetch once trained.
        train_count: monotone accesses required to enter streaming mode.
    """

    name = "streamer"

    def __init__(
        self,
        tracker_size: int = 64,
        depth: int = 4,
        train_count: int = 2,
    ) -> None:
        self.tracker_size = tracker_size
        self.depth = depth
        self.train_count = train_count
        # page -> [last_offset, direction, run_length]
        self._trackers: OrderedDict[int, list[int]] = OrderedDict()

    def train(self, ctx: DemandContext) -> list[int]:
        tracker = self._trackers.get(ctx.page)
        if tracker is None:
            self._trackers[ctx.page] = [ctx.offset, 0, 0]
            while len(self._trackers) > self.tracker_size:
                self._trackers.popitem(last=False)
            return []

        self._trackers.move_to_end(ctx.page)
        last_offset, direction, run = tracker
        step = ctx.offset - last_offset
        prefetches: list[int] = []
        if step != 0:
            new_dir = 1 if step > 0 else -1
            if new_dir == direction:
                run += 1
            else:
                direction = new_dir
                run = 1
            tracker[1] = direction
            tracker[2] = run
            if run >= self.train_count:
                for i in range(1, self.depth + 1):
                    target = ctx.line + direction * i
                    if target >= 0 and same_page(target, ctx.line):
                        prefetches.append(target)
        tracker[0] = ctx.offset
        return prefetches

    def reset(self) -> None:
        self._trackers.clear()
