"""Storage accounting for Pythia's structures — Table 4, computed exactly.

Table 4 of the paper:

    QVStore: 2 vaults × 3 planes × (128 feature idx × 16 actions) entries
             × 16-bit Q-value                      = 24 KB
    EQ:      256 entries × (21b state + 5b action + 5b reward + 1b filled
             + 16b address) = 256 × 48 bits        = 1.5 KB
    Total                                          = 25.5 KB

The functions compute the same quantities from an arbitrary
:class:`~repro.core.config.PythiaConfig`, so customized configurations
report their true cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import PythiaConfig

#: Bit widths from Table 4.
Q_VALUE_BITS = 16
STATE_BITS = 21
REWARD_BITS = 5
FILLED_BITS = 1
ADDRESS_BITS = 16


@dataclass(frozen=True)
class StorageBreakdown:
    """Byte counts for each Pythia structure."""

    qvstore_bytes: int
    eq_bytes: int

    @property
    def total_bytes(self) -> int:
        """Total metadata storage."""
        return self.qvstore_bytes + self.eq_bytes

    @property
    def total_kib(self) -> float:
        """Total in KiB (the paper's '25.5 KB')."""
        return self.total_bytes / 1024.0


def action_index_bits(config: PythiaConfig) -> int:
    """Bits to encode an action index (5b for 16 actions in Table 4).

    Table 4 budgets 5 bits, one more than strictly needed for 16
    actions, leaving headroom for customized action lists.
    """
    return max(1, math.ceil(math.log2(config.num_actions))) + 1


def qvstore_bytes(config: PythiaConfig) -> int:
    """QVStore storage: vaults × planes × entries × Q-value width."""
    entries = (
        len(config.features)
        * config.num_planes
        * config.plane_entries
        * config.num_actions
    )
    return entries * Q_VALUE_BITS // 8


def eq_bytes(config: PythiaConfig) -> int:
    """EQ storage: entries × (state + action + reward + filled + address)."""
    entry_bits = (
        STATE_BITS
        + action_index_bits(config)
        + REWARD_BITS
        + FILLED_BITS
        + ADDRESS_BITS
    )
    return config.eq_size * entry_bits // 8


def storage_overhead(config: PythiaConfig | None = None) -> StorageBreakdown:
    """Full storage breakdown for a configuration.

    With the paper's hardware geometry (``eq_size=256``), this
    reproduces Table 4's 25.5 KB exactly.
    """
    config = config if config is not None else PythiaConfig(eq_size=256)
    return StorageBreakdown(
        qvstore_bytes=qvstore_bytes(config),
        eq_bytes=eq_bytes(config),
    )
