"""Hardware overhead models: storage (Table 4) and area/power (Table 8)."""

from repro.hwmodel.storage import StorageBreakdown, storage_overhead
from repro.hwmodel.synthesis import (
    AreaPowerEstimate,
    PROCESSOR_SKUS,
    overhead_table,
    synthesize,
)

__all__ = [
    "StorageBreakdown",
    "storage_overhead",
    "AreaPowerEstimate",
    "PROCESSOR_SKUS",
    "overhead_table",
    "synthesize",
]
