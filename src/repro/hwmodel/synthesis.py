"""Analytic area/power model calibrated to the paper's synthesis (Table 8).

The paper implements Pythia in Chisel and synthesizes with Synopsys DC
on GlobalFoundries 14 nm, reporting 0.33 mm² and 55.11 mW per core, with
QVStore consuming 90.4 % of area and 95.6 % of power.  No synthesis
toolchain exists in this environment, so this module provides a
*documented analytic substitute*: per-KB SRAM area/power densities
back-derived from the published totals, applied to the storage model.
Scaling behaviour (more vaults, longer action lists → proportionally
more area) is therefore faithful even though the absolute constants are
fitted rather than synthesized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PythiaConfig
from repro.core.pipeline import prediction_latency
from repro.hwmodel.storage import storage_overhead

#: Published synthesis results (Table 8) used for calibration.
PAPER_AREA_MM2 = 0.33
PAPER_POWER_MW = 55.11
#: Fraction of area/power in the QVStore (§6.7).
QVSTORE_AREA_FRACTION = 0.904
QVSTORE_POWER_FRACTION = 0.956
#: Storage of the calibration design point (Table 4).
_CAL_QVSTORE_KIB = 24.0
_CAL_OTHER_KIB = 1.5

#: Per-KiB densities derived from the calibration point.
AREA_MM2_PER_KIB_QVSTORE = PAPER_AREA_MM2 * QVSTORE_AREA_FRACTION / _CAL_QVSTORE_KIB
POWER_MW_PER_KIB_QVSTORE = PAPER_POWER_MW * QVSTORE_POWER_FRACTION / _CAL_QVSTORE_KIB
AREA_MM2_PER_KIB_OTHER = PAPER_AREA_MM2 * (1 - QVSTORE_AREA_FRACTION) / _CAL_OTHER_KIB
POWER_MW_PER_KIB_OTHER = PAPER_POWER_MW * (1 - QVSTORE_POWER_FRACTION) / _CAL_OTHER_KIB

#: Commercial SKUs the paper compares against (Table 8):
#: name → (cores, die area mm², TDP W).
PROCESSOR_SKUS: dict[str, tuple[int, float, float]] = {
    "Skylake D-2123IT (4-core, 60W)": (4, 128.0, 60.0),
    "Skylake Gold 6150 (18-core, 165W)": (18, 485.0, 165.0),
    "Skylake Platinum 8180M (28-core, 205W)": (28, 694.0, 205.0),
}


@dataclass(frozen=True)
class AreaPowerEstimate:
    """Per-core area/power estimate for one Pythia configuration."""

    area_mm2: float
    power_mw: float
    prediction_latency_cycles: int

    def area_overhead_pct(self, cores: int, die_area_mm2: float) -> float:
        """Area overhead of Pythia in all cores vs a die area."""
        return 100.0 * self.area_mm2 * cores / die_area_mm2

    def power_overhead_pct(self, cores: int, tdp_w: float) -> float:
        """Power overhead of Pythia in all cores vs a TDP budget."""
        return 100.0 * self.power_mw * cores / (tdp_w * 1000.0)


def synthesize(config: PythiaConfig | None = None) -> AreaPowerEstimate:
    """Estimate area/power for a configuration via the calibrated model."""
    config = config if config is not None else PythiaConfig(eq_size=256)
    storage = storage_overhead(config)
    qvstore_kib = storage.qvstore_bytes / 1024.0
    other_kib = storage.eq_bytes / 1024.0
    area = (
        qvstore_kib * AREA_MM2_PER_KIB_QVSTORE
        + other_kib * AREA_MM2_PER_KIB_OTHER
    )
    power = (
        qvstore_kib * POWER_MW_PER_KIB_QVSTORE
        + other_kib * POWER_MW_PER_KIB_OTHER
    )
    return AreaPowerEstimate(
        area_mm2=area,
        power_mw=power,
        prediction_latency_cycles=prediction_latency(config),
    )


def overhead_table(config: PythiaConfig | None = None) -> list[tuple[str, float, float]]:
    """Table 8 rows: (SKU, area overhead %, power overhead %)."""
    estimate = synthesize(config)
    rows = []
    for sku, (cores, die_mm2, tdp_w) in PROCESSOR_SKUS.items():
        rows.append(
            (
                sku,
                estimate.area_overhead_pct(cores, die_mm2),
                estimate.power_overhead_pct(cores, tdp_w),
            )
        )
    return rows
