"""Unified string-addressable registries: prefetchers, workloads, systems.

This module is the single name → object map for the whole system.  Every
layer that previously kept its own registry (``repro.prefetchers.registry``
for prefetchers, ``repro.workloads.generators``/``repro.workloads.cvp``
for traces, ad-hoc helpers in ``repro.sim.config`` for systems) is
addressable from here, so the declarative :class:`repro.api.Experiment`
layer can be built entirely from strings:

* :func:`create` — instantiate a fresh prefetcher by name, forwarding
  keyword overrides to the factory (``create("pythia", alpha=0.08)``).
* :func:`make_trace` / :func:`suite_of` — instantiate any named trace,
  including the unseen ``cvp/`` namespace.
* :func:`system` — resolve a named system config, with ``@key=value``
  modifiers for the paper's sweep axes (``"1c@mtps=600"``).

Prefetcher names follow the paper's labels: the five competitors of
Table 7, the auxiliary comparison points of the appendices, Pythia's
three configurations, and the cumulative combinations of Fig 9(b)/10(b)
(``st``, ``st+s``, ``st+s+b``, ``st+s+b+d``, ``st+s+b+d+m``).  Factories
construct *fresh* instances — prefetcher state is per-core hardware and
must never leak between runs or cores.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.prefetchers.base import Prefetcher
    from repro.sim.config import SystemConfig
    from repro.sim.trace import Trace

# --------------------------------------------------------------------------
# Prefetchers
# --------------------------------------------------------------------------

#: User-registered prefetcher factories layered over the built-ins.
_EXTRA_PREFETCHERS: dict[str, Callable[..., "Prefetcher"]] = {}


def _combo(*names: str) -> Callable[..., "Prefetcher"]:
    def factory(**overrides: object) -> "Prefetcher":
        if overrides:
            raise TypeError(
                f"composite prefetcher {'+'.join(names)} takes no overrides; "
                "override the component prefetchers instead"
            )
        from repro.prefetchers.composite import CompositePrefetcher

        return CompositePrefetcher([create(n) for n in names])

    return factory


def _pythia(preset: str) -> Callable[..., "Prefetcher"]:
    def factory(**overrides: object) -> "Prefetcher":
        import dataclasses

        from repro.core import Pythia, PythiaConfig

        config = overrides.pop("config", None)
        if config is None:
            config = PythiaConfig.named(preset)
        if overrides:
            config = dataclasses.replace(config, **overrides)
        return Pythia(config)

    return factory


def _builtin_prefetchers() -> dict[str, Callable[..., "Prefetcher"]]:
    from repro.prefetchers.base import NoPrefetcher
    from repro.prefetchers.bingo import BingoPrefetcher
    from repro.prefetchers.cp_hw import CpHwPrefetcher
    from repro.prefetchers.dspatch import DspatchPrefetcher
    from repro.prefetchers.ipcp import IpcpPrefetcher
    from repro.prefetchers.mlop import MlopPrefetcher
    from repro.prefetchers.power7 import Power7Prefetcher
    from repro.prefetchers.ppf import SppPpfPrefetcher
    from repro.prefetchers.spp import SppPrefetcher
    from repro.prefetchers.streamer import StreamerPrefetcher
    from repro.prefetchers.stride import StridePrefetcher

    return {
        "none": NoPrefetcher,
        "stride": StridePrefetcher,
        "streamer": StreamerPrefetcher,
        "spp": SppPrefetcher,
        "spp_ppf": SppPpfPrefetcher,
        "dspatch": DspatchPrefetcher,
        "bingo": BingoPrefetcher,
        "mlop": MlopPrefetcher,
        "ipcp": IpcpPrefetcher,
        "cp_hw": CpHwPrefetcher,
        "power7": Power7Prefetcher,
        "pythia": _pythia("basic"),
        "pythia_strict": _pythia("strict"),
        "pythia_bw_oblivious": _pythia("bw_oblivious"),
        # Fig 9b / 10b cumulative combinations.
        "st": StridePrefetcher,
        "st+s": _combo("stride", "spp"),
        "st+s+b": _combo("stride", "spp", "bingo"),
        "st+s+b+d": _combo("stride", "spp", "bingo", "dspatch"),
        "st+s+b+d+m": _combo("stride", "spp", "bingo", "dspatch", "mlop"),
        # Fig 8d multi-level comparators (L2 part; L1 stride is added by
        # the harness via the l1_prefetcher hook).
        "stride+streamer": _combo("stride", "streamer"),
    }


def _prefetcher_registry() -> dict[str, Callable[..., "Prefetcher"]]:
    registry = _builtin_prefetchers()
    registry.update(_EXTRA_PREFETCHERS)
    return registry


def register_prefetcher(name: str, factory: Callable[..., "Prefetcher"]) -> None:
    """Register (or shadow) a prefetcher *factory* under *name*.

    The factory must accept keyword overrides (or none) and return a
    fresh :class:`~repro.prefetchers.base.Prefetcher` per call.  To be
    usable with spawn-based process pools the factory must be picklable
    (a top-level function or class, not a lambda/closure).
    """
    _EXTRA_PREFETCHERS[name] = factory


def available_prefetchers() -> list[str]:
    """All registered prefetcher names."""
    return sorted(_prefetcher_registry())


def create(name: str, **overrides: object) -> "Prefetcher":
    """Instantiate a fresh prefetcher by registry *name*.

    Keyword *overrides* are forwarded to the factory: constructor
    arguments for plain prefetchers, :class:`~repro.core.PythiaConfig`
    field overrides for the ``pythia*`` entries (plus ``config=`` to
    supply a complete config object).
    """
    registry = _prefetcher_registry()
    if name not in registry:
        raise KeyError(f"unknown prefetcher {name!r}; known: {sorted(registry)}")
    return registry[name](**overrides)


#: Memo for resolved prefetcher descriptions, keyed by a canonical JSON
#: rendering of (name, overrides) — override *values* may be unhashable
#: (lists, dicts), so ``lru_cache`` over the raw values cannot be used.
_RESOLVED_CONFIG_CACHE: dict[str, object] = {}


def _resolved_prefetcher_config(name: str, overrides: dict) -> object:
    import dataclasses
    import inspect

    from repro.api.fingerprint import canonical

    prefetcher = create(name, **overrides)
    description: dict[str, object] = {"class": type(prefetcher).__name__}
    config = getattr(prefetcher, "config", None)
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        # Config-object prefetchers (Pythia): the complete resolved
        # config — preset defaults, named-preset deltas, overrides.
        description["config"] = canonical(config)
    else:
        # Plain prefetchers: constructor defaults merged with overrides,
        # so retuning a default parameter changes the description.
        try:
            params = {
                p.name: p.default
                for p in inspect.signature(type(prefetcher).__init__).parameters.values()
                if p.default is not inspect.Parameter.empty
            }
        except (TypeError, ValueError):  # pragma: no cover - builtins
            params = {}
        params.update(overrides)
        description["params"] = canonical(params)
        members = getattr(prefetcher, "members", None)
        if members is not None:  # composites: resolve each member
            description["members"] = [
                resolved_prefetcher_config(m.name) for m in members
            ]
    return description


def resolved_prefetcher_config(name: str, **overrides: object) -> object:
    """Canonical description of the *resolved* prefetcher configuration.

    Used by result-store fingerprints so cache entries self-invalidate
    when a preset or constructor default is retuned, instead of relying
    on a manual ``SCHEMA_VERSION`` bump.  Memoized per (name, overrides)
    — composites recurse into their members.
    """
    import json

    from repro.api.fingerprint import canonical

    key = json.dumps([name, canonical(overrides)], sort_keys=True)
    cached = _RESOLVED_CONFIG_CACHE.get(key)
    if cached is None:
        # Safe: process-local memo cache — worst case under a racing
        # writer is a redundant recompute of a deterministic value.
        if len(_RESOLVED_CONFIG_CACHE) > 256:
            _RESOLVED_CONFIG_CACHE.clear()  # repro: ignore[concurrency]
        cached = _resolved_prefetcher_config(name, overrides)
        _RESOLVED_CONFIG_CACHE[key] = cached  # repro: ignore[concurrency]
    return cached


# --------------------------------------------------------------------------
# Workloads / traces
# --------------------------------------------------------------------------

#: Name prefix of the external-trace namespace (see
#: :mod:`repro.workloads.ingest`): ``file/<alias>`` for registered
#: files, ``file/<path>`` for direct filesystem addressing.
FILE_NAMESPACE = "file/"


@dataclass(frozen=True)
class TraceFileEntry:
    """One registered (or directly-addressed) external trace file."""

    path: str
    suite: str = "FILE"
    fmt: str | None = None
    gap: int | None = None


#: Registered external trace files, keyed by alias (no ``file/`` prefix).
_TRACE_FILES: dict[str, TraceFileEntry] = {}


def register_trace_file(
    alias: str,
    path: "str | object",
    suite: str = "FILE",
    fmt: str | None = None,
    gap: int | None = None,
) -> str:
    """Register an external trace file under ``file/<alias>``.

    Returns the full registry name.  *fmt* (``"text"``/``"binary"``) and
    *gap* override the loader's suffix detection and default non-memory
    gap.  Unregistered files remain addressable as ``file/<path>``
    (suite ``"FILE"``, suffix-detected format).
    """
    if "/" in alias:
        raise ValueError(f"trace-file alias {alias!r} must not contain '/'")
    _TRACE_FILES[alias] = TraceFileEntry(
        path=str(path), suite=suite, fmt=fmt, gap=gap
    )
    return f"{FILE_NAMESPACE}{alias}"


def registered_trace_files() -> list[str]:
    """Full registry names of all registered external trace files."""
    return sorted(f"{FILE_NAMESPACE}{alias}" for alias in _TRACE_FILES)


def _file_entry(name: str) -> TraceFileEntry:
    rest = name[len(FILE_NAMESPACE):]
    entry = _TRACE_FILES.get(rest)
    if entry is None:
        return TraceFileEntry(path=rest)
    # An alias must never silently shadow a real file of the same name —
    # "file/data.csv" meaning ./data.csv would load the alias's target
    # instead, producing wrong results with the wrong fingerprint.
    from pathlib import Path

    if Path(rest).exists() and Path(entry.path).resolve() != Path(rest).resolve():
        raise KeyError(
            f"{name!r} is ambiguous: alias {rest!r} is registered to "
            f"{entry.path!r} but a file {rest!r} also exists — address the "
            f"file as 'file/./{rest}' or re-register the alias"
        )
    return entry


#: path → ((mtime_ns, size), CRC32).  Stamps are validated by a cheap
#: ``stat`` instead of re-reading the file: fingerprinting a sweep calls
#: :func:`trace_stamp` once per cell *and* baseline, which would
#: otherwise re-decompress a multi-hundred-MB recording dozens of times
#: per run.  A changed file changes its mtime/size and is re-CRC'd.
_FILE_STAMP_CACHE: dict[str, tuple[tuple[int, int], int]] = {}


def _file_stamp(path: str) -> int:
    import os

    from repro.workloads.ingest import file_stamp

    try:
        stat = os.stat(path)
    except OSError:
        return file_stamp(path)  # raises TraceIngestError with context
    key = (stat.st_mtime_ns, stat.st_size)
    cached = _FILE_STAMP_CACHE.get(path)
    if cached is not None and cached[0] == key:
        return cached[1]
    # Safe: process-local memo cache — a racing writer at worst evicts
    # or recomputes a deterministic stamp, never corrupts one.
    if len(_FILE_STAMP_CACHE) >= 256:
        _FILE_STAMP_CACHE.pop(next(iter(_FILE_STAMP_CACHE)))  # repro: ignore[concurrency]
    stamp = file_stamp(path)
    _FILE_STAMP_CACHE[path] = (key, stamp)  # repro: ignore[concurrency]
    return stamp


def make_trace(name: str, length: int = 20_000) -> "Trace":
    """Instantiate a trace by name, handling the ``cvp/`` (unseen) and
    ``file/`` (externally ingested) namespaces."""
    if name.startswith(FILE_NAMESPACE):
        from repro.workloads.ingest import load_trace_file

        entry = _file_entry(name)
        return load_trace_file(
            entry.path,
            length=length,
            name=name,
            suite=entry.suite,
            fmt=entry.fmt,
            gap=entry.gap,
        )
    if name.startswith("cvp/"):
        from repro.workloads.cvp import generate_cvp_trace

        return generate_cvp_trace(name, length=length)
    from repro.workloads.generators import generate_trace

    return generate_trace(name, length=length)


@functools.lru_cache(maxsize=128)
def _cached_generated_trace(name: str, length: int) -> "Trace":
    return make_trace(name, length)


#: (name, length) → (file stamp at load time, trace).  File traces are
#: validated against the file's current CRC32 on every lookup, so an
#: edited file is reloaded instead of served stale.
_FILE_TRACE_CACHE: dict[tuple[str, int], tuple[int, "Trace"]] = {}


def cached_trace(name: str, length: int = 20_000) -> "Trace":
    """Memoized :func:`make_trace`.

    Traces are immutable and deterministic, so one instance per
    (name, length) serves every cell that replays it — without this, a
    traces × prefetchers sweep would regenerate each trace once per
    prefetcher (plus once for the baseline).  The cache is per-process;
    process-pool workers each warm their own.  ``file/`` traces are
    additionally keyed by the file's current content stamp, so a file
    whose bytes change mid-process is reloaded rather than served stale.
    """
    if name.startswith(FILE_NAMESPACE):
        stamp = _file_stamp(_file_entry(name).path)
        cached = _FILE_TRACE_CACHE.get((name, length))
        if cached is not None and cached[0] == stamp:
            return cached[1]
        # Safe: process-local memo cache of immutable traces — a racing
        # writer at worst reloads the same deterministic trace twice.
        if len(_FILE_TRACE_CACHE) >= 64:
            # Evict the oldest entry only — clearing wholesale would
            # re-parse every live trace of a >64-file sweep per miss.
            _FILE_TRACE_CACHE.pop(next(iter(_FILE_TRACE_CACHE)))  # repro: ignore[concurrency]
        trace = make_trace(name, length)
        _FILE_TRACE_CACHE[(name, length)] = (stamp, trace)  # repro: ignore[concurrency]
        return trace
    return _cached_generated_trace(name, length)


@functools.lru_cache(maxsize=1024)
def _generated_trace_stamp(name: str, length: int) -> int:
    return _cached_generated_trace(name, length).content_stamp


def trace_stamp(name: str, length: int = 20_000) -> int:
    """Content stamp (CRC32) of the named trace at *length*.

    Result-store fingerprints fold this in so entries self-invalidate
    when a workload generator changes the records it emits — the
    (name, length) pair alone cannot see generator code changes.  For
    generated traces this uses the memoized trace, so sweeps pay the
    generation cost once; for ``file/`` traces it is the CRC32 of the
    file's current bytes, validated against the file's mtime/size on
    every call — a rewritten file is re-stamped, an unchanged one costs
    a ``stat`` instead of a full (possibly gunzipped) re-read per cell.
    """
    if name.startswith(FILE_NAMESPACE):
        return _file_stamp(_file_entry(name).path)
    return _generated_trace_stamp(name, length)


def suite_of(trace_name: str) -> str:
    """Suite label of a trace name, without generating the trace."""
    if trace_name.startswith(FILE_NAMESPACE):
        return _file_entry(trace_name).suite
    if trace_name.startswith("cvp/"):
        from repro.workloads.cvp import cvp_suite_of

        return cvp_suite_of(trace_name)
    from repro.workloads.generators import WORKLOADS

    base = trace_name
    if base not in WORKLOADS and "-" in base:
        head, _, tail = base.rpartition("-")
        if tail.isdigit():
            base = head
    if base not in WORKLOADS:
        raise KeyError(f"unknown workload: {trace_name!r}")
    return WORKLOADS[base].suite


def base_workload_name(trace_name: str) -> str:
    """The workload behind a trace name, with any seed suffix stripped.

    ``spec06/lbm-2`` → ``spec06/lbm``; bare workload names and ``file/``
    traces (which have no seed axis) pass through unchanged.
    """
    if trace_name.startswith(FILE_NAMESPACE):
        return trace_name
    suite_of(trace_name)  # raises KeyError for unknown workloads
    head, _, tail = trace_name.rpartition("-")
    if head and tail.isdigit():
        return head
    return trace_name


def reseed_trace_name(trace_name: str, seed: int) -> "str | None":
    """The *seed*-th replicate of a trace, or ``None`` if not reseedable.

    Generated traces replicate by seed suffix (``spec06/lbm-1`` at seed 3
    → ``spec06/lbm-3``); externally-ingested ``file/`` traces are fixed
    recordings with no seed axis and return ``None``.
    """
    if trace_name.startswith(FILE_NAMESPACE):
        return None
    return f"{base_workload_name(trace_name)}-{seed}"


def available_workloads(suite: str | None = None) -> list[str]:
    """Named workloads (optionally filtered by suite), plus cvp/ names."""
    from repro.workloads.cvp import cvp_trace_names
    from repro.workloads.generators import workload_names

    names = workload_names(suite) if suite else workload_names()
    if suite is None:
        names = names + sorted({n.rpartition("-")[0] for n in cvp_trace_names()})
    return names


# --------------------------------------------------------------------------
# Systems
# --------------------------------------------------------------------------

#: User-registered named system-config factories.
_EXTRA_SYSTEMS: dict[str, Callable[[], "SystemConfig"]] = {}

_CORES_PATTERN = re.compile(r"^(\d+)c$")


def register_system(name: str, factory: Callable[[], "SystemConfig"]) -> None:
    """Register a named system configuration factory."""
    _EXTRA_SYSTEMS[name] = factory


def available_systems() -> list[str]:
    """Built-in named systems plus registered customs."""
    return sorted({"default", "baseline", "1c", "2c", "4c", "8c", *_EXTRA_SYSTEMS})


def _base_system(name: str) -> "SystemConfig":
    from repro.sim.config import baseline_multi_core, baseline_single_core

    if name in _EXTRA_SYSTEMS:
        return _EXTRA_SYSTEMS[name]()
    if name in ("default", "baseline", "1c", ""):
        return baseline_single_core()
    match = _CORES_PATTERN.match(name)
    if match:
        return baseline_multi_core(int(match.group(1)))
    raise KeyError(
        f"unknown system {name!r}; known: {available_systems()} "
        "(or any '<n>c' core count)"
    )


def system(spec: "str | SystemConfig") -> "SystemConfig":
    """Resolve a system spec: a config object, a name, or ``name@mods``.

    Supported modifiers (comma-separated after ``@``) mirror the paper's
    sweep axes: ``mtps=<int>`` (Fig 8b) and ``llc_scale=<float>``
    (Fig 8c).  Examples: ``"1c"``, ``"4c@mtps=600"``,
    ``"1c@llc_scale=0.25,mtps=1200"``.
    """
    from repro.sim.config import SystemConfig

    if isinstance(spec, SystemConfig):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"system spec must be a name or SystemConfig, got {spec!r}")
    base, _, mods = spec.partition("@")
    config = _base_system(base)
    if mods:
        for mod in mods.split(","):
            key, _, value = mod.partition("=")
            key = key.strip()
            if key == "mtps":
                config = config.with_mtps(int(value))
            elif key == "llc_scale":
                config = config.scaled_llc(float(value))
            else:
                raise KeyError(f"unknown system modifier {key!r} in {spec!r}")
    return config
