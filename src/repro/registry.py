"""Unified string-addressable registries: prefetchers, workloads, systems.

This module is the single name → object map for the whole system.  Every
layer that previously kept its own registry (``repro.prefetchers.registry``
for prefetchers, ``repro.workloads.generators``/``repro.workloads.cvp``
for traces, ad-hoc helpers in ``repro.sim.config`` for systems) is
addressable from here, so the declarative :class:`repro.api.Experiment`
layer can be built entirely from strings:

* :func:`create` — instantiate a fresh prefetcher by name, forwarding
  keyword overrides to the factory (``create("pythia", alpha=0.08)``).
* :func:`make_trace` / :func:`suite_of` — instantiate any named trace,
  including the unseen ``cvp/`` namespace.
* :func:`system` — resolve a named system config, with ``@key=value``
  modifiers for the paper's sweep axes (``"1c@mtps=600"``).

Prefetcher names follow the paper's labels: the five competitors of
Table 7, the auxiliary comparison points of the appendices, Pythia's
three configurations, and the cumulative combinations of Fig 9(b)/10(b)
(``st``, ``st+s``, ``st+s+b``, ``st+s+b+d``, ``st+s+b+d+m``).  Factories
construct *fresh* instances — prefetcher state is per-core hardware and
must never leak between runs or cores.
"""

from __future__ import annotations

import functools
import re
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.prefetchers.base import Prefetcher
    from repro.sim.config import SystemConfig
    from repro.sim.trace import Trace

# --------------------------------------------------------------------------
# Prefetchers
# --------------------------------------------------------------------------

#: User-registered prefetcher factories layered over the built-ins.
_EXTRA_PREFETCHERS: dict[str, Callable[..., "Prefetcher"]] = {}


def _combo(*names: str) -> Callable[..., "Prefetcher"]:
    def factory(**overrides: object) -> "Prefetcher":
        if overrides:
            raise TypeError(
                f"composite prefetcher {'+'.join(names)} takes no overrides; "
                "override the component prefetchers instead"
            )
        from repro.prefetchers.composite import CompositePrefetcher

        return CompositePrefetcher([create(n) for n in names])

    return factory


def _pythia(preset: str) -> Callable[..., "Prefetcher"]:
    def factory(**overrides: object) -> "Prefetcher":
        import dataclasses

        from repro.core import Pythia, PythiaConfig

        config = overrides.pop("config", None)
        if config is None:
            config = PythiaConfig.named(preset)
        if overrides:
            config = dataclasses.replace(config, **overrides)
        return Pythia(config)

    return factory


def _builtin_prefetchers() -> dict[str, Callable[..., "Prefetcher"]]:
    from repro.prefetchers.base import NoPrefetcher
    from repro.prefetchers.bingo import BingoPrefetcher
    from repro.prefetchers.cp_hw import CpHwPrefetcher
    from repro.prefetchers.dspatch import DspatchPrefetcher
    from repro.prefetchers.ipcp import IpcpPrefetcher
    from repro.prefetchers.mlop import MlopPrefetcher
    from repro.prefetchers.power7 import Power7Prefetcher
    from repro.prefetchers.ppf import SppPpfPrefetcher
    from repro.prefetchers.spp import SppPrefetcher
    from repro.prefetchers.streamer import StreamerPrefetcher
    from repro.prefetchers.stride import StridePrefetcher

    return {
        "none": NoPrefetcher,
        "stride": StridePrefetcher,
        "streamer": StreamerPrefetcher,
        "spp": SppPrefetcher,
        "spp_ppf": SppPpfPrefetcher,
        "dspatch": DspatchPrefetcher,
        "bingo": BingoPrefetcher,
        "mlop": MlopPrefetcher,
        "ipcp": IpcpPrefetcher,
        "cp_hw": CpHwPrefetcher,
        "power7": Power7Prefetcher,
        "pythia": _pythia("basic"),
        "pythia_strict": _pythia("strict"),
        "pythia_bw_oblivious": _pythia("bw_oblivious"),
        # Fig 9b / 10b cumulative combinations.
        "st": StridePrefetcher,
        "st+s": _combo("stride", "spp"),
        "st+s+b": _combo("stride", "spp", "bingo"),
        "st+s+b+d": _combo("stride", "spp", "bingo", "dspatch"),
        "st+s+b+d+m": _combo("stride", "spp", "bingo", "dspatch", "mlop"),
        # Fig 8d multi-level comparators (L2 part; L1 stride is added by
        # the harness via the l1_prefetcher hook).
        "stride+streamer": _combo("stride", "streamer"),
    }


def _prefetcher_registry() -> dict[str, Callable[..., "Prefetcher"]]:
    registry = _builtin_prefetchers()
    registry.update(_EXTRA_PREFETCHERS)
    return registry


def register_prefetcher(name: str, factory: Callable[..., "Prefetcher"]) -> None:
    """Register (or shadow) a prefetcher *factory* under *name*.

    The factory must accept keyword overrides (or none) and return a
    fresh :class:`~repro.prefetchers.base.Prefetcher` per call.  To be
    usable with spawn-based process pools the factory must be picklable
    (a top-level function or class, not a lambda/closure).
    """
    _EXTRA_PREFETCHERS[name] = factory


def available_prefetchers() -> list[str]:
    """All registered prefetcher names."""
    return sorted(_prefetcher_registry())


def create(name: str, **overrides: object) -> "Prefetcher":
    """Instantiate a fresh prefetcher by registry *name*.

    Keyword *overrides* are forwarded to the factory: constructor
    arguments for plain prefetchers, :class:`~repro.core.PythiaConfig`
    field overrides for the ``pythia*`` entries (plus ``config=`` to
    supply a complete config object).
    """
    registry = _prefetcher_registry()
    if name not in registry:
        raise KeyError(f"unknown prefetcher {name!r}; known: {sorted(registry)}")
    return registry[name](**overrides)


#: Memo for resolved prefetcher descriptions, keyed by a canonical JSON
#: rendering of (name, overrides) — override *values* may be unhashable
#: (lists, dicts), so ``lru_cache`` over the raw values cannot be used.
_RESOLVED_CONFIG_CACHE: dict[str, object] = {}


def _resolved_prefetcher_config(name: str, overrides: dict) -> object:
    import dataclasses
    import inspect

    from repro.api.fingerprint import canonical

    prefetcher = create(name, **overrides)
    description: dict[str, object] = {"class": type(prefetcher).__name__}
    config = getattr(prefetcher, "config", None)
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        # Config-object prefetchers (Pythia): the complete resolved
        # config — preset defaults, named-preset deltas, overrides.
        description["config"] = canonical(config)
    else:
        # Plain prefetchers: constructor defaults merged with overrides,
        # so retuning a default parameter changes the description.
        try:
            params = {
                p.name: p.default
                for p in inspect.signature(type(prefetcher).__init__).parameters.values()
                if p.default is not inspect.Parameter.empty
            }
        except (TypeError, ValueError):  # pragma: no cover - builtins
            params = {}
        params.update(overrides)
        description["params"] = canonical(params)
        members = getattr(prefetcher, "members", None)
        if members is not None:  # composites: resolve each member
            description["members"] = [
                resolved_prefetcher_config(m.name) for m in members
            ]
    return description


def resolved_prefetcher_config(name: str, **overrides: object) -> object:
    """Canonical description of the *resolved* prefetcher configuration.

    Used by result-store fingerprints so cache entries self-invalidate
    when a preset or constructor default is retuned, instead of relying
    on a manual ``SCHEMA_VERSION`` bump.  Memoized per (name, overrides)
    — composites recurse into their members.
    """
    import json

    from repro.api.fingerprint import canonical

    key = json.dumps([name, canonical(overrides)], sort_keys=True)
    cached = _RESOLVED_CONFIG_CACHE.get(key)
    if cached is None:
        if len(_RESOLVED_CONFIG_CACHE) > 256:
            _RESOLVED_CONFIG_CACHE.clear()
        cached = _resolved_prefetcher_config(name, overrides)
        _RESOLVED_CONFIG_CACHE[key] = cached
    return cached


# --------------------------------------------------------------------------
# Workloads / traces
# --------------------------------------------------------------------------


def make_trace(name: str, length: int = 20_000) -> "Trace":
    """Instantiate a trace by name, handling the CVP (unseen) namespace."""
    if name.startswith("cvp/"):
        from repro.workloads.cvp import generate_cvp_trace

        return generate_cvp_trace(name, length=length)
    from repro.workloads.generators import generate_trace

    return generate_trace(name, length=length)


@functools.lru_cache(maxsize=128)
def cached_trace(name: str, length: int = 20_000) -> "Trace":
    """Memoized :func:`make_trace`.

    Traces are immutable and deterministic, so one instance per
    (name, length) serves every cell that replays it — without this, a
    traces × prefetchers sweep would regenerate each trace once per
    prefetcher (plus once for the baseline).  The cache is per-process;
    process-pool workers each warm their own.
    """
    return make_trace(name, length)


@functools.lru_cache(maxsize=1024)
def trace_stamp(name: str, length: int = 20_000) -> int:
    """Content stamp (CRC32) of the named trace at *length*.

    Result-store fingerprints fold this in so entries self-invalidate
    when a workload generator changes the records it emits — the
    (name, length) pair alone cannot see generator code changes.  Uses
    the memoized trace, so sweeps pay the generation cost once.
    """
    return cached_trace(name, length).content_stamp


def suite_of(trace_name: str) -> str:
    """Suite label of a trace name, without generating the trace."""
    if trace_name.startswith("cvp/"):
        from repro.workloads.cvp import cvp_suite_of

        return cvp_suite_of(trace_name)
    from repro.workloads.generators import WORKLOADS

    base = trace_name
    if base not in WORKLOADS and "-" in base:
        head, _, tail = base.rpartition("-")
        if tail.isdigit():
            base = head
    if base not in WORKLOADS:
        raise KeyError(f"unknown workload: {trace_name!r}")
    return WORKLOADS[base].suite


def available_workloads(suite: str | None = None) -> list[str]:
    """Named workloads (optionally filtered by suite), plus cvp/ names."""
    from repro.workloads.cvp import cvp_trace_names
    from repro.workloads.generators import workload_names

    names = workload_names(suite) if suite else workload_names()
    if suite is None:
        names = names + sorted({n.rpartition("-")[0] for n in cvp_trace_names()})
    return names


# --------------------------------------------------------------------------
# Systems
# --------------------------------------------------------------------------

#: User-registered named system-config factories.
_EXTRA_SYSTEMS: dict[str, Callable[[], "SystemConfig"]] = {}

_CORES_PATTERN = re.compile(r"^(\d+)c$")


def register_system(name: str, factory: Callable[[], "SystemConfig"]) -> None:
    """Register a named system configuration factory."""
    _EXTRA_SYSTEMS[name] = factory


def available_systems() -> list[str]:
    """Built-in named systems plus registered customs."""
    return sorted({"default", "baseline", "1c", "2c", "4c", "8c", *_EXTRA_SYSTEMS})


def _base_system(name: str) -> "SystemConfig":
    from repro.sim.config import baseline_multi_core, baseline_single_core

    if name in _EXTRA_SYSTEMS:
        return _EXTRA_SYSTEMS[name]()
    if name in ("default", "baseline", "1c", ""):
        return baseline_single_core()
    match = _CORES_PATTERN.match(name)
    if match:
        return baseline_multi_core(int(match.group(1)))
    raise KeyError(
        f"unknown system {name!r}; known: {available_systems()} "
        "(or any '<n>c' core count)"
    )


def system(spec: "str | SystemConfig") -> "SystemConfig":
    """Resolve a system spec: a config object, a name, or ``name@mods``.

    Supported modifiers (comma-separated after ``@``) mirror the paper's
    sweep axes: ``mtps=<int>`` (Fig 8b) and ``llc_scale=<float>``
    (Fig 8c).  Examples: ``"1c"``, ``"4c@mtps=600"``,
    ``"1c@llc_scale=0.25,mtps=1200"``.
    """
    from repro.sim.config import SystemConfig

    if isinstance(spec, SystemConfig):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"system spec must be a name or SystemConfig, got {spec!r}")
    base, _, mods = spec.partition("@")
    config = _base_system(base)
    if mods:
        for mod in mods.split(","):
            key, _, value = mod.partition("=")
            key = key.strip()
            if key == "mtps":
                config = config.with_mtps(int(value))
            elif key == "llc_scale":
                config = config.scaled_llc(float(value))
            else:
                raise KeyError(f"unknown system modifier {key!r} in {spec!r}")
    return config
