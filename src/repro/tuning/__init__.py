"""Automated design-space exploration (§4.3).

Three procedures, miniaturized versions of what the paper ran on a
compute grid for 44 hours: feature selection over the 32-feature space
(§4.3.1), action-list pruning (§4.3.2), and uniform-grid reward /
hyperparameter search (§4.3.3).

All three are thin layers over the declarative
:mod:`repro.api.search` subsystem: each candidate configuration becomes
a grid point of one :class:`~repro.api.search.GridSearch`, so sweeps
fan out through the session's executor (process pools included), land
in the persistent result store, and re-runs simulate nothing.  Every
entry point takes ``session=`` — a :class:`repro.api.Session` or
``None`` for a private memory-only one.
"""

from repro.tuning.feature_selection import (
    evaluate_feature_vector,
    feature_selection,
)
from repro.tuning.action_pruning import prune_actions
from repro.tuning.grid_search import grid_search_hyperparameters, grid_search_rewards

__all__ = [
    "evaluate_feature_vector",
    "feature_selection",
    "prune_actions",
    "grid_search_hyperparameters",
    "grid_search_rewards",
]
