"""Feature selection over the 32-feature space (§4.3.1, Fig 19, Fig 16).

The paper combines 4 control-flow × 8 data-flow components into 32
candidate features, then evaluates any-1/any-2/any-3 combinations across
all single-core traces, picking the state-vector with the highest
geomean speedup.  This module implements the same search over arbitrary
trace lists: the whole candidate set becomes **one** declarative search
(every vector a ``features=`` override point), so candidates fan out
through the session's executor and repeat evaluations hit the store.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.features import FeatureSpec, all_feature_specs
from repro.tuning.common import as_session


@dataclass(frozen=True)
class FeatureVectorScore:
    """Evaluation of one candidate state-vector."""

    features: tuple[FeatureSpec, ...]
    geomean_speedup: float
    mean_coverage: float
    mean_overprediction: float

    @property
    def label(self) -> str:
        """Readable state-vector name."""
        return " | ".join(f.label for f in self.features)


def candidate_vectors(max_arity: int = 2) -> list[tuple[FeatureSpec, ...]]:
    """Any-1 .. any-``max_arity`` combinations of the 32 features."""
    specs = [s for s in all_feature_specs() if s.label != "none"]
    vectors: list[tuple[FeatureSpec, ...]] = []
    for arity in range(1, max_arity + 1):
        vectors.extend(itertools.combinations(specs, arity))
    return vectors


def feature_selection(
    trace_names: list[str],
    session=None,
    vectors: list[tuple[FeatureSpec, ...]] | None = None,
    config=None,
) -> list[FeatureVectorScore]:
    """Score candidate state-vectors; best (highest geomean) first.

    The full any-2 space is ~500 vectors; pass a pre-filtered
    ``vectors`` list for tractable sweeps (the benches sample it).
    """
    session = as_session(session)
    vectors = vectors if vectors is not None else candidate_vectors(1)
    search = (
        session.search("features")
        .over(features=[tuple(v) for v in vectors])
        .with_prefetcher("pythia")
        .phase1(trace_names)
    )
    if config is not None:
        search = search.with_system(config)
    result = search.run()
    by_label = result.phase1_results.group("prefetcher")
    return [
        FeatureVectorScore(
            features=entry.point["features"],
            geomean_speedup=entry.score,
            mean_coverage=by_label[entry.spec.label].mean("coverage"),
            mean_overprediction=by_label[entry.spec.label].mean("overprediction"),
        )
        for entry in result
    ]


def evaluate_feature_vector(
    features: tuple[FeatureSpec, ...],
    trace_names: list[str],
    session=None,
    config=None,
) -> FeatureVectorScore:
    """Run Pythia with *features* on each trace; aggregate the metrics."""
    return feature_selection(
        trace_names, session, vectors=[tuple(features)], config=config
    )[0]
