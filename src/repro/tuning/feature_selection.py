"""Feature selection over the 32-feature space (§4.3.1, Fig 19, Fig 16).

The paper combines 4 control-flow × 8 data-flow components into 32
candidate features, then evaluates any-1/any-2/any-3 combinations across
all single-core traces, picking the state-vector with the highest
geomean speedup.  This module implements the same search over arbitrary
trace lists.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core import Pythia, PythiaConfig
from repro.core.features import FeatureSpec, all_feature_specs
from repro.harness.runner import Runner
from repro.sim.config import SystemConfig
from repro.sim.metrics import coverage, geomean, overprediction, speedup
from repro.sim.system import simulate


@dataclass(frozen=True)
class FeatureVectorScore:
    """Evaluation of one candidate state-vector."""

    features: tuple[FeatureSpec, ...]
    geomean_speedup: float
    mean_coverage: float
    mean_overprediction: float

    @property
    def label(self) -> str:
        """Readable state-vector name."""
        return " | ".join(f.label for f in self.features)


def evaluate_feature_vector(
    features: tuple[FeatureSpec, ...],
    trace_names: list[str],
    runner: Runner,
    config: SystemConfig | None = None,
) -> FeatureVectorScore:
    """Run Pythia with *features* on each trace; aggregate the metrics."""
    config = config if config is not None else SystemConfig()
    speeds: list[float] = []
    covs: list[float] = []
    overs: list[float] = []
    for name in trace_names:
        trace = runner.trace(name)
        baseline = runner.baseline(name, config)
        pythia = Pythia(PythiaConfig().with_features(features))
        result = simulate(
            trace, config, pythia, warmup_fraction=runner.warmup_fraction
        )
        speeds.append(speedup(result, baseline))
        covs.append(coverage(result, baseline))
        overs.append(overprediction(result, baseline))
    return FeatureVectorScore(
        features=features,
        geomean_speedup=geomean(speeds),
        mean_coverage=sum(covs) / len(covs),
        mean_overprediction=sum(overs) / len(overs),
    )


def candidate_vectors(max_arity: int = 2) -> list[tuple[FeatureSpec, ...]]:
    """Any-1 .. any-``max_arity`` combinations of the 32 features."""
    specs = [s for s in all_feature_specs() if s.label != "none"]
    vectors: list[tuple[FeatureSpec, ...]] = []
    for arity in range(1, max_arity + 1):
        vectors.extend(itertools.combinations(specs, arity))
    return vectors


def feature_selection(
    trace_names: list[str],
    runner: Runner | None = None,
    vectors: list[tuple[FeatureSpec, ...]] | None = None,
    config: SystemConfig | None = None,
) -> list[FeatureVectorScore]:
    """Score candidate state-vectors; best (highest geomean) first.

    The full any-2 space is ~500 vectors; pass a pre-filtered
    ``vectors`` list for tractable sweeps (the benches sample it).
    """
    runner = runner if runner is not None else Runner(trace_length=8_000)
    vectors = vectors if vectors is not None else candidate_vectors(1)
    scores = [
        evaluate_feature_vector(v, trace_names, runner, config) for v in vectors
    ]
    scores.sort(key=lambda s: -s.geomean_speedup)
    return scores
