"""Shared plumbing for the tuning loops: session coercion.

Every tuning entry point takes a ``session`` argument that may be a
:class:`repro.api.Session`, anything carrying one via a ``.session``
attribute, or ``None`` for a private memory-only session at the
historical tuning trace length.  The loops speak :mod:`repro.api`
natively — nothing here imports the harness.
"""

from __future__ import annotations

from repro.api import ResultStore, Session

#: Historical default trace length of the tuning loops.
TUNING_TRACE_LENGTH = 8_000


def as_session(session=None, trace_length: int = TUNING_TRACE_LENGTH) -> Session:
    """Coerce *session* (Session, session-carrier, or None) to a Session."""
    if session is None:
        return Session(store=ResultStore(), trace_length=trace_length)
    if isinstance(session, Session):
        return session
    inner = getattr(session, "session", None)
    if isinstance(inner, Session):
        return inner
    raise TypeError(
        f"expected a repro.api.Session (or an object carrying one), got {session!r}"
    )
