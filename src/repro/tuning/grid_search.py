"""Uniform-grid reward and hyperparameter search (§4.3.3, Fig 20).

The paper divides each hyperparameter's range into exponential grids
(1e0, 1e-1, ...), runs every grid point on a 10-trace test suite, keeps
the top-25 configurations, and re-ranks them on the full trace list.
The same two-phase structure is implemented here at adjustable scale, as
a thin layer over the declarative :mod:`repro.api.search` subsystem —
every grid point fans out through the session's executor, lands in its
result store, and phase 2 reuses phase-1 scores outright when the two
trace lists coincide.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core import PythiaConfig
from repro.core.rewards import RewardConfig
from repro.tuning.common import as_session

#: The exponential grid of §4.3.3 for each of α, γ, ε.
EXPONENTIAL_GRID: tuple[float, ...] = (1e-4, 1e-3, 1e-2, 1e-1)


@dataclass(frozen=True)
class TuningResult:
    """One evaluated configuration point."""

    config: PythiaConfig
    geomean_speedup: float


def grid_search_hyperparameters(
    test_traces: list[str],
    full_traces: list[str] | None = None,
    alphas: tuple[float, ...] = EXPONENTIAL_GRID,
    gammas: tuple[float, ...] = (0.3, 0.556, 0.8),
    epsilons: tuple[float, ...] = (0.002, 0.005, 0.02),
    top_k: int = 5,
    session=None,
    system=None,
) -> list[TuningResult]:
    """Two-phase (α, γ, ε) grid search; best configuration first.

    Phase 1 scores the full grid on *test_traces*; phase 2 re-ranks the
    top-``top_k`` on *full_traces* (defaults to the test suite, in which
    case phase-1 scores are reused without re-simulating anything).
    """
    session = as_session(session)
    search = (
        session.search("hyperparams")
        .over(alpha=alphas, gamma=gammas, epsilon=epsilons)
        .with_prefetcher("pythia")
        .phase1(test_traces)
        .phase2(full_traces if full_traces is not None else test_traces, top_k=top_k)
    )
    if system is not None:
        search = search.with_system(system)
    return [
        TuningResult(
            config=dataclasses.replace(PythiaConfig(), **entry.overrides),
            geomean_speedup=entry.score,
        )
        for entry in search.run()
    ]


def _reward_overrides(point: dict) -> dict:
    """Fold the three reward grid axes into one ``rewards=`` override."""
    ral = point["accurate_late"]
    rin_h = point["inaccurate_high"]
    rnp_h = point["no_prefetch_high"]
    return {
        "rewards": RewardConfig(
            accurate_late=ral,
            inaccurate_high_bw=rin_h,
            inaccurate_low_bw=rin_h + 4.0,
            no_prefetch_high_bw=rnp_h,
            no_prefetch_low_bw=rnp_h - 1.0,
        )
    }


def grid_search_rewards(
    test_traces: list[str],
    accurate_late_values: tuple[float, ...] = (4.0, 8.0, 12.0),
    inaccurate_high_values: tuple[float, ...] = (-14.0, -12.0, -8.0),
    no_prefetch_high_values: tuple[float, ...] = (-2.0, 0.0),
    session=None,
    system=None,
) -> list[TuningResult]:
    """Grid search over the reward levels the substrate is sensitive to.

    This is the search that produced this package's substrate-tuned
    defaults (see :class:`repro.core.rewards.RewardConfig`).
    """
    session = as_session(session)
    search = (
        session.search("rewards")
        .over(
            accurate_late=accurate_late_values,
            inaccurate_high=inaccurate_high_values,
            no_prefetch_high=no_prefetch_high_values,
        )
        .with_prefetcher("pythia")
        .map_points(_reward_overrides)
        .phase1(test_traces)
    )
    if system is not None:
        search = search.with_system(system)
    return [
        TuningResult(
            config=PythiaConfig().with_rewards(entry.overrides["rewards"]),
            geomean_speedup=entry.score,
        )
        for entry in search.run()
    ]
