"""Uniform-grid reward and hyperparameter search (§4.3.3, Fig 20).

The paper divides each hyperparameter's range into exponential grids
(1e0, 1e-1, ...), runs every grid point on a 10-trace test suite, keeps
the top-25 configurations, and re-ranks them on the full trace list.
The same two-phase structure is implemented here at adjustable scale.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass

from repro.core import Pythia, PythiaConfig
from repro.core.rewards import RewardConfig
from repro.harness.runner import Runner
from repro.sim.config import SystemConfig
from repro.sim.metrics import geomean, speedup
from repro.sim.system import simulate

#: The exponential grid of §4.3.3 for each of α, γ, ε.
EXPONENTIAL_GRID: tuple[float, ...] = (1e-4, 1e-3, 1e-2, 1e-1)


@dataclass(frozen=True)
class TuningResult:
    """One evaluated configuration point."""

    config: PythiaConfig
    geomean_speedup: float


def _score(
    config: PythiaConfig,
    trace_names: list[str],
    runner: Runner,
    system: SystemConfig,
) -> float:
    speeds = []
    for name in trace_names:
        trace = runner.trace(name)
        baseline = runner.baseline(name, system)
        result = simulate(
            trace, system, Pythia(config), warmup_fraction=runner.warmup_fraction
        )
        speeds.append(speedup(result, baseline))
    return geomean(speeds)


def grid_search_hyperparameters(
    test_traces: list[str],
    full_traces: list[str] | None = None,
    alphas: tuple[float, ...] = EXPONENTIAL_GRID,
    gammas: tuple[float, ...] = (0.3, 0.556, 0.8),
    epsilons: tuple[float, ...] = (0.002, 0.005, 0.02),
    top_k: int = 5,
    runner: Runner | None = None,
    system: SystemConfig | None = None,
) -> list[TuningResult]:
    """Two-phase (α, γ, ε) grid search; best configuration first.

    Phase 1 scores the full grid on *test_traces*; phase 2 re-ranks the
    top-``top_k`` on *full_traces* (defaults to the test suite).
    """
    runner = runner if runner is not None else Runner(trace_length=8_000)
    system = system if system is not None else SystemConfig()
    full_traces = full_traces if full_traces is not None else test_traces

    phase1: list[TuningResult] = []
    for alpha, gamma, epsilon in itertools.product(alphas, gammas, epsilons):
        config = dataclasses.replace(
            PythiaConfig(), alpha=alpha, gamma=gamma, epsilon=epsilon
        )
        phase1.append(TuningResult(config, _score(config, test_traces, runner, system)))
    phase1.sort(key=lambda r: -r.geomean_speedup)

    finalists = phase1[:top_k]
    phase2 = [
        TuningResult(r.config, _score(r.config, full_traces, runner, system))
        for r in finalists
    ]
    phase2.sort(key=lambda r: -r.geomean_speedup)
    return phase2


def grid_search_rewards(
    test_traces: list[str],
    accurate_late_values: tuple[float, ...] = (4.0, 8.0, 12.0),
    inaccurate_high_values: tuple[float, ...] = (-14.0, -12.0, -8.0),
    no_prefetch_high_values: tuple[float, ...] = (-2.0, 0.0),
    runner: Runner | None = None,
    system: SystemConfig | None = None,
) -> list[TuningResult]:
    """Grid search over the reward levels the substrate is sensitive to.

    This is the search that produced this package's substrate-tuned
    defaults (see :class:`repro.core.rewards.RewardConfig`).
    """
    runner = runner if runner is not None else Runner(trace_length=8_000)
    system = system if system is not None else SystemConfig()
    results: list[TuningResult] = []
    for ral, rin_h, rnp_h in itertools.product(
        accurate_late_values, inaccurate_high_values, no_prefetch_high_values
    ):
        rewards = RewardConfig(
            accurate_late=ral,
            inaccurate_high_bw=rin_h,
            inaccurate_low_bw=rin_h + 4.0,
            no_prefetch_high_bw=rnp_h,
            no_prefetch_low_bw=rnp_h - 1.0,
        )
        config = PythiaConfig().with_rewards(rewards)
        results.append(
            TuningResult(config, _score(config, test_traces, runner, system))
        )
    results.sort(key=lambda r: -r.geomean_speedup)
    return results
