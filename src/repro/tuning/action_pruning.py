"""Action-list pruning (§4.3.2).

The full in-page action space is [-63, 63]; the paper drops each action
individually and keeps only those whose removal costs measurable
performance, landing on the 16-action list of Table 2.  Long action
lists hurt twice: more exploration to converge, and more storage
(+ a longer search pipeline, see :mod:`repro.core.pipeline`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Pythia, PythiaConfig
from repro.harness.runner import Runner
from repro.sim.config import SystemConfig
from repro.sim.metrics import geomean, speedup
from repro.sim.system import simulate


@dataclass(frozen=True)
class ActionImpact:
    """Performance effect of removing one action from the list."""

    action: int
    geomean_without: float
    geomean_full: float

    @property
    def impact(self) -> float:
        """Speedup lost by dropping the action (positive = action helps)."""
        return self.geomean_full - self.geomean_without


def _evaluate_actions(
    actions: tuple[int, ...],
    trace_names: list[str],
    runner: Runner,
    config: SystemConfig,
) -> float:
    speeds = []
    for name in trace_names:
        trace = runner.trace(name)
        baseline = runner.baseline(name, config)
        import dataclasses

        pythia = Pythia(dataclasses.replace(PythiaConfig(), actions=actions))
        result = simulate(
            trace, config, pythia, warmup_fraction=runner.warmup_fraction
        )
        speeds.append(speedup(result, baseline))
    return geomean(speeds)


def prune_actions(
    trace_names: list[str],
    initial_actions: tuple[int, ...],
    keep: int = 16,
    runner: Runner | None = None,
    config: SystemConfig | None = None,
    impact_threshold: float = 0.001,
) -> tuple[tuple[int, ...], list[ActionImpact]]:
    """Leave-one-out pruning of *initial_actions* down to *keep* actions.

    Returns the pruned list (always containing the mandatory no-prefetch
    action 0) and the per-action impact report.  Actions whose removal
    costs less than *impact_threshold* geomean speedup are dropped,
    lowest impact first.
    """
    runner = runner if runner is not None else Runner(trace_length=8_000)
    config = config if config is not None else SystemConfig()
    full_score = _evaluate_actions(initial_actions, trace_names, runner, config)

    impacts: list[ActionImpact] = []
    for action in initial_actions:
        if action == 0:
            continue  # no-prefetch is structural, never pruned
        without = tuple(a for a in initial_actions if a != action)
        score = _evaluate_actions(without, trace_names, runner, config)
        impacts.append(ActionImpact(action, score, full_score))

    impacts.sort(key=lambda i: i.impact)
    pruned = list(initial_actions)
    for report in impacts:
        if len(pruned) <= keep:
            break
        if report.impact < impact_threshold:
            pruned.remove(report.action)
    return tuple(pruned), impacts
