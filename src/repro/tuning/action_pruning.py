"""Action-list pruning (§4.3.2).

The full in-page action space is [-63, 63]; the paper drops each action
individually and keeps only those whose removal costs measurable
performance, landing on the 16-action list of Table 2.  Long action
lists hurt twice: more exploration to converge, and more storage
(+ a longer search pipeline, see :mod:`repro.core.pipeline`).

The leave-one-out evaluation is one declarative search over candidate
action lists (the full list plus every drop-one variant), so all
variants batch through the session's executor in a single sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tuning.common import as_session


@dataclass(frozen=True)
class ActionImpact:
    """Performance effect of removing one action from the list."""

    action: int
    geomean_without: float
    geomean_full: float

    @property
    def impact(self) -> float:
        """Speedup lost by dropping the action (positive = action helps)."""
        return self.geomean_full - self.geomean_without


def prune_actions(
    trace_names: list[str],
    initial_actions: tuple[int, ...],
    keep: int = 16,
    session=None,
    config=None,
    impact_threshold: float = 0.001,
) -> tuple[tuple[int, ...], list[ActionImpact]]:
    """Leave-one-out pruning of *initial_actions* down to *keep* actions.

    Returns the pruned list (always containing the mandatory no-prefetch
    action 0) and the per-action impact report.  Actions whose removal
    costs less than *impact_threshold* geomean speedup are dropped,
    lowest impact first.
    """
    session = as_session(session)
    full = tuple(initial_actions)
    variants = [full] + [
        tuple(a for a in full if a != action) for action in full if action != 0
    ]
    search = (
        session.search("actions")
        .over(actions=variants)
        .with_prefetcher("pythia")
        .phase1(trace_names)
    )
    if config is not None:
        search = search.with_system(config)
    scores = {
        entry.point["actions"]: entry.score for entry in search.run().phase1_entries
    }
    full_score = scores[full]

    impacts = [
        ActionImpact(action, scores[tuple(a for a in full if a != action)], full_score)
        for action in full
        if action != 0  # no-prefetch is structural, never pruned
    ]
    impacts.sort(key=lambda i: i.impact)
    pruned = list(full)
    for report in impacts:
        if len(pruned) <= keep:
            break
        if report.impact < impact_threshold:
            pruned.remove(report.action)
    return tuple(pruned), impacts
