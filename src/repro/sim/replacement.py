"""Cache replacement policies: LRU and SHiP.

The paper's LLC uses SHiP (Signature-based Hit Predictor, Wu et al.,
MICRO 2011) while L1 and L2 use LRU.  Both policies operate on a per-set
list of ways; the cache stores per-way metadata and delegates victim
selection and promotion decisions here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class ReplacementPolicy(ABC):
    """Interface for a per-cache replacement policy.

    The cache calls :meth:`on_fill` when a line is inserted,
    :meth:`on_hit` when a line is re-referenced, and :meth:`victim` to
    choose the way to evict in a full set.  ``meta`` is the per-way
    metadata list for the set, parallel to the tag array.
    """

    @abstractmethod
    def new_meta(self) -> object:
        """Return fresh metadata for an empty way."""

    @abstractmethod
    def on_fill(self, meta: list, way: int, pc: int, is_prefetch: bool, tick: int) -> None:
        """Record a fill into *way*."""

    @abstractmethod
    def on_hit(self, meta: list, way: int, pc: int, tick: int) -> None:
        """Record a hit on *way*."""

    @abstractmethod
    def victim(self, meta: list, valid: list[bool]) -> int:
        """Choose the way to evict from a full set."""

    def on_evict(self, meta: list, way: int, was_reused: bool) -> None:
        """Optional hook invoked when *way* is evicted."""


class LruPolicy(ReplacementPolicy):
    """Classic least-recently-used replacement.

    Metadata per way is the tick of the last touch; the victim is the way
    with the smallest tick.
    """

    def new_meta(self) -> int:
        return 0

    def on_fill(self, meta: list, way: int, pc: int, is_prefetch: bool, tick: int) -> None:
        meta[way] = tick

    def on_hit(self, meta: list, way: int, pc: int, tick: int) -> None:
        meta[way] = tick

    def victim(self, meta: list, valid: list[bool]) -> int:
        best_way = 0
        best_tick = None
        for way, tick in enumerate(meta):
            if not valid[way]:
                return way
            if best_tick is None or tick < best_tick:
                best_tick = tick
                best_way = way
        return best_way


class ShipPolicy(ReplacementPolicy):
    """SHiP: signature-based RRIP replacement (Wu et al., MICRO 2011).

    Each fill is tagged with a PC signature.  A table of saturating
    counters (the SHCT) learns whether lines inserted by a signature tend
    to be re-referenced; unpromising signatures insert at distant re-
    reference interval (RRPV max) so they are evicted quickly.  This is
    the LLC policy in the paper's baseline (Table 5).
    """

    RRPV_MAX = 3
    SHCT_SIZE = 1024
    SHCT_MAX = 7

    def __init__(self) -> None:
        self._shct = [self.SHCT_MAX // 2] * self.SHCT_SIZE

    def _signature(self, pc: int) -> int:
        return (pc ^ (pc >> 10)) % self.SHCT_SIZE

    def new_meta(self) -> dict:
        return {"rrpv": self.RRPV_MAX, "sig": 0, "reused": False}

    def on_fill(self, meta: list, way: int, pc: int, is_prefetch: bool, tick: int) -> None:
        sig = self._signature(pc)
        counter = self._shct[sig]
        # Unpromising signatures (counter == 0) insert at distant RRPV;
        # prefetches are also inserted at distant RRPV so useless
        # prefetches leave quickly (standard SHiP prefetch handling).
        if counter == 0 or is_prefetch:
            rrpv = self.RRPV_MAX
        else:
            rrpv = self.RRPV_MAX - 1
        meta[way] = {"rrpv": rrpv, "sig": sig, "reused": False}

    def on_hit(self, meta: list, way: int, pc: int, tick: int) -> None:
        entry = meta[way]
        entry["rrpv"] = 0
        if not entry["reused"]:
            entry["reused"] = True
            sig = entry["sig"]
            if self._shct[sig] < self.SHCT_MAX:
                self._shct[sig] += 1

    def victim(self, meta: list, valid: list[bool]) -> int:
        for way, ok in enumerate(valid):
            if not ok:
                return way
        while True:
            for way, entry in enumerate(meta):
                if entry["rrpv"] >= self.RRPV_MAX:
                    return way
            for entry in meta:
                entry["rrpv"] += 1

    def on_evict(self, meta: list, way: int, was_reused: bool) -> None:
        entry = meta[way]
        if not entry["reused"]:
            sig = entry["sig"]
            if self._shct[sig] > 0:
                self._shct[sig] -= 1


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by config name."""
    if name == "lru":
        return LruPolicy()
    if name == "ship":
        return ShipPolicy()
    raise ValueError(f"unknown replacement policy: {name!r}")
