"""Cache replacement policies: LRU and SHiP.

The paper's LLC uses SHiP (Signature-based Hit Predictor, Wu et al.,
MICRO 2011) while L1 and L2 uses LRU.  Both policies operate on a per-set
list of ways; the cache stores per-way metadata and delegates victim
selection and promotion decisions here.

Victim selection only ever sees *full* sets: the cache satisfies fills
from its per-set free-way pool first (see :class:`repro.sim.cache.Cache`),
so policies no longer rescan a ``valid`` list per fill.  SHiP keeps its
RRIP aging incremental — one pass computes the distance to the next
RRPV-saturated way and ages every way by that amount at once, instead of
looping scan-and-increment rounds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


class ReplacementPolicy(ABC):
    """Interface for a per-cache replacement policy.

    The cache calls :meth:`on_fill` when a line is inserted,
    :meth:`on_hit` when a line is re-referenced, and :meth:`victim` to
    choose the way to evict in a full set.  ``meta`` is the per-way
    metadata list for the set, parallel to the tag array.  Metadata
    objects are mutated in place across a way's lifetime — policies must
    fully reinitialize them in :meth:`on_fill`.
    """

    @abstractmethod
    def new_meta(self) -> object:
        """Return fresh metadata for an empty way."""

    @abstractmethod
    def on_fill(self, meta: list, way: int, pc: int, is_prefetch: bool, tick: int) -> None:
        """Record a fill into *way*."""

    @abstractmethod
    def on_hit(self, meta: list, way: int, pc: int, tick: int) -> None:
        """Record a hit on *way*."""

    @abstractmethod
    def victim(self, meta: list) -> int:
        """Choose the way to evict from a full set."""

    def on_evict(self, meta: list, way: int, was_reused: bool) -> None:
        """Optional hook invoked when *way* is evicted."""


class LruPolicy(ReplacementPolicy):
    """Classic least-recently-used replacement.

    Metadata per way is the tick of the last touch; the victim is the way
    with the smallest tick, found with a C-level ``min`` over the int
    list rather than a Python scan.
    """

    def new_meta(self) -> int:
        return 0

    def on_fill(self, meta: list, way: int, pc: int, is_prefetch: bool, tick: int) -> None:
        meta[way] = tick

    def on_hit(self, meta: list, way: int, pc: int, tick: int) -> None:
        meta[way] = tick

    def victim(self, meta: list) -> int:
        # Cache.fill inlines this expression on its eviction path for
        # speed; change both together.
        return meta.index(min(meta))


@dataclass(slots=True)
class ShipMeta:
    """Per-way SHiP state: re-reference interval, signature, reuse bit."""

    rrpv: int
    sig: int
    reused: bool


class ShipPolicy(ReplacementPolicy):
    """SHiP: signature-based RRIP replacement (Wu et al., MICRO 2011).

    Each fill is tagged with a PC signature.  A table of saturating
    counters (the SHCT) learns whether lines inserted by a signature tend
    to be re-referenced; unpromising signatures insert at distant re-
    reference interval (RRPV max) so they are evicted quickly.  This is
    the LLC policy in the paper's baseline (Table 5).
    """

    RRPV_MAX = 3
    SHCT_SIZE = 1024
    SHCT_MAX = 7

    def __init__(self) -> None:
        self._shct = [self.SHCT_MAX // 2] * self.SHCT_SIZE

    def _signature(self, pc: int) -> int:
        return (pc ^ (pc >> 10)) % self.SHCT_SIZE

    def new_meta(self) -> ShipMeta:
        return ShipMeta(rrpv=self.RRPV_MAX, sig=0, reused=False)

    def on_fill(self, meta: list, way: int, pc: int, is_prefetch: bool, tick: int) -> None:
        sig = self._signature(pc)
        counter = self._shct[sig]
        entry = meta[way]
        # Unpromising signatures (counter == 0) insert at distant RRPV;
        # prefetches are also inserted at distant RRPV so useless
        # prefetches leave quickly (standard SHiP prefetch handling).
        if counter == 0 or is_prefetch:
            entry.rrpv = self.RRPV_MAX
        else:
            entry.rrpv = self.RRPV_MAX - 1
        entry.sig = sig
        entry.reused = False

    def on_hit(self, meta: list, way: int, pc: int, tick: int) -> None:
        entry = meta[way]
        entry.rrpv = 0
        if not entry.reused:
            entry.reused = True
            sig = entry.sig
            if self._shct[sig] < self.SHCT_MAX:
                self._shct[sig] += 1

    def victim(self, meta: list) -> int:
        # Equivalent to the textbook "scan for RRPV_MAX, else age all by
        # one and rescan" loop: the way that saturates first is the
        # lowest-indexed way holding the maximum RRPV, and every way
        # ages by the same saturation distance.
        best_way = 0
        best_rrpv = meta[0].rrpv
        for way in range(1, len(meta)):
            rrpv = meta[way].rrpv
            if rrpv > best_rrpv:
                best_rrpv = rrpv
                best_way = way
        age = self.RRPV_MAX - best_rrpv
        if age > 0:
            for entry in meta:
                entry.rrpv += age
        return best_way

    def on_evict(self, meta: list, way: int, was_reused: bool) -> None:
        entry = meta[way]
        if not entry.reused:
            sig = entry.sig
            if self._shct[sig] > 0:
                self._shct[sig] -= 1


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by config name."""
    if name == "lru":
        return LruPolicy()
    if name == "ship":
        return ShipPolicy()
    raise ValueError(f"unknown replacement policy: {name!r}")
