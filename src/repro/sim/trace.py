"""Memory-access trace format.

A :class:`Trace` is an ordered sequence of :class:`TraceRecord` objects,
each describing one memory instruction: its PC, the cacheline it touches,
whether it is a load or a store, and how many non-memory instructions
precede it since the previous record (the *gap*).  The gap is what lets the
core model recover instruction counts — and therefore IPC — from a
memory-only trace, exactly as ChampSim traces carry full instruction
streams but only memory operations affect the caches.

Traces can be streamed from generators (the normal path for the synthetic
workloads) or saved to and loaded from a compact text format for
repeatable experiments.
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.types import LINES_PER_PAGE, PAGE_SHIFT_LINES, line_of

try:  # NumPy is optional; the columnar decode is a batched-path accelerator.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One memory instruction in a trace.

    Slotted: a trace holds one instance per memory instruction and the
    simulation loop reads their fields once per replayed record.

    Attributes:
        pc: program counter of the memory instruction.
        line: cacheline number accessed.
        is_load: True for loads, False for stores.
        gap: count of non-memory instructions since the previous record.
    """

    pc: int
    line: int
    is_load: bool = True
    gap: int = 4

    @property
    def instruction_count(self) -> int:
        """Instructions this record accounts for: the gap plus itself."""
        return self.gap + 1


class TraceColumns:
    """NumPy struct-of-arrays decode of a trace's records.

    The batched replay backend (:mod:`repro.sim.batch`) iterates column
    slices instead of :class:`TraceRecord` objects: the record fields are
    decoded **once** into preallocated ``int64`` arrays, the derived
    address math (page number, in-page offset) is vectorized here, and
    per-epoch the kernel materializes just its slice as Python lists
    (``ndarray.tolist`` on a contiguous slice).  Columns are pure
    functions of the record sequence, so sharing one instance across
    runs (via :meth:`Trace.columns`) cannot leak state between them.
    """

    __slots__ = ("length", "pc", "line", "is_load", "gap", "page", "offset")

    def __init__(self, records: Sequence[TraceRecord]) -> None:
        if _np is None:  # pragma: no cover - exercised only without numpy
            raise RuntimeError("TraceColumns requires numpy")
        n = len(records)
        self.length = n
        pc = _np.empty(n, dtype=_np.int64)
        line = _np.empty(n, dtype=_np.int64)
        is_load = _np.empty(n, dtype=_np.bool_)
        gap = _np.empty(n, dtype=_np.int64)
        for i, r in enumerate(records):
            pc[i] = r.pc
            line[i] = r.line
            is_load[i] = r.is_load
            gap[i] = r.gap
        self.pc = pc
        self.line = line
        self.is_load = is_load
        self.gap = gap
        # Vectorized address math: one shift/mask sweep replaces two
        # Python-level ops per record per training event.
        self.page = line >> PAGE_SHIFT_LINES
        self.offset = line & (LINES_PER_PAGE - 1)


def prefix_crc_bulk(
    records: Sequence[TraceRecord], stop: int, crc: int = 0, start: int = 0
) -> int:
    """CRC32 over ``records[start:stop]`` from one joined byte blob.

    Byte-compatible with :attr:`Trace.content_stamp` (CRC32 is a
    streaming checksum: feeding the concatenation equals feeding the
    chunks), but one ``zlib.crc32`` call per epoch instead of one per
    record — the batched engine's checkpoint-stamp path.
    """
    blob = b"".join(
        b"%x %x %d %d;" % (r.pc, r.line, r.is_load, r.gap)
        for r in records[start:stop]
    )
    return zlib.crc32(blob, crc)


class Trace:
    """An ordered, named sequence of memory-access records.

    Args:
        name: human-readable identifier (e.g. ``"spec06/gemsfdtd-765B"``).
        records: the access sequence.
        suite: the workload-suite label used by rollups.
        content_stamp: precomputed CRC32 stamp; externally-ingested
            traces (:mod:`repro.workloads.ingest`) pass the CRC of the
            source file so store fingerprints track the file's bytes.
            When omitted, the stamp is derived lazily from the records.
    """

    def __init__(
        self,
        name: str,
        records: Sequence[TraceRecord] | Iterable[TraceRecord],
        suite: str = "unknown",
        content_stamp: int | None = None,
    ) -> None:
        self.name = name
        self.suite = suite
        self._records: list[TraceRecord] = list(records)
        self._content_stamp: int | None = content_stamp
        self._columns: TraceColumns | None = None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.name!r}, {len(self)} records, suite={self.suite!r})"

    @property
    def records(self) -> list[TraceRecord]:
        """The underlying record list (not a copy; treat as read-only)."""
        return self._records

    def columns(self) -> TraceColumns:
        """The columnar (struct-of-arrays) decode of this trace (memoized).

        Records are treated as read-only after construction, so the
        decode is computed at most once per trace instance and shared by
        every engine replaying it (``registry.cached_trace`` keeps traces
        alive across runs, making repeat replays decode-free).
        """
        if self._columns is None:
            self._columns = TraceColumns(self._records)
        return self._columns

    @property
    def total_instructions(self) -> int:
        """Total instructions represented, memory and non-memory."""
        return sum(r.instruction_count for r in self._records)

    @property
    def content_stamp(self) -> int:
        """CRC32 over the full record content (memoized).

        Used by the result-store fingerprints: two traces with the same
        name but different content (a changed generator, a re-recorded
        file) must never share cache entries.
        """
        if self._content_stamp is None:
            crc = 0
            for r in self._records:
                crc = zlib.crc32(
                    b"%x %x %d %d;" % (r.pc, r.line, r.is_load, r.gap), crc
                )
            self._content_stamp = crc
        return self._content_stamp

    def slice(self, start: int, stop: int) -> "Trace":
        """Return a sub-trace of records ``[start:stop)``."""
        return Trace(f"{self.name}[{start}:{stop}]", self._records[start:stop], self.suite)

    @classmethod
    def from_byte_addresses(
        cls,
        name: str,
        accesses: Iterable[tuple[int, int]],
        suite: str = "unknown",
        gap: int = 4,
    ) -> "Trace":
        """Build a trace from ``(pc, byte_address)`` pairs of loads."""
        records = [
            TraceRecord(pc=pc, line=line_of(addr), is_load=True, gap=gap)
            for pc, addr in accesses
        ]
        return cls(name, records, suite)

    # -- serialization -----------------------------------------------------

    def dumps(self) -> str:
        """Serialize to the compact text format (one record per line)."""
        out = io.StringIO()
        out.write(f"# trace {self.name} suite={self.suite}\n")
        for r in self._records:
            kind = "L" if r.is_load else "S"
            out.write(f"{r.pc:x} {r.line:x} {kind} {r.gap}\n")
        return out.getvalue()

    @classmethod
    def loads(cls, text: str) -> "Trace":
        """Parse a trace from :meth:`dumps` output."""
        name = "loaded"
        suite = "unknown"
        records: list[TraceRecord] = []
        for raw in text.splitlines():
            raw = raw.strip()
            if not raw:
                continue
            if raw.startswith("#"):
                parts = raw.split()
                if len(parts) >= 3 and parts[1] == "trace":
                    name = parts[2]
                    for p in parts[3:]:
                        if p.startswith("suite="):
                            suite = p.split("=", 1)[1]
                continue
            pc_s, line_s, kind, gap_s = raw.split()
            records.append(
                TraceRecord(
                    pc=int(pc_s, 16),
                    line=int(line_s, 16),
                    is_load=kind == "L",
                    gap=int(gap_s),
                )
            )
        return cls(name, records, suite)

    def save(self, path: str) -> None:
        """Write the trace to *path* in text format."""
        with open(path, "w", encoding="ascii") as f:
            f.write(self.dumps())

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        with open(path, "r", encoding="ascii") as f:
            return cls.loads(f.read())
