"""Evaluation metrics, exactly as the paper's artifact computes them.

From appendix A.6::

    Perf_X          = IPC_X / IPC_nopref
    Coverage_X      = (LLC_load_miss_nopref - LLC_load_miss_X)
                      / LLC_load_miss_nopref
    Overprediction_X = (LLC_read_miss_X - LLC_read_miss_nopref)
                      / LLC_read_miss_nopref

``LLC_read_miss`` is everything the LLC sends to DRAM (demand misses plus
prefetch misses), which in this simulator is exactly the DRAM read count.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.sim.system import SimulationResult
from repro.types import prefetch_accuracy

__all__ = [
    "speedup",
    "coverage",
    "overprediction",
    "geomean",
    "geomean_speedup",
    "mpki",
    "prefetch_accuracy",
]


def speedup(result: SimulationResult, baseline: SimulationResult) -> float:
    """IPC of *result* relative to the no-prefetching *baseline*."""
    if baseline.ipc <= 0:
        return 0.0
    return result.ipc / baseline.ipc


def coverage(result: SimulationResult, baseline: SimulationResult) -> float:
    """Fraction of baseline LLC load misses eliminated by prefetching."""
    base = baseline.llc_load_misses
    if base <= 0:
        return 0.0
    return (base - result.llc_load_misses) / base


def overprediction(result: SimulationResult, baseline: SimulationResult) -> float:
    """Extra DRAM reads generated per baseline DRAM read.

    This is the paper's overprediction metric: prefetch traffic that did
    not displace a demand miss inflates the numerator.
    """
    base = baseline.dram_reads
    if base <= 0:
        return 0.0
    return (result.dram_reads - base) / base


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper's aggregate for speedups."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def geomean_speedup(
    results: Sequence[SimulationResult], baselines: Sequence[SimulationResult]
) -> float:
    """Geometric-mean speedup of paired (result, baseline) runs."""
    if len(results) != len(baselines):
        raise ValueError("results/baselines length mismatch")
    return geomean(speedup(r, b) for r, b in zip(results, baselines))


def mpki(result: SimulationResult) -> float:
    """LLC load misses per kilo-instruction (trace admission filter)."""
    if result.instructions <= 0:
        return 0.0
    return 1000.0 * result.llc_load_misses / result.instructions
