"""Trace-driven cache/memory-hierarchy simulator substrate.

This package is the Python stand-in for the ChampSim simulator the paper
evaluates on.  It models the parts of the system that Pythia's evaluation
depends on:

* a set-associative three-level cache hierarchy with prefetch fills,
* MSHR-limited miss handling,
* a DRAM model with a configurable transfer rate whose queueing delay
  grows with utilization (so prefetch overprediction costs something),
* a simplified out-of-order core whose stalls are governed by ROB
  occupancy (so miss latency and prefetch timeliness matter).
"""

from repro.sim.config import (
    CacheGeometry,
    CoreConfig,
    DramConfig,
    SystemConfig,
    baseline_single_core,
    baseline_multi_core,
)
from repro.sim.trace import Trace, TraceRecord
from repro.sim.cache import Cache, CacheStats
from repro.sim.dram import Dram
from repro.sim.core import CoreModel
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.system import SimulationResult, simulate, simulate_multi
from repro.sim.metrics import (
    coverage,
    overprediction,
    speedup,
    geomean,
)

__all__ = [
    "CacheGeometry",
    "CoreConfig",
    "DramConfig",
    "SystemConfig",
    "baseline_single_core",
    "baseline_multi_core",
    "Trace",
    "TraceRecord",
    "Cache",
    "CacheStats",
    "Dram",
    "CoreModel",
    "CacheHierarchy",
    "SimulationResult",
    "simulate",
    "simulate_multi",
    "coverage",
    "overprediction",
    "speedup",
    "geomean",
]
