"""Miss Status Holding Register (MSHR) file.

MSHRs bound the number of distinct outstanding misses a cache level can
sustain.  A second miss to a line already outstanding merges into the
existing entry (no extra DRAM traffic); a miss arriving with all MSHRs
busy must wait for the earliest completion.  Prefetch requests that find
no free MSHR are dropped — exactly how hardware sheds prefetch pressure.

Reclaim is driven by a completion-ordered min-heap beside the line dict,
so the per-record ``reclaim`` is O(1) when nothing completed (one heap
peek) instead of a scan over every outstanding entry.  Heap slots whose
line was reclaimed and reallocated in the meantime are dropped lazily by
checking them against the live dict entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush


@dataclass(slots=True)
class MshrEntry:
    """One in-flight miss."""

    line: int
    completion: int
    is_prefetch: bool


class MshrFile:
    """Fixed-capacity set of outstanding misses for one cache level."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: dict[int, MshrEntry] = {}
        # (completion, line) min-heap; stale slots are pruned lazily.
        self._by_completion: list[tuple[int, int]] = []
        self.merged = 0
        self.allocations = 0
        self.stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    def reclaim(self, now: int) -> None:
        """Release entries whose miss completed by cycle *now*."""
        heap = self._by_completion
        entries = self._entries
        while heap and heap[0][0] <= now:
            completion, line = heappop(heap)
            entry = entries.get(line)
            if entry is not None and entry.completion == completion:
                del entries[line]

    def outstanding(self, line: int) -> MshrEntry | None:
        """Return the in-flight entry for *line*, if any."""
        return self._entries.get(line)

    def is_full(self) -> bool:
        """True when no MSHR is free."""
        return len(self._entries) >= self.capacity

    def earliest_completion(self) -> int:
        """Completion cycle of the soonest-finishing outstanding miss."""
        heap = self._by_completion
        entries = self._entries
        while heap:
            completion, line = heap[0]
            entry = entries.get(line)
            if entry is not None and entry.completion == completion:
                return completion
            heappop(heap)
        raise RuntimeError("no outstanding misses")

    def allocate(self, line: int, completion: int, is_prefetch: bool) -> MshrEntry:
        """Track a new outstanding miss; caller must ensure a slot is free."""
        if self.is_full():
            raise RuntimeError("MSHR file full")
        entry = MshrEntry(line, completion, is_prefetch)
        self._entries[line] = entry
        heappush(self._by_completion, (completion, line))
        self.allocations += 1
        return entry

    def merge(self, line: int) -> MshrEntry:
        """Merge a duplicate miss into the outstanding entry for *line*.

        A demand merging into a prefetch's MSHR converts the entry to a
        demand (the line is now architecturally required).
        """
        entry = self._entries[line]
        self.merged += 1
        return entry
