"""Miss Status Holding Register (MSHR) file.

MSHRs bound the number of distinct outstanding misses a cache level can
sustain.  A second miss to a line already outstanding merges into the
existing entry (no extra DRAM traffic); a miss arriving with all MSHRs
busy must wait for the earliest completion.  Prefetch requests that find
no free MSHR are dropped — exactly how hardware sheds prefetch pressure.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MshrEntry:
    """One in-flight miss."""

    line: int
    completion: int
    is_prefetch: bool


class MshrFile:
    """Fixed-capacity set of outstanding misses for one cache level."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: dict[int, MshrEntry] = {}
        self.merged = 0
        self.allocations = 0
        self.stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    def reclaim(self, now: int) -> None:
        """Release entries whose miss completed by cycle *now*."""
        done = [line for line, e in self._entries.items() if e.completion <= now]
        for line in done:
            del self._entries[line]

    def outstanding(self, line: int) -> MshrEntry | None:
        """Return the in-flight entry for *line*, if any."""
        return self._entries.get(line)

    def is_full(self) -> bool:
        """True when no MSHR is free."""
        return len(self._entries) >= self.capacity

    def earliest_completion(self) -> int:
        """Completion cycle of the soonest-finishing outstanding miss."""
        if not self._entries:
            raise RuntimeError("no outstanding misses")
        return min(e.completion for e in self._entries.values())

    def allocate(self, line: int, completion: int, is_prefetch: bool) -> MshrEntry:
        """Track a new outstanding miss; caller must ensure a slot is free."""
        if self.is_full():
            raise RuntimeError("MSHR file full")
        entry = MshrEntry(line, completion, is_prefetch)
        self._entries[line] = entry
        self.allocations += 1
        return entry

    def merge(self, line: int) -> MshrEntry:
        """Merge a duplicate miss into the outstanding entry for *line*.

        A demand merging into a prefetch's MSHR converts the entry to a
        demand (the line is now architecturally required).
        """
        entry = self._entries[line]
        self.merged += 1
        return entry
