"""System configuration mirroring Table 5 of the paper.

The defaults model the paper's Intel Skylake-like baseline: a 4-wide
out-of-order core with a 256-entry ROB, 32 KB L1D / 256 KB L2 / 2 MB-per-core
LLC, and a DDR4-2400-like DRAM channel.  Every evaluation knob the paper
sweeps (core count, DRAM MTPS, LLC size, prefetch level) is a field here so
the harness can express each figure as a config delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.types import LINE_SIZE


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry and latency of one cache level.

    Attributes:
        size_bytes: total capacity.
        ways: associativity.
        latency: round-trip hit latency in core cycles.
        mshrs: number of outstanding misses the level supports.
        replacement: replacement policy name, ``"lru"`` or ``"ship"``.
    """

    size_bytes: int
    ways: int
    latency: int
    mshrs: int
    replacement: str = "lru"

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size, associativity and line size."""
        return self.size_bytes // (self.ways * LINE_SIZE)


@dataclass(frozen=True)
class CoreConfig:
    """Simplified out-of-order core parameters (Table 5, "Core" row)."""

    width: int = 4
    rob_size: int = 256
    #: Average number of non-memory instructions carried by one trace record.
    #: Used only when a trace record does not carry its own gap.
    default_instr_gap: int = 4


@dataclass(frozen=True)
class DramConfig:
    """Main-memory model parameters (Table 5, "Main Memory" row).

    The paper's bandwidth sweeps are expressed in MTPS (million transfers
    per second); with a 64-bit data bus one cacheline transfer moves 64 B
    in 8 bus transfers.  We convert MTPS into *core cycles per cacheline
    transfer* assuming a 4 GHz core, which preserves the paper's relative
    bandwidth scaling exactly.
    """

    channels: int = 1
    banks_per_channel: int = 8
    #: Million transfers per second on the data bus (DDR4-2400 => 2400).
    mtps: int = 2400
    #: Core clock in MHz used to translate MTPS into cycles.
    core_mhz: int = 4000
    #: Row-buffer hit / miss access latencies in core cycles (tCAS vs
    #: tRP+tRCD+tCAS at 4 GHz: 12.5 ns ~ 50 cycles, 42.5 ns ~ 170 cycles).
    row_hit_latency: int = 45
    row_miss_latency: int = 140
    #: Row-buffer capacity in cachelines (2 KB row / 64 B line).
    row_size_lines: int = 32
    #: Length of the sliding window (in core cycles) over which bandwidth
    #: utilization is measured for system feedback.
    utilization_window: int = 2048

    @property
    def cycles_per_transfer(self) -> float:
        """Core cycles the data bus is busy moving one cacheline.

        One cacheline = 8 bus transfers of 8 bytes; the bus performs
        ``mtps`` million transfers per second against a ``core_mhz`` MHz
        core clock.
        """
        transfers_per_line = LINE_SIZE // 8
        return transfers_per_line * self.core_mhz / self.mtps


@dataclass(frozen=True)
class SystemConfig:
    """Complete simulated-system description (Table 5)."""

    num_cores: int = 1
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(32 * 1024, 8, 4, 16)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(256 * 1024, 8, 14, 32)
    )
    #: Per-core LLC slice; total shared LLC is ``llc.size_bytes * num_cores``.
    llc: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(2 * 1024 * 1024, 16, 34, 64, "ship")
    )
    dram: DramConfig = field(default_factory=DramConfig)
    #: Maximum prefetch requests issued per demand access (prefetch degree
    #: cap shared by all prefetchers for fairness).
    max_prefetch_degree: int = 8
    #: Bandwidth-utilization fraction above which the system reports "high
    #: bandwidth usage" to prefetchers (Pythia's system-level feedback).
    high_bw_threshold: float = 0.5
    #: Replay-loop implementation: ``"native"`` (compiled C kernel,
    #: :mod:`repro.sim._native`; falls back to batched without a C
    #: compiler or on unsupported configurations), ``"batched"``
    #: (columnar epoch kernel, :mod:`repro.sim.batch`; falls back to
    #: scalar when it cannot apply) or ``"scalar"`` (the reference
    #: per-record loop).  All three are bit-identical (pinned by
    #: ``tests/test_hotpath_equivalence.py``), so the toggle is excluded
    #: from result fingerprints — like ``PythiaConfig.qvstore_impl``,
    #: it is purely a speed knob.
    replay_backend: str = field(default="batched", metadata={"semantic": False})

    def scaled_llc(self, factor: float) -> "SystemConfig":
        """Return a copy with the LLC capacity scaled by *factor* (Fig 8c)."""
        new_llc = replace(self.llc, size_bytes=int(self.llc.size_bytes * factor))
        return replace(self, llc=new_llc)

    def with_mtps(self, mtps: int) -> "SystemConfig":
        """Return a copy with the DRAM transfer rate set to *mtps* (Fig 8b)."""
        return replace(self, dram=replace(self.dram, mtps=mtps))


def baseline_single_core() -> SystemConfig:
    """The paper's single-core baseline: one DDR4-2400 channel."""
    return SystemConfig(num_cores=1)


def baseline_multi_core(num_cores: int) -> SystemConfig:
    """Multi-core baselines following the paper's channel scaling.

    The paper simulates 1-2 core systems with one channel, 4-6 cores with
    two channels and 8-12 cores with four channels.
    """
    if num_cores <= 2:
        channels = 1
    elif num_cores <= 6:
        channels = 2
    else:
        channels = 4
    cfg = SystemConfig(num_cores=num_cores)
    return replace(cfg, dram=replace(cfg.dram, channels=channels))
