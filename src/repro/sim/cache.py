"""Set-associative cache model with per-line prefetch bookkeeping.

Each cache tracks, per line, whether the line was brought in by a
prefetch and whether it has been used by a demand access since fill.
That bookkeeping is what lets the metrics layer compute the paper's
coverage and overprediction numbers, and what lets prefetchers receive
"prefetch line was useful/useless" feedback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.config import CacheGeometry
from repro.sim.replacement import make_policy


@dataclass
class CacheStats:
    """Counters for one cache level.

    Demand counters exclude prefetch traffic; ``prefetch_*`` counters are
    lookups/fills on behalf of the prefetcher.  ``useful_prefetches`` and
    ``useless_evictions`` track the fate of prefetched lines.
    """

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    load_misses: int = 0
    prefetch_accesses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    fills: int = 0
    prefetch_fills: int = 0
    useful_prefetches: int = 0
    useless_evictions: int = 0
    evictions: int = 0

    @property
    def demand_hit_rate(self) -> float:
        """Fraction of demand accesses that hit."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_hits / self.demand_accesses

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetch fills later touched by a demand access."""
        judged = self.useful_prefetches + self.useless_evictions
        if judged == 0:
            return 0.0
        return self.useful_prefetches / judged


@dataclass
class _Line:
    """One way of one set."""

    tag: int = -1
    valid: bool = False
    prefetched: bool = False
    used: bool = False
    fill_cycle: int = 0


@dataclass
class LookupResult:
    """Outcome of a cache lookup."""

    hit: bool
    was_prefetched_line: bool = False
    first_use_of_prefetch: bool = False


@dataclass
class EvictedLine:
    """Information about a line pushed out of the cache by a fill."""

    line: int
    prefetched: bool
    used: bool


class Cache:
    """A set-associative, write-allocate cache level.

    The cache is *functional plus statistics*: timing lives in the
    hierarchy/DRAM models.  Lookups and fills update replacement state and
    the prefetch bookkeeping used by the metrics layer.

    Args:
        name: level name used in reports (``"L1"``, ``"L2"``, ``"LLC"``).
        geometry: size/associativity/latency description.
    """

    def __init__(self, name: str, geometry: CacheGeometry) -> None:
        if geometry.num_sets <= 0:
            raise ValueError(f"{name}: geometry yields no sets")
        self.name = name
        self.geometry = geometry
        self.num_sets = geometry.num_sets
        self.ways = geometry.ways
        self.latency = geometry.latency
        self.stats = CacheStats()
        self._policy = make_policy(geometry.replacement)
        self._sets: list[list[_Line]] = [
            [_Line() for _ in range(self.ways)] for _ in range(self.num_sets)
        ]
        self._meta: list[list] = [
            [self._policy.new_meta() for _ in range(self.ways)]
            for _ in range(self.num_sets)
        ]
        self._tick = 0

    def _index(self, line: int) -> int:
        return line % self.num_sets

    def _find(self, line: int) -> tuple[int, int] | None:
        set_idx = self._index(line)
        for way, entry in enumerate(self._sets[set_idx]):
            if entry.valid and entry.tag == line:
                return set_idx, way
        return None

    # -- public API ---------------------------------------------------------

    def probe(self, line: int) -> bool:
        """Check presence without touching stats or replacement state."""
        return self._find(line) is not None

    def lookup(self, line: int, pc: int, is_load: bool, is_prefetch: bool) -> LookupResult:
        """Access the cache; updates stats and replacement state.

        A hit promotes the line; a first demand hit on a prefetched line
        is flagged so the caller can credit the prefetcher.
        """
        self._tick += 1
        found = self._find(line)
        if is_prefetch:
            self.stats.prefetch_accesses += 1
        else:
            self.stats.demand_accesses += 1

        if found is None:
            if is_prefetch:
                self.stats.prefetch_misses += 1
            else:
                self.stats.demand_misses += 1
                if is_load:
                    self.stats.load_misses += 1
            return LookupResult(hit=False)

        set_idx, way = found
        entry = self._sets[set_idx][way]
        self._policy.on_hit(self._meta[set_idx], way, pc, self._tick)
        first_use = False
        if not is_prefetch:
            self.stats.demand_hits += 1
            if entry.prefetched and not entry.used:
                entry.used = True
                first_use = True
                self.stats.useful_prefetches += 1
        else:
            self.stats.prefetch_hits += 1
        return LookupResult(
            hit=True,
            was_prefetched_line=entry.prefetched,
            first_use_of_prefetch=first_use,
        )

    def fill(self, line: int, pc: int, is_prefetch: bool, cycle: int = 0) -> EvictedLine | None:
        """Insert *line*, evicting a victim if the set is full.

        Returns the evicted line's bookkeeping (or ``None`` if an invalid
        way was used).  Filling a line already present only refreshes its
        metadata.
        """
        self._tick += 1
        existing = self._find(line)
        set_idx = self._index(line)
        meta = self._meta[set_idx]
        if existing is not None:
            # Duplicate fill (e.g. a demand fill racing a prefetch fill):
            # refresh but never downgrade a demand-fetched line to a
            # prefetched one.
            _, way = existing
            entry = self._sets[set_idx][way]
            if not is_prefetch:
                entry.prefetched = entry.prefetched and entry.used
            return None

        valid = [e.valid for e in self._sets[set_idx]]
        way = self._policy.victim(meta, valid)
        entry = self._sets[set_idx][way]
        evicted: EvictedLine | None = None
        if entry.valid:
            self.stats.evictions += 1
            if entry.prefetched and not entry.used:
                self.stats.useless_evictions += 1
            self._policy.on_evict(meta, way, entry.used)
            evicted = EvictedLine(entry.tag, entry.prefetched, entry.used)

        entry.tag = line
        entry.valid = True
        entry.prefetched = is_prefetch
        entry.used = not is_prefetch
        entry.fill_cycle = cycle
        self._policy.on_fill(meta, way, pc, is_prefetch, self._tick)
        self.stats.fills += 1
        if is_prefetch:
            self.stats.prefetch_fills += 1
        return evicted

    def invalidate(self, line: int) -> bool:
        """Remove *line* if present; returns True if it was present."""
        found = self._find(line)
        if found is None:
            return False
        set_idx, way = found
        self._sets[set_idx][way] = _Line()
        self._meta[set_idx][way] = self._policy.new_meta()
        return True

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(1 for s in self._sets for e in s if e.valid)

    @property
    def capacity_lines(self) -> int:
        """Total line capacity."""
        return self.num_sets * self.ways
