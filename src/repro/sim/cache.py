"""Set-associative cache model with per-line prefetch bookkeeping.

Each cache tracks, per line, whether the line was brought in by a
prefetch and whether it has been used by a demand access since fill.
That bookkeeping is what lets the metrics layer compute the paper's
coverage and overprediction numbers, and what lets prefetchers receive
"prefetch line was useful/useless" feedback.

The data structures are organized for the simulator's per-record hot
path: each set carries a tag→way dict beside the way list, so
``lookup``/``probe``/``fill`` resolve residency in O(1) instead of a
linear way scan, and invalid ways sit in a per-set min-heap so fills
consume them lowest-index-first without building a validity list per
fill.  Replacement policies therefore only ever see full sets
(:mod:`repro.sim.replacement`).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush

from repro.sim.config import CacheGeometry
from repro.sim.replacement import make_policy
from repro.types import prefetch_accuracy as _prefetch_accuracy


@dataclass(slots=True)
class CacheStats:
    """Counters for one cache level.

    Demand counters exclude prefetch traffic; ``prefetch_*`` counters are
    lookups/fills on behalf of the prefetcher.  ``useful_prefetches`` and
    ``useless_evictions`` track the fate of prefetched lines.
    """

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    load_misses: int = 0
    prefetch_accesses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    fills: int = 0
    prefetch_fills: int = 0
    useful_prefetches: int = 0
    useless_evictions: int = 0
    evictions: int = 0

    @property
    def demand_hit_rate(self) -> float:
        """Fraction of demand accesses that hit."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_hits / self.demand_accesses

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetch fills later touched by a demand access."""
        return _prefetch_accuracy(self.useful_prefetches, self.useless_evictions)


@dataclass(slots=True)
class _Line:
    """One way of one set (slotted: millions live per simulation)."""

    tag: int = -1
    valid: bool = False
    prefetched: bool = False
    used: bool = False
    fill_cycle: int = 0


@dataclass(frozen=True, slots=True)
class LookupResult:
    """Outcome of a cache lookup.

    The four possible outcomes are preallocated module-level constants
    (lookups happen several times per simulated record); the class is
    frozen so the shared instances cannot be corrupted.
    """

    hit: bool
    was_prefetched_line: bool = False
    first_use_of_prefetch: bool = False


_MISS = LookupResult(hit=False)
_HIT = LookupResult(hit=True)
_HIT_PREFETCHED = LookupResult(hit=True, was_prefetched_line=True)
_HIT_FIRST_USE = LookupResult(
    hit=True, was_prefetched_line=True, first_use_of_prefetch=True
)


@dataclass(slots=True)
class EvictedLine:
    """Information about a line pushed out of the cache by a fill."""

    line: int
    prefetched: bool
    used: bool


class Cache:
    """A set-associative, write-allocate cache level.

    The cache is *functional plus statistics*: timing lives in the
    hierarchy/DRAM models.  Lookups and fills update replacement state and
    the prefetch bookkeeping used by the metrics layer.

    Args:
        name: level name used in reports (``"L1"``, ``"L2"``, ``"LLC"``).
        geometry: size/associativity/latency description.
    """

    def __init__(self, name: str, geometry: CacheGeometry) -> None:
        if geometry.num_sets <= 0:
            raise ValueError(f"{name}: geometry yields no sets")
        self.name = name
        self.geometry = geometry
        self.num_sets = geometry.num_sets
        self.ways = geometry.ways
        self.latency = geometry.latency
        self.stats = CacheStats()
        self._policy = make_policy(geometry.replacement)
        # LRU's touch bookkeeping is one int store; inlining it saves a
        # Python call on every lookup hit and fill (L1/L2 are LRU).
        from repro.sim.replacement import LruPolicy

        self._policy_is_lru = type(self._policy) is LruPolicy
        self._sets: list[list[_Line]] = [
            [_Line() for _ in range(self.ways)] for _ in range(self.num_sets)
        ]
        self._meta: list[list] = [
            [self._policy.new_meta() for _ in range(self.ways)]
            for _ in range(self.num_sets)
        ]
        # Per-set tag→way index: O(1) residency checks beside the way list.
        self._tags: list[dict[int, int]] = [{} for _ in range(self.num_sets)]
        # Per-set min-heaps of invalid ways: fills take the lowest index
        # first, matching the historical "first invalid way" victim rule.
        self._free: list[list[int]] = [
            list(range(self.ways)) for _ in range(self.num_sets)
        ]
        self._tick = 0

    def _index(self, line: int) -> int:
        return line % self.num_sets

    def _find(self, line: int) -> tuple[int, int] | None:
        set_idx = line % self.num_sets
        way = self._tags[set_idx].get(line)
        if way is None:
            return None
        return set_idx, way

    # -- public API ---------------------------------------------------------

    def probe(self, line: int) -> bool:
        """Check presence without touching stats or replacement state."""
        return line in self._tags[line % self.num_sets]

    def lookup(self, line: int, pc: int, is_load: bool, is_prefetch: bool) -> LookupResult:
        """Access the cache; updates stats and replacement state.

        A hit promotes the line; a first demand hit on a prefetched line
        is flagged so the caller can credit the prefetcher.
        """
        self._tick += 1
        stats = self.stats
        set_idx = line % self.num_sets
        way = self._tags[set_idx].get(line)
        if is_prefetch:
            stats.prefetch_accesses += 1
        else:
            stats.demand_accesses += 1

        if way is None:
            if is_prefetch:
                stats.prefetch_misses += 1
            else:
                stats.demand_misses += 1
                if is_load:
                    stats.load_misses += 1
            return _MISS

        entry = self._sets[set_idx][way]
        if self._policy_is_lru:
            self._meta[set_idx][way] = self._tick
        else:
            self._policy.on_hit(self._meta[set_idx], way, pc, self._tick)
        if not is_prefetch:
            stats.demand_hits += 1
            if entry.prefetched:
                if not entry.used:
                    entry.used = True
                    stats.useful_prefetches += 1
                    return _HIT_FIRST_USE
                return _HIT_PREFETCHED
            return _HIT
        stats.prefetch_hits += 1
        return _HIT_PREFETCHED if entry.prefetched else _HIT

    def fill(self, line: int, pc: int, is_prefetch: bool, cycle: int = 0) -> EvictedLine | None:
        """Insert *line*, evicting a victim if the set is full.

        Returns the evicted line's bookkeeping (or ``None`` if an invalid
        way was used).  Filling a line already present only refreshes its
        metadata.

        The replay hot paths inline this method — the batched epoch
        kernel (:mod:`repro.sim.batch`) for demand fills and
        :meth:`repro.sim.hierarchy.CacheHierarchy.process_fills` for
        prefetch fills.  Change all three together.
        """
        self._tick += 1
        set_idx = line % self.num_sets
        tags = self._tags[set_idx]
        meta = self._meta[set_idx]
        existing = tags.get(line)
        if existing is not None:
            # Duplicate fill (e.g. a demand fill racing a prefetch fill):
            # refresh but never downgrade a demand-fetched line to a
            # prefetched one.
            entry = self._sets[set_idx][existing]
            if not is_prefetch:
                entry.prefetched = entry.prefetched and entry.used
            return None

        free = self._free[set_idx]
        evicted: EvictedLine | None = None
        is_lru = self._policy_is_lru
        if free:
            way = heappop(free)
            entry = self._sets[set_idx][way]
        else:
            # The is_lru arm inlines LruPolicy.victim (evictions happen
            # on nearly every post-warmup fill); keep the two in sync.
            way = meta.index(min(meta)) if is_lru else self._policy.victim(meta)
            entry = self._sets[set_idx][way]
            self.stats.evictions += 1
            if entry.prefetched and not entry.used:
                self.stats.useless_evictions += 1
            if not is_lru:  # LRU's on_evict is a no-op
                self._policy.on_evict(meta, way, entry.used)
            evicted = EvictedLine(entry.tag, entry.prefetched, entry.used)
            del tags[entry.tag]

        tags[line] = way
        entry.tag = line
        entry.valid = True
        entry.prefetched = is_prefetch
        entry.used = not is_prefetch
        entry.fill_cycle = cycle
        if is_lru:
            meta[way] = self._tick
        else:
            self._policy.on_fill(meta, way, pc, is_prefetch, self._tick)
        self.stats.fills += 1
        if is_prefetch:
            self.stats.prefetch_fills += 1
        return evicted

    def invalidate(self, line: int) -> bool:
        """Remove *line* if present; returns True if it was present."""
        set_idx = line % self.num_sets
        way = self._tags[set_idx].pop(line, None)
        if way is None:
            return False
        self._sets[set_idx][way] = _Line()
        self._meta[set_idx][way] = self._policy.new_meta()
        heappush(self._free[set_idx], way)
        return True

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(tags) for tags in self._tags)

    @property
    def capacity_lines(self) -> int:
        """Total line capacity."""
        return self.num_sets * self.ways
