"""Batched-epoch replay kernel: the engine's columnar fast path.

:func:`replay_span` replays a record span through one core + hierarchy
exactly like the scalar loop in :mod:`repro.sim.engine` — same
operations, on the same mutable state, in the same order — but
restructured around per-epoch columns instead of per-record objects:

* the trace slice is decoded once per epoch from the memoized
  struct-of-arrays columns (:class:`repro.sim.trace.TraceColumns`);
  page/offset address math and the per-level cache set indices are
  vectorized NumPy sweeps, materialized as plain lists for the loop;
* the sequential-feedback core — SARSA training, MSHR arbitration,
  replacement — stays scalar (a record's training output changes the
  cache/DRAM state the next record sees, so it cannot be reordered),
  but the call graph around it is flattened: the core timing model,
  the L1/L2/LLC demand lookups and demand fills, the MSHR reclaim, the
  prefetch-issue filter, and the DRAM bandwidth-feedback read are all
  inlined into one loop body, and the prefetcher is trained through
  :meth:`~repro.prefetchers.base.Prefetcher.train_cols` on the decoded
  scalars (no ``DemandContext`` allocation);
* per-record counters (core cycle/instructions, prefetch issue totals)
  live in loop locals and are flushed back to their objects at span
  end — the engine only reads them at epoch boundaries, which are
  exactly where this function returns.

Bit-identity with the scalar path is a hard invariant, pinned by
``tests/test_hotpath_equivalence.py`` across fresh, windowed, and
checkpoint-resumed runs.  Every inlined block below mirrors a method of
:mod:`repro.sim.cache`, :mod:`repro.sim.core`, :mod:`repro.sim.dram`,
:mod:`repro.sim.hierarchy`, or :mod:`repro.sim.mshr` — when one of
those changes, change the matching block here (the equivalence suite
catches drift).

The kernel handles every configuration except L1 prefetching (the
multi-level Fig 8d experiments), for which the engine falls back to the
scalar loop; both backends are semantically interchangeable, so the
fallback is invisible outside throughput.
"""

from __future__ import annotations

from collections import OrderedDict
from heapq import heappop, heappush

from repro.sim.mshr import MshrEntry
from repro.types import PAGE_SHIFT_LINES

try:  # NumPy is optional; without it the engine stays on the scalar loop.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Records materialized per kernel epoch.  Aligned with the engine's
#: ``_CONTROL_CHUNK`` so a controlled run's chunks decode in one epoch;
#: bounds the transient footprint of the per-epoch column lists.
EPOCH = 16_384


def available() -> bool:
    """True when the batched backend can run (NumPy importable)."""
    return _np is not None


#: Decoded-epoch memo: (trace stamp, span, set geometry) -> the decoded
#: lists.  Keyed by the trace's *content* stamp, so a cell and its
#: no-prefetching baseline (same trace, different prefetcher) reuse one
#: decode instead of each paying the ``.tolist()`` sweeps.  Only
#: consulted when the caller passes a stamp; entries are immutable by
#: convention (every consumer just iterates them).
_DECODE_CACHE: OrderedDict = OrderedDict()
_DECODE_CACHE_ENTRIES = 16


def decode_span(cols, start, stop, n1, n2, n3, stamp=None):
    """Decode records ``[start, stop)`` into plain-list columns.

    Returns the nine per-record lists the kernel loop zips over: pc,
    line, is_load, gap, page, offset, and the L1/L2/LLC set indices for
    set counts *n1*/*n2*/*n3*.  With a *stamp* (the trace's content
    CRC), results are memoized in a small module-level LRU — columns
    are pure functions of (content, span, geometry), so sharing across
    engines cannot leak state.
    """
    key = None
    if stamp is not None:
        key = (stamp, start, stop, n1, n2, n3)
        hit = _DECODE_CACHE.get(key)
        if hit is not None:
            _DECODE_CACHE.move_to_end(key)
            return hit
    line_slice = cols.line[start:stop]
    decoded = (
        cols.pc[start:stop].tolist(),
        line_slice.tolist(),
        cols.is_load[start:stop].tolist(),
        cols.gap[start:stop].tolist(),
        cols.page[start:stop].tolist(),
        cols.offset[start:stop].tolist(),
        (line_slice % n1).tolist(),
        (line_slice % n2).tolist(),
        (line_slice % n3).tolist(),
    )
    if key is not None:
        # Safe: process-local memo of a pure function of (content stamp,
        # span, geometry) — a racing writer re-inserts identical data.
        _DECODE_CACHE[key] = decoded  # repro: ignore[concurrency]
        while len(_DECODE_CACHE) > _DECODE_CACHE_ENTRIES:
            _DECODE_CACHE.popitem(last=False)  # repro: ignore[concurrency]
    return decoded


def replay_span(hierarchy, core, cols, start, stop, stamp=None) -> None:
    """Replay records ``[start, stop)`` — bit-identical to the scalar loop.

    Args:
        hierarchy: the run's :class:`~repro.sim.hierarchy.CacheHierarchy`
            (must have no L1 prefetcher; the engine guards this).
        core: the run's :class:`~repro.sim.core.CoreModel`.
        cols: the trace's :class:`~repro.sim.trace.TraceColumns`.
        start: first record index to replay.
        stop: one past the last record index to replay.
        stamp: optional trace content stamp enabling the decoded-epoch
            memo (:func:`decode_span`).

    Mutates *hierarchy* and *core* exactly as the scalar loop would;
    there is no drain here — the engine drains at the same boundaries
    for both backends.
    """
    # -- core model state (flushed back in the finally block) --------------
    width = core._width
    rob = core._rob_size
    recip = 1.0 / width  # same value as the per-call 1.0/width division
    cycle = core.cycle
    instructions = core.instructions
    stall_cycles = core.stall_cycles
    outstanding = core._outstanding

    # -- hierarchy hoists ---------------------------------------------------
    config = hierarchy.config
    prefetcher = hierarchy.prefetcher
    train = hierarchy._train_l2
    train_cols = prefetcher.train_cols
    on_demand_hit_prefetched = prefetcher.on_demand_hit_prefetched
    on_prefetch_dropped = prefetcher.on_prefetch_dropped
    process_fills = hierarchy.process_fills
    pending = hierarchy._pending_fills
    inflight = hierarchy._inflight_prefetch
    merged = hierarchy._merged_inflight
    pf_issued = hierarchy.prefetches_issued
    pf_dropped = hierarchy.prefetches_dropped
    late_merges = hierarchy.late_prefetch_merges
    max_degree = config.max_prefetch_degree
    hi_thresh = config.high_bw_threshold
    pshift = PAGE_SHIFT_LINES

    l1, l2, llc = hierarchy.l1, hierarchy.l2, hierarchy.llc
    l1_lat, l2_lat, llc_lat = l1.latency, l2.latency, llc.latency
    l1_sets, l1_meta, l1_tags, l1_free = l1._sets, l1._meta, l1._tags, l1._free
    l2_sets, l2_meta, l2_tags, l2_free = l2._sets, l2._meta, l2._tags, l2._free
    llc_sets, llc_meta, llc_tags, llc_free = llc._sets, llc._meta, llc._tags, llc._free
    l1_stats, l2_stats, llc_stats = l1.stats, l2.stats, llc.stats
    l1_is_lru, l2_is_lru = l1._policy_is_lru, l2._policy_is_lru
    llc_is_lru = llc._policy_is_lru
    l1_policy, l2_policy, llc_policy = l1._policy, l2._policy, llc._policy
    l1_nsets, l2_nsets, llc_nsets = l1.num_sets, l2.num_sets, llc.num_sets

    mshr = hierarchy.mshr
    mshr_heap = mshr._by_completion
    mshr_entries = mshr._entries
    mshr_capacity = mshr.capacity

    dram = hierarchy.dram
    dram_access = dram.access
    dram_utilization = dram.utilization
    dram_events = dram._events
    util_window = dram.config.utilization_window
    util_capacity = util_window * dram.config.channels

    try:
        for es in range(start, stop, EPOCH):
            ee = es + EPOCH
            if ee > stop:
                ee = stop
            epoch = zip(
                *decode_span(
                    cols, es, ee, l1_nsets, l2_nsets, llc_nsets, stamp=stamp
                )
            )
            for pc, line, is_load, gap, page, offset, s1, s2, s3 in epoch:
                # -- CoreModel.advance(gap), inlined -----------------------
                if gap > 0:
                    instructions += gap
                    cycle += gap / width
                    if outstanding:
                        while outstanding and outstanding[0][1] <= cycle:
                            outstanding.popleft()
                        while outstanding:
                            issued_at, wait_c = outstanding[0]
                            if instructions - issued_at < rob:
                                break
                            if wait_c > cycle:
                                stall_cycles += wait_c - cycle
                                cycle = wait_c
                            outstanding.popleft()
                            while outstanding and outstanding[0][1] <= cycle:
                                outstanding.popleft()

                # -- CacheHierarchy.demand_access, inlined ------------------
                now = int(cycle)
                if pending and pending[0][0] <= now:
                    process_fills(now)
                if mshr_heap and mshr_heap[0][0] <= now:
                    # MshrFile.reclaim, inlined.
                    while mshr_heap and mshr_heap[0][0] <= now:
                        m_comp, m_line = heappop(mshr_heap)
                        m_entry = mshr_entries.get(m_line)
                        if m_entry is not None and m_entry.completion == m_comp:
                            del mshr_entries[m_line]

                # L1 demand lookup (Cache.lookup, inlined).
                l1._tick += 1
                l1_stats.demand_accesses += 1
                way = l1_tags[s1].get(line)
                if way is not None:
                    entry = l1_sets[s1][way]
                    if l1_is_lru:
                        l1_meta[s1][way] = l1._tick
                    else:
                        l1_policy.on_hit(l1_meta[s1], way, pc, l1._tick)
                    l1_stats.demand_hits += 1
                    if entry.prefetched and not entry.used:
                        entry.used = True
                        l1_stats.useful_prefetches += 1
                    completion = now + l1_lat
                else:
                    l1_stats.demand_misses += 1
                    if is_load:
                        l1_stats.load_misses += 1

                    # L1 miss: the prefetcher's training event.
                    if train:
                        # Dram.utilization fast path: the record-side
                        # drain keeps the event head inside the window,
                        # so the busy fraction is the rolling counter.
                        if dram_events and dram_events[0][0] < now - util_window:
                            util = dram_utilization(now)
                        elif util_capacity > 0:
                            util = dram._window_busy / util_capacity
                            if util > 1.0:
                                util = 1.0
                        else:
                            util = 0.0
                        bw_high = util >= hi_thresh
                        candidates = train_cols(
                            pc, line, page, offset, now, is_load, util, bw_high
                        )
                        if candidates:
                            # _issue_prefetches + _fetch_for_prefetch, inlined.
                            if len(candidates) > 1:
                                # Cannot hoist: dedup is per-candidate-batch —
                                # each iteration's list is distinct, and the
                                # >1 guard skips the cost on the common case.
                                candidates = list(dict.fromkeys(candidates))  # repro: ignore[hotpath]
                            issued = 0
                            for pf in candidates:
                                if issued >= max_degree:
                                    break
                                if pf < 0:
                                    continue
                                if pf >> pshift != page:
                                    continue
                                if pf in l2_tags[pf % l2_nsets]:
                                    continue
                                sp = pf % llc_nsets
                                if pf in llc_tags[sp]:
                                    continue
                                if pf in inflight:
                                    continue
                                # LLC prefetch lookup (Cache.lookup, inlined).
                                llc._tick += 1
                                llc_stats.prefetch_accesses += 1
                                wp = llc_tags[sp].get(pf)
                                if wp is not None:
                                    if llc_is_lru:
                                        llc_meta[sp][wp] = llc._tick
                                    else:
                                        llc_policy.on_hit(
                                            llc_meta[sp], wp, 0, llc._tick
                                        )
                                    llc_stats.prefetch_hits += 1
                                    pf_comp = now + llc_lat
                                elif mshr_entries.get(pf) is not None:
                                    llc_stats.prefetch_misses += 1
                                    pf_dropped += 1
                                    on_prefetch_dropped(pf, now)
                                    continue
                                elif len(mshr_entries) >= mshr_capacity:
                                    llc_stats.prefetch_misses += 1
                                    pf_dropped += 1
                                    on_prefetch_dropped(pf, now)
                                    continue
                                else:
                                    llc_stats.prefetch_misses += 1
                                    pf_comp = dram_access(pf, now + llc_lat, True)
                                    # MshrFile.allocate, inlined.  Cannot
                                    # hoist: one entry per actual miss, and
                                    # misses are rare relative to iterations.
                                    mshr_entries[pf] = MshrEntry(pf, pf_comp, True)  # repro: ignore[hotpath]
                                    heappush(mshr_heap, (pf_comp, pf))
                                    mshr.allocations += 1
                                heappush(pending, (pf_comp, pf))
                                inflight[pf] = pf_comp
                                issued += 1
                                pf_issued += 1

                    # L2 demand lookup (Cache.lookup, inlined).
                    l2._tick += 1
                    l2_stats.demand_accesses += 1
                    way = l2_tags[s2].get(line)
                    if way is not None:
                        entry = l2_sets[s2][way]
                        if l2_is_lru:
                            l2_meta[s2][way] = l2._tick
                        else:
                            l2_policy.on_hit(l2_meta[s2], way, pc, l2._tick)
                        l2_stats.demand_hits += 1
                        if entry.prefetched and not entry.used:
                            entry.used = True
                            l2_stats.useful_prefetches += 1
                            on_demand_hit_prefetched(line, now)
                        completion = now + l2_lat
                        fill_l1 = now
                        fill_l2 = -1
                    else:
                        l2_stats.demand_misses += 1
                        if is_load:
                            l2_stats.load_misses += 1

                        in_comp = inflight.get(line)
                        if in_comp is not None:
                            # Late in-flight prefetch: merge, wait the rest.
                            late_merges += 1
                            merged.add(line)
                            llc_stats.demand_accesses += 1
                            llc_stats.demand_hits += 1
                            llc_stats.useful_prefetches += 1
                            on_demand_hit_prefetched(line, now)
                            base = now + llc_lat
                            completion = in_comp if in_comp > base else base
                            fill_l1 = completion
                            fill_l2 = -1
                        else:
                            # LLC demand lookup (Cache.lookup, inlined).
                            llc._tick += 1
                            llc_stats.demand_accesses += 1
                            way = llc_tags[s3].get(line)
                            if way is not None:
                                entry = llc_sets[s3][way]
                                if llc_is_lru:
                                    llc_meta[s3][way] = llc._tick
                                else:
                                    llc_policy.on_hit(
                                        llc_meta[s3], way, pc, llc._tick
                                    )
                                llc_stats.demand_hits += 1
                                if entry.prefetched and not entry.used:
                                    entry.used = True
                                    llc_stats.useful_prefetches += 1
                                    on_demand_hit_prefetched(line, now)
                                completion = now + llc_lat
                                fill_l1 = now
                                fill_l2 = now
                            else:
                                llc_stats.demand_misses += 1
                                if is_load:
                                    llc_stats.load_misses += 1
                                m_entry = mshr_entries.get(line)
                                if m_entry is not None:
                                    # Merge into the outstanding miss.
                                    base = now + llc_lat
                                    m_comp = m_entry.completion
                                    completion = m_comp if m_comp > base else base
                                    fill_l1 = -1
                                    fill_l2 = -1
                                else:
                                    if len(mshr_entries) >= mshr_capacity:
                                        # Structural stall (scalar path kept:
                                        # rare, and earliest_completion prunes
                                        # the heap in ways worth not copying).
                                        mshr.stalls += 1
                                        wait_until = mshr.earliest_completion()
                                        while (
                                            mshr_heap
                                            and mshr_heap[0][0] <= wait_until
                                        ):
                                            m_comp, m_line = heappop(mshr_heap)
                                            m_entry = mshr_entries.get(m_line)
                                            if (
                                                m_entry is not None
                                                and m_entry.completion == m_comp
                                            ):
                                                del mshr_entries[m_line]
                                        if wait_until > now:
                                            now = wait_until
                                    completion = dram_access(
                                        line, now + llc_lat, False
                                    )
                                    # MshrFile.allocate, inlined.  Cannot
                                    # hoist: one entry per actual demand
                                    # miss, rare relative to iterations.
                                    mshr_entries[line] = MshrEntry(  # repro: ignore[hotpath]
                                        line, completion, False
                                    )
                                    heappush(mshr_heap, (completion, line))
                                    mshr.allocations += 1

                                    # LLC demand fill (Cache.fill, inlined).
                                    llc._tick += 1
                                    tags3 = llc_tags[s3]
                                    way = tags3.get(line)
                                    if way is not None:
                                        entry = llc_sets[s3][way]
                                        entry.prefetched = (
                                            entry.prefetched and entry.used
                                        )
                                    else:
                                        free3 = llc_free[s3]
                                        meta3 = llc_meta[s3]
                                        if free3:
                                            way = heappop(free3)
                                            entry = llc_sets[s3][way]
                                        else:
                                            way = (
                                                meta3.index(min(meta3))
                                                if llc_is_lru
                                                else llc_policy.victim(meta3)
                                            )
                                            entry = llc_sets[s3][way]
                                            llc_stats.evictions += 1
                                            if entry.prefetched and not entry.used:
                                                llc_stats.useless_evictions += 1
                                            if not llc_is_lru:
                                                llc_policy.on_evict(
                                                    meta3, way, entry.used
                                                )
                                            del tags3[entry.tag]
                                        tags3[line] = way
                                        entry.tag = line
                                        entry.valid = True
                                        entry.prefetched = False
                                        entry.used = True
                                        entry.fill_cycle = completion
                                        if llc_is_lru:
                                            meta3[way] = llc._tick
                                        else:
                                            llc_policy.on_fill(
                                                meta3, way, pc, False, llc._tick
                                            )
                                        llc_stats.fills += 1
                                    fill_l1 = completion
                                    fill_l2 = completion

                        # L2 demand fill (Cache.fill, inlined).
                        if fill_l2 >= 0:
                            l2._tick += 1
                            tags2 = l2_tags[s2]
                            way = tags2.get(line)
                            if way is not None:
                                entry = l2_sets[s2][way]
                                entry.prefetched = entry.prefetched and entry.used
                            else:
                                free2 = l2_free[s2]
                                meta2 = l2_meta[s2]
                                if free2:
                                    way = heappop(free2)
                                    entry = l2_sets[s2][way]
                                else:
                                    way = (
                                        meta2.index(min(meta2))
                                        if l2_is_lru
                                        else l2_policy.victim(meta2)
                                    )
                                    entry = l2_sets[s2][way]
                                    l2_stats.evictions += 1
                                    if entry.prefetched and not entry.used:
                                        l2_stats.useless_evictions += 1
                                    if not l2_is_lru:
                                        l2_policy.on_evict(meta2, way, entry.used)
                                    del tags2[entry.tag]
                                tags2[line] = way
                                entry.tag = line
                                entry.valid = True
                                entry.prefetched = False
                                entry.used = True
                                entry.fill_cycle = fill_l2
                                if l2_is_lru:
                                    meta2[way] = l2._tick
                                else:
                                    l2_policy.on_fill(meta2, way, pc, False, l2._tick)
                                l2_stats.fills += 1

                    # L1 demand fill (Cache.fill, inlined).
                    if fill_l1 >= 0:
                        l1._tick += 1
                        tags1 = l1_tags[s1]
                        way = tags1.get(line)
                        if way is not None:
                            entry = l1_sets[s1][way]
                            entry.prefetched = entry.prefetched and entry.used
                        else:
                            free1 = l1_free[s1]
                            meta1 = l1_meta[s1]
                            if free1:
                                way = heappop(free1)
                                entry = l1_sets[s1][way]
                            else:
                                way = (
                                    meta1.index(min(meta1))
                                    if l1_is_lru
                                    else l1_policy.victim(meta1)
                                )
                                entry = l1_sets[s1][way]
                                l1_stats.evictions += 1
                                if entry.prefetched and not entry.used:
                                    l1_stats.useless_evictions += 1
                                if not l1_is_lru:
                                    l1_policy.on_evict(meta1, way, entry.used)
                                del tags1[entry.tag]
                            tags1[line] = way
                            entry.tag = line
                            entry.valid = True
                            entry.prefetched = False
                            entry.used = True
                            entry.fill_cycle = fill_l1
                            if l1_is_lru:
                                meta1[way] = l1._tick
                            else:
                                l1_policy.on_fill(meta1, way, pc, False, l1._tick)
                            l1_stats.fills += 1

                # -- CoreModel.issue_load(completion), inlined --------------
                instructions += 1
                cycle += recip
                if outstanding:
                    while outstanding and outstanding[0][1] <= cycle:
                        outstanding.popleft()
                if completion > cycle:
                    outstanding.append((instructions, completion))
                if outstanding:
                    while outstanding:
                        issued_at, wait_c = outstanding[0]
                        if instructions - issued_at < rob:
                            break
                        if wait_c > cycle:
                            stall_cycles += wait_c - cycle
                            cycle = wait_c
                        outstanding.popleft()
                        while outstanding and outstanding[0][1] <= cycle:
                            outstanding.popleft()
    finally:
        core.cycle = cycle
        core.instructions = instructions
        core.stall_cycles = stall_cycles
        hierarchy.prefetches_issued = pf_issued
        hierarchy.prefetches_dropped = pf_dropped
        hierarchy.late_prefetch_merges = late_merges
