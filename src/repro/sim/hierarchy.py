"""Three-level cache hierarchy with prefetch issue, fill, and timeliness.

The demand path is L1 → L2 → LLC → DRAM with per-level hit latencies from
the system config.  Prefetchers are trained on L1 demand misses (as in
the paper, §5.2) and their requests are filled into L2 and LLC when the
memory access completes — *not* at issue time — so prefetch timeliness is
modelled: a demand that arrives while its prefetch is still in flight
merges with the outstanding request and only saves the remaining latency
(the paper's "accurate but late" case).
"""

from __future__ import annotations

import heapq

from repro.prefetchers.base import DemandContext, Prefetcher, NoPrefetcher
from repro.sim.cache import Cache
from repro.sim.config import SystemConfig
from repro.sim.dram import Dram
from repro.sim.mshr import MshrFile
from repro.sim.trace import TraceRecord
from repro.types import same_page


class CacheHierarchy:
    """Per-core cache stack in front of a (possibly shared) LLC and DRAM.

    Args:
        config: system description.
        prefetcher: the L2-level prefetcher under evaluation.
        dram: shared DRAM model (created if omitted).
        llc: shared LLC (created if omitted — single-core usage).
        l1_prefetcher: optional L1-level prefetcher for the multi-level
            experiments (Fig 8d); it trains on all L1 demand accesses and
            fills into L1.
        core_id: identifying index for multi-core runs.
    """

    def __init__(
        self,
        config: SystemConfig,
        prefetcher: Prefetcher | None = None,
        dram: Dram | None = None,
        llc: Cache | None = None,
        l1_prefetcher: Prefetcher | None = None,
        core_id: int = 0,
    ) -> None:
        self.config = config
        self.core_id = core_id
        self.prefetcher = prefetcher if prefetcher is not None else NoPrefetcher()
        self.l1_prefetcher = l1_prefetcher
        # The no-prefetching baseline never issues anything, so its
        # training path (context construction included) is skipped
        # entirely — observable behaviour is identical.
        self._train_l2 = type(self.prefetcher) is not NoPrefetcher
        self.l1 = Cache(f"L1[{core_id}]", config.l1)
        self.l2 = Cache(f"L2[{core_id}]", config.l2)
        self.llc = llc if llc is not None else Cache("LLC", config.llc)
        self.dram = dram if dram is not None else Dram(config.dram)
        self.mshr = MshrFile(config.llc.mshrs)
        # Hot-path hoists: bound methods and latencies resolved once so
        # the per-record demand path does no repeated attribute walks.
        self._l1_lookup = self.l1.lookup
        self._l1_fill = self.l1.fill
        self._l2_lookup = self.l2.lookup
        self._l2_fill = self.l2.fill
        self._llc_lookup = self.llc.lookup
        self._llc_fill = self.llc.fill
        self._l1_latency = self.l1.latency
        self._l2_latency = self.l2.latency
        self._llc_latency = self.llc.latency
        # Min-heap of (completion_cycle, line) pending prefetch fills.
        self._pending_fills: list[tuple[int, int]] = []
        self._inflight_prefetch: dict[int, int] = {}
        self._merged_inflight: set[int] = set()
        self.prefetches_issued = 0
        self.prefetches_dropped = 0
        self.late_prefetch_merges = 0

    # -- prefetch fill processing ---------------------------------------------

    def process_fills(self, now: int) -> None:
        """Apply all prefetch fills whose data has arrived by cycle *now*.

        The LLC and L2 fills are inlined from :meth:`Cache.fill` (keep
        the two in sync): every fill event runs two of them with ``pc=0``
        and the ``as_prefetch`` flavor, and on prefetch-heavy traces the
        method's call overhead and flavor branches were a measurable
        slice of the replay profile.  Observable behaviour — stats,
        replacement metadata, tick order, the useless-eviction callback
        firing between the two fills — is identical.
        """
        pending = self._pending_fills
        if not pending or pending[0][0] > now:
            return
        heappop = heapq.heappop
        inflight_pop = self._inflight_prefetch.pop
        merged = self._merged_inflight
        prefetcher = self.prefetcher
        on_useless = prefetcher.on_prefetch_useless
        on_fill = prefetcher.on_prefetch_fill
        llc = self.llc
        l2 = self.l2
        llc_stats = llc.stats
        l2_stats = l2.stats
        llc_sets, llc_meta, llc_tags, llc_free = (
            llc._sets, llc._meta, llc._tags, llc._free,
        )
        l2_sets, l2_meta, l2_tags, l2_free = (
            l2._sets, l2._meta, l2._tags, l2._free,
        )
        llc_nsets = llc.num_sets
        l2_nsets = l2.num_sets
        llc_is_lru = llc._policy_is_lru
        l2_is_lru = l2._policy_is_lru
        llc_policy = llc._policy
        l2_policy = l2._policy
        while pending and pending[0][0] <= now:
            completion, line = heappop(pending)
            inflight_pop(line, None)
            # A line a demand already merged into fills as demand-owned.
            as_prefetch = line not in merged
            merged.discard(line)

            # LLC fill.  Only a full-set eviction of an unused prefetched
            # line earns the useless callback (fired after the fill's
            # bookkeeping completes, as the method-call path did).
            llc._tick += 1
            set_idx = line % llc_nsets
            tags = llc_tags[set_idx]
            way = tags.get(line)
            useless_tag = -1
            if way is not None:
                if not as_prefetch:
                    entry = llc_sets[set_idx][way]
                    entry.prefetched = entry.prefetched and entry.used
            else:
                meta = llc_meta[set_idx]
                free = llc_free[set_idx]
                if free:
                    way = heappop(free)
                    entry = llc_sets[set_idx][way]
                else:
                    way = (
                        meta.index(min(meta)) if llc_is_lru
                        else llc_policy.victim(meta)
                    )
                    entry = llc_sets[set_idx][way]
                    llc_stats.evictions += 1
                    if entry.prefetched and not entry.used:
                        llc_stats.useless_evictions += 1
                        useless_tag = entry.tag
                    if not llc_is_lru:
                        llc_policy.on_evict(meta, way, entry.used)
                    del tags[entry.tag]
                tags[line] = way
                entry.tag = line
                entry.valid = True
                entry.prefetched = as_prefetch
                entry.used = not as_prefetch
                entry.fill_cycle = completion
                if llc_is_lru:
                    meta[way] = llc._tick
                else:
                    llc_policy.on_fill(meta, way, 0, as_prefetch, llc._tick)
                llc_stats.fills += 1
                if as_prefetch:
                    llc_stats.prefetch_fills += 1
            if useless_tag >= 0:
                on_useless(useless_tag, completion)

            # L2 fill (same shape; the caller discards the eviction).
            l2._tick += 1
            set_idx = line % l2_nsets
            tags = l2_tags[set_idx]
            way = tags.get(line)
            if way is not None:
                if not as_prefetch:
                    entry = l2_sets[set_idx][way]
                    entry.prefetched = entry.prefetched and entry.used
            else:
                meta = l2_meta[set_idx]
                free = l2_free[set_idx]
                if free:
                    way = heappop(free)
                    entry = l2_sets[set_idx][way]
                else:
                    way = (
                        meta.index(min(meta)) if l2_is_lru
                        else l2_policy.victim(meta)
                    )
                    entry = l2_sets[set_idx][way]
                    l2_stats.evictions += 1
                    if entry.prefetched and not entry.used:
                        l2_stats.useless_evictions += 1
                    if not l2_is_lru:
                        l2_policy.on_evict(meta, way, entry.used)
                    del tags[entry.tag]
                tags[line] = way
                entry.tag = line
                entry.valid = True
                entry.prefetched = as_prefetch
                entry.used = not as_prefetch
                entry.fill_cycle = completion
                if l2_is_lru:
                    meta[way] = l2._tick
                else:
                    l2_policy.on_fill(meta, way, 0, as_prefetch, l2._tick)
                l2_stats.fills += 1
                if as_prefetch:
                    l2_stats.prefetch_fills += 1

            on_fill(line, completion)

    # -- demand path ------------------------------------------------------------

    def demand_access(self, record: TraceRecord, now: int) -> int:
        """Resolve one demand access; returns its completion cycle.

        Also trains the prefetcher(s) and issues any resulting prefetch
        requests at cycle *now*.
        """
        # Inline the empty-queue fast paths of process_fills/reclaim:
        # most records have nothing due, and the call alone costs more
        # than these peeks (sibling-class internals, same package).
        pending = self._pending_fills
        if pending and pending[0][0] <= now:
            self.process_fills(now)
        mshr_heap = self.mshr._by_completion
        if mshr_heap and mshr_heap[0][0] <= now:
            self.mshr.reclaim(now)
        pc, line = record.pc, record.line

        if self.l1_prefetcher is not None:
            self._train_l1_prefetcher(record, now)

        l1_result = self._l1_lookup(line, pc, record.is_load, False)
        if l1_result.hit:
            return now + self._l1_latency

        # L1 miss: this is the prefetcher's training event.
        if self._train_l2:
            self._train_l2_prefetcher(record, now)

        l2_result = self._l2_lookup(line, pc, record.is_load, False)
        if l2_result.hit:
            if l2_result.first_use_of_prefetch:
                self.prefetcher.on_demand_hit_prefetched(line, now)
            self._l1_fill(line, pc, False, now)
            return now + self._l2_latency

        # An in-flight prefetch covering this line counts as a (late)
        # covered miss: the load does not cause its own DRAM read — it
        # merges and waits only the remaining prefetch latency.
        inflight = self._inflight_prefetch.get(line)
        if inflight is not None:
            self.late_prefetch_merges += 1
            self._merged_inflight.add(line)
            stats = self.llc.stats
            stats.demand_accesses += 1
            stats.demand_hits += 1
            stats.useful_prefetches += 1
            self.prefetcher.on_demand_hit_prefetched(line, now)
            completion = max(inflight, now + self._llc_latency)
            self._l1_fill(line, pc, False, completion)
            return completion

        llc_result = self._llc_lookup(line, pc, record.is_load, False)
        if llc_result.hit:
            if llc_result.first_use_of_prefetch:
                self.prefetcher.on_demand_hit_prefetched(line, now)
            self._l2_fill(line, pc, False, now)
            self._l1_fill(line, pc, False, now)
            return now + self._llc_latency

        entry = self.mshr.outstanding(line)
        if entry is not None:
            completion = max(entry.completion, now + self._llc_latency)
            return completion

        if self.mshr.is_full():
            # Structural stall: wait for the earliest outstanding miss.
            self.mshr.stalls += 1
            wait_until = self.mshr.earliest_completion()
            self.mshr.reclaim(wait_until)
            now = max(now, wait_until)

        completion = self.dram.access(line, now + self._llc_latency, is_prefetch=False)
        self.mshr.allocate(line, completion, is_prefetch=False)
        self._llc_fill(line, pc, False, completion)
        self._l2_fill(line, pc, False, completion)
        self._l1_fill(line, pc, False, completion)
        return completion

    # -- prefetcher plumbing ------------------------------------------------------

    def _make_context(self, record: TraceRecord, now: int) -> DemandContext:
        util = self.dram.utilization(now)
        return DemandContext(
            pc=record.pc,
            line=record.line,
            cycle=now,
            is_load=record.is_load,
            bandwidth_utilization=util,
            bandwidth_high=util >= self.config.high_bw_threshold,
        )

    def _train_l2_prefetcher(self, record: TraceRecord, now: int) -> None:
        ctx = self._make_context(record, now)
        candidates = self.prefetcher.train(ctx)
        if candidates:
            self._issue_prefetches(candidates, record.line, now)

    def _train_l1_prefetcher(self, record: TraceRecord, now: int) -> None:
        assert self.l1_prefetcher is not None
        ctx = self._make_context(record, now)
        for line in self.l1_prefetcher.train(ctx)[: self.config.max_prefetch_degree]:
            if line < 0 or self.l1.probe(line):
                continue
            completion = self._fetch_for_prefetch(line, now)
            if completion is None:
                continue
            # L1 prefetches fill the whole stack immediately on completion;
            # for simplicity they use the same pending-fill path plus an
            # eager L1 fill (timeliness at L1 is second-order here).
            self.l1.fill(line, record.pc, is_prefetch=True, cycle=completion)

    def _issue_prefetches(self, candidates: list[int], trigger_line: int, now: int) -> None:
        issued = 0
        max_degree = self.config.max_prefetch_degree
        if len(candidates) > 1:  # C-level order-preserving dedup
            candidates = list(dict.fromkeys(candidates))
        for line in candidates:
            if issued >= max_degree:
                break
            if line < 0:
                continue
            # Out-of-page prefetches are dropped by the hardware (every
            # post-L1 prefetcher works within a physical page); prefetchers
            # that want credit/penalty for them handle it internally.
            if not same_page(line, trigger_line):
                continue
            if self.l2.probe(line) or self.llc.probe(line):
                continue
            if line in self._inflight_prefetch:
                continue
            completion = self._fetch_for_prefetch(line, now)
            if completion is None:
                self.prefetches_dropped += 1
                self.prefetcher.on_prefetch_dropped(line, now)
                continue
            issued += 1
            self.prefetches_issued += 1

    def _fetch_for_prefetch(self, line: int, now: int) -> int | None:
        """Send a prefetch to LLC/DRAM; returns completion or None if dropped.

        MSHRs were already reclaimed at *now* by :meth:`demand_access`
        (prefetch issue happens within the same cycle), so no re-reclaim
        is needed here.
        """
        llc_result = self._llc_lookup(line, 0, False, True)
        if llc_result.hit:
            # LLC hit: fill into L2 quickly without DRAM traffic.
            completion = now + self._llc_latency
            heapq.heappush(self._pending_fills, (completion, line))
            self._inflight_prefetch[line] = completion
            return completion
        if self.mshr.outstanding(line) is not None:
            return None
        if self.mshr.is_full():
            return None  # shed prefetch pressure, as hardware does
        completion = self.dram.access(line, now + self._llc_latency, is_prefetch=True)
        self.mshr.allocate(line, completion, is_prefetch=True)
        heapq.heappush(self._pending_fills, (completion, line))
        self._inflight_prefetch[line] = completion
        return completion

    # -- end of run ------------------------------------------------------------

    def flush_pending(self) -> None:
        """Drain all pending prefetch fills (end-of-simulation tidy-up)."""
        if self._pending_fills:
            self.process_fills(max(c for c, _ in self._pending_fills))
