"""ctypes bridge between the engine and the compiled replay kernel.

The native backend is stateless per span: :func:`replay_span` copies the
entire simulation state (caches, MSHR, DRAM, core, and — when training —
the full Pythia agent) into flat NumPy buffers, hands them to
``repro_replay_span`` in ``kernel.c``, and copies the result back into
the Python objects.  The C kernel executes the exact operation sequence
of :func:`repro.sim.batch.replay_span`, so the round trip is
bit-identical: a span replayed natively leaves every counter, cache
line, Q-value, and RNG word exactly where the batched (or scalar)
backend would have left it, and checkpoints taken on either side of a
native span restore interchangeably.

The ~10-15 ms import/export cost is amortized over the span, so short
spans (telemetry windows, control chunks near boundaries) are delegated
to the batched backend instead — same results, better constant factor.

``ctypes`` usage is confined to this package (``repro.sim._native``);
the ``native`` lint rule enforces that boundary.
"""

from __future__ import annotations

import ctypes
import random
from collections import deque

import numpy as _np

from repro.core.eq import EqEntry, EvaluationQueue
from repro.core.features import FeatureExtractor, _PageHistory
from repro.core.pythia import Pythia
from repro.core.qvstore import NumpyQVStore
from repro.prefetchers.base import NoPrefetcher
from repro.sim import batch
from repro.sim._native import build
from repro.sim.mshr import MshrEntry
from repro.sim.replacement import LruPolicy, ShipMeta, ShipPolicy
from repro.types import LINES_PER_PAGE, PAGE_SHIFT_LINES

#: Spans shorter than this are delegated to the batched backend: the
#: state round trip costs more than the interpreter saves.  Tests pin
#: bit-identity with this set to 0 so every span exercises the kernel.
MIN_NATIVE_SPAN = 2048

_I64 = ctypes.c_int64
_DBL = ctypes.c_double
_PTR = ctypes.c_void_p

_SHIP_SHCT_SIZE = 1024
_PT_HIST = 4  # _PageHistory deque maxlen
_LAST_PCS = 3  # FeatureExtractor._last_pcs maxlen


class _Args(ctypes.Structure):
    """Mirror of ``ReplayArgs`` in kernel.c — keep field order in sync.

    Every member is 8 bytes on LP64, so the two layouts agree with no
    padding; ``repro_abi_sizeof`` double-checks at load time.
    """

    _fields_ = [
        # trace columns
        ("col_pc", _PTR), ("col_line", _PTR), ("col_load", _PTR),
        ("col_gap", _PTR), ("col_page", _PTR), ("col_offset", _PTR),
        # caches
        ("cache_tag", _PTR * 3), ("cache_flags", _PTR * 3),
        ("cache_fill_cycle", _PTR * 3), ("cache_meta_a", _PTR * 3),
        ("cache_meta_b", _PTR * 3), ("cache_meta_c", _PTR * 3),
        ("cache_stats", _PTR * 3), ("cache_shct", _PTR * 3),
        # MSHR
        ("mshr_line", _PTR), ("mshr_comp", _PTR), ("mshr_ispf", _PTR),
        ("mshrh_comp", _PTR), ("mshrh_line", _PTR),
        # pending fills / inflight / merged
        ("pend_comp", _PTR), ("pend_line", _PTR),
        ("infl_line", _PTR), ("infl_comp", _PTR),
        ("merged_line", _PTR),
        # DRAM
        ("ev_ts", _PTR), ("ev_busy", _PTR),
        ("ch_bus_free", _PTR), ("ch_demand_bus_free", _PTR),
        ("ch_bank_free", _PTR), ("ch_open_row", _PTR),
        ("ch_row_hits", _PTR), ("ch_row_misses", _PTR),
        ("bucket_cycles", _PTR),
        # core
        ("out_issued", _PTR), ("out_comp", _PTR),
        # Pythia
        ("qcells", _PTR), ("act_deltas", _PTR), ("act_counts", _PTR),
        ("rw", _PTR), ("rw_assigned", _PTR),
        ("eq_state", _PTR), ("eq_action", _PTR), ("eq_line", _PTR),
        ("eq_reward", _PTR), ("eq_flags", _PTR),
        ("pt_page", _PTR), ("pt_lastoff", _PTR), ("pt_deltas", _PTR),
        ("pt_offsets", _PTR), ("pt_dlen", _PTR), ("pt_olen", _PTR),
        ("last_pcs", _PTR), ("mt", _PTR), ("plane_shifts", _PTR),
        # int64 scalars
        ("start", _I64), ("stop", _I64), ("processed", _I64),
        ("width", _I64), ("rob_size", _I64), ("instructions", _I64),
        ("out_head", _I64), ("out_count", _I64), ("out_cap", _I64),
        ("nsets", _I64 * 3), ("ways", _I64 * 3), ("lat", _I64 * 3),
        ("tick", _I64 * 3), ("policy", _I64 * 3),
        ("mshr_count", _I64), ("mshr_cap", _I64),
        ("mshrh_count", _I64), ("mshrh_cap", _I64),
        ("pend_count", _I64), ("pend_cap", _I64),
        ("infl_count", _I64), ("infl_cap", _I64),
        ("merged_count", _I64), ("merged_cap", _I64),
        ("ev_head", _I64), ("ev_count", _I64), ("ev_cap", _I64),
        ("channels", _I64), ("banks", _I64), ("row_size_lines", _I64),
        ("row_hit_lat", _I64), ("row_miss_lat", _I64),
        ("util_window", _I64),
        ("dram_total", _I64), ("dram_demand", _I64), ("dram_prefetch", _I64),
        ("last_bucket_cycle", _I64),
        ("pf_issued", _I64), ("pf_dropped", _I64), ("late_merges", _I64),
        ("mshr_allocations", _I64), ("mshr_stalls", _I64),
        ("max_degree", _I64), ("page_shift", _I64), ("lines_per_page", _I64),
        ("train", _I64),
        ("nact", _I64), ("nfeat", _I64), ("nplanes", _I64),
        ("plane_entries", _I64),
        ("eq_cap", _I64), ("eq_head", _I64), ("eq_count", _I64),
        ("ptab_cap", _I64), ("ptab_count", _I64),
        ("lastpc_count", _I64),
        ("mt_index", _I64),
        ("agent_updates", _I64), ("agent_explorations", _I64),
        # doubles
        ("cycle", _DBL), ("stall_cycles", _DBL),
        ("cycles_per_transfer", _DBL),
        ("window_busy", _DBL), ("busy_cycles", _DBL),
        ("hi_thresh", _DBL), ("epsilon", _DBL), ("alpha", _DBL),
        ("gamma", _DBL),
    ]


def abi_size() -> int:
    """Size the C side must report for the argument struct."""
    return ctypes.sizeof(_Args)


# -- kernel handle ----------------------------------------------------------

_lib_state: list = [False, None]  # [checked, CDLL | None]


def get_lib():
    """The loaded kernel, or ``None`` (no compiler / build / ABI match)."""
    if not _lib_state[0]:
        # Safe: process-local latch — worst case under a racing writer
        # is a redundant build()/dlopen of the same cached object.
        _lib_state[0] = True  # repro: ignore[concurrency]
        lib = build.load()
        if lib is not None and lib.repro_abi_sizeof() != abi_size():
            build.log_fallback_once("kernel ABI size mismatch")
            lib = None
        _lib_state[1] = lib  # repro: ignore[concurrency]
    return _lib_state[1]


def reset() -> None:
    """Forget the cached kernel handle (test hook)."""
    _lib_state[0] = False
    _lib_state[1] = None


# -- configuration support check --------------------------------------------


def supports(hierarchy) -> bool:
    """True when *hierarchy* uses only constructs the kernel mirrors.

    Anything else — L1 prefetchers, exotic replacement policies or
    prefetcher subclasses, non-basic Pythia feature vectors — falls
    back to the batched backend per cell, exactly as batched falls back
    to scalar.
    """
    if hierarchy.l1_prefetcher is not None:
        return False
    for cache in (hierarchy.l1, hierarchy.l2, hierarchy.llc):
        if type(cache._policy) not in (LruPolicy, ShipPolicy):
            return False
    if hierarchy.dram.config.channels < 1:
        return False
    prefetcher = hierarchy.prefetcher
    if type(prefetcher) is NoPrefetcher:
        return True
    if type(prefetcher) is not Pythia:
        return False
    agent = prefetcher.agent
    return (
        prefetcher._basic_features
        and len(prefetcher.config.features) == 2
        and type(prefetcher.extractor) is FeatureExtractor
        and prefetcher.extractor.page_table_size >= 1
        and type(agent.qvstore) is NumpyQVStore
        and type(agent.eq) is EvaluationQueue
        and type(agent._rng) is random.Random
    )


def usable(hierarchy) -> bool:
    """True when the kernel is loaded and *hierarchy* is supported."""
    return (
        batch.available() and get_lib() is not None and supports(hierarchy)
    )


# -- small helpers ----------------------------------------------------------


def _pow2_at_least(n: int) -> int:
    size = 8
    while size < n:
        size *= 2
    return size


_POLICY_FLAGS = {LruPolicy: 0, ShipPolicy: 1}


def _import_cache(a, keep, idx, cache):
    """Copy one cache level into flat arrays and point the struct at them."""
    nsets, ways = cache.num_sets, cache.ways
    n = nsets * ways
    policy = _POLICY_FLAGS[type(cache._policy)]
    tag = _np.empty(n, _np.int64)
    flags = _np.zeros(n, _np.uint8)
    fillc = _np.empty(n, _np.int64)
    meta_a = _np.zeros(n, _np.int64)
    meta_b = _np.zeros(n, _np.int64)
    meta_c = _np.zeros(n, _np.uint8)
    i = 0
    for s in range(nsets):
        line_set = cache._sets[s]
        meta_set = cache._meta[s]
        for w in range(ways):
            entry = line_set[w]
            tag[i] = entry.tag
            flags[i] = (
                (1 if entry.valid else 0)
                | (2 if entry.prefetched else 0)
                | (4 if entry.used else 0)
            )
            fillc[i] = entry.fill_cycle
            meta = meta_set[w]
            if policy == 0:
                meta_a[i] = meta
            else:
                meta_a[i] = meta.rrpv
                meta_b[i] = meta.sig
                meta_c[i] = 1 if meta.reused else 0
            i += 1
    stats_obj = cache.stats
    stats = _np.array(
        [
            stats_obj.demand_accesses,
            stats_obj.demand_hits,
            stats_obj.demand_misses,
            stats_obj.load_misses,
            stats_obj.prefetch_accesses,
            stats_obj.prefetch_hits,
            stats_obj.prefetch_misses,
            stats_obj.fills,
            stats_obj.prefetch_fills,
            stats_obj.useful_prefetches,
            stats_obj.useless_evictions,
            stats_obj.evictions,
        ],
        _np.int64,
    )
    if policy == 1:
        shct = _np.array(cache._policy._shct, _np.int64)
    else:
        shct = _np.zeros(_SHIP_SHCT_SIZE, _np.int64)
    keep += [tag, flags, fillc, meta_a, meta_b, meta_c, stats, shct]
    a.cache_tag[idx] = tag.ctypes.data
    a.cache_flags[idx] = flags.ctypes.data
    a.cache_fill_cycle[idx] = fillc.ctypes.data
    a.cache_meta_a[idx] = meta_a.ctypes.data
    a.cache_meta_b[idx] = meta_b.ctypes.data
    a.cache_meta_c[idx] = meta_c.ctypes.data
    a.cache_stats[idx] = stats.ctypes.data
    a.cache_shct[idx] = shct.ctypes.data
    a.nsets[idx] = nsets
    a.ways[idx] = ways
    a.lat[idx] = cache.latency
    a.tick[idx] = cache._tick
    a.policy[idx] = policy
    return tag, flags, fillc, meta_a, meta_b, meta_c, stats, shct


def _export_cache(a, idx, cache, bufs):
    """Write one cache level's flat arrays back into the Python objects."""
    tag, flags, fillc, meta_a, meta_b, meta_c, stats, shct = bufs
    nsets, ways = cache.num_sets, cache.ways
    policy = a.policy[idx]
    tag_l = tag.tolist()
    flags_l = flags.tolist()
    fillc_l = fillc.tolist()
    meta_a_l = meta_a.tolist()
    meta_b_l = meta_b.tolist()
    meta_c_l = meta_c.tolist()
    i = 0
    for s in range(nsets):
        line_set = cache._sets[s]
        meta_set = cache._meta[s]
        tags_s: dict = {}
        free_s: list = []
        for w in range(ways):
            entry = line_set[w]
            fl = flags_l[i]
            entry.tag = tag_l[i]
            entry.valid = bool(fl & 1)
            entry.prefetched = bool(fl & 2)
            entry.used = bool(fl & 4)
            entry.fill_cycle = fillc_l[i]
            if policy == 0:
                meta_set[w] = meta_a_l[i]
            else:
                meta_set[w] = ShipMeta(
                    rrpv=meta_a_l[i], sig=meta_b_l[i], reused=bool(meta_c_l[i])
                )
            if fl & 1:
                tags_s[entry.tag] = w
            else:
                # Ascending way order == a valid min-heap, and pops come
                # out in the same order the scalar heap would produce.
                free_s.append(w)
            i += 1
        cache._tags[s] = tags_s
        cache._free[s] = free_s
    stats_l = stats.tolist()
    stats_obj = cache.stats
    (
        stats_obj.demand_accesses,
        stats_obj.demand_hits,
        stats_obj.demand_misses,
        stats_obj.load_misses,
        stats_obj.prefetch_accesses,
        stats_obj.prefetch_hits,
        stats_obj.prefetch_misses,
        stats_obj.fills,
        stats_obj.prefetch_fills,
        stats_obj.useful_prefetches,
        stats_obj.useless_evictions,
        stats_obj.evictions,
    ) = stats_l
    cache._tick = a.tick[idx]
    if policy == 1:
        cache._policy._shct[:] = shct.tolist()


# -- the backend entry point ------------------------------------------------


def replay_span(hierarchy, core, cols, start, stop, stamp=None) -> None:
    """Replay records ``[start, stop)`` through the compiled kernel.

    Drop-in for :func:`repro.sim.batch.replay_span` (which it delegates
    to for short spans, or if the kernel turns out to be unavailable).
    The *stamp* rides through to the batched backend's decoded-column
    memo when delegating.

    Raises:
        RuntimeError: the kernel reported an internal error.  The
            Python-side state is untouched in that case (the kernel
            only writes back on success), so the engine's pre-span
            state remains consistent.
    """
    lib = get_lib()
    if lib is None or stop - start < MIN_NATIVE_SPAN:
        batch.replay_span(hierarchy, core, cols, start, stop, stamp=stamp)
        return

    keep: list = []  # buffers that must outlive the C call
    a = _Args()
    a.start = start
    a.stop = stop

    # -- trace columns ------------------------------------------------------
    load_u8 = cols.is_load.view(_np.uint8)
    keep.append(load_u8)
    a.col_pc = cols.pc.ctypes.data
    a.col_line = cols.line.ctypes.data
    a.col_load = load_u8.ctypes.data
    a.col_gap = cols.gap.ctypes.data
    a.col_page = cols.page.ctypes.data
    a.col_offset = cols.offset.ctypes.data

    # -- caches -------------------------------------------------------------
    cache_bufs = [
        _import_cache(a, keep, idx, cache)
        for idx, cache in enumerate((hierarchy.l1, hierarchy.l2, hierarchy.llc))
    ]

    # -- MSHR ---------------------------------------------------------------
    mshr = hierarchy.mshr
    mshr_cap = mshr.capacity
    mshr_line = _np.zeros(mshr_cap, _np.int64)
    mshr_comp = _np.zeros(mshr_cap, _np.int64)
    mshr_ispf = _np.zeros(mshr_cap, _np.uint8)
    for i, (line, entry) in enumerate(mshr._entries.items()):
        mshr_line[i] = line
        mshr_comp[i] = entry.completion
        mshr_ispf[i] = 1 if entry.is_prefetch else 0
    a.mshr_count = len(mshr._entries)
    a.mshr_cap = mshr_cap
    heap = mshr._by_completion
    a.mshrh_count = len(heap)
    a.mshrh_cap = len(heap) + 4 * hierarchy.config.max_prefetch_degree + 256
    mshrh_comp = _np.zeros(a.mshrh_cap, _np.int64)
    mshrh_line = _np.zeros(a.mshrh_cap, _np.int64)
    for i, (comp, line) in enumerate(heap):
        mshrh_comp[i] = comp
        mshrh_line[i] = line
    a.mshr_allocations = mshr.allocations
    a.mshr_stalls = mshr.stalls

    # -- pending fills / inflight / merged ----------------------------------
    pending = hierarchy._pending_fills
    a.pend_count = len(pending)
    a.pend_cap = len(pending) + 4 * hierarchy.config.max_prefetch_degree + 256
    pend_comp = _np.zeros(a.pend_cap, _np.int64)
    pend_line = _np.zeros(a.pend_cap, _np.int64)
    for i, (comp, line) in enumerate(pending):
        pend_comp[i] = comp
        pend_line[i] = line
    inflight = hierarchy._inflight_prefetch
    a.infl_count = len(inflight)
    a.infl_cap = len(inflight) + 4 * hierarchy.config.max_prefetch_degree + 256
    infl_line = _np.zeros(a.infl_cap, _np.int64)
    infl_comp = _np.zeros(a.infl_cap, _np.int64)
    for i, (line, comp) in enumerate(inflight.items()):
        infl_line[i] = line
        infl_comp[i] = comp
    merged = hierarchy._merged_inflight
    a.merged_count = len(merged)
    a.merged_cap = len(merged) + 256
    merged_line = _np.zeros(a.merged_cap, _np.int64)
    for i, line in enumerate(merged):
        merged_line[i] = line
    keep += [
        mshr_line, mshr_comp, mshr_ispf, mshrh_comp, mshrh_line,
        pend_comp, pend_line, infl_line, infl_comp, merged_line,
    ]
    a.mshr_line = mshr_line.ctypes.data
    a.mshr_comp = mshr_comp.ctypes.data
    a.mshr_ispf = mshr_ispf.ctypes.data
    a.mshrh_comp = mshrh_comp.ctypes.data
    a.mshrh_line = mshrh_line.ctypes.data
    a.pend_comp = pend_comp.ctypes.data
    a.pend_line = pend_line.ctypes.data
    a.infl_line = infl_line.ctypes.data
    a.infl_comp = infl_comp.ctypes.data
    a.merged_line = merged_line.ctypes.data

    # -- DRAM ---------------------------------------------------------------
    dram = hierarchy.dram
    events = dram._events
    a.ev_head = 0
    a.ev_count = len(events)
    a.ev_cap = _pow2_at_least(
        len(events) + 4 * hierarchy.config.max_prefetch_degree + 256
    )
    ev_ts = _np.zeros(a.ev_cap, _np.int64)
    ev_busy = _np.zeros(a.ev_cap, _np.float64)
    for i, (ts, busy) in enumerate(events):
        ev_ts[i] = ts
        ev_busy[i] = busy
    channels = dram._channels
    nch = len(channels)
    banks = dram.config.banks_per_channel
    ch_bus_free = _np.empty(nch, _np.float64)
    ch_demand_bus_free = _np.empty(nch, _np.float64)
    ch_bank_free = _np.empty(nch * banks, _np.float64)
    ch_open_row = _np.empty(nch * banks, _np.int64)
    ch_row_hits = _np.empty(nch, _np.int64)
    ch_row_misses = _np.empty(nch, _np.int64)
    for c, ch in enumerate(channels):
        ch_bus_free[c] = ch._bus_free
        ch_demand_bus_free[c] = ch._demand_bus_free
        ch_bank_free[c * banks : (c + 1) * banks] = ch._bank_free
        ch_open_row[c * banks : (c + 1) * banks] = ch._open_row
        ch_row_hits[c] = ch.row_hits
        ch_row_misses[c] = ch.row_misses
    bucket = _np.array(dram._bucket_cycles, _np.float64)
    keep += [
        ev_ts, ev_busy, ch_bus_free, ch_demand_bus_free, ch_bank_free,
        ch_open_row, ch_row_hits, ch_row_misses, bucket,
    ]
    a.ev_ts = ev_ts.ctypes.data
    a.ev_busy = ev_busy.ctypes.data
    a.ch_bus_free = ch_bus_free.ctypes.data
    a.ch_demand_bus_free = ch_demand_bus_free.ctypes.data
    a.ch_bank_free = ch_bank_free.ctypes.data
    a.ch_open_row = ch_open_row.ctypes.data
    a.ch_row_hits = ch_row_hits.ctypes.data
    a.ch_row_misses = ch_row_misses.ctypes.data
    a.bucket_cycles = bucket.ctypes.data
    a.channels = nch
    a.banks = banks
    a.row_size_lines = dram.config.row_size_lines
    a.row_hit_lat = dram.config.row_hit_latency
    a.row_miss_lat = dram.config.row_miss_latency
    a.util_window = dram._window
    a.dram_total = dram.total_requests
    a.dram_demand = dram.demand_requests
    a.dram_prefetch = dram.prefetch_requests
    a.last_bucket_cycle = dram._last_bucket_cycle
    a.cycles_per_transfer = dram.config.cycles_per_transfer
    a.window_busy = dram._window_busy
    a.busy_cycles = dram.busy_cycles

    # -- core ---------------------------------------------------------------
    outstanding = core._outstanding
    a.width = core._width
    a.rob_size = core._rob_size
    a.instructions = core.instructions
    a.cycle = core.cycle
    a.stall_cycles = core.stall_cycles
    a.out_head = 0
    a.out_count = len(outstanding)
    a.out_cap = _pow2_at_least(core._rob_size + 8)
    out_issued = _np.zeros(a.out_cap, _np.int64)
    out_comp = _np.zeros(a.out_cap, _np.int64)
    for i, (issued, comp) in enumerate(outstanding):
        out_issued[i] = issued
        out_comp[i] = comp
    keep += [out_issued, out_comp]
    a.out_issued = out_issued.ctypes.data
    a.out_comp = out_comp.ctypes.data

    # -- hierarchy scalars --------------------------------------------------
    a.pf_issued = hierarchy.prefetches_issued
    a.pf_dropped = hierarchy.prefetches_dropped
    a.late_merges = hierarchy.late_prefetch_merges
    a.max_degree = hierarchy.config.max_prefetch_degree
    a.hi_thresh = hierarchy.config.high_bw_threshold
    a.page_shift = PAGE_SHIFT_LINES
    a.lines_per_page = LINES_PER_PAGE

    # -- Pythia -------------------------------------------------------------
    prefetcher = hierarchy.prefetcher
    train = hierarchy._train_l2
    a.train = 1 if train else 0
    agent_bufs = None
    rng_gauss = None
    if train:
        config = prefetcher.config
        agent = prefetcher.agent
        store = agent.qvstore
        extractor = prefetcher.extractor
        nfeat = len(config.features)
        qcells = store.export_table()
        act_deltas = _np.array(config.actions, _np.int64)
        act_counts = _np.array(prefetcher.action_counts, _np.int64)
        rewards = config.rewards
        rw = _np.array(
            [
                rewards.accurate_timely,
                rewards.accurate_late,
                rewards.coverage_loss,
                rewards.inaccurate_high_bw,
                rewards.inaccurate_low_bw,
                rewards.no_prefetch_high_bw,
                rewards.no_prefetch_low_bw,
            ],
            _np.float64,
        )
        assigned = prefetcher.rewards_assigned
        rw_assigned = _np.array(
            [
                assigned["accurate_timely"],
                assigned["accurate_late"],
                assigned["coverage_loss"],
                assigned["inaccurate"],
                assigned["no_prefetch"],
            ],
            _np.int64,
        )
        eq = agent.eq
        a.eq_cap = eq.capacity
        a.eq_head = 0
        a.eq_count = len(eq._fifo)
        eq_state = _np.zeros(a.eq_cap * nfeat, _np.int64)
        eq_action = _np.zeros(a.eq_cap, _np.int64)
        eq_line = _np.full(a.eq_cap, -1, _np.int64)
        eq_reward = _np.zeros(a.eq_cap, _np.float64)
        eq_flags = _np.zeros(a.eq_cap, _np.uint8)
        for i, entry in enumerate(eq._fifo):
            for f in range(nfeat):
                eq_state[i * nfeat + f] = entry.state[f]
            eq_action[i] = entry.action
            if entry.prefetch_line is not None:
                eq_line[i] = entry.prefetch_line
            fl = 0
            if entry.reward is not None:
                fl |= 1
                eq_reward[i] = entry.reward
            if entry.filled:
                fl |= 2
            eq_flags[i] = fl
        a.ptab_cap = extractor.page_table_size
        a.ptab_count = len(extractor._pages)
        pt_page = _np.zeros(a.ptab_cap, _np.int64)
        pt_lastoff = _np.zeros(a.ptab_cap, _np.int64)
        pt_deltas = _np.zeros(a.ptab_cap * _PT_HIST, _np.int64)
        pt_offsets = _np.zeros(a.ptab_cap * _PT_HIST, _np.int64)
        pt_dlen = _np.zeros(a.ptab_cap, _np.uint8)
        pt_olen = _np.zeros(a.ptab_cap, _np.uint8)
        for i, (page, hist) in enumerate(extractor._pages.items()):
            pt_page[i] = page
            pt_lastoff[i] = hist.last_offset
            for j, d in enumerate(hist.deltas):
                pt_deltas[i * _PT_HIST + j] = d
            pt_dlen[i] = len(hist.deltas)
            for j, o in enumerate(hist.offsets):
                pt_offsets[i * _PT_HIST + j] = o
            pt_olen[i] = len(hist.offsets)
        last_pcs = _np.zeros(_LAST_PCS, _np.int64)
        a.lastpc_count = len(extractor._last_pcs)
        for i, pc in enumerate(extractor._last_pcs):
            last_pcs[i] = pc
        version, words, rng_gauss = agent._rng.getstate()
        if version != 3:  # pragma: no cover - CPython always uses 3
            raise RuntimeError(f"unsupported Random state version {version}")
        mt = _np.array(words[:624], _np.uint32)
        a.mt_index = words[624]
        plane_shifts = _np.array(config.plane_shifts, _np.int64)
        a.nact = config.num_actions
        a.nfeat = nfeat
        a.nplanes = config.num_planes
        a.plane_entries = config.plane_entries
        a.agent_updates = agent.updates
        a.agent_explorations = agent.explorations
        a.epsilon = agent._epsilon
        a.alpha = config.alpha
        a.gamma = config.gamma
        agent_bufs = (
            qcells, act_counts, rw_assigned, eq_state, eq_action, eq_line,
            eq_reward, eq_flags, pt_page, pt_lastoff, pt_deltas, pt_offsets,
            pt_dlen, pt_olen, last_pcs, mt,
        )
        keep += [act_deltas, rw, plane_shifts, *agent_bufs]
        a.qcells = qcells.ctypes.data
        a.act_deltas = act_deltas.ctypes.data
        a.act_counts = act_counts.ctypes.data
        a.rw = rw.ctypes.data
        a.rw_assigned = rw_assigned.ctypes.data
        a.eq_state = eq_state.ctypes.data
        a.eq_action = eq_action.ctypes.data
        a.eq_line = eq_line.ctypes.data
        a.eq_reward = eq_reward.ctypes.data
        a.eq_flags = eq_flags.ctypes.data
        a.pt_page = pt_page.ctypes.data
        a.pt_lastoff = pt_lastoff.ctypes.data
        a.pt_deltas = pt_deltas.ctypes.data
        a.pt_offsets = pt_offsets.ctypes.data
        a.pt_dlen = pt_dlen.ctypes.data
        a.pt_olen = pt_olen.ctypes.data
        a.last_pcs = last_pcs.ctypes.data
        a.mt = mt.ctypes.data
        a.plane_shifts = plane_shifts.ctypes.data

    # -- run (growing the variable-size arrays as the kernel asks) ----------
    while True:
        rc = lib.repro_replay_span(ctypes.byref(a))
        if rc == 0:
            break
        if rc != 1:
            raise RuntimeError(
                f"native replay kernel failed (rc={rc}) at record "
                f"{a.start + a.processed}"
            )
        # Headroom exhausted: the kernel exported a consistent state at
        # a record boundary.  Grow every variable-size family (copying
        # inside NumPy, no Python-object round trip) and re-enter.
        a.start = a.start + a.processed
        degree4 = 4 * hierarchy.config.max_prefetch_degree

        def _grown(old, used, new_cap):
            new = _np.zeros(new_cap, old.dtype)
            new[:used] = old[:used]
            keep.append(new)
            return new

        a.pend_cap = max(2 * a.pend_cap, a.pend_count + degree4 + 256)
        pend_comp = _grown(pend_comp, a.pend_count, a.pend_cap)
        pend_line = _grown(pend_line, a.pend_count, a.pend_cap)
        a.pend_comp = pend_comp.ctypes.data
        a.pend_line = pend_line.ctypes.data
        a.mshrh_cap = max(2 * a.mshrh_cap, a.mshrh_count + degree4 + 256)
        mshrh_comp = _grown(mshrh_comp, a.mshrh_count, a.mshrh_cap)
        mshrh_line = _grown(mshrh_line, a.mshrh_count, a.mshrh_cap)
        a.mshrh_comp = mshrh_comp.ctypes.data
        a.mshrh_line = mshrh_line.ctypes.data
        a.infl_cap = max(2 * a.infl_cap, a.infl_count + degree4 + 256)
        infl_line = _grown(infl_line, a.infl_count, a.infl_cap)
        infl_comp = _grown(infl_comp, a.infl_count, a.infl_cap)
        a.infl_line = infl_line.ctypes.data
        a.infl_comp = infl_comp.ctypes.data
        a.merged_cap = max(2 * a.merged_cap, a.merged_count + 256)
        merged_line = _grown(merged_line, a.merged_count, a.merged_cap)
        a.merged_line = merged_line.ctypes.data
        # The event ring was linearized at export (head == 0).
        a.ev_cap = _pow2_at_least(
            max(2 * a.ev_cap, a.ev_count + degree4 + 256)
        )
        ev_ts = _grown(ev_ts, a.ev_count, a.ev_cap)
        ev_busy = _grown(ev_busy, a.ev_count, a.ev_cap)
        a.ev_ts = ev_ts.ctypes.data
        a.ev_busy = ev_busy.ctypes.data
        a.ev_head = 0

    # -- export: caches -----------------------------------------------------
    for idx, cache in enumerate((hierarchy.l1, hierarchy.l2, hierarchy.llc)):
        _export_cache(a, idx, cache, cache_bufs[idx])

    # -- export: MSHR / pending / inflight / merged -------------------------
    n = a.mshr_count
    mshr._entries.clear()
    for line, comp, ispf in zip(
        mshr_line[:n].tolist(), mshr_comp[:n].tolist(), mshr_ispf[:n].tolist()
    ):
        mshr._entries[line] = MshrEntry(line, comp, bool(ispf))
    n = a.mshrh_count
    mshr._by_completion[:] = zip(
        mshrh_comp[:n].tolist(), mshrh_line[:n].tolist()
    )
    mshr.allocations = a.mshr_allocations
    mshr.stalls = a.mshr_stalls
    n = a.pend_count
    pending[:] = zip(pend_comp[:n].tolist(), pend_line[:n].tolist())
    n = a.infl_count
    inflight.clear()
    inflight.update(zip(infl_line[:n].tolist(), infl_comp[:n].tolist()))
    merged.clear()
    merged.update(merged_line[: a.merged_count].tolist())

    # -- export: DRAM -------------------------------------------------------
    events.clear()
    n = a.ev_count
    events.extend(zip(ev_ts[:n].tolist(), ev_busy[:n].tolist()))
    for c, ch in enumerate(channels):
        ch._bus_free = ch_bus_free[c].item()
        ch._demand_bus_free = ch_demand_bus_free[c].item()
        ch._bank_free[:] = ch_bank_free[c * banks : (c + 1) * banks].tolist()
        ch._open_row[:] = ch_open_row[c * banks : (c + 1) * banks].tolist()
        ch.row_hits = ch_row_hits[c].item()
        ch.row_misses = ch_row_misses[c].item()
    dram._bucket_cycles[:] = bucket.tolist()
    dram.total_requests = a.dram_total
    dram.demand_requests = a.dram_demand
    dram.prefetch_requests = a.dram_prefetch
    dram._last_bucket_cycle = a.last_bucket_cycle
    dram._window_busy = a.window_busy
    dram.busy_cycles = a.busy_cycles

    # -- export: core -------------------------------------------------------
    core.cycle = a.cycle
    core.instructions = a.instructions
    core.stall_cycles = a.stall_cycles
    outstanding.clear()
    n = a.out_count
    outstanding.extend(zip(out_issued[:n].tolist(), out_comp[:n].tolist()))

    # -- export: hierarchy counters -----------------------------------------
    hierarchy.prefetches_issued = a.pf_issued
    hierarchy.prefetches_dropped = a.pf_dropped
    hierarchy.late_prefetch_merges = a.late_merges

    # -- export: Pythia -----------------------------------------------------
    if train:
        (
            qcells, act_counts, rw_assigned, eq_state, eq_action, eq_line,
            eq_reward, eq_flags, pt_page, pt_lastoff, pt_deltas, pt_offsets,
            pt_dlen, pt_olen, last_pcs, mt,
        ) = agent_bufs
        store.import_table(qcells)
        prefetcher.action_counts[:] = act_counts.tolist()
        ra = rw_assigned.tolist()
        assigned["accurate_timely"] = ra[0]
        assigned["accurate_late"] = ra[1]
        assigned["coverage_loss"] = ra[2]
        assigned["inaccurate"] = ra[3]
        assigned["no_prefetch"] = ra[4]
        agent.updates = a.agent_updates
        agent.explorations = a.agent_explorations
        fifo = eq._fifo
        by_line = eq._by_line
        fifo.clear()
        by_line.clear()
        n = a.eq_count
        state_l = eq_state[: n * nfeat].tolist()
        action_l = eq_action[:n].tolist()
        line_l = eq_line[:n].tolist()
        reward_l = eq_reward[:n].tolist()
        flags_l = eq_flags[:n].tolist()
        for i in range(n):
            fl = flags_l[i]
            line = line_l[i]
            entry = EqEntry(
                state=tuple(state_l[i * nfeat : (i + 1) * nfeat]),
                action=action_l[i],
                prefetch_line=line if line >= 0 else None,
                reward=reward_l[i] if fl & 1 else None,
                filled=bool(fl & 2),
            )
            fifo.append(entry)
            if entry.prefetch_line is not None:
                # Oldest-to-newest with overwrite == most recent wins,
                # the invariant insert() maintains.
                by_line[entry.prefetch_line] = entry
        pages = extractor._pages
        pages.clear()
        n = a.ptab_count
        page_l = pt_page[:n].tolist()
        lastoff_l = pt_lastoff[:n].tolist()
        dlen_l = pt_dlen[:n].tolist()
        olen_l = pt_olen[:n].tolist()
        deltas_l = pt_deltas[: n * _PT_HIST].tolist()
        offsets_l = pt_offsets[: n * _PT_HIST].tolist()
        for i in range(n):
            base = i * _PT_HIST
            pages[page_l[i]] = _PageHistory(
                last_offset=lastoff_l[i],
                deltas=deque(deltas_l[base : base + dlen_l[i]], maxlen=_PT_HIST),
                offsets=deque(
                    offsets_l[base : base + olen_l[i]], maxlen=_PT_HIST
                ),
            )
        extractor._last_pcs.clear()
        extractor._last_pcs.extend(last_pcs[: a.lastpc_count].tolist())
        agent._rng.setstate(
            (3, tuple(mt.tolist()) + (a.mt_index,), rng_gauss)
        )
