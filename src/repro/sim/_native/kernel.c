/* Native replay kernel: the batched-epoch loop compiled to C.
 *
 * This translation unit replays a record span through one core +
 * hierarchy exactly like repro.sim.batch.replay_span — same operations,
 * on the same state, in the same order — with every Python structure
 * imported into flat arrays by repro.sim._native.bridge before the call
 * and exported back after it.  Bit-identity with the Python kernels is
 * the hard invariant: every double below is computed with the exact
 * operand order of the matching Python expression (IEEE-754 doubles ==
 * Python floats when op order matches; the build passes -ffp-contract=off
 * so no fused multiply-adds perturb rounding), every int is 64-bit
 * two's complement, and the Mersenne Twister + randrange/ random()
 * implementations reproduce CPython's random.Random draw for draw.
 *
 * Mirrored sources (keep in sync; tests/test_hotpath_equivalence.py
 * pins the equivalence):
 *   repro/sim/batch.py        -- the record loop replayed here
 *   repro/sim/hierarchy.py    -- process_fills
 *   repro/sim/cache.py        -- lookup/fill bookkeeping, CacheStats order
 *   repro/sim/replacement.py  -- LruPolicy / ShipPolicy
 *   repro/sim/mshr.py         -- reclaim / allocate / earliest_completion
 *   repro/sim/dram.py         -- _Channel.service, Dram.access/utilization
 *   repro/sim/core.py         -- advance / issue_load / _enforce_rob
 *   repro/core/pythia.py      -- train_cols (Algorithm 1)
 *   repro/core/features.py    -- observe_basic_cols
 *   repro/core/qvstore.py     -- q_one / best_action / sarsa_update
 *   repro/core/eq.py          -- EvaluationQueue
 *   repro/core/tile_coding.py -- hash_index
 *
 * Heaps use CPython's exact heapq siftdown/siftup with lexicographic
 * (completion, line) compare so imported heap lists round-trip as valid
 * heaps; keys are unique, so pop order is content-determined either way.
 *
 * Entry point: repro_replay_span(ReplayArgs *).  Returns 0 when the
 * span completed, 1 when a capacity ran out (state is exported at a
 * record boundary; the bridge grows the arrays and re-enters), negative
 * on an internal invariant violation (state NOT exported; the bridge
 * raises and the engine's pre-span state stays consistent).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Field order must match bridge.py's ReplayArgs ctypes.Structure. */
typedef struct ReplayArgs {
    /* trace columns (full arrays; start/stop index into them) */
    const int64_t *col_pc;
    const int64_t *col_line;
    const uint8_t *col_load;
    const int64_t *col_gap;
    const int64_t *col_page;
    const int64_t *col_offset;
    /* caches, [0]=L1 [1]=L2 [2]=LLC; arrays are nsets*ways, row-major */
    int64_t *cache_tag[3];
    uint8_t *cache_flags[3];      /* bit0 valid, bit1 prefetched, bit2 used */
    int64_t *cache_fill_cycle[3];
    int64_t *cache_meta_a[3];     /* LRU tick or SHiP rrpv */
    int64_t *cache_meta_b[3];     /* SHiP sig */
    uint8_t *cache_meta_c[3];     /* SHiP reused */
    int64_t *cache_stats[3];      /* 12 counters, CacheStats field order */
    int64_t *cache_shct[3];       /* 1024 counters when policy==ship */
    /* MSHR: entry arrays (compact, any order) + (comp, line) heap */
    int64_t *mshr_line;
    int64_t *mshr_comp;
    uint8_t *mshr_ispf;
    int64_t *mshrh_comp;
    int64_t *mshrh_line;
    /* pending prefetch fills heap / inflight map / merged set */
    int64_t *pend_comp;
    int64_t *pend_line;
    int64_t *infl_line;
    int64_t *infl_comp;
    int64_t *merged_line;
    /* DRAM: utilization events (linearized ring) + per-channel state */
    int64_t *ev_ts;
    double *ev_busy;
    double *ch_bus_free;
    double *ch_demand_bus_free;
    double *ch_bank_free;         /* channels*banks */
    int64_t *ch_open_row;         /* channels*banks */
    int64_t *ch_row_hits;
    int64_t *ch_row_misses;
    double *bucket_cycles;        /* [4] */
    /* core: outstanding loads (linearized ring) */
    int64_t *out_issued;
    int64_t *out_comp;
    /* Pythia (NULL / 0 when train == 0) */
    double *qcells;
    int64_t *act_deltas;          /* [nact] action offset deltas */
    int64_t *act_counts;          /* [nact] */
    double *rw;                   /* [7] AT AL CL IN_HI IN_LO NP_HI NP_LO */
    int64_t *rw_assigned;         /* [5] at al cl in np */
    int64_t *eq_state;            /* [eq_cap * nfeat] */
    int64_t *eq_action;
    int64_t *eq_line;             /* -1 == no prefetch line */
    double *eq_reward;
    uint8_t *eq_flags;            /* bit0 has_reward, bit1 filled */
    int64_t *pt_page;             /* page table slots, oldest-first */
    int64_t *pt_lastoff;
    int64_t *pt_deltas;           /* [ptab_cap * 4] */
    int64_t *pt_offsets;          /* [ptab_cap * 4] */
    uint8_t *pt_dlen;
    uint8_t *pt_olen;
    int64_t *last_pcs;            /* [3] */
    uint32_t *mt;                 /* [624] Mersenne Twister words */
    int64_t *plane_shifts;        /* [nplanes] */

    /* int64 scalars */
    int64_t start, stop, processed;
    int64_t width, rob_size, instructions;
    int64_t out_head, out_count, out_cap;
    int64_t nsets[3], ways[3], lat[3], tick[3], policy[3]; /* 0=lru 1=ship */
    int64_t mshr_count, mshr_cap;
    int64_t mshrh_count, mshrh_cap;
    int64_t pend_count, pend_cap;
    int64_t infl_count, infl_cap;
    int64_t merged_count, merged_cap;
    int64_t ev_head, ev_count, ev_cap;
    int64_t channels, banks, row_size_lines, row_hit_lat, row_miss_lat;
    int64_t util_window;
    int64_t dram_total, dram_demand, dram_prefetch;
    int64_t last_bucket_cycle;
    int64_t pf_issued, pf_dropped, late_merges;
    int64_t mshr_allocations, mshr_stalls;
    int64_t max_degree, page_shift, lines_per_page;
    int64_t train;
    int64_t nact, nfeat, nplanes, plane_entries;
    int64_t eq_cap, eq_head, eq_count;
    int64_t ptab_cap, ptab_count;
    int64_t lastpc_count;
    int64_t mt_index;
    int64_t agent_updates, agent_explorations;

    /* doubles */
    double cycle, stall_cycles;
    double cycles_per_transfer;
    double window_busy, busy_cycles;
    double hi_thresh, epsilon, alpha, gamma;
} ReplayArgs;

enum { L1 = 0, L2 = 1, LLC = 2 };
enum { POLICY_LRU = 0, POLICY_SHIP = 1 };

/* CacheStats field order (repro/sim/cache.py). */
enum {
    ST_DEMAND_ACCESSES = 0,
    ST_DEMAND_HITS,
    ST_DEMAND_MISSES,
    ST_LOAD_MISSES,
    ST_PREFETCH_ACCESSES,
    ST_PREFETCH_HITS,
    ST_PREFETCH_MISSES,
    ST_FILLS,
    ST_PREFETCH_FILLS,
    ST_USEFUL_PREFETCHES,
    ST_USELESS_EVICTIONS,
    ST_EVICTIONS,
};

enum { FL_VALID = 1, FL_PREFETCHED = 2, FL_USED = 4 };
enum { EQF_HAS_REWARD = 1, EQF_FILLED = 2 };
enum { RW_AT = 0, RW_AL, RW_CL, RW_IN_HI, RW_IN_LO, RW_NP_HI, RW_NP_LO };
enum { RA_AT = 0, RA_AL, RA_CL, RA_IN, RA_NP };

enum { SHIP_RRPV_MAX = 3, SHIP_SHCT_SIZE = 1024, SHIP_SHCT_MAX = 7 };

/* Python-semantics modulo / floor division (operands may be negative). */
static inline int64_t imod(int64_t a, int64_t m) {
    int64_t r = a % m;
    return (r != 0 && ((r < 0) != (m < 0))) ? r + m : r;
}

static inline int64_t fdiv(int64_t a, int64_t m) {
    int64_t q = a / m;
    return ((a % m != 0) && ((a < 0) != (m < 0))) ? q - 1 : q;
}

/* ---------------------------------------------------------------------------
 * heapq: CPython's exact _siftdown/_siftup on parallel (comp, line)
 * arrays with lexicographic strict-< compare.
 * ------------------------------------------------------------------------- */

static inline int pair_lt(int64_t c1, int64_t l1, int64_t c2, int64_t l2) {
    return c1 < c2 || (c1 == c2 && l1 < l2);
}

static void heap_siftdown(int64_t *hc, int64_t *hl, int64_t startpos,
                          int64_t pos) {
    int64_t nc = hc[pos], nl = hl[pos];
    while (pos > startpos) {
        int64_t parent = (pos - 1) >> 1;
        if (pair_lt(nc, nl, hc[parent], hl[parent])) {
            hc[pos] = hc[parent];
            hl[pos] = hl[parent];
            pos = parent;
        } else {
            break;
        }
    }
    hc[pos] = nc;
    hl[pos] = nl;
}

static void heap_siftup(int64_t *hc, int64_t *hl, int64_t pos, int64_t endpos) {
    int64_t startpos = pos;
    int64_t nc = hc[pos], nl = hl[pos];
    int64_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        int64_t rightpos = childpos + 1;
        if (rightpos < endpos &&
            !pair_lt(hc[childpos], hl[childpos], hc[rightpos], hl[rightpos])) {
            childpos = rightpos;
        }
        hc[pos] = hc[childpos];
        hl[pos] = hl[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    hc[pos] = nc;
    hl[pos] = nl;
    heap_siftdown(hc, hl, startpos, pos);
}

static inline void heap_push(int64_t *hc, int64_t *hl, int64_t *count,
                             int64_t comp, int64_t line) {
    int64_t n = *count;
    hc[n] = comp;
    hl[n] = line;
    *count = n + 1;
    heap_siftdown(hc, hl, 0, n);
}

static inline void heap_pop(int64_t *hc, int64_t *hl, int64_t *count,
                            int64_t *comp, int64_t *line) {
    int64_t n = *count - 1;
    *comp = hc[0];
    *line = hl[0];
    *count = n;
    if (n > 0) {
        hc[0] = hc[n];
        hl[0] = hl[n];
        heap_siftup(hc, hl, 0, n);
    }
}

/* ---------------------------------------------------------------------------
 * Open-addressing int64 -> int64 map (linear probing, tombstones).
 * Keys are nonnegative (lines / pages); iteration order is never used
 * for anything behavioral, only membership and values.
 * ------------------------------------------------------------------------- */

#define MAP_EMPTY (-1)
#define MAP_TOMB (-2)

typedef struct {
    int64_t *keys;
    int64_t *vals;
    int64_t mask;  /* table size - 1, table size a power of two */
    int64_t count; /* live entries */
    int64_t fill;  /* live + tombstones */
} Map;

static inline uint64_t map_hash(int64_t key) {
    uint64_t h = (uint64_t)key * 0x9E3779B97F4A7C15ull;
    return h ^ (h >> 29);
}

static int map_init(Map *m, int64_t expected) {
    int64_t size = 16;
    while (size < expected * 2) {
        size <<= 1;
    }
    m->keys = malloc((size_t)size * sizeof(int64_t));
    m->vals = malloc((size_t)size * sizeof(int64_t));
    if (!m->keys || !m->vals) {
        free(m->keys);
        free(m->vals);
        m->keys = NULL;
        m->vals = NULL;
        return -1;
    }
    for (int64_t i = 0; i < size; i++) {
        m->keys[i] = MAP_EMPTY;
    }
    m->mask = size - 1;
    m->count = 0;
    m->fill = 0;
    return 0;
}

static void map_free(Map *m) {
    free(m->keys);
    free(m->vals);
    m->keys = NULL;
    m->vals = NULL;
}

static int map_put(Map *m, int64_t key, int64_t val);

static int map_grow(Map *m) {
    int64_t old_size = m->mask + 1;
    int64_t *old_keys = m->keys;
    int64_t *old_vals = m->vals;
    int64_t new_size = old_size;
    if (m->count * 4 >= old_size) {
        new_size = old_size * 2; /* genuinely full-ish: double */
    }
    m->keys = malloc((size_t)new_size * sizeof(int64_t));
    m->vals = malloc((size_t)new_size * sizeof(int64_t));
    if (!m->keys || !m->vals) {
        free(m->keys);
        free(m->vals);
        m->keys = old_keys;
        m->vals = old_vals;
        return -1;
    }
    for (int64_t i = 0; i < new_size; i++) {
        m->keys[i] = MAP_EMPTY;
    }
    m->mask = new_size - 1;
    m->count = 0;
    m->fill = 0;
    for (int64_t i = 0; i < old_size; i++) {
        if (old_keys[i] >= 0) {
            map_put(m, old_keys[i], old_vals[i]);
        }
    }
    free(old_keys);
    free(old_vals);
    return 0;
}

static int map_put(Map *m, int64_t key, int64_t val) {
    if ((m->fill + 1) * 3 >= (m->mask + 1) * 2) {
        if (map_grow(m) != 0) {
            return -1;
        }
    }
    int64_t idx = (int64_t)(map_hash(key) & (uint64_t)m->mask);
    int64_t tomb = -1;
    for (;;) {
        int64_t k = m->keys[idx];
        if (k == key) {
            m->vals[idx] = val;
            return 0;
        }
        if (k == MAP_EMPTY) {
            if (tomb >= 0) {
                idx = tomb;
            } else {
                m->fill++;
            }
            m->keys[idx] = key;
            m->vals[idx] = val;
            m->count++;
            return 0;
        }
        if (k == MAP_TOMB && tomb < 0) {
            tomb = idx;
        }
        idx = (idx + 1) & m->mask;
    }
}

/* Returns the value, or -1 when absent (values here are nonnegative). */
static int64_t map_get(const Map *m, int64_t key) {
    int64_t idx = (int64_t)(map_hash(key) & (uint64_t)m->mask);
    for (;;) {
        int64_t k = m->keys[idx];
        if (k == key) {
            return m->vals[idx];
        }
        if (k == MAP_EMPTY) {
            return -1;
        }
        idx = (idx + 1) & m->mask;
    }
}

static int map_has(const Map *m, int64_t key) {
    int64_t idx = (int64_t)(map_hash(key) & (uint64_t)m->mask);
    for (;;) {
        int64_t k = m->keys[idx];
        if (k == key) {
            return 1;
        }
        if (k == MAP_EMPTY) {
            return 0;
        }
        idx = (idx + 1) & m->mask;
    }
}

static void map_del(Map *m, int64_t key) {
    int64_t idx = (int64_t)(map_hash(key) & (uint64_t)m->mask);
    for (;;) {
        int64_t k = m->keys[idx];
        if (k == key) {
            m->keys[idx] = MAP_TOMB;
            m->count--;
            return;
        }
        if (k == MAP_EMPTY) {
            return;
        }
        idx = (idx + 1) & m->mask;
    }
}

/* ---------------------------------------------------------------------------
 * Mersenne Twister: CPython's random.Random draw for draw.
 * State is the 624 MT words + index exactly as random.getstate() holds
 * them, so the bridge round-trips through getstate()/setstate().
 * ------------------------------------------------------------------------- */

typedef struct {
    uint32_t *mt;
    int64_t index;
} Rng;

static uint32_t rng_u32(Rng *r) {
    if (r->index >= 624) {
        uint32_t *mt = r->mt;
        for (int i = 0; i < 624; i++) {
            uint32_t y = (mt[i] & 0x80000000u) | (mt[(i + 1) % 624] & 0x7FFFFFFFu);
            uint32_t next = mt[(i + 397) % 624] ^ (y >> 1);
            if (y & 1u) {
                next ^= 0x9908B0DFu;
            }
            mt[i] = next;
        }
        r->index = 0;
    }
    uint32_t y = r->mt[r->index++];
    y ^= y >> 11;
    y ^= (y << 7) & 0x9D2C5680u;
    y ^= (y << 15) & 0xEFC60000u;
    y ^= y >> 18;
    return y;
}

/* random.random(): genrand_res53. */
static double rng_random(Rng *r) {
    uint32_t a = rng_u32(r) >> 5;
    uint32_t b = rng_u32(r) >> 6;
    return ((double)a * 67108864.0 + (double)b) * (1.0 / 9007199254740992.0);
}

/* random.randrange(n) for 0 < n <= 2**32: _randbelow_with_getrandbits. */
static int64_t rng_randrange(Rng *r, int64_t n) {
    int k = 64 - __builtin_clzll((uint64_t)n);
    int64_t v;
    do {
        v = (int64_t)(rng_u32(r) >> (32 - k));
    } while (v >= n);
    return v;
}
/* ---------------------------------------------------------------------------
 * Kernel context: the ReplayArgs plus C-internal lookup structures
 * rebuilt at import (maps, page-table LRU links) and scratch buffers.
 * ------------------------------------------------------------------------- */

typedef struct {
    ReplayArgs *a;
    Map infl;    /* line -> completion (hierarchy._inflight_prefetch) */
    Map merged;  /* line -> 1 (hierarchy._merged_inflight) */
    Map byline;  /* prefetch line -> EQ slot (eq._by_line) */
    Map pages;   /* page -> page-table slot (extractor._pages) */
    /* page-table LRU: doubly-linked slot list, oldest at head */
    int64_t *pt_prev;
    int64_t *pt_next;
    int64_t pt_head, pt_tail;
    int64_t *evicted_state; /* [nfeat] scratch for the SARSA update */
    int64_t *bases_scratch; /* [3 * nfeat * nplanes] element bases */
    Rng rng;
    double util_capacity; /* (double)(util_window * channels) */
    int64_t util_capacity_i;
} Ctx;

/* -- cache primitives ------------------------------------------------------ */

static inline int64_t tag_find(const ReplayArgs *a, int lv, int64_t set,
                               int64_t line) {
    int64_t ways = a->ways[lv];
    const int64_t *tags = a->cache_tag[lv] + set * ways;
    const uint8_t *flags = a->cache_flags[lv] + set * ways;
    for (int64_t w = 0; w < ways; w++) {
        if ((flags[w] & FL_VALID) && tags[w] == line) {
            return w;
        }
    }
    return -1;
}

/* Lowest invalid way (the per-set free min-heap's pop), or -1 if full. */
static inline int64_t free_way(const ReplayArgs *a, int lv, int64_t set) {
    int64_t ways = a->ways[lv];
    const uint8_t *flags = a->cache_flags[lv] + set * ways;
    for (int64_t w = 0; w < ways; w++) {
        if (!(flags[w] & FL_VALID)) {
            return w;
        }
    }
    return -1;
}

/* LruPolicy.victim: meta.index(min(meta)) — first way with minimal tick. */
static inline int64_t lru_victim(const int64_t *meta_a, int64_t ways) {
    int64_t best_way = 0;
    int64_t best = meta_a[0];
    for (int64_t w = 1; w < ways; w++) {
        if (meta_a[w] < best) {
            best = meta_a[w];
            best_way = w;
        }
    }
    return best_way;
}

/* ShipPolicy.victim: first way with maximal RRPV; age all by the gap. */
static inline int64_t ship_victim(int64_t *meta_a, int64_t ways) {
    int64_t best_way = 0;
    int64_t best_rrpv = meta_a[0];
    for (int64_t w = 1; w < ways; w++) {
        if (meta_a[w] > best_rrpv) {
            best_rrpv = meta_a[w];
            best_way = w;
        }
    }
    int64_t age = SHIP_RRPV_MAX - best_rrpv;
    if (age > 0) {
        for (int64_t w = 0; w < ways; w++) {
            meta_a[w] += age;
        }
    }
    return best_way;
}

static inline int64_t ship_signature(int64_t pc) {
    return imod(pc ^ (pc >> 10), SHIP_SHCT_SIZE);
}

static inline void ship_on_fill(const ReplayArgs *a, int lv, int64_t idx,
                                int64_t pc, int is_prefetch) {
    int64_t sig = ship_signature(pc);
    int64_t counter = a->cache_shct[lv][sig];
    a->cache_meta_a[lv][idx] =
        (counter == 0 || is_prefetch) ? SHIP_RRPV_MAX : SHIP_RRPV_MAX - 1;
    a->cache_meta_b[lv][idx] = sig;
    a->cache_meta_c[lv][idx] = 0;
}

static inline void ship_on_hit(const ReplayArgs *a, int lv, int64_t idx) {
    a->cache_meta_a[lv][idx] = 0;
    if (!a->cache_meta_c[lv][idx]) {
        a->cache_meta_c[lv][idx] = 1;
        int64_t sig = a->cache_meta_b[lv][idx];
        if (a->cache_shct[lv][sig] < SHIP_SHCT_MAX) {
            a->cache_shct[lv][sig]++;
        }
    }
}

static inline void ship_on_evict(const ReplayArgs *a, int lv, int64_t idx) {
    if (!a->cache_meta_c[lv][idx]) {
        int64_t sig = a->cache_meta_b[lv][idx];
        if (a->cache_shct[lv][sig] > 0) {
            a->cache_shct[lv][sig]--;
        }
    }
}

/* Cache.fill, demand flavor (batch.py's inlined L1/L2/LLC demand fill):
 * duplicate fills never downgrade, real pc, is_prefetch=False. */
static void demand_fill(ReplayArgs *a, int lv, int64_t set, int64_t line,
                        int64_t pc, int64_t fill_cycle) {
    a->tick[lv]++;
    int64_t ways = a->ways[lv];
    int64_t base = set * ways;
    int64_t way = tag_find(a, lv, set, line);
    if (way >= 0) {
        uint8_t *fl = &a->cache_flags[lv][base + way];
        if (!((*fl & FL_PREFETCHED) && (*fl & FL_USED))) {
            *fl = (uint8_t)(*fl & ~FL_PREFETCHED);
        }
        return;
    }
    int64_t *stats = a->cache_stats[lv];
    way = free_way(a, lv, set);
    if (way < 0) {
        int is_lru = a->policy[lv] == POLICY_LRU;
        way = is_lru ? lru_victim(a->cache_meta_a[lv] + base, ways)
                     : ship_victim(a->cache_meta_a[lv] + base, ways);
        int64_t idx = base + way;
        stats[ST_EVICTIONS]++;
        uint8_t fl = a->cache_flags[lv][idx];
        if ((fl & FL_PREFETCHED) && !(fl & FL_USED)) {
            stats[ST_USELESS_EVICTIONS]++;
        }
        if (!is_lru) {
            ship_on_evict(a, lv, idx);
        }
    }
    int64_t idx = base + way;
    a->cache_tag[lv][idx] = line;
    a->cache_flags[lv][idx] = FL_VALID | FL_USED;
    a->cache_fill_cycle[lv][idx] = fill_cycle;
    if (a->policy[lv] == POLICY_LRU) {
        a->cache_meta_a[lv][idx] = a->tick[lv];
    } else {
        ship_on_fill(a, lv, idx, pc, 0);
    }
    stats[ST_FILLS]++;
}

/* Cache.fill, prefetch-fill flavor (hierarchy.process_fills): pc=0,
 * as_prefetch semantics; returns the evicted useless tag or -1. */
static int64_t fill_as(ReplayArgs *a, int lv, int64_t line, int64_t completion,
                       int as_prefetch) {
    a->tick[lv]++;
    int64_t set = imod(line, a->nsets[lv]);
    int64_t ways = a->ways[lv];
    int64_t base = set * ways;
    int64_t way = tag_find(a, lv, set, line);
    int64_t useless_tag = -1;
    if (way >= 0) {
        if (!as_prefetch) {
            uint8_t *fl = &a->cache_flags[lv][base + way];
            if (!((*fl & FL_PREFETCHED) && (*fl & FL_USED))) {
                *fl = (uint8_t)(*fl & ~FL_PREFETCHED);
            }
        }
        return useless_tag;
    }
    int64_t *stats = a->cache_stats[lv];
    way = free_way(a, lv, set);
    if (way < 0) {
        int is_lru = a->policy[lv] == POLICY_LRU;
        way = is_lru ? lru_victim(a->cache_meta_a[lv] + base, ways)
                     : ship_victim(a->cache_meta_a[lv] + base, ways);
        int64_t idx = base + way;
        stats[ST_EVICTIONS]++;
        uint8_t fl = a->cache_flags[lv][idx];
        if ((fl & FL_PREFETCHED) && !(fl & FL_USED)) {
            stats[ST_USELESS_EVICTIONS]++;
            useless_tag = a->cache_tag[lv][idx];
        }
        if (!is_lru) {
            ship_on_evict(a, lv, idx);
        }
    }
    int64_t idx = base + way;
    a->cache_tag[lv][idx] = line;
    a->cache_flags[lv][idx] =
        (uint8_t)(FL_VALID | (as_prefetch ? FL_PREFETCHED : FL_USED));
    a->cache_fill_cycle[lv][idx] = completion;
    if (a->policy[lv] == POLICY_LRU) {
        a->cache_meta_a[lv][idx] = a->tick[lv];
    } else {
        ship_on_fill(a, lv, idx, 0, as_prefetch);
    }
    stats[ST_FILLS]++;
    if (as_prefetch) {
        stats[ST_PREFETCH_FILLS]++;
    }
    return useless_tag;
}

/* -- DRAM ------------------------------------------------------------------ */

static inline int64_t ev_phys(const ReplayArgs *a, int64_t i) {
    return (a->ev_head + i) & (a->ev_cap - 1);
}

/* Dram.access (repro/sim/dram.py): _Channel.service + rolling-window
 * event recording + Fig 14 bucket charge, fused exactly as the Python. */
static int64_t dram_access(Ctx *x, int64_t line, int64_t now, int is_prefetch) {
    ReplayArgs *a = x->a;
    int64_t ch = imod(line, a->channels);
    /* _Channel.service */
    int64_t bank = imod(fdiv(line, a->row_size_lines), a->banks);
    int64_t row = fdiv(line, a->row_size_lines * a->banks);
    double *bank_free = a->ch_bank_free + ch * a->banks;
    int64_t *open_row = a->ch_open_row + ch * a->banks;
    double start = (double)now;
    if (bank_free[bank] > start) {
        start = bank_free[bank];
    }
    double access_latency, bank_occupancy;
    if (open_row[bank] == row) {
        access_latency = (double)a->row_hit_lat;
        bank_occupancy = a->cycles_per_transfer;
        a->ch_row_hits[ch]++;
    } else {
        access_latency = (double)a->row_miss_lat;
        bank_occupancy = (double)a->row_miss_lat;
        open_row[bank] = row;
        a->ch_row_misses[ch]++;
    }
    double transfer = a->cycles_per_transfer;
    double data_at_bank = start + access_latency;
    double transfer_start;
    if (is_prefetch) {
        transfer_start = data_at_bank;
        if (a->ch_bus_free[ch] > transfer_start) {
            transfer_start = a->ch_bus_free[ch];
        }
    } else {
        transfer_start = data_at_bank;
        if (a->ch_demand_bus_free[ch] > transfer_start) {
            transfer_start = a->ch_demand_bus_free[ch];
        }
        a->ch_demand_bus_free[ch] = transfer_start + transfer;
    }
    double completion = transfer_start + transfer;
    bank_free[bank] = start + bank_occupancy;
    if (completion > a->ch_bus_free[ch]) {
        a->ch_bus_free[ch] = completion;
    }
    /* Dram.access bookkeeping */
    a->dram_total++;
    if (is_prefetch) {
        a->dram_prefetch++;
    } else {
        a->dram_demand++;
    }
    a->busy_cycles += transfer;
    a->ev_ts[ev_phys(a, a->ev_count)] = now;
    a->ev_busy[ev_phys(a, a->ev_count)] = transfer;
    a->ev_count++;
    double window_busy = a->window_busy + transfer;
    int64_t cutoff = now - a->util_window;
    while (a->ev_count > 0 && a->ev_ts[a->ev_head] < cutoff) {
        window_busy -= a->ev_busy[a->ev_head];
        a->ev_head = (a->ev_head + 1) & (a->ev_cap - 1);
        a->ev_count--;
    }
    a->window_busy = window_busy;
    int64_t last = a->last_bucket_cycle;
    if (now > last) {
        double util;
        if (x->util_capacity_i > 0) {
            util = window_busy / x->util_capacity;
            if (util > 1.0) {
                util = 1.0;
            }
        } else {
            util = 0.0;
        }
        int idx;
        if (util < 0.25) {
            idx = 0;
        } else if (util < 0.5) {
            idx = 1;
        } else if (util < 0.75) {
            idx = 2;
        } else {
            idx = 3;
        }
        a->bucket_cycles[idx] += (double)(now - last);
        a->last_bucket_cycle = now;
    }
    return (int64_t)completion;
}

/* Dram.utilization: the stale-head rescan (non-mutating). */
static double dram_utilization(const Ctx *x, int64_t now) {
    const ReplayArgs *a = x->a;
    int64_t start = now - a->util_window;
    double busy = a->window_busy;
    if (a->ev_count > 0 && a->ev_ts[a->ev_head] < start) {
        for (int64_t i = 0; i < a->ev_count; i++) {
            int64_t p = ev_phys(a, i);
            if (a->ev_ts[p] >= start) {
                break;
            }
            busy -= a->ev_busy[p];
        }
    }
    if (x->util_capacity_i <= 0) {
        return 0.0;
    }
    double u = busy / x->util_capacity;
    return u > 1.0 ? 1.0 : u;
}

/* -- MSHR ------------------------------------------------------------------ */

static inline int64_t mshr_find(const ReplayArgs *a, int64_t line) {
    for (int64_t i = 0; i < a->mshr_count; i++) {
        if (a->mshr_line[i] == line) {
            return i;
        }
    }
    return -1;
}

static inline void mshr_del(ReplayArgs *a, int64_t i) {
    int64_t last = a->mshr_count - 1;
    a->mshr_line[i] = a->mshr_line[last];
    a->mshr_comp[i] = a->mshr_comp[last];
    a->mshr_ispf[i] = a->mshr_ispf[last];
    a->mshr_count = last;
}

/* MshrFile.reclaim: release entries completed by *now*. */
static void mshr_reclaim(ReplayArgs *a, int64_t now) {
    while (a->mshrh_count > 0 && a->mshrh_comp[0] <= now) {
        int64_t m_comp, m_line;
        heap_pop(a->mshrh_comp, a->mshrh_line, &a->mshrh_count, &m_comp,
                 &m_line);
        int64_t i = mshr_find(a, m_line);
        if (i >= 0 && a->mshr_comp[i] == m_comp) {
            mshr_del(a, i);
        }
    }
}

/* MshrFile.earliest_completion (lazy stale prune); -1 when empty. */
static int64_t mshr_earliest(ReplayArgs *a) {
    while (a->mshrh_count > 0) {
        int64_t comp = a->mshrh_comp[0];
        int64_t line = a->mshrh_line[0];
        int64_t i = mshr_find(a, line);
        if (i >= 0 && a->mshr_comp[i] == comp) {
            return comp;
        }
        int64_t c, l;
        heap_pop(a->mshrh_comp, a->mshrh_line, &a->mshrh_count, &c, &l);
    }
    return -1;
}

/* -- Pythia: EQ, features, tile-coded SARSA ------------------------------- */

/* tile_coding.hash_index */
static inline int64_t hash_index(int64_t value, int64_t shift,
                                 int64_t entries) {
    uint32_t v = (uint32_t)((uint64_t)(value >> shift) & 0xFFFFFFFFu);
    v ^= v >> 16;
    v *= 0x85EBCA6Bu;
    v ^= v >> 13;
    v *= 0xC2B2AE35u;
    v ^= v >> 16;
    return (int64_t)(v % (uint32_t)entries);
}

/* Element bases (row * nact) for a state, f-major p-minor row order. */
static void state_bases(const ReplayArgs *a, const int64_t *state,
                        int64_t *bases) {
    int64_t entries = a->plane_entries;
    int64_t nact = a->nact;
    for (int64_t f = 0; f < a->nfeat; f++) {
        for (int64_t p = 0; p < a->nplanes; p++) {
            int64_t row = (f * a->nplanes + p) * entries +
                          hash_index(state[f], a->plane_shifts[p], entries);
            bases[f * a->nplanes + p] = row * nact;
        }
    }
}

/* NumpyQVStore._q_one: per-vault left-to-right sum, keep-first max. */
static double q_one(const ReplayArgs *a, const int64_t *bases,
                    int64_t action) {
    double best = 0.0;
    int first = 1;
    for (int64_t f = 0; f < a->nfeat; f++) {
        const int64_t *fb = bases + f * a->nplanes;
        double q = a->qcells[fb[0] + action];
        for (int64_t p = 1; p < a->nplanes; p++) {
            q += a->qcells[fb[p] + action];
        }
        if (first || q > best) {
            best = q;
            first = 0;
        }
    }
    return best;
}

/* NumpyQVStore.best_action: keep-first argmax over strict >. */
static int64_t best_action(const ReplayArgs *a, const int64_t *bases) {
    int64_t best_a = 0;
    double best_q = q_one(a, bases, 0);
    for (int64_t act = 1; act < a->nact; act++) {
        double q = q_one(a, bases, act);
        if (q > best_q) {
            best_q = q;
            best_a = act;
        }
    }
    return best_a;
}

/* EQ physical slot of fifo position i. */
static inline int64_t eq_slot(const ReplayArgs *a, int64_t i) {
    return imod(a->eq_head + i, a->eq_cap);
}

/* EvaluationQueue.mark_filled via on_prefetch_fill. */
static void eq_mark_filled(Ctx *x, int64_t line) {
    int64_t slot = map_get(&x->byline, line);
    if (slot >= 0) {
        x->a->eq_flags[slot] |= EQF_FILLED;
    }
}

/* FeatureExtractor.observe_basic_cols: page-history advance + the two
 * basic feature encodings.  Writes (pc_delta, last4_deltas_fold). */
static int observe_basic(Ctx *x, int64_t pc, int64_t page, int64_t offset,
                         int64_t *s_out) {
    ReplayArgs *a = x->a;
    int64_t slot = map_get(&x->pages, page);
    if (slot < 0) {
        if (a->ptab_count < a->ptab_cap) {
            slot = a->ptab_count++;
        } else {
            /* Evict the LRU page first, then reuse its slot: identical
             * to the OrderedDict's insert-then-popitem(last=False)
             * because the just-inserted page is never the oldest. */
            slot = x->pt_head;
            map_del(&x->pages, a->pt_page[slot]);
            x->pt_head = x->pt_next[slot];
            if (x->pt_head >= 0) {
                x->pt_prev[x->pt_head] = -1;
            } else {
                x->pt_tail = -1;
            }
        }
        a->pt_page[slot] = page;
        a->pt_lastoff[slot] = -1;
        a->pt_dlen[slot] = 0;
        a->pt_olen[slot] = 0;
        /* link at tail (most recent) */
        x->pt_prev[slot] = x->pt_tail;
        x->pt_next[slot] = -1;
        if (x->pt_tail >= 0) {
            x->pt_next[x->pt_tail] = slot;
        } else {
            x->pt_head = slot;
        }
        x->pt_tail = slot;
        if (map_put(&x->pages, page, slot) != 0) {
            return -1;
        }
    } else if (slot != x->pt_tail) {
        /* move_to_end */
        int64_t p = x->pt_prev[slot], n = x->pt_next[slot];
        if (p >= 0) {
            x->pt_next[p] = n;
        } else {
            x->pt_head = n;
        }
        x->pt_prev[n] = p;
        x->pt_prev[slot] = x->pt_tail;
        x->pt_next[slot] = -1;
        x->pt_next[x->pt_tail] = slot;
        x->pt_tail = slot;
    }

    int64_t last = a->pt_lastoff[slot];
    int64_t delta = last < 0 ? 0 : offset - last;
    a->pt_lastoff[slot] = offset;
    int64_t *deltas = a->pt_deltas + slot * 4;
    int64_t dlen = a->pt_dlen[slot];
    if (dlen < 4) {
        deltas[dlen] = delta;
        a->pt_dlen[slot] = (uint8_t)(dlen + 1);
        dlen++;
    } else {
        deltas[0] = deltas[1];
        deltas[1] = deltas[2];
        deltas[2] = deltas[3];
        deltas[3] = delta;
    }
    int64_t *offsets = a->pt_offsets + slot * 4;
    int64_t olen = a->pt_olen[slot];
    if (olen < 4) {
        offsets[olen] = offset;
        a->pt_olen[slot] = (uint8_t)(olen + 1);
    } else {
        offsets[0] = offsets[1];
        offsets[1] = offsets[2];
        offsets[2] = offsets[3];
        offsets[3] = offset;
    }
    if (a->lastpc_count < 3) {
        a->last_pcs[a->lastpc_count++] = pc;
    } else {
        a->last_pcs[0] = a->last_pcs[1];
        a->last_pcs[1] = a->last_pcs[2];
        a->last_pcs[2] = pc;
    }

    /* encode_feature(PC_DELTA): _mix(pc, delta & 0x7F), unrolled. */
    uint32_t acc =
        (0x811C9DC5u ^ (uint32_t)((uint64_t)pc & 0xFFFFFFFFu)) * 0x01000193u;
    uint32_t pc_delta =
        (acc ^ (uint32_t)((uint64_t)(delta & 0x7F))) * 0x01000193u;
    /* encode_feature(LAST4_DELTAS): the folded delta sequence. */
    uint32_t fold = 0;
    for (int64_t i = 0; i < dlen; i++) {
        fold = (fold << 7) ^ (uint32_t)((uint64_t)(deltas[i] & 0x7F));
    }
    s_out[0] = (int64_t)pc_delta;
    s_out[1] = (int64_t)fold;
    return 0;
}

/* Pythia.train_cols (Algorithm 1).  Returns the prefetch line to issue,
 * or -1 for none; -2 on allocation failure. */
static int64_t train_cols(Ctx *x, int64_t pc, int64_t line, int64_t page,
                          int64_t offset, int bw_high) {
    ReplayArgs *a = x->a;

    /* (1) Reward a resident entry whose prefetch this demand vindicates. */
    int64_t vslot = map_get(&x->byline, line);
    if (vslot >= 0 && !(a->eq_flags[vslot] & EQF_HAS_REWARD)) {
        if (a->eq_flags[vslot] & EQF_FILLED) {
            a->eq_reward[vslot] = a->rw[RW_AT];
            a->rw_assigned[RA_AT]++;
        } else {
            a->eq_reward[vslot] = a->rw[RW_AL];
            a->rw_assigned[RA_AL]++;
        }
        a->eq_flags[vslot] |= EQF_HAS_REWARD;
    }

    /* (2) Extract the state-vector. */
    int64_t state[2];
    if (observe_basic(x, pc, page, offset, state) != 0) {
        return -2;
    }

    /* (3) Select an action (SarsaAgent.select_action, inlined). */
    int64_t *bases = x->bases_scratch; /* current state's bases */
    state_bases(a, state, bases);
    int64_t action;
    if (rng_random(&x->rng) <= a->epsilon) {
        a->agent_explorations++;
        action = rng_randrange(&x->rng, a->nact);
    } else {
        action = best_action(a, bases);
    }
    a->act_counts[action]++;
    int64_t offset_delta = a->act_deltas[action];

    /* (4) Generate the prefetch / classify degenerate actions. */
    int64_t prefetch_line = -1;
    double new_reward = 0.0;
    uint8_t new_flags = 0;
    int64_t target_offset = offset + offset_delta;
    if (offset_delta == 0) {
        new_reward = bw_high ? a->rw[RW_NP_HI] : a->rw[RW_NP_LO];
        new_flags = EQF_HAS_REWARD;
        a->rw_assigned[RA_NP]++;
    } else if (!(0 <= target_offset && target_offset < a->lines_per_page)) {
        new_reward = a->rw[RW_CL];
        new_flags = EQF_HAS_REWARD;
        a->rw_assigned[RA_CL]++;
    } else {
        prefetch_line = (page << a->page_shift) | target_offset;
    }

    /* (5) Insert; eviction assigns R_IN + the SARSA update. */
    int have_evicted = 0;
    int64_t ev_action = 0;
    double ev_reward = 0.0;
    if (a->eq_count >= a->eq_cap) {
        int64_t slot_e = a->eq_head;
        /* Copy the evicted entry before the slot is overwritten. */
        have_evicted = 1;
        for (int64_t f = 0; f < a->nfeat; f++) {
            x->evicted_state[f] = a->eq_state[slot_e * a->nfeat + f];
        }
        ev_action = a->eq_action[slot_e];
        int64_t ev_line = a->eq_line[slot_e];
        if (a->eq_flags[slot_e] & EQF_HAS_REWARD) {
            ev_reward = a->eq_reward[slot_e];
        } else {
            ev_reward = bw_high ? a->rw[RW_IN_HI] : a->rw[RW_IN_LO];
        }
        if (ev_line >= 0 && map_get(&x->byline, ev_line) == slot_e) {
            map_del(&x->byline, ev_line);
        }
        a->eq_head = imod(a->eq_head + 1, a->eq_cap);
        a->eq_count--;
    }
    int64_t slot_n = eq_slot(a, a->eq_count);
    for (int64_t f = 0; f < a->nfeat; f++) {
        a->eq_state[slot_n * a->nfeat + f] = state[f];
    }
    a->eq_action[slot_n] = action;
    a->eq_line[slot_n] = prefetch_line;
    a->eq_reward[slot_n] = new_reward;
    a->eq_flags[slot_n] = new_flags;
    a->eq_count++;
    if (prefetch_line >= 0) {
        if (map_put(&x->byline, prefetch_line, slot_n) != 0) {
            return -2;
        }
    }

    if (have_evicted) {
        /* Head after the insert (never empty here). */
        int64_t slot_h = a->eq_head;
        int64_t *bases_e = x->bases_scratch + a->nfeat * a->nplanes;
        int64_t *bases_h = x->bases_scratch + 2 * a->nfeat * a->nplanes;
        state_bases(a, x->evicted_state, bases_e);
        int64_t next_action = a->eq_action[slot_h];
        state_bases(a, a->eq_state + slot_h * a->nfeat, bases_h);
        /* NumpyQVStore.sarsa_update */
        double q_sa = q_one(a, bases_e, ev_action);
        double q_next = q_one(a, bases_h, next_action);
        double td_error = ev_reward + a->gamma * q_next - q_sa;
        double step = a->alpha * td_error;
        for (int64_t r = 0; r < a->nfeat * a->nplanes; r++) {
            int64_t e = bases_e[r] + ev_action;
            a->qcells[e] = a->qcells[e] + step;
        }
        a->agent_updates++;
    }
    return prefetch_line;
}

/* CacheHierarchy.process_fills: apply arrived prefetch fills. */
static void process_fills(Ctx *x, int64_t now) {
    ReplayArgs *a = x->a;
    while (a->pend_count > 0 && a->pend_comp[0] <= now) {
        int64_t completion, line;
        heap_pop(a->pend_comp, a->pend_line, &a->pend_count, &completion,
                 &line);
        map_del(&x->infl, line);
        int as_prefetch = !map_has(&x->merged, line);
        map_del(&x->merged, line);
        int64_t useless_tag = fill_as(a, LLC, line, completion, as_prefetch);
        (void)useless_tag; /* on_prefetch_useless is a no-op for Pythia */
        fill_as(a, L2, line, completion, as_prefetch);
        if (a->train) {
            eq_mark_filled(x, line); /* Pythia.on_prefetch_fill */
        }
    }
}
/* ---------------------------------------------------------------------------
 * Export helpers: write C-internal structures back into the arg arrays.
 * ------------------------------------------------------------------------- */

static int export_map_pairs(const Map *m, int64_t *keys, int64_t *vals) {
    int64_t n = 0;
    for (int64_t i = 0; i <= m->mask; i++) {
        if (m->keys[i] >= 0) {
            keys[n] = m->keys[i];
            if (vals) {
                vals[n] = m->vals[i];
            }
            n++;
        }
    }
    return (int)n;
}

/* Rotate a linearizable ring so its head lands at index 0. */
static int ring_linearize_i64(int64_t *arr, int64_t head, int64_t count,
                              int64_t cap) {
    if (head == 0 || count == 0) {
        return 0;
    }
    int64_t *tmp = malloc((size_t)count * sizeof(int64_t));
    if (!tmp) {
        return -1;
    }
    for (int64_t i = 0; i < count; i++) {
        tmp[i] = arr[(head + i) % cap];
    }
    memcpy(arr, tmp, (size_t)count * sizeof(int64_t));
    free(tmp);
    return 0;
}

static int ring_linearize_f64(double *arr, int64_t head, int64_t count,
                              int64_t cap) {
    if (head == 0 || count == 0) {
        return 0;
    }
    double *tmp = malloc((size_t)count * sizeof(double));
    if (!tmp) {
        return -1;
    }
    for (int64_t i = 0; i < count; i++) {
        tmp[i] = arr[(head + i) % cap];
    }
    memcpy(arr, tmp, (size_t)count * sizeof(double));
    free(tmp);
    return 0;
}

static int ring_linearize_u8(uint8_t *arr, int64_t head, int64_t count,
                             int64_t cap) {
    if (head == 0 || count == 0) {
        return 0;
    }
    uint8_t *tmp = malloc((size_t)count);
    if (!tmp) {
        return -1;
    }
    for (int64_t i = 0; i < count; i++) {
        tmp[i] = arr[(head + i) % cap];
    }
    memcpy(arr, tmp, (size_t)count);
    free(tmp);
    return 0;
}

/* Rewrite the page-table slot arrays in LRU order (oldest first). */
static int export_page_table(Ctx *x) {
    ReplayArgs *a = x->a;
    int64_t n = a->ptab_count;
    if (n == 0) {
        return 0;
    }
    int64_t *order = malloc((size_t)n * sizeof(int64_t));
    int64_t *ti64 = malloc((size_t)(n * 4) * sizeof(int64_t));
    if (!order || !ti64) {
        free(order);
        free(ti64);
        return -1;
    }
    int64_t k = 0;
    for (int64_t s = x->pt_head; s >= 0 && k < n; s = x->pt_next[s]) {
        order[k++] = s;
    }
    if (k != n) {
        free(order);
        free(ti64);
        return -1;
    }
#define PT_PERMUTE_I64(field, stride)                                          \
    do {                                                                       \
        for (int64_t i = 0; i < n; i++) {                                      \
            for (int64_t j = 0; j < (stride); j++) {                           \
                ti64[i * (stride) + j] = a->field[order[i] * (stride) + j];    \
            }                                                                  \
        }                                                                      \
        memcpy(a->field, ti64, (size_t)(n * (stride)) * sizeof(int64_t));      \
    } while (0)
    PT_PERMUTE_I64(pt_page, 1);
    PT_PERMUTE_I64(pt_lastoff, 1);
    PT_PERMUTE_I64(pt_deltas, 4);
    PT_PERMUTE_I64(pt_offsets, 4);
#undef PT_PERMUTE_I64
    uint8_t *tu8 = (uint8_t *)ti64;
    for (int64_t i = 0; i < n; i++) {
        tu8[i] = a->pt_dlen[order[i]];
    }
    memcpy(a->pt_dlen, tu8, (size_t)n);
    for (int64_t i = 0; i < n; i++) {
        tu8[i] = a->pt_olen[order[i]];
    }
    memcpy(a->pt_olen, tu8, (size_t)n);
    free(order);
    free(ti64);
    return 0;
}

/* Rotate the EQ ring so the FIFO head lands at slot 0. */
static int export_eq(ReplayArgs *a) {
    if (a->eq_head == 0 || a->eq_count == 0) {
        a->eq_head = 0;
        return 0;
    }
    int rcode = 0;
    int64_t cap = a->eq_cap;
    /* Rotate full rings (count may be < cap only transiently before the
     * first wrap, in which case head is still 0 and we never get here
     * -- but rotate count entries defensively anyway). */
    int64_t count = a->eq_count;
    int64_t *ts = malloc((size_t)(count * a->nfeat) * sizeof(int64_t));
    if (!ts) {
        return -1;
    }
    for (int64_t i = 0; i < count; i++) {
        int64_t src = imod(a->eq_head + i, cap);
        for (int64_t f = 0; f < a->nfeat; f++) {
            ts[i * a->nfeat + f] = a->eq_state[src * a->nfeat + f];
        }
    }
    memcpy(a->eq_state, ts, (size_t)(count * a->nfeat) * sizeof(int64_t));
    free(ts);
    if (ring_linearize_i64(a->eq_action, a->eq_head, count, cap) != 0 ||
        ring_linearize_i64(a->eq_line, a->eq_head, count, cap) != 0 ||
        ring_linearize_f64(a->eq_reward, a->eq_head, count, cap) != 0 ||
        ring_linearize_u8(a->eq_flags, a->eq_head, count, cap) != 0) {
        rcode = -1;
    }
    a->eq_head = 0;
    return rcode;
}

/* ---------------------------------------------------------------------------
 * Entry points.
 * ------------------------------------------------------------------------- */

int64_t repro_abi_sizeof(void) { return (int64_t)sizeof(ReplayArgs); }

int64_t repro_replay_span(ReplayArgs *a) {
    Ctx x;
    memset(&x, 0, sizeof(x));
    x.a = a;
    x.rng.mt = a->mt;
    x.rng.index = a->mt_index;
    x.util_capacity_i = a->util_window * a->channels;
    x.util_capacity = (double)x.util_capacity_i;

    int64_t rc = 0;
    /* -- import: rebuild C-side lookup structures ----------------------- */
    if (map_init(&x.infl, a->infl_cap) != 0 ||
        map_init(&x.merged, a->merged_cap) != 0) {
        rc = -2;
        goto cleanup;
    }
    for (int64_t i = 0; i < a->infl_count; i++) {
        if (map_put(&x.infl, a->infl_line[i], a->infl_comp[i]) != 0) {
            rc = -2;
            goto cleanup;
        }
    }
    for (int64_t i = 0; i < a->merged_count; i++) {
        if (map_put(&x.merged, a->merged_line[i], 1) != 0) {
            rc = -2;
            goto cleanup;
        }
    }
    if (a->train) {
        if (map_init(&x.byline, a->eq_cap) != 0 ||
            map_init(&x.pages, a->ptab_cap) != 0) {
            rc = -2;
            goto cleanup;
        }
        /* eq._by_line == most recent FIFO entry per prefetch line. */
        for (int64_t i = 0; i < a->eq_count; i++) {
            int64_t slot = eq_slot(a, i);
            if (a->eq_line[slot] >= 0) {
                if (map_put(&x.byline, a->eq_line[slot], slot) != 0) {
                    rc = -2;
                    goto cleanup;
                }
            }
        }
        x.pt_prev = malloc((size_t)a->ptab_cap * sizeof(int64_t));
        x.pt_next = malloc((size_t)a->ptab_cap * sizeof(int64_t));
        x.evicted_state = malloc((size_t)a->nfeat * sizeof(int64_t));
        x.bases_scratch =
            malloc((size_t)(3 * a->nfeat * a->nplanes) * sizeof(int64_t));
        if (!x.pt_prev || !x.pt_next || !x.evicted_state ||
            !x.bases_scratch) {
            rc = -2;
            goto cleanup;
        }
        /* Slots are imported oldest-first; chain them in order. */
        x.pt_head = a->ptab_count > 0 ? 0 : -1;
        x.pt_tail = a->ptab_count > 0 ? a->ptab_count - 1 : -1;
        for (int64_t s = 0; s < a->ptab_count; s++) {
            x.pt_prev[s] = s - 1;
            x.pt_next[s] = s + 1 < a->ptab_count ? s + 1 : -1;
            if (map_put(&x.pages, a->pt_page[s], s) != 0) {
                rc = -2;
                goto cleanup;
            }
        }
    }

    /* -- hoists (batch.py's loop locals) -------------------------------- */
    const int64_t width = a->width;
    const int64_t rob = a->rob_size;
    const double recip = 1.0 / (double)width;
    double cycle = a->cycle;
    int64_t instructions = a->instructions;
    double stall_cycles = a->stall_cycles;
    const int64_t max_degree = a->max_degree;
    const double hi_thresh = a->hi_thresh;
    const int64_t pshift = a->page_shift;
    const int64_t l1_lat = a->lat[L1], l2_lat = a->lat[L2],
                  llc_lat = a->lat[LLC];
    const int64_t nsets1 = a->nsets[L1], nsets2 = a->nsets[L2],
                  nsets3 = a->nsets[LLC];
    const int64_t ways1 = a->ways[L1], ways3 = a->ways[LLC];
    const int l1_lru = a->policy[L1] == POLICY_LRU;
    const int l2_lru = a->policy[L2] == POLICY_LRU;
    const int llc_lru = a->policy[LLC] == POLICY_LRU;
    int64_t *st1 = a->cache_stats[L1];
    int64_t *st2 = a->cache_stats[L2];
    int64_t *st3 = a->cache_stats[LLC];
    const int64_t mshr_capacity = a->mshr_cap;
    const int64_t out_mask = a->out_cap - 1;

#define OUT_ISSUED(j) a->out_issued[(a->out_head + (j)) & out_mask]
#define OUT_COMP(j) a->out_comp[(a->out_head + (j)) & out_mask]
#define OUT_POPLEFT()                                                          \
    do {                                                                       \
        a->out_head = (a->out_head + 1) & out_mask;                            \
        a->out_count--;                                                        \
    } while (0)
#define OUT_DRAIN()                                                            \
    while (a->out_count > 0 && (double)OUT_COMP(0) <= cycle) {                 \
        OUT_POPLEFT();                                                         \
    }

    /* -- the record loop (batch.py lines 149-519, op for op) ------------ */
    int64_t i = a->start;
    for (; i < a->stop; i++) {
        /* Capacity headroom: bail at a record boundary, the bridge
         * grows the arrays and re-enters. */
        if (a->pend_count + max_degree + 1 > a->pend_cap ||
            a->mshrh_count + max_degree + 2 > a->mshrh_cap ||
            x.infl.count + max_degree + 1 > a->infl_cap ||
            x.merged.count + 2 > a->merged_cap ||
            a->ev_count + max_degree + 2 > a->ev_cap) {
            rc = 1;
            break;
        }
        const int64_t pc = a->col_pc[i];
        const int64_t line = a->col_line[i];
        const int is_load = a->col_load[i] != 0;
        const int64_t gap = a->col_gap[i];
        const int64_t page = a->col_page[i];
        const int64_t offset = a->col_offset[i];
        const int64_t s1 = imod(line, nsets1);
        const int64_t s2 = imod(line, nsets2);
        const int64_t s3 = imod(line, nsets3);

        /* -- CoreModel.advance(gap), inlined --------------------------- */
        if (gap > 0) {
            instructions += gap;
            cycle += (double)gap / (double)width;
            if (a->out_count > 0) {
                OUT_DRAIN();
                while (a->out_count > 0) {
                    int64_t issued_at = OUT_ISSUED(0);
                    int64_t wait_c = OUT_COMP(0);
                    if (instructions - issued_at < rob) {
                        break;
                    }
                    if ((double)wait_c > cycle) {
                        stall_cycles += (double)wait_c - cycle;
                        cycle = (double)wait_c;
                    }
                    OUT_POPLEFT();
                    OUT_DRAIN();
                }
            }
        }

        /* -- CacheHierarchy.demand_access, inlined --------------------- */
        int64_t now = (int64_t)cycle;
        if (a->pend_count > 0 && a->pend_comp[0] <= now) {
            process_fills(&x, now);
        }
        if (a->mshrh_count > 0 && a->mshrh_comp[0] <= now) {
            mshr_reclaim(a, now);
        }

        /* L1 demand lookup (Cache.lookup, inlined). */
        a->tick[L1]++;
        st1[ST_DEMAND_ACCESSES]++;
        int64_t completion;
        int64_t way = tag_find(a, L1, s1, line);
        if (way >= 0) {
            int64_t idx = s1 * ways1 + way;
            if (l1_lru) {
                a->cache_meta_a[L1][idx] = a->tick[L1];
            } else {
                ship_on_hit(a, L1, idx);
            }
            st1[ST_DEMAND_HITS]++;
            uint8_t fl = a->cache_flags[L1][idx];
            if ((fl & FL_PREFETCHED) && !(fl & FL_USED)) {
                a->cache_flags[L1][idx] = (uint8_t)(fl | FL_USED);
                st1[ST_USEFUL_PREFETCHES]++;
            }
            completion = now + l1_lat;
        } else {
            st1[ST_DEMAND_MISSES]++;
            if (is_load) {
                st1[ST_LOAD_MISSES]++;
            }

            /* L1 miss: the prefetcher's training event. */
            if (a->train) {
                double util;
                if (a->ev_count > 0 &&
                    a->ev_ts[a->ev_head] < now - a->util_window) {
                    util = dram_utilization(&x, now);
                } else if (x.util_capacity_i > 0) {
                    util = a->window_busy / x.util_capacity;
                    if (util > 1.0) {
                        util = 1.0;
                    }
                } else {
                    util = 0.0;
                }
                int bw_high = util >= hi_thresh;
                int64_t cand =
                    train_cols(&x, pc, line, page, offset, bw_high);
                if (cand == -2) {
                    rc = -2;
                    goto cleanup;
                }
                if (cand >= 0) {
                    /* _issue_prefetches + _fetch_for_prefetch, inlined
                     * (train_cols yields at most one candidate). */
                    int64_t pf = cand;
                    do {
                        if (0 >= max_degree) {
                            break;
                        }
                        if ((pf >> pshift) != page) {
                            break;
                        }
                        if (tag_find(a, L2, imod(pf, nsets2), pf) >= 0) {
                            break;
                        }
                        int64_t sp = imod(pf, nsets3);
                        if (tag_find(a, LLC, sp, pf) >= 0) {
                            break;
                        }
                        if (map_has(&x.infl, pf)) {
                            break;
                        }
                        /* LLC prefetch lookup (Cache.lookup, inlined). */
                        a->tick[LLC]++;
                        st3[ST_PREFETCH_ACCESSES]++;
                        int64_t wp = tag_find(a, LLC, sp, pf);
                        int64_t pf_comp;
                        if (wp >= 0) {
                            int64_t idx = sp * ways3 + wp;
                            if (llc_lru) {
                                a->cache_meta_a[LLC][idx] = a->tick[LLC];
                            } else {
                                ship_on_hit(a, LLC, idx);
                            }
                            st3[ST_PREFETCH_HITS]++;
                            pf_comp = now + llc_lat;
                        } else if (mshr_find(a, pf) >= 0) {
                            st3[ST_PREFETCH_MISSES]++;
                            a->pf_dropped++;
                            break; /* on_prefetch_dropped is a no-op */
                        } else if (a->mshr_count >= mshr_capacity) {
                            st3[ST_PREFETCH_MISSES]++;
                            a->pf_dropped++;
                            break;
                        } else {
                            st3[ST_PREFETCH_MISSES]++;
                            pf_comp = dram_access(&x, pf, now + llc_lat, 1);
                            /* MshrFile.allocate, inlined. */
                            a->mshr_line[a->mshr_count] = pf;
                            a->mshr_comp[a->mshr_count] = pf_comp;
                            a->mshr_ispf[a->mshr_count] = 1;
                            a->mshr_count++;
                            heap_push(a->mshrh_comp, a->mshrh_line,
                                      &a->mshrh_count, pf_comp, pf);
                            a->mshr_allocations++;
                        }
                        heap_push(a->pend_comp, a->pend_line, &a->pend_count,
                                  pf_comp, pf);
                        if (map_put(&x.infl, pf, pf_comp) != 0) {
                            rc = -2;
                            goto cleanup;
                        }
                        a->pf_issued++;
                    } while (0);
                }
            }

            /* L2 demand lookup (Cache.lookup, inlined). */
            a->tick[L2]++;
            st2[ST_DEMAND_ACCESSES]++;
            int64_t fill_l1, fill_l2;
            way = tag_find(a, L2, s2, line);
            if (way >= 0) {
                int64_t idx = s2 * a->ways[L2] + way;
                if (l2_lru) {
                    a->cache_meta_a[L2][idx] = a->tick[L2];
                } else {
                    ship_on_hit(a, L2, idx);
                }
                st2[ST_DEMAND_HITS]++;
                uint8_t fl = a->cache_flags[L2][idx];
                if ((fl & FL_PREFETCHED) && !(fl & FL_USED)) {
                    a->cache_flags[L2][idx] = (uint8_t)(fl | FL_USED);
                    st2[ST_USEFUL_PREFETCHES]++;
                    /* on_demand_hit_prefetched is a no-op for Pythia */
                }
                completion = now + l2_lat;
                fill_l1 = now;
                fill_l2 = -1;
            } else {
                st2[ST_DEMAND_MISSES]++;
                if (is_load) {
                    st2[ST_LOAD_MISSES]++;
                }

                int64_t in_comp = map_get(&x.infl, line);
                if (in_comp >= 0) {
                    /* Late in-flight prefetch: merge, wait the rest. */
                    a->late_merges++;
                    if (map_put(&x.merged, line, 1) != 0) {
                        rc = -2;
                        goto cleanup;
                    }
                    st3[ST_DEMAND_ACCESSES]++;
                    st3[ST_DEMAND_HITS]++;
                    st3[ST_USEFUL_PREFETCHES]++;
                    int64_t base = now + llc_lat;
                    completion = in_comp > base ? in_comp : base;
                    fill_l1 = completion;
                    fill_l2 = -1;
                } else {
                    /* LLC demand lookup (Cache.lookup, inlined). */
                    a->tick[LLC]++;
                    st3[ST_DEMAND_ACCESSES]++;
                    way = tag_find(a, LLC, s3, line);
                    if (way >= 0) {
                        int64_t idx = s3 * ways3 + way;
                        if (llc_lru) {
                            a->cache_meta_a[LLC][idx] = a->tick[LLC];
                        } else {
                            ship_on_hit(a, LLC, idx);
                        }
                        st3[ST_DEMAND_HITS]++;
                        uint8_t fl = a->cache_flags[LLC][idx];
                        if ((fl & FL_PREFETCHED) && !(fl & FL_USED)) {
                            a->cache_flags[LLC][idx] = (uint8_t)(fl | FL_USED);
                            st3[ST_USEFUL_PREFETCHES]++;
                        }
                        completion = now + llc_lat;
                        fill_l1 = now;
                        fill_l2 = now;
                    } else {
                        st3[ST_DEMAND_MISSES]++;
                        if (is_load) {
                            st3[ST_LOAD_MISSES]++;
                        }
                        int64_t m = mshr_find(a, line);
                        if (m >= 0) {
                            /* Merge into the outstanding miss. */
                            int64_t base = now + llc_lat;
                            int64_t m_comp = a->mshr_comp[m];
                            completion = m_comp > base ? m_comp : base;
                            fill_l1 = -1;
                            fill_l2 = -1;
                        } else {
                            if (a->mshr_count >= mshr_capacity) {
                                /* Structural stall. */
                                a->mshr_stalls++;
                                int64_t wait_until = mshr_earliest(a);
                                if (wait_until < 0) {
                                    rc = -3;
                                    goto cleanup;
                                }
                                while (a->mshrh_count > 0 &&
                                       a->mshrh_comp[0] <= wait_until) {
                                    int64_t m_comp, m_line;
                                    heap_pop(a->mshrh_comp, a->mshrh_line,
                                             &a->mshrh_count, &m_comp,
                                             &m_line);
                                    int64_t mi = mshr_find(a, m_line);
                                    if (mi >= 0 &&
                                        a->mshr_comp[mi] == m_comp) {
                                        mshr_del(a, mi);
                                    }
                                }
                                if (wait_until > now) {
                                    now = wait_until;
                                }
                            }
                            completion =
                                dram_access(&x, line, now + llc_lat, 0);
                            /* MshrFile.allocate, inlined. */
                            a->mshr_line[a->mshr_count] = line;
                            a->mshr_comp[a->mshr_count] = completion;
                            a->mshr_ispf[a->mshr_count] = 0;
                            a->mshr_count++;
                            heap_push(a->mshrh_comp, a->mshrh_line,
                                      &a->mshrh_count, completion, line);
                            a->mshr_allocations++;
                            /* LLC demand fill (Cache.fill, inlined). */
                            demand_fill(a, LLC, s3, line, pc, completion);
                            fill_l1 = completion;
                            fill_l2 = completion;
                        }
                    }

                    /* L2 demand fill (Cache.fill, inlined). */
                    if (fill_l2 >= 0) {
                        demand_fill(a, L2, s2, line, pc, fill_l2);
                    }
                }

                /* NOTE: in batch.py the L2 fill sits inside the L2-miss
                 * branch; the merge path skips it via fill_l2 = -1.  The
                 * structure above mirrors that: the merge path never
                 * reaches the L2 fill. */
            }

            /* L1 demand fill (Cache.fill, inlined). */
            if (fill_l1 >= 0) {
                demand_fill(a, L1, s1, line, pc, fill_l1);
            }
        }

        /* -- CoreModel.issue_load(completion), inlined ----------------- */
        instructions += 1;
        cycle += recip;
        if (a->out_count > 0) {
            OUT_DRAIN();
        }
        if ((double)completion > cycle) {
            if (a->out_count >= a->out_cap) {
                rc = -4;
                goto cleanup;
            }
            int64_t tail = (a->out_head + a->out_count) & out_mask;
            a->out_issued[tail] = instructions;
            a->out_comp[tail] = completion;
            a->out_count++;
        }
        if (a->out_count > 0) {
            while (a->out_count > 0) {
                int64_t issued_at = OUT_ISSUED(0);
                int64_t wait_c = OUT_COMP(0);
                if (instructions - issued_at < rob) {
                    break;
                }
                if ((double)wait_c > cycle) {
                    stall_cycles += (double)wait_c - cycle;
                    cycle = (double)wait_c;
                }
                OUT_POPLEFT();
                OUT_DRAIN();
            }
        }
    }
    a->processed = i - a->start;

    /* -- export --------------------------------------------------------- */
    a->cycle = cycle;
    a->instructions = instructions;
    a->stall_cycles = stall_cycles;
    a->mt_index = x.rng.index;
    a->infl_count = export_map_pairs(&x.infl, a->infl_line, a->infl_comp);
    a->merged_count = export_map_pairs(&x.merged, a->merged_line, NULL);
    if (ring_linearize_i64(a->out_issued, a->out_head, a->out_count,
                           a->out_cap) != 0 ||
        ring_linearize_i64(a->out_comp, a->out_head, a->out_count,
                           a->out_cap) != 0 ||
        ring_linearize_i64(a->ev_ts, a->ev_head, a->ev_count, a->ev_cap) !=
            0 ||
        ring_linearize_f64(a->ev_busy, a->ev_head, a->ev_count, a->ev_cap) !=
            0) {
        rc = -2;
        goto cleanup;
    }
    a->out_head = 0;
    a->ev_head = 0;
    if (a->train) {
        if (export_eq(a) != 0 || export_page_table(&x) != 0) {
            rc = -2;
            goto cleanup;
        }
    }

cleanup:
    map_free(&x.infl);
    map_free(&x.merged);
    map_free(&x.byline);
    map_free(&x.pages);
    free(x.pt_prev);
    free(x.pt_next);
    free(x.evicted_state);
    free(x.bases_scratch);
    return rc;
}
