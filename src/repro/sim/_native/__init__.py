"""Native compiled replay backend (``replay_backend="native"``).

One C translation unit (:mod:`kernel.c <repro.sim._native.build>`)
replays decoded trace columns end to end — caches, MSHR, DRAM, core,
and the Pythia SARSA chain — in the exact operation order of
:func:`repro.sim.batch.replay_span`, so results are bit-identical to
the batched and scalar backends.  The package is self-contained:
:mod:`~repro.sim._native.build` compiles and caches the shared object
on demand, :mod:`~repro.sim._native.bridge` owns the ``ctypes`` state
round trip (the only place in the tree allowed to import ``ctypes``),
and everything degrades to the batched backend when a compiler, the
build, or the configuration is unsupported.
"""

from repro.sim._native.bridge import (
    MIN_NATIVE_SPAN,
    get_lib,
    replay_span,
    supports,
    usable,
)


def available() -> bool:
    """True when the compiled kernel is built, loaded, and ABI-matched."""
    return get_lib() is not None


def reset() -> None:
    """Forget all latched build/load state (test hook)."""
    from repro.sim._native import bridge, build

    bridge.reset()
    build.reset()


__all__ = [
    "MIN_NATIVE_SPAN",
    "available",
    "get_lib",
    "replay_span",
    "reset",
    "supports",
    "usable",
]
