"""On-demand compilation and caching of the native replay kernel.

``kernel.c`` is a single translation unit with no dependencies beyond
libc, so "the build system" is one ``cc`` invocation.  The shared
object is cached keyed by a CRC of the C source: editing the kernel
changes the CRC, which changes the cache file name, which forces a
rebuild — no mtime comparisons, no stale binaries.  ``KERNEL_SOURCE_CRC``
pins the CRC of the *committed* source; the ``native`` lint rule
recomputes it so a kernel edit that forgets the constant fails CI
instead of silently shipping a stale binding.

Everything degrades gracefully: no compiler on PATH, a failed compile,
or a corrupt cached object all make :func:`load` return ``None`` (after
one :mod:`logging` notice), and the engine silently stays on the
batched backend — the two are bit-identical, so only throughput
changes.
"""

from __future__ import annotations

import ctypes
import logging
import os
import shutil
import subprocess
import tempfile
import zlib
from pathlib import Path

_LOG = logging.getLogger("repro.sim.native")

#: CRC-32 of the committed ``kernel.c`` (the ``native`` lint rule
#: recomputes this from the source and fails on drift).
KERNEL_SOURCE_CRC = 0x76BC7BFC

#: ``-ffp-contract=off`` is load-bearing: fused multiply-adds would
#: round differently from Python's separate multiply and add, breaking
#: bit-identity of the SARSA chain.
CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_lib: ctypes.CDLL | None = None
_lib_failed = False
_logged = False
_last_build_rebuilt = False


def kernel_source_path() -> Path:
    """Path of the committed C source."""
    return Path(__file__).with_name("kernel.c")


def cache_dir() -> Path:
    """Directory holding compiled kernels (override: REPRO_NATIVE_CACHE)."""
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-native-{uid}"


def compiler() -> str | None:
    """The C compiler to use (``$CC`` or ``cc``), or ``None`` if absent.

    Probed fresh on every call — tests mask PATH to exercise the
    no-compiler fallback, and a user installing a compiler mid-session
    should not need a process restart.
    """
    return shutil.which(os.environ.get("CC", "cc"))


def was_rebuilt() -> bool:
    """Whether the most recent :func:`build` call actually compiled."""
    return _last_build_rebuilt


def build(source: Path | None = None, directory: Path | None = None) -> Path | None:
    """Ensure a compiled kernel exists; return its path or ``None``.

    The output name embeds the source CRC, so a cache hit *is* the
    up-to-date check.  Compilation goes through a temp file and an
    atomic rename — concurrent builders race benignly.
    """
    global _last_build_rebuilt
    # Safe: process-local status flag for tooling output — a racing
    # writer can only flip what "the most recent build" refers to.
    _last_build_rebuilt = False  # repro: ignore[concurrency]
    src = Path(source) if source is not None else kernel_source_path()
    try:
        text = src.read_bytes()
    except OSError:
        return None
    crc = zlib.crc32(text) & 0xFFFFFFFF
    out_dir = Path(directory) if directory is not None else cache_dir()
    so = out_dir / f"kernel-{crc:08x}.so"
    if so.exists():
        return so
    cc = compiler()
    if cc is None:
        return None
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    tmp = so.with_name(f".{so.name}.{os.getpid()}.tmp")
    cmd = [cc, *CFLAGS, "-o", str(tmp), str(src)]
    try:
        proc = subprocess.run(cmd, capture_output=True, timeout=300)
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        _LOG.warning(
            "native kernel compile failed (%s): %s",
            cc,
            proc.stderr.decode(errors="replace").strip()[:500],
        )
        try:
            tmp.unlink()
        except OSError:
            pass
        return None
    try:
        os.replace(tmp, so)
    except OSError:
        return None
    _last_build_rebuilt = True  # repro: ignore[concurrency]
    return so


def _bind(so: Path) -> ctypes.CDLL | None:
    """dlopen the shared object and type its two entry points."""
    try:
        lib = ctypes.CDLL(str(so))
        lib.repro_abi_sizeof.restype = ctypes.c_int64
        lib.repro_abi_sizeof.argtypes = []
        lib.repro_replay_span.restype = ctypes.c_int64
        lib.repro_replay_span.argtypes = [ctypes.c_void_p]
    except (OSError, AttributeError):
        return None
    return lib


def log_fallback_once(reason: str) -> None:
    """Log the batched-backend fallback notice (once per process)."""
    global _logged
    if not _logged:
        # Safe: process-local once-latch — a race means the notice is
        # logged twice instead of once.
        _logged = True  # repro: ignore[concurrency]
        _LOG.info(
            "native replay kernel unavailable (%s); using the batched "
            "backend (bit-identical, slower)",
            reason,
        )


def load() -> ctypes.CDLL | None:
    """Build (if needed) and load the kernel; ``None`` on any failure.

    The outcome is latched either way: one process builds and binds at
    most once.  A cached object that fails to ``dlopen`` (truncated or
    corrupted cache) is deleted and rebuilt once before giving up.
    """
    global _lib, _lib_failed
    if _lib is not None:
        return _lib
    if _lib_failed:
        return None
    so = build()
    if so is None:
        reason = "no C compiler" if compiler() is None else "build failed"
        # Safe: process-local latch — racing writers all record the
        # same deterministic build outcome.
        _lib_failed = True  # repro: ignore[concurrency]
        log_fallback_once(reason)
        return None
    lib = _bind(so)
    if lib is None:
        try:
            so.unlink()
        except OSError:
            pass
        so = build()
        lib = _bind(so) if so is not None else None
    if lib is None:
        _lib_failed = True  # repro: ignore[concurrency]
        log_fallback_once("cached object unloadable")
        return None
    _lib = lib  # repro: ignore[concurrency]
    return lib


def reset() -> None:
    """Forget the latched build/load outcome (test hook)."""
    global _lib, _lib_failed, _logged, _last_build_rebuilt
    _lib = None
    _lib_failed = False
    _logged = False
    _last_build_rebuilt = False
