"""Windowed simulation engine: resumable, observable replay.

This module is the simulation core the thin ``simulate``/``simulate_multi``
wrappers in :mod:`repro.sim.system` delegate to.  Replay proceeds in
fixed-size *record epochs*; between epochs the engine can

* snapshot a serializable :class:`EngineState` — every piece of mutable
  simulator state (caches + replacement metadata, MSHRs, DRAM counters,
  prefetcher state including the NumPy Q-store, and the trace cursor) —
  that restores to a bit-identical continuation;
* emit a per-window :class:`TelemetryRow` (IPC, cache-stat deltas, DRAM
  bandwidth-bucket occupancy, prefetch issued/useful/late counts) into a
  typed :class:`Timeline`;
* report progress and honor cancellation.

Checkpoints are exchanged through a duck-typed sink (the
:class:`repro.api.store.ResultStore` checkpoint namespace in practice)
keyed by records consumed, so extending a cell's ``trace_length`` can
resume from the longest compatible prefix instead of re-simulating from
record zero.

Bit-identity rules the design.  Three invariants matter:

1. **Windows are free.**  Window boundaries only read counters; the
   per-record path is byte-for-byte the PR 2 hot loop, and with
   telemetry/checkpointing off the replay collapses to the exact
   one-``islice``-per-segment structure the throughput floors were
   calibrated on.
2. **The warmup drain is semantic.**  The historical loop drains the
   core's outstanding loads at the warmup/measure boundary, so replay
   state downstream of that boundary depends on *where* the boundary
   was.  Every checkpoint therefore records its drain history
   (:attr:`EngineState.drained_at`), and a resuming run only adopts
   states whose drain history matches its own warmup split.  Cells that
   pin warmup in absolute records (``warmup_records``, the paper's
   100M-of-600M convention) keep the split fixed as ``trace_length``
   grows, which is what makes 100k → 200k extension fully resumable.
3. **Marks are values.**  The warmup-boundary counter snapshot the
   final statistics are delta'd against is pure data
   (:class:`CounterMark`), so it rides inside post-warmup checkpoints
   and survives adoption.
"""

from __future__ import annotations

import dataclasses
import gc
import pickle
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Iterable, Iterator, Sequence

from repro.prefetchers.base import Prefetcher, NoPrefetcher
from repro.sim import _native, batch
from repro.sim.cache import Cache, CacheStats
from repro.sim.config import SystemConfig
from repro.sim.core import CoreModel
from repro.sim.dram import Dram
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.trace import Trace, TraceRecord, prefix_crc_bulk
from repro.types import prefetch_accuracy

#: Epoch size used only to service progress/cancellation callbacks when
#: neither telemetry nor checkpointing imposes boundaries of its own.
_CONTROL_CHUNK = 16_384


@dataclass(slots=True)
class SimulationResult:
    """Measured statistics from one simulation run (post-warmup only).

    The fields mirror what the paper's rollup scripts extract from
    ChampSim output: IPC, LLC demand load misses, DRAM read counts split
    by origin, prefetch usefulness, and bandwidth-bucket runtime.
    ``timeline`` is the optional per-window telemetry payload
    (``{"window": records, "rows": [...]}``; see :class:`Timeline`) —
    ``None`` unless the run requested telemetry.
    """

    trace_name: str
    prefetcher_name: str
    instructions: int
    cycles: float
    llc_load_misses: int
    llc_demand_hits: int
    dram_reads: int
    dram_demand_reads: int
    dram_prefetch_reads: int
    prefetches_issued: int
    useful_prefetches: int
    useless_prefetches: int
    late_prefetch_merges: int
    stall_cycles: float
    bw_bucket_fractions: list[float] = field(default_factory=lambda: [1.0, 0, 0, 0])
    per_core_ipc: list[float] = field(default_factory=list)
    timeline: dict | None = None

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def prefetch_accuracy(self) -> float:
        """Useful / (useful + useless) judged prefetches."""
        return prefetch_accuracy(self.useful_prefetches, self.useless_prefetches)


class SimulationCancelled(Exception):
    """Raised when a run's ``cancel`` callback asked the engine to stop.

    The engine object stays valid: the caller may capture a checkpoint
    (:meth:`SimulationEngine.capture_state`) or call ``run()`` again to
    continue from where replay stopped.
    """

    def __init__(self, records: int) -> None:
        super().__init__(f"simulation cancelled at record {records}")
        self.records = records


# --------------------------------------------------------------------------
# Telemetry
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TelemetryRow:
    """Counter deltas over one record window.

    All counters are window-local differences; ``bw_buckets`` is the
    fraction of the window's DRAM bucket-accounted cycles spent in each
    utilization quartile (Fig 14's signal, per window).  Rows tile the
    run contiguously but also break at the warmup split (and the end of
    the trace), so no row ever mixes warmup and measured records;
    ``index`` is therefore the row's ordinal position, not
    ``start_record // window``.
    """

    index: int
    start_record: int
    end_record: int
    warmup: bool
    instructions: int
    cycles: float
    llc_demand_hits: int
    llc_load_misses: int
    dram_reads: int
    dram_demand_reads: int
    dram_prefetch_reads: int
    prefetches_issued: int
    useful_prefetches: int
    useless_prefetches: int
    late_prefetch_merges: int
    bw_buckets: tuple[float, float, float, float]

    @property
    def ipc(self) -> float:
        """Instructions per cycle within this window."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def records(self) -> int:
        """Records replayed in this window (the last one may be short)."""
        return self.end_record - self.start_record


@dataclass(frozen=True, slots=True)
class Phase:
    """One contiguous run of windows with similar metric behaviour."""

    metric: str
    start_index: int
    end_index: int
    start_record: int
    end_record: int
    windows: int
    mean: float


def _delta_row(
    index: int, start: int, end: int, warmup: bool, base: dict, now: dict
) -> TelemetryRow:
    """Assemble one telemetry row from two counter snapshots.

    Shared by both engines so the delta/normalize logic — and therefore
    the row contents — cannot drift between single-core and lockstep
    telemetry.
    """
    bucket_delta = [n - b for n, b in zip(now["buckets"], base["buckets"])]
    bucket_total = sum(bucket_delta)
    bw_buckets = (
        tuple(d / bucket_total for d in bucket_delta)
        if bucket_total > 0
        else (1.0, 0.0, 0.0, 0.0)
    )
    return TelemetryRow(
        index=index,
        start_record=start,
        end_record=end,
        warmup=warmup,
        instructions=now["instructions"] - base["instructions"],
        cycles=now["cycles"] - base["cycles"],
        llc_demand_hits=now["llc_demand_hits"] - base["llc_demand_hits"],
        llc_load_misses=now["llc_load_misses"] - base["llc_load_misses"],
        dram_reads=now["dram_reads"] - base["dram_reads"],
        dram_demand_reads=now["dram_demand_reads"] - base["dram_demand_reads"],
        dram_prefetch_reads=now["dram_prefetch_reads"] - base["dram_prefetch_reads"],
        prefetches_issued=now["prefetches_issued"] - base["prefetches_issued"],
        useful_prefetches=now["useful"] - base["useful"],
        useless_prefetches=now["useless"] - base["useless"],
        late_prefetch_merges=now["late_prefetch_merges"]
        - base["late_prefetch_merges"],
        bw_buckets=bw_buckets,
    )


class Timeline:
    """Typed, queryable sequence of per-window telemetry rows."""

    def __init__(self, window: int, rows: Sequence[TelemetryRow] = ()) -> None:
        self.window = window
        self.rows: list[TelemetryRow] = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[TelemetryRow]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> TelemetryRow:
        return self.rows[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeline(window={self.window}, {len(self.rows)} rows)"

    def measured(self) -> "Timeline":
        """The post-warmup rows only."""
        return Timeline(self.window, [r for r in self.rows if not r.warmup])

    def values(self, metric: str = "ipc") -> list[float]:
        """The metric's value for every row, in order."""
        return [getattr(row, metric) for row in self.rows]

    def to_payload(self) -> dict:
        """JSON-safe payload (what :attr:`SimulationResult.timeline` holds)."""
        return {
            "window": self.window,
            "rows": [dataclasses.asdict(row) for row in self.rows],
        }

    @classmethod
    def from_payload(cls, payload: dict | None) -> "Timeline":
        """Rebuild a timeline from a stored payload (``None`` → empty)."""
        if not payload:
            return cls(0, [])
        rows = [
            TelemetryRow(**{**row, "bw_buckets": tuple(row["bw_buckets"])})
            for row in payload.get("rows", ())
        ]
        return cls(payload.get("window", 0), rows)

    def phases(
        self,
        metric: str = "ipc",
        rel_tol: float = 0.25,
        include_warmup: bool = False,
    ) -> list[Phase]:
        """Segment the timeline into phases of similar metric behaviour.

        Greedy change-point detection: a new phase opens when a window's
        metric deviates from the current phase's running mean by more
        than *rel_tol* (relative).  Good enough to surface the
        macroscopic phase changes the per-window figure plots; callers
        needing finer segmentation can run their own model over
        :meth:`values`.
        """
        rows = self.rows if include_warmup else [r for r in self.rows if not r.warmup]
        phases: list[Phase] = []
        current: list[TelemetryRow] = []
        total = 0.0
        for row in rows:
            value = getattr(row, metric)
            if current:
                mean = total / len(current)
                if abs(value - mean) > rel_tol * max(abs(mean), 1e-12):
                    phases.append(self._close_phase(metric, current, total))
                    current, total = [], 0.0
            current.append(row)
            total += value
        if current:
            phases.append(self._close_phase(metric, current, total))
        return phases

    @staticmethod
    def _close_phase(metric: str, rows: list[TelemetryRow], total: float) -> Phase:
        return Phase(
            metric=metric,
            start_index=rows[0].index,
            end_index=rows[-1].index,
            start_record=rows[0].start_record,
            end_record=rows[-1].end_record,
            windows=len(rows),
            mean=total / len(rows),
        )


# --------------------------------------------------------------------------
# Counter snapshots (the warmup mark) and result assembly
# --------------------------------------------------------------------------


def _stats_snapshot(stats: CacheStats) -> dict:
    return dataclasses.asdict(stats)


def _stats_delta(after: CacheStats, before: dict) -> CacheStats:
    current = dataclasses.asdict(after)
    return CacheStats(**{k: current[k] - before[k] for k in current})


@dataclass(slots=True)
class CounterMark:
    """Pure-value counter snapshot taken at the warmup/measure boundary.

    Final statistics are deltas against this mark.  Being plain data it
    pickles inside post-warmup checkpoints, so an adopted state carries
    the mark of the run that produced it.
    """

    instructions: int
    cycles: float
    stalls: float
    llc: dict
    l2: dict
    dram: tuple[int, int, int]
    prefetches: tuple[int, int]

    @classmethod
    def capture(cls, hierarchy: CacheHierarchy, core: CoreModel) -> "CounterMark":
        dram = hierarchy.dram
        return cls(
            instructions=core.instructions,
            cycles=core.cycle,
            stalls=core.stall_cycles,
            llc=_stats_snapshot(hierarchy.llc.stats),
            l2=_stats_snapshot(hierarchy.l2.stats),
            dram=(dram.total_requests, dram.demand_requests, dram.prefetch_requests),
            prefetches=(hierarchy.prefetches_issued, hierarchy.late_prefetch_merges),
        )


@contextmanager
def _gc_paused():
    """Pause cyclic GC around the replay loop.

    The per-record hot path allocates heavily (EQ entries, contexts,
    state tuples) but creates no reference cycles, so generational
    collections only burn time scanning live simulator state.  The
    collector is re-enabled on exit (even on error); no collection is
    forced — a full collect here would scan every resident trace, and
    the next natural collection reclaims any cycles just as well.
    """
    if not gc.isenabled():
        yield  # already managed by an outer run (e.g. the multi-core engine)
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def _run_core(
    hierarchy: CacheHierarchy,
    core: CoreModel,
    records: Iterable[TraceRecord],
) -> None:
    """Replay *records* through one core + hierarchy, then drain.

    This is the innermost simulation loop: every record costs exactly
    three calls, with the bound methods hoisted out of the loop so the
    per-record attribute walks disappear from the profile.  Callers pass
    any record iterable (``itertools.islice`` views for the
    warmup/measure split), so the trace is never re-sliced or copied.
    """
    advance = core.advance
    demand_access = hierarchy.demand_access
    issue_load = core.issue_load
    for record in records:
        advance(record.gap)
        issue_load(demand_access(record, int(core.cycle)))
    core.drain()


# --------------------------------------------------------------------------
# Checkpoint state
# --------------------------------------------------------------------------


def _prefix_crc(records: Sequence[TraceRecord], stop: int, crc: int = 0, start: int = 0) -> int:
    """CRC32 over ``records[start:stop]``, continuing from *crc*.

    Byte-compatible with :attr:`repro.sim.trace.Trace.content_stamp`, so
    a checkpoint's prefix stamp can be validated against any trace that
    claims to share the consumed prefix (e.g. the same workload
    generated at a longer length).
    """
    for r in islice(records, start, stop):
        crc = zlib.crc32(b"%x %x %d %d;" % (r.pc, r.line, r.is_load, r.gap), crc)
    return crc


@dataclass(slots=True)
class EngineState:
    """One serializable snapshot of a mid-run simulation.

    ``payload`` is the pickled ``(hierarchy, core)`` pair — caches with
    replacement metadata, MSHRs, DRAM state, and the prefetcher
    (including the NumPy Q-store, whose pickling preserves the shared
    table; see :meth:`repro.core.qvstore.NumpyQVStore.__getstate__`).
    The remaining fields are the resume-compatibility envelope:

    * ``records`` — trace cursor: how many records the state consumed;
    * ``prefix_stamp`` — CRC32 of exactly those records, validated
      against the resuming trace's prefix before adoption;
    * ``drained_at`` — record positions at which the core was drained
      (the warmup boundary); a resuming run only adopts a state whose
      drain history matches its own warmup split;
    * ``mark`` — the warmup-boundary counter snapshot, present on every
      post-warmup state so an adopter can still compute measured deltas.
    """

    trace_name: str
    records: int
    prefix_stamp: int
    drained_at: tuple[int, ...]
    mark: CounterMark | None
    payload: bytes

    @classmethod
    def capture(
        cls,
        trace_name: str,
        records: int,
        prefix_stamp: int,
        drained_at: tuple[int, ...],
        mark: CounterMark | None,
        hierarchy: CacheHierarchy,
        core: CoreModel,
    ) -> "EngineState":
        return cls(
            trace_name=trace_name,
            records=records,
            prefix_stamp=prefix_stamp,
            drained_at=drained_at,
            mark=mark,
            payload=pickle.dumps((hierarchy, core), protocol=pickle.HIGHEST_PROTOCOL),
        )

    def restore(self) -> tuple[CacheHierarchy, CoreModel]:
        """Materialize a fresh ``(hierarchy, core)`` pair from the payload."""
        return pickle.loads(self.payload)

    @property
    def size_bytes(self) -> int:
        """Approximate footprint (payload only; the envelope is tiny)."""
        return len(self.payload)


# --------------------------------------------------------------------------
# Single-core engine
# --------------------------------------------------------------------------


class SimulationEngine:
    """Windowed single-core replay with telemetry and checkpoint/resume.

    Args:
        trace: the memory-access trace to replay.
        config: system description (defaults to the paper's 1C baseline).
        prefetcher: L2-level prefetcher (defaults to no prefetching).
        warmup_fraction: leading fraction of the trace used for warmup.
        l1_prefetcher: optional L1 prefetcher (multi-level experiments).
        warmup_records: absolute warmup length in records; overrides
            *warmup_fraction* when given (the paper warms a fixed 100 M
            of 600 M instructions).  Because the warmup split then stays
            put as the trace grows, checkpoints from a shorter run of
            the same cell remain drain-compatible — the key to extending
            ``pythia @ 100k`` to ``200k`` without re-simulating.
        telemetry_window: records per telemetry window (0 = off).
        checkpoints: checkpoint sink/source (duck-typed; see
            :class:`repro.api.store.CheckpointNamespace`).  ``None``
            disables checkpointing and resume.
        checkpoint_every: checkpoint cadence in records; 0 with a sink
            still saves the end-of-run state (the extension seed).
        progress: ``callback(records_done, records_total)`` at epoch
            boundaries.
        cancel: zero-argument callable; a truthy return raises
            :class:`SimulationCancelled` at the next epoch boundary.

    Telemetry and checkpointing are off by default, and the default
    configuration replays through the exact PR 2 hot loop — the perf
    floors in ``BENCH_perf.json`` gate that this wrapper stays free.
    Resume adoption is disabled while telemetry is on (a resumed run
    cannot reconstruct the skipped windows' rows); checkpoints are
    still written.
    """

    def __init__(
        self,
        trace: Trace,
        config: SystemConfig | None = None,
        prefetcher: Prefetcher | None = None,
        warmup_fraction: float = 0.2,
        l1_prefetcher: Prefetcher | None = None,
        *,
        warmup_records: int | None = None,
        telemetry_window: int = 0,
        checkpoints=None,
        checkpoint_every: int = 0,
        progress: Callable[[int, int], None] | None = None,
        cancel: Callable[[], bool] | None = None,
    ) -> None:
        self.trace = trace
        self.config = config if config is not None else SystemConfig(num_cores=1)
        prefetcher = prefetcher if prefetcher is not None else NoPrefetcher()
        self.hierarchy = CacheHierarchy(
            self.config, prefetcher, l1_prefetcher=l1_prefetcher
        )
        self.core = CoreModel(self.config.core)
        self.total = len(trace)
        if warmup_records is not None:
            if warmup_records < 0:
                raise ValueError(f"warmup_records must be >= 0, got {warmup_records}")
            self.warmup_split = min(warmup_records, self.total)
        else:
            self.warmup_split = int(self.total * warmup_fraction)
        self.telemetry_window = telemetry_window
        self.checkpoints = checkpoints
        self.checkpoint_every = checkpoint_every
        self.progress = progress
        self.cancel = cancel

        backend = self.config.replay_backend
        if backend not in ("native", "batched", "scalar"):
            raise ValueError(
                f"unknown replay_backend {backend!r}; use native|batched|scalar"
            )
        # The batched kernel covers every configuration except L1
        # prefetching; the fallback is semantically invisible (the two
        # backends are bit-identical), so no error — just the slow loop.
        # The native kernel narrows further (no compiler, unsupported
        # policies/prefetchers) and falls back to batched the same way.
        self._use_batched = (
            backend != "scalar" and l1_prefetcher is None and batch.available()
        )
        self._use_native = (
            backend == "native"
            and self._use_batched
            and _native.usable(self.hierarchy)
        )
        self._cols = None
        self._stamp = None

        self.position = 0
        self.resumed_from = 0
        self.timeline = Timeline(telemetry_window)
        self._crc = 0
        self._mark: CounterMark | None = None
        self._drained = False
        self._finished = False
        self._window_base: dict | None = None
        if telemetry_window:
            self._window_base = self._telemetry_snapshot()

    # -- state capture / adoption -----------------------------------------

    @property
    def drained_at(self) -> tuple[int, ...]:
        """Drain history of the current state (see :class:`EngineState`)."""
        return (self.warmup_split,) if self._drained else ()

    def capture_state(self) -> EngineState:
        """Snapshot the current mid-run state (deep, serialized copy)."""
        return EngineState.capture(
            self.trace.name,
            self.position,
            self._crc if self.checkpoints is not None else self._prefix_stamp(self.position),
            self.drained_at,
            self._mark,
            self.hierarchy,
            self.core,
        )

    def adopt_state(self, state: EngineState) -> None:
        """Replace the engine's state with a restored snapshot.

        The snapshot must describe a prefix of this engine's trace and a
        drain history compatible with this engine's warmup split; both
        are validated, because adopting an incompatible state would
        *silently* produce wrong results.
        """
        if self.position != 0:
            raise RuntimeError("can only adopt a state into a fresh engine")
        if state.drained_at not in self._compatible_drains(state.records):
            raise ValueError(
                f"state drained at {state.drained_at} is incompatible with a "
                f"warmup split of {self.warmup_split}"
            )
        if state.records > self.total:
            raise ValueError(
                f"state consumed {state.records} records; trace has {self.total}"
            )
        if state.prefix_stamp != self._prefix_stamp(state.records):
            raise ValueError("state prefix stamp does not match this trace")
        self._adopt_validated(state)

    def _adopt_validated(self, state: EngineState) -> None:
        """Adopt *state* whose prefix stamp the caller already verified.

        :meth:`_try_resume` validates the stamp while filtering
        candidates; re-deriving it here would add a second full
        O(records) CRC pass to the very path resume exists to shorten.
        """
        if state.mark is None and (
            state.drained_at or state.records > self.warmup_split
        ):
            raise ValueError("post-warmup state carries no warmup mark")
        self.hierarchy, self.core = state.restore()
        if self.hierarchy.l1_prefetcher is not None:
            # A restored hierarchy may carry an L1 prefetcher this engine
            # was not built with; the batched kernel does not train it.
            self._use_batched = False
            self._use_native = False
        elif self._use_native and not _native.usable(self.hierarchy):
            # The restored hierarchy, not the one __init__ probed, is
            # what replays — re-check it against the kernel's limits.
            self._use_native = False
        self.position = state.records
        self.resumed_from = state.records
        self._crc = state.prefix_stamp
        if state.drained_at or (self.warmup_split == 0 and state.mark is not None):
            # Post-drain state (or a zero-warmup run's): the warmup mark
            # rides along; run() must not drain or re-mark.
            self._mark = state.mark
            self._drained = bool(state.drained_at)
        if self.telemetry_window:
            self._window_base = self._telemetry_snapshot()

    def _compatible_drains(self, records: int) -> tuple[tuple[int, ...], ...]:
        """Drain histories a state at *records* may carry for this run.

        Pre-split states are undrained; post-split states were drained
        exactly at this run's split.  A state *at* the split may be
        either — captured inside the replay loop (pre-drain) or after
        the warmup mark (post-drain); both resume exactly, because the
        adopter drains if and only if the state has not."""
        split = self.warmup_split
        if split <= 0 or records < split:
            return ((),)
        if records == split:
            return ((), (split,))
        return ((split,),)

    def _prefix_stamp(self, stop: int) -> int:
        return prefix_crc_bulk(self.trace.records, stop)

    def _try_resume(self) -> None:
        """Adopt the longest compatible stored checkpoint, if any.

        Listed entries are advisory: a concurrent writer sharing the
        store may evict a snapshot between ``entries()`` and ``load()``
        (the size-capped namespace evicts oldest-first), so a vanished
        or unreadable candidate is never fatal — the loop falls back to
        the next-longest compatible snapshot, and ultimately to a fresh
        run from record zero.
        """
        try:
            entries = sorted(self.checkpoints.entries(), reverse=True)
        except OSError:
            # The namespace directory itself raced with a concurrent
            # clear(); resume has nothing to offer, run fresh.
            return
        split = self.warmup_split
        for records, drained_at in entries:
            if records <= 0 or records > self.total:
                continue
            if drained_at not in self._compatible_drains(records):
                continue
            try:
                state = self.checkpoints.load(records, drained_at)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
                state = None
            if state is None:
                continue
            if state.mark is None and (drained_at or records > split):
                continue
            if state.prefix_stamp != self._prefix_stamp(records):
                continue
            try:
                self._adopt_validated(state)
            except (ValueError, RuntimeError, pickle.UnpicklingError):
                continue
            return

    def _save_checkpoint(self) -> None:
        position = self.position
        if position == 0 or position == self.resumed_from:
            return
        drained_at = self.drained_at
        if self.checkpoints.has(position, drained_at):
            return
        self.checkpoints.save(
            EngineState.capture(
                self.trace.name,
                position,
                self._crc,
                drained_at,
                self._mark,
                self.hierarchy,
                self.core,
            )
        )

    # -- telemetry ---------------------------------------------------------

    def _telemetry_snapshot(self) -> dict:
        hierarchy = self.hierarchy
        llc, l2, dram = hierarchy.llc.stats, hierarchy.l2.stats, hierarchy.dram
        return {
            "instructions": self.core.instructions,
            "cycles": self.core.cycle,
            "llc_demand_hits": llc.demand_hits,
            "llc_load_misses": llc.load_misses,
            "useful": llc.useful_prefetches + l2.useful_prefetches,
            "useless": llc.useless_evictions,
            "dram_reads": dram.total_requests,
            "dram_demand_reads": dram.demand_requests,
            "dram_prefetch_reads": dram.prefetch_requests,
            "prefetches_issued": hierarchy.prefetches_issued,
            "late_prefetch_merges": hierarchy.late_prefetch_merges,
            "buckets": dram.bucket_cycles,
        }

    def _emit_row(self) -> None:
        rows = self.timeline.rows
        start_record = rows[-1].end_record if rows else self.resumed_from
        now = self._telemetry_snapshot()
        rows.append(
            _delta_row(
                len(rows),
                start_record,
                self.position,
                self.position <= self.warmup_split,
                self._window_base,
                now,
            )
        )
        self._window_base = now

    # -- replay ------------------------------------------------------------

    def _replay_to(self, target: int) -> None:
        """Advance replay to *target* records, honoring epoch boundaries.

        The per-chunk replay is the native compiled kernel
        (:func:`repro.sim._native.replay_span`, when selected and
        usable), the batched columnar kernel
        (:func:`repro.sim.batch.replay_span`, the default backend), or
        the scalar hoisted-method loop over one ``islice`` view — the
        PR 2 hot path, kept as the reference fallback.  All three are
        bit-identical, and boundaries never touch simulation state, so
        chunked and unchunked replay agree by construction either way.
        """
        records = self.trace.records
        window = self.telemetry_window
        every = self.checkpoint_every
        checkpointing = self.checkpoints is not None
        controlled = self.progress is not None or self.cancel is not None
        hierarchy, core = self.hierarchy, self.core
        batched = self._use_batched
        native = self._use_native
        if batched and self._cols is None:
            self._cols = self.trace.columns()
            self._stamp = self.trace.content_stamp
        while self.position < target:
            if self.cancel is not None and self.cancel():
                raise SimulationCancelled(self.position)
            start = self.position
            boundary = target
            if window:
                boundary = min(boundary, (start // window + 1) * window)
            if every:
                boundary = min(boundary, (start // every + 1) * every)
            elif boundary == target and not window and controlled:
                boundary = min(boundary, start + _CONTROL_CHUNK)

            if native:
                _native.replay_span(
                    hierarchy, core, self._cols, start, boundary,
                    stamp=self._stamp,
                )
            elif batched:
                batch.replay_span(
                    hierarchy, core, self._cols, start, boundary,
                    stamp=self._stamp,
                )
            else:
                advance = core.advance
                demand_access = hierarchy.demand_access
                issue_load = core.issue_load
                for record in islice(records, start, boundary):
                    advance(record.gap)
                    issue_load(demand_access(record, int(core.cycle)))

            if checkpointing:
                self._crc = prefix_crc_bulk(records, boundary, self._crc, start)
            self.position = boundary
            if window and (
                boundary % window == 0
                or boundary == self.total
                or boundary == self.warmup_split
            ):
                # Rows also break at the warmup split (and the final
                # partial window), so no row ever mixes warmup and
                # measured records — Timeline.measured() stays exact.
                self._emit_row()
            if checkpointing and every and boundary % every == 0:
                self._save_checkpoint()
            if self.progress is not None:
                self.progress(self.position, self.total)

    def run(self) -> SimulationResult:
        """Replay to the end of the trace and assemble the statistics.

        Resumable after :class:`SimulationCancelled`: calling ``run()``
        again continues from the interrupted position.
        """
        if self._finished:
            raise RuntimeError("engine already finished; build a new one to re-run")
        split = self.warmup_split
        with _gc_paused():
            if (
                self.checkpoints is not None
                and self.position == 0
                and not self.telemetry_window
            ):
                self._try_resume()
            if self._mark is None:
                self._replay_to(split)
                if split > 0:
                    self.core.drain()
                    self._drained = True
                self._mark = CounterMark.capture(self.hierarchy, self.core)
                if self.telemetry_window:
                    # The warmup drain's cycle jump is a boundary
                    # artifact, not part of any window: re-base so the
                    # first measured row starts clean.
                    self._window_base = self._telemetry_snapshot()
            self._replay_to(self.total)
            if self.checkpoints is not None:
                self._save_checkpoint()
            self.core.drain()
            self.hierarchy.flush_pending()
        self._finished = True
        return self._build_result()

    def _build_result(self) -> SimulationResult:
        mark = self._mark
        hierarchy, core = self.hierarchy, self.core
        llc_stats = _stats_delta(hierarchy.llc.stats, mark.llc)
        l2_stats = _stats_delta(hierarchy.l2.stats, mark.l2)
        dram = hierarchy.dram
        instructions = core.instructions - mark.instructions
        cycles = core.cycle - mark.cycles
        return SimulationResult(
            trace_name=self.trace.name,
            prefetcher_name=hierarchy.prefetcher.name,
            instructions=instructions,
            cycles=cycles,
            llc_load_misses=llc_stats.load_misses,
            llc_demand_hits=llc_stats.demand_hits,
            dram_reads=dram.total_requests - mark.dram[0],
            dram_demand_reads=dram.demand_requests - mark.dram[1],
            dram_prefetch_reads=dram.prefetch_requests - mark.dram[2],
            prefetches_issued=hierarchy.prefetches_issued - mark.prefetches[0],
            useful_prefetches=llc_stats.useful_prefetches + l2_stats.useful_prefetches,
            useless_prefetches=llc_stats.useless_evictions,
            late_prefetch_merges=hierarchy.late_prefetch_merges - mark.prefetches[1],
            stall_cycles=core.stall_cycles - mark.stalls,
            bw_bucket_fractions=dram.bucket_fractions(),
            per_core_ipc=[instructions / cycles if cycles > 0 else 0.0],
            timeline=self.timeline.to_payload() if self.telemetry_window else None,
        )


# --------------------------------------------------------------------------
# Multi-core lockstep engine
# --------------------------------------------------------------------------


class MultiCoreEngine:
    """Trace-driven multi-core lockstep replay (one trace per core).

    The lockstep loop advances whichever core is earliest in time; a
    core that exhausts its trace replays it from the beginning until
    every core has simulated its quota, as in the paper.  Telemetry
    windows are measured in lockstep *steps* (total records across
    cores); a row's ``warmup`` flag means "some core was still warming
    during these steps", and rows additionally break at the step where
    the last core finishes warmup so no row mixes the two regimes.
    Checkpoint/resume is not supported for multi-core runs —
    shared-LLC mixes have no meaningful prefix to extend.
    """

    def __init__(
        self,
        traces: list[Trace],
        config: SystemConfig,
        prefetcher_factory,
        warmup_fraction: float = 0.1,
        records_per_core: int | None = None,
        *,
        warmup_records: int | None = None,
        telemetry_window: int = 0,
        progress: Callable[[int, int], None] | None = None,
        cancel: Callable[[], bool] | None = None,
    ) -> None:
        if len(traces) != config.num_cores:
            raise ValueError("need exactly one trace per core")
        self.traces = traces
        self.config = config
        self.telemetry_window = telemetry_window
        self.progress = progress
        self.cancel = cancel

        self.dram = Dram(config.dram)
        shared_llc_geom = dataclasses.replace(
            config.llc, size_bytes=config.llc.size_bytes * config.num_cores
        )
        self.llc = Cache("LLC", shared_llc_geom)
        self.hierarchies = [
            CacheHierarchy(
                config, prefetcher_factory(), dram=self.dram, llc=self.llc, core_id=i
            )
            for i in range(config.num_cores)
        ]
        self.cores = [CoreModel(config.core) for _ in range(config.num_cores)]
        self.cursors = [0] * config.num_cores
        if warmup_records is not None:
            if warmup_records < 0:
                raise ValueError(f"warmup_records must be >= 0, got {warmup_records}")
            self.warm_remaining = [min(warmup_records, len(t)) for t in traces]
        else:
            self.warm_remaining = [int(len(t) * warmup_fraction) for t in traces]
        self._warming = any(w > 0 for w in self.warm_remaining)
        if records_per_core is None:
            records_per_core = min(
                len(t) - w for t, w in zip(traces, self.warm_remaining)
            )
        self.records_per_core = records_per_core
        self.measured = [0] * config.num_cores
        self.marks: list[CounterMark | None] = [None] * config.num_cores
        self.steps = 0
        self.timeline = Timeline(telemetry_window)
        self._window_base: dict | None = None
        if telemetry_window:
            self._window_base = self._telemetry_snapshot()

    def _step(self, core_idx: int) -> None:
        trace = self.traces[core_idx]
        record = trace[self.cursors[core_idx] % len(trace)]
        self.cursors[core_idx] += 1
        core = self.cores[core_idx]
        core.advance(record.gap)
        completion = self.hierarchies[core_idx].demand_access(record, int(core.cycle))
        core.issue_load(completion)
        if self.warm_remaining[core_idx] > 0:
            self.warm_remaining[core_idx] -= 1
            if self.warm_remaining[core_idx] == 0:
                self.marks[core_idx] = CounterMark.capture(
                    self.hierarchies[core_idx], core
                )
        else:
            if self.marks[core_idx] is None:
                self.marks[core_idx] = CounterMark.capture(
                    self.hierarchies[core_idx], core
                )
            self.measured[core_idx] += 1
        self.steps += 1

    # -- telemetry ---------------------------------------------------------

    def _telemetry_snapshot(self) -> dict:
        llc, dram = self.llc.stats, self.dram
        return {
            "instructions": sum(c.instructions for c in self.cores),
            "cycles": max(c.cycle for c in self.cores),
            "llc_demand_hits": llc.demand_hits,
            "llc_load_misses": llc.load_misses,
            "useful": llc.useful_prefetches,
            "useless": llc.useless_evictions,
            "dram_reads": dram.total_requests,
            "dram_demand_reads": dram.demand_requests,
            "dram_prefetch_reads": dram.prefetch_requests,
            "prefetches_issued": sum(h.prefetches_issued for h in self.hierarchies),
            "late_prefetch_merges": sum(
                h.late_prefetch_merges for h in self.hierarchies
            ),
            "buckets": dram.bucket_cycles,
        }

    def _emit_row(self, warmup: bool) -> None:
        rows = self.timeline.rows
        start_step = rows[-1].end_record if rows else 0
        now = self._telemetry_snapshot()
        rows.append(
            _delta_row(len(rows), start_step, self.steps, warmup, self._window_base, now)
        )
        self._window_base = now

    # -- run ---------------------------------------------------------------

    def run(self) -> SimulationResult:
        num_cores = self.config.num_cores
        quota = self.records_per_core
        cores, measured = self.cores, self.measured
        window = self.telemetry_window
        controlled = window or self.progress is not None or self.cancel is not None
        with _gc_paused():
            while any(m < quota for m in measured):
                active = [i for i in range(num_cores) if measured[i] < quota]
                core_idx = min(active, key=lambda i: cores[i].cycle)
                self._step(core_idx)
                if controlled:
                    just_warmed = self._warming and all(
                        m is not None for m in self.marks
                    )
                    if window and self.steps % window == 0:
                        # A row ending at the warmup transition is still
                        # all-warmup: the flag is cleared only after it.
                        self._emit_row(warmup=self._warming)
                    elif just_warmed and window:
                        # Every core just finished warmup mid-window:
                        # close the in-flight row here so no row mixes
                        # warmup and measured lockstep steps.
                        self._emit_row(warmup=True)
                    if just_warmed:
                        self._warming = False
                    if self.cancel is not None and self.cancel():
                        raise SimulationCancelled(self.steps)
                    if self.progress is not None and self.steps % _CONTROL_CHUNK == 0:
                        self.progress(min(measured), quota)

            if window and self.steps % window != 0:
                self._emit_row(warmup=self._warming)
            for core, hierarchy in zip(cores, self.hierarchies):
                core.drain()
                hierarchy.flush_pending()
        return self._build_result()

    def _build_result(self) -> SimulationResult:
        instructions = 0
        cycles = 0.0
        stall = 0.0
        prefetches = 0
        late = 0
        per_core_ipc = []
        for core, hierarchy, mark in zip(self.cores, self.hierarchies, self.marks):
            assert mark is not None
            d_instr = core.instructions - mark.instructions
            d_cyc = core.cycle - mark.cycles
            instructions += d_instr
            cycles = max(cycles, d_cyc)
            stall += core.stall_cycles - mark.stalls
            prefetches += hierarchy.prefetches_issued - mark.prefetches[0]
            late += hierarchy.late_prefetch_merges - mark.prefetches[1]
            per_core_ipc.append(d_instr / d_cyc if d_cyc > 0 else 0.0)

        # Shared-LLC stats: subtract the earliest mark (approximation: the
        # shared stats cannot be attributed per core exactly, matching how
        # multi-programmed rollups report aggregate LLC behaviour).
        first_mark = next(m for m in self.marks if m is not None)
        llc_stats = _stats_delta(self.llc.stats, first_mark.llc)
        dram = self.dram
        return SimulationResult(
            trace_name="+".join(t.name for t in self.traces),
            prefetcher_name=self.hierarchies[0].prefetcher.name,
            instructions=instructions,
            cycles=cycles,
            llc_load_misses=llc_stats.load_misses,
            llc_demand_hits=llc_stats.demand_hits,
            dram_reads=dram.total_requests - first_mark.dram[0],
            dram_demand_reads=dram.demand_requests - first_mark.dram[1],
            dram_prefetch_reads=dram.prefetch_requests - first_mark.dram[2],
            prefetches_issued=prefetches,
            useful_prefetches=llc_stats.useful_prefetches,
            useless_prefetches=llc_stats.useless_evictions,
            late_prefetch_merges=late,
            stall_cycles=stall,
            bw_bucket_fractions=dram.bucket_fractions(),
            per_core_ipc=per_core_ipc,
            timeline=self.timeline.to_payload() if self.telemetry_window else None,
        )
