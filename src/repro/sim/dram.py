"""DRAM model: channels, banks, row buffers, and a finite data bus.

This is the part of the substrate that makes prefetch *overprediction*
cost something.  Every request — demand or prefetch — occupies a bank for
its access latency and the channel data bus for the line-transfer time.
When arrival rate approaches the bus bandwidth, queueing delay grows and
everyone's latency rises; that is exactly the mechanism behind the
paper's bandwidth-constrained results (Fig 8b, Fig 11, Fig 14).

The model also exposes :meth:`utilization`, a sliding-window measure of
data-bus busy fraction.  Pythia consumes it (thresholded) as its
system-level feedback; Fig 14's runtime-in-bandwidth-bucket histogram is
built from the same signal.
"""

from __future__ import annotations

from collections import deque

from repro.sim.config import DramConfig


class _Channel:
    """One DRAM channel: a data bus plus per-bank state."""

    def __init__(self, config: DramConfig) -> None:
        self._config = config
        # Geometry/timing scalars hoisted out of the per-request path.
        self._row_size_lines = config.row_size_lines
        self._banks = config.banks_per_channel
        self._row_hit_latency = config.row_hit_latency
        self._row_miss_latency = config.row_miss_latency
        self._cycles_per_transfer = config.cycles_per_transfer
        self._bus_free = 0.0
        self._demand_bus_free = 0.0
        self._bank_free = [0.0] * config.banks_per_channel
        self._open_row = [-1] * config.banks_per_channel
        self.row_hits = 0
        self.row_misses = 0

    def service(self, line: int, now: int, is_prefetch: bool) -> tuple[int, float]:
        """Service one cacheline request arriving at cycle *now*.

        Returns ``(completion_cycle, bus_busy_cycles)``.

        Row hits to an open row pipeline back-to-back (the bank is only
        occupied for the burst), while row misses occupy the bank for the
        full precharge+activate+CAS time.

        The data bus models *demand priority*, as real memory
        controllers implement it: a demand's burst waits only behind
        other demand bursts (queued prefetch bursts yield), whereas a
        prefetch burst waits behind everything.  Prefetch traffic still
        costs demands through bank occupancy and row-buffer disturbance,
        and once demand traffic alone approaches the bus rate the
        priority cannot help — the saturation behaviour behind the
        paper's bandwidth-constrained results.
        """
        bank_idx = (line // self._row_size_lines) % self._banks
        row = line // (self._row_size_lines * self._banks)

        start = max(float(now), self._bank_free[bank_idx])
        if self._open_row[bank_idx] == row:
            access_latency = self._row_hit_latency
            bank_occupancy = self._cycles_per_transfer
            self.row_hits += 1
        else:
            access_latency = self._row_miss_latency
            bank_occupancy = self._row_miss_latency
            self._open_row[bank_idx] = row
            self.row_misses += 1

        transfer = self._cycles_per_transfer
        data_at_bank = start + access_latency
        if is_prefetch:
            transfer_start = max(data_at_bank, self._bus_free)
        else:
            transfer_start = max(data_at_bank, self._demand_bus_free)
            self._demand_bus_free = transfer_start + transfer
        completion = transfer_start + transfer
        self._bank_free[bank_idx] = start + bank_occupancy
        self._bus_free = max(self._bus_free, completion)
        return int(completion), transfer


class Dram:
    """Multi-channel DRAM with utilization tracking.

    Args:
        config: channel/bank/rate description.

    Requests are line-interleaved across channels.  ``utilization()``
    reports the fraction of the last ``utilization_window`` cycles the
    data buses were busy, averaged over channels.
    """

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self._channels = [_Channel(config) for _ in range(config.channels)]
        # Sliding-window utilization as O(1) rolling counters: a
        # monotonic (cycle, busy_cycles) event deque drained by
        # timestamp, plus the running busy sum of the retained window.
        self._events: deque[tuple[int, float]] = deque()
        self._window_busy = 0.0
        self._window = config.utilization_window
        self._util_capacity = config.utilization_window * config.channels
        self._num_channels = config.channels
        self.total_requests = 0
        self.demand_requests = 0
        self.prefetch_requests = 0
        self.busy_cycles = 0.0
        self._bucket_cycles = [0.0, 0.0, 0.0, 0.0]
        self._last_bucket_cycle = 0

    @property
    def row_hits(self) -> int:
        """Row-buffer hits across channels."""
        return sum(c.row_hits for c in self._channels)

    @property
    def row_misses(self) -> int:
        """Row-buffer misses across channels."""
        return sum(c.row_misses for c in self._channels)

    def access(self, line: int, now: int, is_prefetch: bool) -> int:
        """Issue one cacheline request; returns its completion cycle.

        The window-event recording and the Fig 14 bucket accounting are
        fused in here (one request = one event): draining stale events
        first means the head of the deque is always ≥ ``now - window``
        afterwards, so the bucket charge below can read the utilization
        straight off the rolling counter instead of going through
        :meth:`utilization`'s stale-head rescan.
        """
        channel = self._channels[line % self._num_channels]
        completion, busy = channel.service(line, now, is_prefetch)
        self.total_requests += 1
        if is_prefetch:
            self.prefetch_requests += 1
        else:
            self.demand_requests += 1
        self.busy_cycles += busy
        # Record the window event; each event is appended and popped
        # exactly once, so accounting is amortized O(1) per request.
        events = self._events
        events.append((now, busy))
        window_busy = self._window_busy + busy
        cutoff = now - self._window
        while events and events[0][0] < cutoff:
            window_busy -= events.popleft()[1]
        self._window_busy = window_busy
        # Charge elapsed cycles to the current utilization quartile.
        last = self._last_bucket_cycle
        if now > last:
            capacity = self._util_capacity
            util = min(1.0, window_busy / capacity) if capacity > 0 else 0.0
            if util < 0.25:
                idx = 0
            elif util < 0.5:
                idx = 1
            elif util < 0.75:
                idx = 2
            else:
                idx = 3
            self._bucket_cycles[idx] += now - last
            self._last_bucket_cycle = now
        return completion

    # -- utilization feedback ------------------------------------------------

    def utilization(self, now: int) -> float:
        """Data-bus busy fraction over the trailing window, capped at 1.

        Served from the rolling counter.  Events are only *retired* on
        the (monotonic) record path; a query whose horizon has moved
        past retained events subtracts them without mutating, because
        in multi-core lockstep a slightly older core may still query an
        earlier horizon afterwards.
        """
        window = self.config.utilization_window
        start = now - window
        busy = self._window_busy
        events = self._events
        if events and events[0][0] < start:
            for t, b in events:
                if t >= start:
                    break
                busy -= b
        capacity = window * self.config.channels
        if capacity <= 0:
            return 0.0
        return min(1.0, busy / capacity)

    def bandwidth_high(self, now: int, threshold: float) -> bool:
        """The thresholded high/low signal delivered to prefetchers."""
        return self.utilization(now) >= threshold

    # -- Fig 14 bandwidth-bucket accounting -----------------------------------

    @property
    def bucket_cycles(self) -> tuple[float, float, float, float]:
        """Raw cycles charged to each utilization quartile so far.

        The cumulative counters behind :meth:`bucket_fractions`; the
        windowed engine deltas them to report per-window bucket
        occupancy.
        """
        return tuple(self._bucket_cycles)

    def bucket_fractions(self) -> list[float]:
        """Fraction of runtime spent in each utilization quartile.

        Buckets are ``[<25%, 25-50%, 50-75%, >=75%]`` of peak bandwidth,
        matching Fig 14's stacked bars.
        """
        total = sum(self._bucket_cycles)
        if total == 0:
            return [1.0, 0.0, 0.0, 0.0]
        return [c / total for c in self._bucket_cycles]
