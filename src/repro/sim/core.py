"""Simplified out-of-order core timing model.

ChampSim models a full OoO pipeline; we use the standard analytic
reduction that captures what prefetching research needs: a *ROB-occupancy
stall model*.  The core retires up to ``width`` instructions per cycle.
A load miss occupies the ROB until its data returns; the core only stalls
when the **oldest** incomplete load is more than ``rob_size`` instructions
in the past — i.e. the ROB has filled behind it.  Independent misses
inside the ROB window therefore overlap naturally (memory-level
parallelism), and shortening any miss via prefetching directly removes
stall cycles, including *partially* for late prefetches.
"""

from __future__ import annotations

from collections import deque

from repro.sim.config import CoreConfig


class CoreModel:
    """Tracks one core's cycle count and ROB-limited miss overlap.

    Usage: the simulation loop calls :meth:`advance` for each trace
    record's non-memory gap, then :meth:`issue_load` with the memory
    access latency resolved by the hierarchy.
    """

    def __init__(self, config: CoreConfig) -> None:
        self._config = config
        self._width = config.width
        self._rob_size = config.rob_size
        self.cycle: float = 0.0
        self.instructions: int = 0
        self.stall_cycles: float = 0.0
        # Outstanding loads: (instruction_number_at_issue, completion_cycle).
        self._outstanding: deque[tuple[int, float]] = deque()

    @property
    def ipc(self) -> float:
        """Instructions per cycle retired so far."""
        if self.cycle <= 0:
            return 0.0
        return self.instructions / self.cycle

    def _drain_completed(self) -> None:
        while self._outstanding and self._outstanding[0][1] <= self.cycle:
            self._outstanding.popleft()

    def advance(self, instructions: int) -> None:
        """Retire *instructions* non-memory instructions.

        If the ROB is full behind an incomplete load, the core first
        stalls until that load completes.
        """
        if instructions <= 0:
            return
        self.instructions += instructions
        self.cycle += instructions / self._width
        if self._outstanding:
            self._drain_completed()
            self._enforce_rob()

    def issue_load(self, completion_cycle: float) -> None:
        """Issue one load completing at *completion_cycle*.

        The load itself counts as one instruction.  A load that hits
        (completion <= now + L1 latency) barely perturbs the model; a
        miss parks in the outstanding queue and may later cause a stall
        via :meth:`_enforce_rob`.
        """
        self.instructions += 1
        self.cycle += 1.0 / self._width
        if self._outstanding:
            self._drain_completed()
        if completion_cycle > self.cycle:
            self._outstanding.append((self.instructions, completion_cycle))
        if self._outstanding:
            self._enforce_rob()

    def _enforce_rob(self) -> None:
        """Stall until the oldest load completes if the ROB filled behind it."""
        rob = self._rob_size
        while self._outstanding:
            issued_at, completion = self._outstanding[0]
            if self.instructions - issued_at < rob:
                break
            if completion > self.cycle:
                self.stall_cycles += completion - self.cycle
                self.cycle = completion
            self._outstanding.popleft()
            self._drain_completed()

    def drain(self) -> None:
        """Wait for all outstanding loads at the end of simulation."""
        if self._outstanding:
            last = max(c for _, c in self._outstanding)
            if last > self.cycle:
                self.stall_cycles += last - self.cycle
                self.cycle = last
            self._outstanding.clear()
