"""Top-level simulation entry points: single-core and multi-core lockstep.

Thin wrappers over the windowed :mod:`repro.sim.engine`.  `simulate`
replays one trace through one core + hierarchy; `simulate_multi` replays
one trace per core against a shared LLC and shared DRAM, advancing
whichever core is earliest in time — the trace-driven analogue of cycle
lockstep.  As in the paper, a core that exhausts its trace before the
others replays it from the beginning until every core has simulated its
quota.

Both loops support a warmup prefix (the paper warms 100 M of 600 M
instructions): warmup records train the caches and prefetcher but are
excluded from every reported statistic.  The engine adds — all off by
default — per-window telemetry (:class:`repro.sim.engine.Timeline`),
checkpoint/resume against a store namespace, and progress/cancellation
hooks; with every option off the wrappers replay through the exact PR 2
hot loop.
"""

from __future__ import annotations

from typing import Callable

from repro.prefetchers.base import Prefetcher
from repro.sim.config import SystemConfig
from repro.sim.engine import (  # noqa: F401  (re-exported: historical home)
    MultiCoreEngine,
    SimulationCancelled,
    SimulationEngine,
    SimulationResult,
    _gc_paused,
    _run_core,
    _stats_delta,
    _stats_snapshot,
)
from repro.sim.trace import Trace


def simulate(
    trace: Trace,
    config: SystemConfig | None = None,
    prefetcher: Prefetcher | None = None,
    warmup_fraction: float = 0.2,
    l1_prefetcher: Prefetcher | None = None,
    *,
    warmup_records: int | None = None,
    telemetry_window: int = 0,
    checkpoints=None,
    checkpoint_every: int = 0,
    progress: Callable[[int, int], None] | None = None,
    cancel: Callable[[], bool] | None = None,
) -> SimulationResult:
    """Run one trace on a single-core system; returns measured statistics.

    Args:
        trace: the memory-access trace to replay.
        config: system description (defaults to the paper's 1C baseline).
        prefetcher: L2-level prefetcher (defaults to no prefetching).
        warmup_fraction: leading fraction of the trace used for warmup.
        l1_prefetcher: optional L1 prefetcher (multi-level experiments).
        warmup_records: absolute warmup length in records, overriding
            *warmup_fraction* (keeps the warmup split fixed as the trace
            grows, which makes checkpoints extension-compatible).
        telemetry_window: records per telemetry window; > 0 attaches the
            per-window :attr:`SimulationResult.timeline` payload.
        checkpoints: checkpoint namespace to resume from / save into
            (see :meth:`repro.api.store.ResultStore.checkpoints`).
        checkpoint_every: checkpoint cadence in records (0 = end-of-run
            checkpoint only, when *checkpoints* is given).
        progress: ``callback(records_done, records_total)``.
        cancel: callable polled at epoch boundaries; truthy aborts with
            :class:`~repro.sim.engine.SimulationCancelled`.
    """
    return SimulationEngine(
        trace,
        config,
        prefetcher,
        warmup_fraction,
        l1_prefetcher,
        warmup_records=warmup_records,
        telemetry_window=telemetry_window,
        checkpoints=checkpoints,
        checkpoint_every=checkpoint_every,
        progress=progress,
        cancel=cancel,
    ).run()


def simulate_multi(
    traces: list[Trace],
    config: SystemConfig,
    prefetcher_factory,
    warmup_fraction: float = 0.1,
    records_per_core: int | None = None,
    *,
    warmup_records: int | None = None,
    telemetry_window: int = 0,
    progress: Callable[[int, int], None] | None = None,
    cancel: Callable[[], bool] | None = None,
) -> SimulationResult:
    """Run one trace per core against a shared LLC and DRAM.

    Args:
        traces: one trace per core (``len(traces) == config.num_cores``).
        config: multi-core system description.
        prefetcher_factory: zero-argument callable creating one private
            prefetcher instance per core (prefetchers are per-core
            hardware; state is not shared).
        warmup_fraction: leading fraction of each trace used for warmup.
        records_per_core: measured records each core must complete;
            defaults to the shortest trace's post-warmup length.  Cores
            replay their traces when exhausted, as in the paper.
        warmup_records: absolute per-core warmup length in records,
            overriding *warmup_fraction*.
        telemetry_window: lockstep steps per telemetry window (0 = off).
        progress: ``callback(min_measured, records_per_core)``.
        cancel: callable polled per step when given; truthy aborts.
    """
    return MultiCoreEngine(
        traces,
        config,
        prefetcher_factory,
        warmup_fraction,
        records_per_core,
        warmup_records=warmup_records,
        telemetry_window=telemetry_window,
        progress=progress,
        cancel=cancel,
    ).run()
