"""Top-level simulation loops: single-core and multi-core lockstep.

`simulate` replays one trace through one core + hierarchy.  `simulate_multi`
replays one trace per core against a shared LLC and shared DRAM, advancing
whichever core is earliest in time — the trace-driven analogue of cycle
lockstep.  As in the paper, a core that exhausts its trace before the others
replays it from the beginning until every core has simulated its quota.

Both loops support a warmup prefix (the paper warms 100 M of 600 M
instructions): warmup records train the caches and prefetcher but are
excluded from every reported statistic.
"""

from __future__ import annotations

import dataclasses
import gc
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable

from repro.prefetchers.base import Prefetcher, NoPrefetcher
from repro.sim.cache import Cache, CacheStats
from repro.sim.config import SystemConfig
from repro.sim.core import CoreModel
from repro.sim.dram import Dram
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.trace import Trace, TraceRecord


@dataclass
class SimulationResult:
    """Measured statistics from one simulation run (post-warmup only).

    The fields mirror what the paper's rollup scripts extract from
    ChampSim output: IPC, LLC demand load misses, DRAM read counts split
    by origin, prefetch usefulness, and bandwidth-bucket runtime.
    """

    trace_name: str
    prefetcher_name: str
    instructions: int
    cycles: float
    llc_load_misses: int
    llc_demand_hits: int
    dram_reads: int
    dram_demand_reads: int
    dram_prefetch_reads: int
    prefetches_issued: int
    useful_prefetches: int
    useless_prefetches: int
    late_prefetch_merges: int
    stall_cycles: float
    bw_bucket_fractions: list[float] = field(default_factory=lambda: [1.0, 0, 0, 0])
    per_core_ipc: list[float] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def prefetch_accuracy(self) -> float:
        """Useful / (useful + useless) judged prefetches."""
        judged = self.useful_prefetches + self.useless_prefetches
        if judged == 0:
            return 0.0
        return self.useful_prefetches / judged


def _stats_snapshot(stats: CacheStats) -> dict:
    return dataclasses.asdict(stats)


def _stats_delta(after: CacheStats, before: dict) -> CacheStats:
    current = dataclasses.asdict(after)
    return CacheStats(**{k: current[k] - before[k] for k in current})


class _RunState:
    """Mid-run counter snapshots used to exclude warmup from the stats."""

    def __init__(self, hierarchy: CacheHierarchy, core: CoreModel) -> None:
        self.hierarchy = hierarchy
        self.core = core
        self.mark_instructions = 0
        self.mark_cycles = 0.0
        self.mark_stalls = 0.0
        self.mark_llc: dict = _stats_snapshot(hierarchy.llc.stats)
        self.mark_l2: dict = _stats_snapshot(hierarchy.l2.stats)
        self.mark_dram = (0, 0, 0)
        self.mark_prefetches = (0, 0)

    def mark(self) -> None:
        self.mark_instructions = self.core.instructions
        self.mark_cycles = self.core.cycle
        self.mark_stalls = self.core.stall_cycles
        self.mark_llc = _stats_snapshot(self.hierarchy.llc.stats)
        self.mark_l2 = _stats_snapshot(self.hierarchy.l2.stats)
        dram = self.hierarchy.dram
        self.mark_dram = (
            dram.total_requests,
            dram.demand_requests,
            dram.prefetch_requests,
        )
        self.mark_prefetches = (
            self.hierarchy.prefetches_issued,
            self.hierarchy.late_prefetch_merges,
        )


@contextmanager
def _gc_paused():
    """Pause cyclic GC around the replay loop.

    The per-record hot path allocates heavily (EQ entries, contexts,
    state tuples) but creates no reference cycles, so generational
    collections only burn time scanning live simulator state.  The
    collector is re-enabled on exit (even on error); no collection is
    forced — a full collect here would scan every resident trace, and
    the next natural collection reclaims any cycles just as well.
    """
    if not gc.isenabled():
        yield  # already managed by an outer run (e.g. simulate_multi)
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def _run_core(
    hierarchy: CacheHierarchy,
    core: CoreModel,
    records: Iterable[TraceRecord],
) -> None:
    """Replay *records* through one core + hierarchy.

    This is the innermost simulation loop: every record costs exactly
    three calls, with the bound methods hoisted out of the loop so the
    per-record attribute walks disappear from the profile.  Callers pass
    any record iterable (``itertools.islice`` views for the
    warmup/measure split), so the trace is never re-sliced or copied.
    """
    advance = core.advance
    demand_access = hierarchy.demand_access
    issue_load = core.issue_load
    for record in records:
        advance(record.gap)
        issue_load(demand_access(record, int(core.cycle)))
    core.drain()


def simulate(
    trace: Trace,
    config: SystemConfig | None = None,
    prefetcher: Prefetcher | None = None,
    warmup_fraction: float = 0.2,
    l1_prefetcher: Prefetcher | None = None,
) -> SimulationResult:
    """Run one trace on a single-core system; returns measured statistics.

    Args:
        trace: the memory-access trace to replay.
        config: system description (defaults to the paper's 1C baseline).
        prefetcher: L2-level prefetcher (defaults to no prefetching).
        warmup_fraction: leading fraction of the trace used for warmup.
        l1_prefetcher: optional L1 prefetcher (multi-level experiments).
    """
    config = config if config is not None else SystemConfig(num_cores=1)
    prefetcher = prefetcher if prefetcher is not None else NoPrefetcher()
    hierarchy = CacheHierarchy(config, prefetcher, l1_prefetcher=l1_prefetcher)
    core = CoreModel(config.core)
    state = _RunState(hierarchy, core)

    records = trace.records
    split = int(len(trace) * warmup_fraction)
    with _gc_paused():
        if split > 0:
            _run_core(hierarchy, core, islice(records, 0, split))
        state.mark()
        _run_core(hierarchy, core, islice(records, split, None))
        hierarchy.flush_pending()

    llc_stats = _stats_delta(hierarchy.llc.stats, state.mark_llc)
    l2_stats = _stats_delta(hierarchy.l2.stats, state.mark_l2)
    dram = hierarchy.dram
    instructions = core.instructions - state.mark_instructions
    cycles = core.cycle - state.mark_cycles
    return SimulationResult(
        trace_name=trace.name,
        prefetcher_name=prefetcher.name,
        instructions=instructions,
        cycles=cycles,
        llc_load_misses=llc_stats.load_misses,
        llc_demand_hits=llc_stats.demand_hits,
        dram_reads=dram.total_requests - state.mark_dram[0],
        dram_demand_reads=dram.demand_requests - state.mark_dram[1],
        dram_prefetch_reads=dram.prefetch_requests - state.mark_dram[2],
        prefetches_issued=hierarchy.prefetches_issued - state.mark_prefetches[0],
        useful_prefetches=llc_stats.useful_prefetches + l2_stats.useful_prefetches,
        useless_prefetches=llc_stats.useless_evictions,
        late_prefetch_merges=hierarchy.late_prefetch_merges - state.mark_prefetches[1],
        stall_cycles=core.stall_cycles - state.mark_stalls,
        bw_bucket_fractions=dram.bucket_fractions(),
        per_core_ipc=[instructions / cycles if cycles > 0 else 0.0],
    )


def simulate_multi(
    traces: list[Trace],
    config: SystemConfig,
    prefetcher_factory,
    warmup_fraction: float = 0.1,
    records_per_core: int | None = None,
) -> SimulationResult:
    """Run one trace per core against a shared LLC and DRAM.

    Args:
        traces: one trace per core (``len(traces) == config.num_cores``).
        config: multi-core system description.
        prefetcher_factory: zero-argument callable creating one private
            prefetcher instance per core (prefetchers are per-core
            hardware; state is not shared).
        warmup_fraction: leading fraction of each trace used for warmup.
        records_per_core: measured records each core must complete;
            defaults to the shortest trace's post-warmup length.  Cores
            replay their traces when exhausted, as in the paper.
    """
    if len(traces) != config.num_cores:
        raise ValueError("need exactly one trace per core")

    dram = Dram(config.dram)
    import dataclasses as _dc

    shared_llc_geom = _dc.replace(
        config.llc, size_bytes=config.llc.size_bytes * config.num_cores
    )
    llc = Cache("LLC", shared_llc_geom)
    hierarchies = [
        CacheHierarchy(config, prefetcher_factory(), dram=dram, llc=llc, core_id=i)
        for i in range(config.num_cores)
    ]
    cores = [CoreModel(config.core) for _ in range(config.num_cores)]
    cursors = [0] * config.num_cores
    warm_remaining = [int(len(t) * warmup_fraction) for t in traces]
    if records_per_core is None:
        records_per_core = min(len(t) - w for t, w in zip(traces, warm_remaining))
    measured = [0] * config.num_cores
    marks: list[_RunState | None] = [None] * config.num_cores

    def step(core_idx: int) -> None:
        trace = traces[core_idx]
        record = trace[cursors[core_idx] % len(trace)]
        cursors[core_idx] += 1
        core = cores[core_idx]
        core.advance(record.gap)
        completion = hierarchies[core_idx].demand_access(record, int(core.cycle))
        core.issue_load(completion)
        if warm_remaining[core_idx] > 0:
            warm_remaining[core_idx] -= 1
            if warm_remaining[core_idx] == 0:
                state = _RunState(hierarchies[core_idx], core)
                state.mark()
                marks[core_idx] = state
        else:
            if marks[core_idx] is None:
                state = _RunState(hierarchies[core_idx], core)
                state.mark()
                marks[core_idx] = state
            measured[core_idx] += 1

    # Kick off warmup/measurement: advance the earliest core each step.
    with _gc_paused():
        while any(m < records_per_core for m in measured):
            active = [
                i for i in range(config.num_cores) if measured[i] < records_per_core
            ]
            core_idx = min(active, key=lambda i: cores[i].cycle)
            step(core_idx)

        for core, h in zip(cores, hierarchies):
            core.drain()
            h.flush_pending()

    instructions = 0
    cycles = 0.0
    stall = 0.0
    llc_misses = 0
    llc_hits = 0
    prefetches = 0
    late = 0
    useful = 0
    useless = 0
    per_core_ipc = []
    for core, h, mark in zip(cores, hierarchies, marks):
        assert mark is not None
        d_instr = core.instructions - mark.mark_instructions
        d_cyc = core.cycle - mark.mark_cycles
        instructions += d_instr
        cycles = max(cycles, d_cyc)
        stall += core.stall_cycles - mark.mark_stalls
        prefetches += h.prefetches_issued - mark.mark_prefetches[0]
        late += h.late_prefetch_merges - mark.mark_prefetches[1]
        per_core_ipc.append(d_instr / d_cyc if d_cyc > 0 else 0.0)

    # Shared-LLC stats: subtract the earliest mark (approximation: the
    # shared stats cannot be attributed per core exactly, matching how
    # multi-programmed rollups report aggregate LLC behaviour).
    first_mark = next(m for m in marks if m is not None)
    llc_stats = _stats_delta(llc.stats, first_mark.mark_llc)
    llc_misses = llc_stats.load_misses
    llc_hits = llc_stats.demand_hits
    useful = llc_stats.useful_prefetches
    useless = llc_stats.useless_evictions
    dram_marks = first_mark.mark_dram

    return SimulationResult(
        trace_name="+".join(t.name for t in traces),
        prefetcher_name=hierarchies[0].prefetcher.name,
        instructions=instructions,
        cycles=cycles,
        llc_load_misses=llc_misses,
        llc_demand_hits=llc_hits,
        dram_reads=dram.total_requests - dram_marks[0],
        dram_demand_reads=dram.demand_requests - dram_marks[1],
        dram_prefetch_reads=dram.prefetch_requests - dram_marks[2],
        prefetches_issued=prefetches,
        useful_prefetches=useful,
        useless_prefetches=useless,
        late_prefetch_merges=late,
        stall_cycles=stall,
        bw_bucket_fractions=dram.bucket_fractions(),
        per_core_ipc=per_core_ipc,
    )
