"""Runner: legacy execution facade, now a thin shim over :mod:`repro.api`.

Historically this module owned its own in-memory caches; today it wraps
a memory-only :class:`repro.api.Session`, which keys every result by a
*complete* fingerprint of (trace, trace length, warmup fraction,
prefetcher spec, full system config).  That fixes the old
``_config_key`` under-keying bug where configs differing only in L1/L2
geometry, trace length, or warmup silently shared a cached baseline.

New code should use :class:`repro.api.Session` directly — it adds
declarative experiments, parallel executors, and a disk-persistent
result store.  ``Runner`` remains for the tuning loops and existing
benchmarks.
"""

from __future__ import annotations

from repro.api import ResultStore, Session
from repro.harness.experiment import ExperimentSpec, RunRecord
from repro.sim.config import SystemConfig
from repro.sim.system import SimulationResult
from repro.sim.trace import Trace


def make_trace(name: str, length: int) -> Trace:
    """Instantiate a trace by name (deprecated: use :func:`repro.registry.make_trace`)."""
    from repro import registry

    return registry.make_trace(name, length)


class Runner:
    """Executes (trace, prefetcher, system) tuples with caching.

    Args:
        trace_length: accesses per generated trace.
        warmup_fraction: leading fraction excluded from statistics.
        session: optional pre-configured :class:`Session` to execute on;
            by default a private memory-only session is created (the
            historical Runner semantics — nothing touches disk).
    """

    def __init__(
        self,
        trace_length: int | None = None,
        warmup_fraction: float | None = None,
        session: Session | None = None,
    ) -> None:
        if session is not None:
            if trace_length is not None or warmup_fraction is not None:
                raise ValueError(
                    "pass either a pre-configured session or explicit "
                    "trace_length/warmup_fraction, not both"
                )
            self.session = session
        else:
            self.session = Session(
                store=ResultStore(),
                trace_length=trace_length if trace_length is not None else 20_000,
                warmup_fraction=warmup_fraction if warmup_fraction is not None else 0.2,
            )
        self.trace_length = self.session.trace_length
        self.warmup_fraction = self.session.warmup_fraction

    def trace(self, name: str) -> Trace:
        """Cached trace instantiation."""
        return self.session.trace(name)

    def baseline(self, trace_name: str, config: SystemConfig) -> SimulationResult:
        """Cached no-prefetching run of *trace_name* on *config*."""
        return self.session.baseline(trace_name, config)

    def run(
        self,
        trace_name: str,
        prefetcher_name: str,
        config: SystemConfig | None = None,
        l1_prefetcher_name: str | None = None,
    ) -> RunRecord:
        """Run one (trace, prefetcher) pair and pair it with its baseline."""
        cell = self.session.run_one(
            trace_name,
            prefetcher_name,
            system=config if config is not None else SystemConfig(),
            l1_prefetcher=l1_prefetcher_name,
        )
        return RunRecord(
            trace_name=cell.trace_name,
            suite=cell.suite,
            prefetcher=prefetcher_name,
            result=cell.result,
            baseline=cell.baseline,
        )

    def run_experiment(self, spec: ExperimentSpec) -> list[RunRecord]:
        """Run the full cross product of a spec's traces × prefetchers."""
        return [
            self.run(trace_name, prefetcher_name, spec.config)
            for trace_name in spec.trace_names
            for prefetcher_name in spec.prefetchers
        ]

    def run_mix(
        self,
        traces: list[Trace],
        prefetcher_name: str,
        config: SystemConfig,
    ) -> tuple[SimulationResult, SimulationResult]:
        """Run a multi-core mix; returns (result, no-prefetch baseline)."""
        return self.session.run_mix(traces, prefetcher_name, config)
