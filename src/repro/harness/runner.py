"""Deprecated ``Runner`` shim — use :class:`repro.api.Session` instead.

Every capability this facade ever had lives in :mod:`repro.api`:
declarative experiments (:meth:`Session.run`), single cells
(:meth:`Session.run_one` / :meth:`Session.baseline`), multi-core mixes
(:meth:`Experiment.with_mixes` / :meth:`Session.run_mix`), parallel
executors, and the persistent result store.  The tuning loops, figure
builders, benches and examples all speak ``Session`` natively now; this
stub remains only so external scripts keep importing, warns on
construction, and is slated for removal in a future PR.
"""

from __future__ import annotations

import warnings

from repro.api import ResultStore, Session
from repro.harness.experiment import RunRecord
from repro.sim.config import SystemConfig
from repro.sim.system import SimulationResult
from repro.sim.trace import Trace


class Runner:
    """Deprecated thin forwarding shim over a memory-only :class:`Session`.

    Args:
        trace_length: accesses per generated trace.
        warmup_fraction: leading fraction excluded from statistics.
        session: optional pre-configured :class:`Session` to execute on;
            by default a private memory-only session is created (the
            historical Runner semantics — nothing touches disk).
    """

    def __init__(
        self,
        trace_length: int | None = None,
        warmup_fraction: float | None = None,
        session: Session | None = None,
    ) -> None:
        warnings.warn(
            "repro.harness.Runner is deprecated and slated for removal; "
            "use repro.api.Session directly",
            DeprecationWarning,
            stacklevel=2,
        )
        if session is not None:
            if trace_length is not None or warmup_fraction is not None:
                raise ValueError(
                    "pass either a pre-configured session or explicit "
                    "trace_length/warmup_fraction, not both"
                )
            self.session = session
        else:
            self.session = Session(
                store=ResultStore(),
                trace_length=trace_length if trace_length is not None else 20_000,
                warmup_fraction=warmup_fraction if warmup_fraction is not None else 0.2,
            )
        self.trace_length = self.session.trace_length
        self.warmup_fraction = self.session.warmup_fraction

    def trace(self, name: str) -> Trace:
        """Deprecated: use :meth:`Session.trace`."""
        return self.session.trace(name)

    def baseline(self, trace_name: str, config: SystemConfig) -> SimulationResult:
        """Deprecated: use :meth:`Session.baseline`."""
        return self.session.baseline(trace_name, config)

    def run(
        self,
        trace_name: str,
        prefetcher_name: str,
        config: SystemConfig | None = None,
        l1_prefetcher_name: str | None = None,
    ) -> RunRecord:
        """Deprecated: use :meth:`Session.run_one`."""
        cell = self.session.run_one(
            trace_name,
            prefetcher_name,
            system=config if config is not None else SystemConfig(),
            l1_prefetcher=l1_prefetcher_name,
        )
        return RunRecord(
            trace_name=cell.trace_name,
            suite=cell.suite,
            prefetcher=prefetcher_name,
            result=cell.result,
            baseline=cell.baseline,
        )

    def run_experiment(self, spec) -> list[RunRecord]:
        """Deprecated: use :meth:`Session.run` with an :class:`Experiment`."""
        return [
            self.run(trace_name, prefetcher_name, spec.config)
            for trace_name in spec.trace_names
            for prefetcher_name in spec.prefetchers
        ]

    def run_mix(
        self,
        traces: list[Trace],
        prefetcher_name: str,
        config: SystemConfig,
    ) -> tuple[SimulationResult, SimulationResult]:
        """Deprecated: use :meth:`Experiment.with_mixes` or :meth:`Session.run_mix`."""
        return self.session.run_mix(traces, prefetcher_name, config)
