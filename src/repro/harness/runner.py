"""Runner: executes experiments with trace and baseline caching.

Every metric in the paper is relative to the no-prefetching baseline of
the same trace on the same system, so the runner memoizes baseline
results per (trace, config) — the dominant cost saver when comparing
many prefetchers.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentSpec, RunRecord
from repro.prefetchers.registry import create
from repro.sim.config import SystemConfig
from repro.sim.system import SimulationResult, simulate, simulate_multi
from repro.sim.trace import Trace
from repro.workloads.cvp import generate_cvp_trace
from repro.workloads.generators import generate_trace


def make_trace(name: str, length: int) -> Trace:
    """Instantiate a trace by name, handling the CVP (unseen) namespace."""
    if name.startswith("cvp/"):
        return generate_cvp_trace(name, length=length)
    return generate_trace(name, length=length)


class Runner:
    """Executes (trace, prefetcher, system) tuples with caching.

    Args:
        trace_length: accesses per generated trace.
        warmup_fraction: leading fraction excluded from statistics.
    """

    def __init__(self, trace_length: int = 20_000, warmup_fraction: float = 0.2) -> None:
        self.trace_length = trace_length
        self.warmup_fraction = warmup_fraction
        self._traces: dict[str, Trace] = {}
        self._baselines: dict[tuple[str, int], SimulationResult] = {}

    def trace(self, name: str) -> Trace:
        """Cached trace instantiation."""
        if name not in self._traces:
            self._traces[name] = make_trace(name, self.trace_length)
        return self._traces[name]

    def _config_key(self, config: SystemConfig) -> int:
        return hash(
            (
                config.num_cores,
                config.llc.size_bytes,
                config.dram.mtps,
                config.dram.channels,
            )
        )

    def baseline(self, trace_name: str, config: SystemConfig) -> SimulationResult:
        """Cached no-prefetching run of *trace_name* on *config*."""
        key = (trace_name, self._config_key(config))
        if key not in self._baselines:
            self._baselines[key] = simulate(
                self.trace(trace_name),
                config,
                warmup_fraction=self.warmup_fraction,
            )
        return self._baselines[key]

    def run(
        self,
        trace_name: str,
        prefetcher_name: str,
        config: SystemConfig | None = None,
        l1_prefetcher_name: str | None = None,
    ) -> RunRecord:
        """Run one (trace, prefetcher) pair and pair it with its baseline."""
        config = config if config is not None else SystemConfig()
        trace = self.trace(trace_name)
        if prefetcher_name == "none":
            result = self.baseline(trace_name, config)
        else:
            l1 = create(l1_prefetcher_name) if l1_prefetcher_name else None
            result = simulate(
                trace,
                config,
                create(prefetcher_name),
                warmup_fraction=self.warmup_fraction,
                l1_prefetcher=l1,
            )
        return RunRecord(
            trace_name=trace_name,
            suite=trace.suite,
            prefetcher=prefetcher_name,
            result=result,
            baseline=self.baseline(trace_name, config),
        )

    def run_experiment(self, spec: ExperimentSpec) -> list[RunRecord]:
        """Run the full cross product of a spec's traces × prefetchers."""
        records: list[RunRecord] = []
        for trace_name in spec.trace_names:
            for prefetcher_name in spec.prefetchers:
                records.append(self.run(trace_name, prefetcher_name, spec.config))
        return records

    def run_mix(
        self,
        traces: list[Trace],
        prefetcher_name: str,
        config: SystemConfig,
    ) -> tuple[SimulationResult, SimulationResult]:
        """Run a multi-core mix; returns (result, no-prefetch baseline)."""
        baseline = simulate_multi(
            traces,
            config,
            prefetcher_factory=lambda: create("none"),
            warmup_fraction=self.warmup_fraction,
        )
        result = simulate_multi(
            traces,
            config,
            prefetcher_factory=lambda: create(prefetcher_name),
            warmup_fraction=self.warmup_fraction,
        )
        return result, baseline
