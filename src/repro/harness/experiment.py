"""Experiment descriptions and per-run records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.config import SystemConfig
from repro.sim.metrics import coverage, overprediction, speedup
from repro.sim.system import SimulationResult


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: a set of traces × prefetchers on one system.

    Attributes:
        name: experiment identifier (e.g. ``"fig9a"``).
        trace_names: workload traces to run.
        prefetchers: registry names to compare.
        config: simulated system.
        trace_length: accesses per generated trace.
        warmup_fraction: leading fraction excluded from statistics.
    """

    name: str
    trace_names: tuple[str, ...]
    prefetchers: tuple[str, ...]
    config: SystemConfig = field(default_factory=SystemConfig)
    trace_length: int = 20_000
    warmup_fraction: float = 0.2

    def to_experiment(self):
        """Bridge to the declarative :class:`repro.api.Experiment`.

        ``Session.run`` accepts an ``ExperimentSpec`` directly via this
        hook, so legacy specs ride the new executor/store machinery.
        """
        from repro.api import Experiment

        return (
            Experiment.define(self.name)
            .with_traces(*self.trace_names)
            .with_prefetchers(*self.prefetchers)
            .with_systems(self.config)
            .with_length(self.trace_length)
            .with_warmup(self.warmup_fraction)
        )


@dataclass
class RunRecord:
    """One (trace, prefetcher) measurement paired with its baseline."""

    trace_name: str
    suite: str
    prefetcher: str
    result: SimulationResult
    baseline: SimulationResult

    @property
    def speedup(self) -> float:
        """IPC over the no-prefetching baseline."""
        return speedup(self.result, self.baseline)

    @property
    def coverage(self) -> float:
        """Fraction of baseline LLC load misses eliminated."""
        return coverage(self.result, self.baseline)

    @property
    def overprediction(self) -> float:
        """Extra DRAM reads per baseline DRAM read."""
        return overprediction(self.result, self.baseline)
