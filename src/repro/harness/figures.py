"""Programmatic per-figure builders, on the declarative Session API.

The benchmarks under ``benchmarks/`` are the canonical regenerators (one
pytest-benchmark file per table/figure); this module exposes the same
sweeps as plain functions so notebooks and scripts can build a figure's
data without pytest.  Each builder composes one
:class:`repro.api.Experiment`, runs it through a
:class:`repro.api.Session` (so cells are cached and can execute in
parallel), and shapes the :class:`repro.api.ResultSet` with its
group/pivot/rollup queries.  Builders take a ``Session`` and return
plain dict/list structures ready for tabulation or plotting.
"""

from __future__ import annotations

from repro.api import Session
from repro.harness.rollup import coverage_rollup
from repro.sim.config import SystemConfig

#: The paper's headline competitors in figure order.
DEFAULT_PREFETCHERS: tuple[str, ...] = ("spp", "bingo", "mlop", "pythia")


def fig1_motivation(
    session: Session,
    traces: list[str],
    prefetchers: tuple[str, ...] = ("spp", "bingo", "pythia"),
) -> list[dict]:
    """Fig 1 rows: coverage/overprediction/IPC per (workload, prefetcher)."""
    results = session.run(
        session.experiment("fig1").with_traces(*traces).with_prefetchers(*prefetchers)
    )
    return [
        {
            "workload": row["trace"],
            "prefetcher": row["prefetcher"],
            "coverage": row["coverage"],
            "overprediction": row["overprediction"],
            "ipc_improvement": row["speedup"] - 1.0,
        }
        for row in results.to_rows()
    ]


def fig7_coverage(
    session: Session,
    traces_by_suite: dict[str, list[str]],
    prefetchers: tuple[str, ...] = DEFAULT_PREFETCHERS,
) -> dict[str, dict[str, tuple[float, float]]]:
    """Fig 7: suite → prefetcher → (coverage, overprediction)."""
    traces = [t for suite_traces in traces_by_suite.values() for t in suite_traces]
    results = session.run(
        session.experiment("fig7").with_traces(*traces).with_prefetchers(*prefetchers)
    )
    return coverage_rollup(results)


def fig8b_bandwidth_sweep(
    session: Session,
    traces: list[str],
    mtps_points: list[int],
    prefetchers: tuple[str, ...] = DEFAULT_PREFETCHERS,
) -> dict[str, dict[int, float]]:
    """Fig 8b: prefetcher → MTPS → geomean speedup."""
    results = session.run(
        session.experiment("fig8b")
        .with_traces(*traces)
        .with_prefetchers(*prefetchers)
        .sweep_mtps(mtps_points)
    )
    pivoted = results.pivot("prefetcher", "system")
    return {
        pf: {
            int(label.removeprefix("mtps=")): value
            for label, value in by_system.items()
        }
        for pf, by_system in pivoted.items()
    }


def fig8c_llc_sweep(
    session: Session,
    traces: list[str],
    llc_factors: list[float],
    prefetchers: tuple[str, ...] = DEFAULT_PREFETCHERS,
) -> dict[str, dict[float, float]]:
    """Fig 8c: prefetcher → LLC scale factor → geomean speedup."""
    results = session.run(
        session.experiment("fig8c")
        .with_traces(*traces)
        .with_prefetchers(*prefetchers)
        .sweep_llc(llc_factors)
    )
    pivoted = results.pivot("prefetcher", "system")
    return {
        pf: {
            float(label.removeprefix("llc_scale=")): value
            for label, value in by_system.items()
        }
        for pf, by_system in pivoted.items()
    }


def fig9a_per_suite(
    session: Session,
    traces_by_suite: dict[str, list[str]],
    prefetchers: tuple[str, ...] = DEFAULT_PREFETCHERS,
    config: SystemConfig | None = None,
) -> dict[str, dict[str, float]]:
    """Fig 9a: suite → prefetcher → geomean speedup."""
    traces = [t for suite_traces in traces_by_suite.values() for t in suite_traces]
    experiment = (
        session.experiment("fig9a").with_traces(*traces).with_prefetchers(*prefetchers)
    )
    if config is not None:
        experiment = experiment.with_systems(config)
    return session.run(experiment).rollup("suite", "prefetcher")


def fig9a_per_suite_ci(
    session: Session,
    traces_by_suite: dict[str, list[str]],
    prefetchers: tuple[str, ...] = DEFAULT_PREFETCHERS,
    seeds: int = 3,
) -> dict[str, dict[str, dict[str, float]]]:
    """Fig 9a with error bars: suite → prefetcher → per-workload stats.

    Replicates every cell across *seeds* trace seeds
    (:meth:`~repro.api.Experiment.with_seeds`) and reports, per
    (suite, prefetcher): ``mean`` (over all replicates), ``seed_std``
    and ``seed_ci95`` (each the mean across the suite's workloads of
    that workload's seed-replicate spread — cross-workload
    heterogeneity is deliberately kept out of the error bar), and the
    workload/replicate counts.  This is the variance the single-draw
    builders cannot see.
    """
    traces = [t for suite_traces in traces_by_suite.values() for t in suite_traces]
    results = session.run(
        session.experiment("fig9a-ci")
        .with_traces(*traces)
        .with_prefetchers(*prefetchers)
        .with_seeds(seeds)
    )
    out: dict[str, dict[str, dict[str, float]]] = {}
    for suite, by_suite in results.group("suite").items():
        out[suite] = {}
        for prefetcher, subset in by_suite.group("prefetcher").items():
            per_workload = [
                group.summary("speedup")
                for group in subset.group("trace_name").values()
            ]
            count = len(per_workload)
            out[suite][prefetcher] = {
                "mean": subset.mean("speedup"),
                "seed_std": sum(s["std"] for s in per_workload) / count,
                "seed_ci95": sum(s["ci95"] for s in per_workload) / count,
                "workloads": count,
                "n": len(subset),
            }
    return out


def fig9b_combinations(
    session: Session,
    traces: list[str],
    combos: tuple[str, ...] = ("st", "st+s", "st+s+b", "st+s+b+d", "st+s+b+d+m", "pythia"),
) -> dict[str, float]:
    """Fig 9b: scheme → geomean speedup over the trace list."""
    results = session.run(
        session.experiment("fig9b").with_traces(*traces).with_prefetchers(*combos)
    )
    return results.rollup("prefetcher")


def phase_behavior(
    session: Session,
    trace: str,
    prefetchers: tuple[str, ...] = DEFAULT_PREFETCHERS,
    window: int = 2_000,
    metric: str = "ipc",
    rel_tol: float = 0.25,
) -> dict[str, dict]:
    """Per-window phase behaviour of one workload under each prefetcher.

    Runs the trace with per-window telemetry
    (:meth:`~repro.api.Experiment.with_telemetry`) and returns, per
    prefetcher::

        {"windows": [{"window", "start_record", "end_record", metric}],
         "phases":  [{"start_record", "end_record", "windows", "mean"}]}

    ``windows`` is the line to plot (measured region only, one point per
    *window* records); ``phases`` is the engine's greedy change-point
    segmentation of the same series — the behaviour the aggregate
    figures average away (phase changes, prefetch timeliness drift).
    """
    results = session.run(
        session.experiment("phase-behavior")
        .with_traces(trace)
        .with_prefetchers(*prefetchers)
        .with_telemetry(window=window)
    )
    out: dict[str, dict] = {}
    for prefetcher, subset in results.group("prefetcher").items():
        record = subset[0]
        timeline = record.timeline().measured()
        out[prefetcher] = {
            "windows": [
                {
                    "window": row.index,
                    "start_record": row.start_record,
                    "end_record": row.end_record,
                    metric: getattr(row, metric),
                }
                for row in timeline
            ],
            "phases": [
                {
                    "start_record": phase.start_record,
                    "end_record": phase.end_record,
                    "windows": phase.windows,
                    "mean": phase.mean,
                }
                for phase in timeline.phases(metric=metric, rel_tol=rel_tol)
            ],
        }
    return out


def fig15_strict_vs_basic(
    session: Session, ligra_traces: list[str]
) -> list[dict]:
    """Fig 15 rows: per-workload basic vs strict Pythia speedups."""
    results = session.run(
        session.experiment("fig15")
        .with_traces(*ligra_traces)
        .with_prefetchers("pythia", "pythia_strict")
    )
    rows = []
    for trace, subset in results.group("trace_name").items():
        basic = subset.filter(prefetcher="pythia").geomean()
        strict = subset.filter(prefetcher="pythia_strict").geomean()
        rows.append(
            {
                "workload": trace,
                "basic": basic,
                "strict": strict,
                "delta": strict / basic - 1.0,
            }
        )
    return rows
