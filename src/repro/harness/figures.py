"""Programmatic per-figure builders.

The benchmarks under ``benchmarks/`` are the canonical regenerators (one
pytest-benchmark file per table/figure); this module exposes the same
sweeps as plain functions so notebooks and scripts can build a figure's
data without pytest.  Each builder returns plain dict/list structures
ready for tabulation or plotting.
"""

from __future__ import annotations

from repro.harness.rollup import (
    coverage_rollup,
    per_prefetcher_geomean,
    per_suite_geomean,
)
from repro.harness.runner import Runner
from repro.sim.config import SystemConfig, baseline_single_core
from repro.sim.metrics import geomean

#: The paper's headline competitors in figure order.
DEFAULT_PREFETCHERS: tuple[str, ...] = ("spp", "bingo", "mlop", "pythia")


def fig1_motivation(
    runner: Runner,
    traces: list[str],
    prefetchers: tuple[str, ...] = ("spp", "bingo", "pythia"),
) -> list[dict]:
    """Fig 1 rows: coverage/overprediction/IPC per (workload, prefetcher)."""
    rows = []
    for trace in traces:
        for pf in prefetchers:
            record = runner.run(trace, pf)
            rows.append(
                {
                    "workload": trace,
                    "prefetcher": pf,
                    "coverage": record.coverage,
                    "overprediction": record.overprediction,
                    "ipc_improvement": record.speedup - 1.0,
                }
            )
    return rows


def fig7_coverage(
    runner: Runner,
    traces_by_suite: dict[str, list[str]],
    prefetchers: tuple[str, ...] = DEFAULT_PREFETCHERS,
) -> dict[str, dict[str, tuple[float, float]]]:
    """Fig 7: suite → prefetcher → (coverage, overprediction)."""
    records = [
        runner.run(trace, pf)
        for traces in traces_by_suite.values()
        for trace in traces
        for pf in prefetchers
    ]
    return coverage_rollup(records)


def fig8b_bandwidth_sweep(
    runner: Runner,
    traces: list[str],
    mtps_points: list[int],
    prefetchers: tuple[str, ...] = DEFAULT_PREFETCHERS,
) -> dict[str, dict[int, float]]:
    """Fig 8b: prefetcher → MTPS → geomean speedup."""
    series: dict[str, dict[int, float]] = {pf: {} for pf in prefetchers}
    for mtps in mtps_points:
        config = baseline_single_core().with_mtps(mtps)
        for pf in prefetchers:
            speeds = [runner.run(t, pf, config).speedup for t in traces]
            series[pf][mtps] = geomean(speeds)
    return series


def fig8c_llc_sweep(
    runner: Runner,
    traces: list[str],
    llc_factors: list[float],
    prefetchers: tuple[str, ...] = DEFAULT_PREFETCHERS,
) -> dict[str, dict[float, float]]:
    """Fig 8c: prefetcher → LLC scale factor → geomean speedup."""
    series: dict[str, dict[float, float]] = {pf: {} for pf in prefetchers}
    for factor in llc_factors:
        config = baseline_single_core().scaled_llc(factor)
        for pf in prefetchers:
            speeds = [runner.run(t, pf, config).speedup for t in traces]
            series[pf][factor] = geomean(speeds)
    return series


def fig9a_per_suite(
    runner: Runner,
    traces_by_suite: dict[str, list[str]],
    prefetchers: tuple[str, ...] = DEFAULT_PREFETCHERS,
    config: SystemConfig | None = None,
) -> dict[str, dict[str, float]]:
    """Fig 9a: suite → prefetcher → geomean speedup."""
    config = config if config is not None else baseline_single_core()
    records = [
        runner.run(trace, pf, config)
        for traces in traces_by_suite.values()
        for trace in traces
        for pf in prefetchers
    ]
    return per_suite_geomean(records)


def fig9b_combinations(
    runner: Runner,
    traces: list[str],
    combos: tuple[str, ...] = ("st", "st+s", "st+s+b", "st+s+b+d", "st+s+b+d+m", "pythia"),
) -> dict[str, float]:
    """Fig 9b: scheme → geomean speedup over the trace list."""
    records = [runner.run(t, combo) for t in traces for combo in combos]
    return per_prefetcher_geomean(records)


def fig15_strict_vs_basic(
    runner: Runner, ligra_traces: list[str]
) -> list[dict]:
    """Fig 15 rows: per-workload basic vs strict Pythia speedups."""
    rows = []
    for trace in ligra_traces:
        basic = runner.run(trace, "pythia")
        strict = runner.run(trace, "pythia_strict")
        rows.append(
            {
                "workload": trace,
                "basic": basic.speedup,
                "strict": strict.speedup,
                "delta": strict.speedup / basic.speedup - 1.0,
            }
        )
    return rows
