"""Metric rollups: the artifact's ``rollup.pl`` + pivot tables in Python."""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.sim.metrics import geomean

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.resultset import CellResult as RunRecord


def per_prefetcher_geomean(records: "Iterable[RunRecord]") -> dict[str, float]:
    """Geomean speedup per prefetcher across all records."""
    buckets: dict[str, list[float]] = defaultdict(list)
    for record in records:
        buckets[record.prefetcher].append(record.speedup)
    return {name: geomean(vals) for name, vals in buckets.items()}


def per_suite_geomean(
    records: "Iterable[RunRecord]",
) -> dict[str, dict[str, float]]:
    """Nested rollup: suite → prefetcher → geomean speedup (Fig 9a/10a)."""
    buckets: dict[str, dict[str, list[float]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for record in records:
        buckets[record.suite][record.prefetcher].append(record.speedup)
    return {
        suite: {name: geomean(vals) for name, vals in by_pf.items()}
        for suite, by_pf in buckets.items()
    }


def coverage_rollup(
    records: "Iterable[RunRecord]",
) -> dict[str, dict[str, tuple[float, float]]]:
    """Suite → prefetcher → (mean coverage, mean overprediction) (Fig 7)."""
    buckets: dict[str, dict[str, list[tuple[float, float]]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for record in records:
        buckets[record.suite][record.prefetcher].append(
            (record.coverage, record.overprediction)
        )
    out: dict[str, dict[str, tuple[float, float]]] = {}
    for suite, by_pf in buckets.items():
        out[suite] = {}
        for name, pairs in by_pf.items():
            cov = sum(p[0] for p in pairs) / len(pairs)
            over = sum(p[1] for p in pairs) / len(pairs)
            out[suite][name] = (cov, over)
    return out


def sorted_speedups(
    records: "Sequence[RunRecord]", prefetcher: str
) -> list[tuple[str, float]]:
    """Per-trace speedups of one prefetcher, ascending (Fig 17/18 lines)."""
    rows = [
        (r.trace_name, r.speedup) for r in records if r.prefetcher == prefetcher
    ]
    rows.sort(key=lambda pair: pair[1])
    return rows


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Plain-text table used by bench output (the paper-row printer)."""
    materialized = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)
