"""Experiment harness: run specs, rollups, and per-figure builders.

This is the Python replacement for the paper artifact's perl/slurm/Excel
pipeline: :mod:`repro.harness.runner` executes (trace, prefetcher,
system) tuples with baseline caching, :mod:`repro.harness.rollup`
aggregates them the way the artifact's ``rollup.pl`` + pivot tables do,
and :mod:`repro.harness.figures` regenerates each figure's rows.

The execution layer now lives in :mod:`repro.api` (declarative
experiments, pluggable executors, persistent result store); ``Runner``
is a compatibility shim over a memory-only ``Session``.
"""

from repro.harness.experiment import ExperimentSpec, RunRecord
from repro.harness.runner import Runner
from repro.harness.rollup import (
    per_prefetcher_geomean,
    per_suite_geomean,
    sorted_speedups,
)

__all__ = [
    "ExperimentSpec",
    "RunRecord",
    "Runner",
    "per_prefetcher_geomean",
    "per_suite_geomean",
    "sorted_speedups",
]
