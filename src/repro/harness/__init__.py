"""Experiment harness: rollups and per-figure builders.

This is the Python replacement for the paper artifact's perl/slurm/Excel
pipeline: :mod:`repro.harness.rollup` aggregates run records the way
the artifact's ``rollup.pl`` + pivot tables do, and
:mod:`repro.harness.figures` regenerates each figure's rows on
:class:`repro.api.Session` queries.

The execution layer lives entirely in :mod:`repro.api` (declarative
experiments, mixes and seed-replicated cells, declarative searches,
pluggable executors, persistent result store).  The historical runner
facade and legacy experiment-spec bridge have been removed — construct
a :class:`repro.api.Session` and use :meth:`~repro.api.Session.run` /
:meth:`~repro.api.Session.run_one`.
"""

from repro.harness.rollup import (
    per_prefetcher_geomean,
    per_suite_geomean,
    sorted_speedups,
)

__all__ = [
    "per_prefetcher_geomean",
    "per_suite_geomean",
    "sorted_speedups",
]
