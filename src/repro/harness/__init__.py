"""Experiment harness: rollups and per-figure builders.

This is the Python replacement for the paper artifact's perl/slurm/Excel
pipeline: :mod:`repro.harness.rollup` aggregates run records the way
the artifact's ``rollup.pl`` + pivot tables do, and
:mod:`repro.harness.figures` regenerates each figure's rows on
:class:`repro.api.Session` queries.

The execution layer lives in :mod:`repro.api` (declarative experiments
and mixes, declarative searches, pluggable executors, persistent result
store); ``Runner`` is a deprecated forwarding stub slated for removal.
"""

from repro.harness.experiment import ExperimentSpec, RunRecord
from repro.harness.runner import Runner
from repro.harness.rollup import (
    per_prefetcher_geomean,
    per_suite_geomean,
    sorted_speedups,
)

__all__ = [
    "ExperimentSpec",
    "RunRecord",
    "Runner",
    "per_prefetcher_geomean",
    "per_suite_geomean",
    "sorted_speedups",
]
