"""Synthetic workload traces standing in for the paper's trace suites.

The paper evaluates on 150 instruction traces from SPEC CPU2006, SPEC
CPU2017, PARSEC 2.1, Ligra and Cloudsuite, plus 500 "unseen" CVP-2
traces.  Those traces are not redistributable here, so this package
provides deterministic, seeded generators that reproduce each suite's
*memory-access pattern class* — the property every figure in the paper
actually keys on (see DESIGN.md, substitution 2).
"""

from repro.workloads.generators import (
    WorkloadSpec,
    WORKLOADS,
    generate_trace,
    workload_names,
)
from repro.workloads.suites import (
    SUITES,
    suite_traces,
    all_trace_names,
    motivation_traces,
)
from repro.workloads.mixes import (
    homogeneous_mix,
    homogeneous_mix_names,
    heterogeneous_mixes,
    heterogeneous_mix_names,
)
from repro.workloads.cvp import cvp_trace_names, generate_cvp_trace

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "generate_trace",
    "workload_names",
    "SUITES",
    "suite_traces",
    "all_trace_names",
    "motivation_traces",
    "homogeneous_mix",
    "homogeneous_mix_names",
    "heterogeneous_mixes",
    "heterogeneous_mix_names",
    "cvp_trace_names",
    "generate_cvp_trace",
]
