"""Named workload generators, one per paper workload.

Every workload is a :class:`WorkloadSpec` naming an archetype builder and
its parameters.  :func:`generate_trace` instantiates a deterministic
:class:`~repro.sim.trace.Trace` of any requested length from a seed, so
the paper's "150 traces from 50 workloads" becomes "N seeds per
workload": trace ``spec06/mcf-1`` is workload ``spec06/mcf`` with seed 1.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.trace import Trace, TraceRecord
from repro.workloads import patterns
from repro.workloads.patterns import Access


def stable_seed(name: str, seed: int) -> int:
    """Process-independent RNG seed for (workload, seed).

    Built on CRC32 rather than the builtin ``hash`` (randomized per
    interpreter via PYTHONHASHSEED), so the same trace name always
    yields the same trace across processes and runs — required both for
    the content-addressed result store and for process-pool executors to
    reproduce serial results exactly.
    """
    return (zlib.crc32(name.encode("utf-8")) & 0xFFFF_FFFF) ^ (seed * 0x9E3779B9)


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one synthetic workload.

    Attributes:
        name: fully-qualified name, ``"<suite>/<workload>"``.
        suite: suite label used by rollups.
        archetype: builder key (``"stream"``, ``"delta"``, ...).
        params: archetype-specific parameters.
        gap: mean non-memory instructions between accesses — small gaps
            mean memory-intensive, bandwidth-hungry workloads.
    """

    name: str
    suite: str
    archetype: str
    params: dict = field(default_factory=dict)
    gap: int = 4


def _build_stream(spec: WorkloadSpec, length: int, rng: random.Random) -> list[Access]:
    """Pure streaming workload (libquantum/bwaves-like)."""
    n = spec.params.get("streams", 2)
    replicas = spec.params.get("replicas", 4)
    step = spec.params.get("step", 1)
    streams = [
        patterns.stream(
            pc=0x400100 + 16 * (i * replicas + r),
            start_page=1000 + 4096 * (i * replicas + r),
            gap=spec.gap,
            step=step,
        )
        for i in range(n)
        for r in range(replicas)
    ]
    return patterns.interleave(streams, [1.0] * len(streams), length, rng)


def _build_stride(spec: WorkloadSpec, length: int, rng: random.Random) -> list[Access]:
    """Multiple constant-stride streams (lbm/milc/wrf-like).

    Each logical stride is replicated over several independent arrays
    (distinct PCs, distinct pages) so correlated accesses of one array
    are spread out in time — the lead time real loop nests give a
    prefetcher.
    """
    strides = spec.params.get("strides", [2, 3, 5])
    replicas = spec.params.get("replicas", 3)
    streams = [
        patterns.strided(
            pc=0x401000 + 32 * (i * replicas + r),
            start_page=2000 + 8192 * (i * replicas + r),
            stride=s,
            gap=spec.gap,
        )
        for i, s in enumerate(strides)
        for r in range(replicas)
    ]
    return patterns.interleave(streams, [1.0] * len(streams), length, rng)


def _build_delta(spec: WorkloadSpec, length: int, rng: random.Random) -> list[Access]:
    """Recurring in-page delta sequences (GemsFDTD-like)."""
    groups = spec.params.get("delta_groups")
    if groups is None:
        groups = [spec.params.get("deltas", [23])]
    per_page = spec.params.get("accesses_per_page", 3)
    n = spec.params.get("streams", 14)
    max_start = spec.params.get("max_start_offset", 8)
    streams = [
        patterns.delta_sequence(
            pc_base=0x436A00 + 0x1000 * g,
            start_page=3000 + 16384 * (g * n + i),
            deltas=group,
            accesses_per_page=per_page,
            gap=spec.gap,
            rng=random.Random(rng.randrange(2**31)),
            max_start_offset=max_start,
        )
        for g, group in enumerate(groups)
        for i in range(n)
    ]
    return patterns.interleave(streams, [1.0] * len(streams), length, rng)


def _build_region(spec: WorkloadSpec, length: int, rng: random.Random) -> list[Access]:
    """Per-PC spatial region footprints (sphinx3/canneal/facesim-like)."""
    footprints = spec.params.get(
        "footprints", [[0, 2, 5, 9, 14], [0, 1, 3, 7]]
    )
    revisit = spec.params.get("revisit_fraction", 0.3)
    concurrency = spec.params.get("concurrency", 16)
    streams = [
        patterns.region_footprint(
            pc=0x402000 + 48 * i,
            footprint=fp,
            num_regions=spec.params.get("num_regions", 64),
            start_page=5000 + 32768 * (i * concurrency + c),
            rng=random.Random(rng.randrange(2**31)),
            gap=spec.gap,
            revisit_fraction=revisit,
        )
        for i, fp in enumerate(footprints)
        for c in range(concurrency)
    ]
    return patterns.interleave(streams, [1.0] * len(streams), length, rng)


def _build_irregular(spec: WorkloadSpec, length: int, rng: random.Random) -> list[Access]:
    """Unpredictable hops (mcf/omnetpp-like)."""
    pages = spec.params.get("working_set_pages", 4096)
    locality = spec.params.get("locality", 0.1)
    regular_weight = spec.params.get("regular_weight", 0.0)
    streams: list = [
        patterns.irregular(
            pc=0x403000,
            working_set_pages=pages,
            start_page=7000,
            rng=random.Random(rng.randrange(2**31)),
            gap=spec.gap,
            locality=locality,
        )
    ]
    weights = [1.0]
    if regular_weight > 0:
        streams.append(patterns.stream(pc=0x403400, start_page=900_000, gap=spec.gap))
        weights.append(regular_weight)
    return patterns.interleave(streams, weights, length, rng)


def _build_pointer(spec: WorkloadSpec, length: int, rng: random.Random) -> list[Access]:
    """Linked-structure walks (astar/xalancbmk-like)."""
    nodes = spec.params.get("nodes", 50_000)
    streams = [
        patterns.pointer_chase(
            pc=0x404000,
            num_nodes=nodes,
            start_page=9000,
            rng=random.Random(rng.randrange(2**31)),
            gap=spec.gap,
        ),
        patterns.stream(pc=0x404100, start_page=950_000, gap=spec.gap),
    ]
    return patterns.interleave(streams, [3.0, 1.0], length, rng)


def _build_graph(spec: WorkloadSpec, length: int, rng: random.Random) -> list[Access]:
    """Graph-processing kernels (Ligra-like): frontier scans + random
    neighbour gathers at high memory intensity.

    ``irregular_weight`` controls how gather-dominated the kernel is —
    PageRank-style kernels stream more, BFS-style kernels gather more.
    """
    irregular_weight = spec.params.get("irregular_weight", 1.5)
    pages = spec.params.get("working_set_pages", 8192)
    burst = spec.params.get("burst_lines", 4)
    streams: list = [
        patterns.stream(pc=0x405000, start_page=11_000, gap=spec.gap),
        patterns.strided(pc=0x405040, start_page=700_000, stride=1, gap=spec.gap),
        patterns.irregular(
            pc=0x405080,
            working_set_pages=pages,
            start_page=100_000,
            rng=random.Random(rng.randrange(2**31)),
            gap=spec.gap,
            locality=0.15,
            burst_lines=burst,
        ),
    ]
    return patterns.interleave(streams, [1.0, 1.0, irregular_weight], length, rng)


def _build_server(spec: WorkloadSpec, length: int, rng: random.Random) -> list[Access]:
    """Server workloads (Cloudsuite-like): many PCs, shallow patterns."""
    num_ctx = spec.params.get("contexts", 8)
    streams: list = []
    weights: list[float] = []
    for i in range(num_ctx):
        kind = i % 3
        if kind == 0:
            streams.append(
                patterns.strided(
                    pc=0x406000 + 128 * i,
                    start_page=20_000 + 65536 * i,
                    stride=1 + (i % 4),
                    gap=spec.gap,
                )
            )
        elif kind == 1:
            streams.append(
                patterns.region_footprint(
                    pc=0x407000 + 128 * i,
                    footprint=[0, 1, 4, 6][: 2 + i % 3],
                    num_regions=32,
                    start_page=400_000 + 65536 * i,
                    rng=random.Random(rng.randrange(2**31)),
                    gap=spec.gap,
                )
            )
        else:
            streams.append(
                patterns.irregular(
                    pc=0x408000 + 128 * i,
                    working_set_pages=2048,
                    start_page=600_000 + 65536 * i,
                    rng=random.Random(rng.randrange(2**31)),
                    gap=spec.gap,
                )
            )
        weights.append(1.0)
    return patterns.interleave(streams, weights, length, rng)


def _build_mixed(spec: WorkloadSpec, length: int, rng: random.Random) -> list[Access]:
    """A blend of stride + delta + irregular (gcc/soplex-like)."""
    streams: list = [
        patterns.strided(pc=0x409000, start_page=30_000, stride=2, gap=spec.gap),
        patterns.delta_sequence(
            pc_base=0x409100,
            start_page=800_000,
            deltas=spec.params.get("deltas", [4, 9]),
            accesses_per_page=4,
            gap=spec.gap,
        ),
        patterns.irregular(
            pc=0x409200,
            working_set_pages=1024,
            start_page=860_000,
            rng=random.Random(rng.randrange(2**31)),
            gap=spec.gap,
        ),
    ]
    w = spec.params.get("weights", [1.0, 1.0, 0.7])
    return patterns.interleave(streams, w, length, rng)


def _build_llist(spec: WorkloadSpec, length: int, rng: random.Random) -> list[Access]:
    """Linked lists with multi-line node payloads (health/mcf-like).

    Several independent lists are walked concurrently, optionally beside
    a sequential allocation-scan stream (``scan_weight``).  The payload
    run inside each node is spatially predictable; the next-node hop is
    not — prefetchers get partial coverage and punishing overprediction
    on the hops.
    """
    lists = spec.params.get("lists", 2)
    nodes = spec.params.get("nodes", 20_000)
    payload = spec.params.get("payload_lines", 2)
    scan_weight = spec.params.get("scan_weight", 0.0)
    streams: list = [
        patterns.linked_list(
            pc=0x40B000 + 0x100 * i,
            num_nodes=nodes,
            start_page=60_000 + 200_000 * i,
            rng=random.Random(rng.randrange(2**31)),
            gap=spec.gap,
            payload_lines=payload,
        )
        for i in range(lists)
    ]
    weights = [1.0] * lists
    if scan_weight > 0:
        streams.append(patterns.stream(pc=0x40B800, start_page=990_000, gap=spec.gap))
        weights.append(scan_weight)
    return patterns.interleave(streams, weights, length, rng)


def _build_phase(spec: WorkloadSpec, length: int, rng: random.Random) -> list[Access]:
    """Phase-switching mixed-pattern workload (gcc/xz-like program phases).

    The access stream runs one pattern regime at a time — ``phases``
    names the rotation — and switches every ``phase_length`` accesses
    (±25% jitter), so a prefetcher's state trained in one phase is
    stale, sometimes harmful, in the next.  This is the adaptation
    regime the per-figure suites never isolate: single-pattern traces
    reward converged behaviour, phase traces reward fast re-learning.
    """
    phase_length = spec.params.get("phase_length", 1200)
    kinds = spec.params.get("phases", ["stream", "irregular"])
    streams = []
    for i, kind in enumerate(kinds):
        pc_base = 0x40A000 + 0x200 * i
        start_page = 40_000 + 150_000 * i
        if kind == "stream":
            streams.append(
                patterns.stream(pc=pc_base, start_page=start_page, gap=spec.gap)
            )
        elif kind == "stride":
            streams.append(
                patterns.strided(
                    pc=pc_base,
                    start_page=start_page,
                    stride=spec.params.get("stride", 3),
                    gap=spec.gap,
                )
            )
        elif kind == "delta":
            streams.append(
                patterns.delta_sequence(
                    pc_base=pc_base,
                    start_page=start_page,
                    deltas=spec.params.get("deltas", [7, 3]),
                    accesses_per_page=4,
                    gap=spec.gap,
                    rng=random.Random(rng.randrange(2**31)),
                )
            )
        elif kind == "irregular":
            streams.append(
                patterns.irregular(
                    pc=pc_base,
                    working_set_pages=spec.params.get("working_set_pages", 2048),
                    start_page=start_page,
                    rng=random.Random(rng.randrange(2**31)),
                    gap=spec.gap,
                )
            )
        else:
            raise KeyError(f"unknown phase kind {kind!r} in {spec.name}")
    out: list[Access] = []
    index = 0
    while len(out) < length:
        jitter = phase_length // 4
        span = phase_length + (rng.randrange(-jitter, jitter + 1) if jitter else 0)
        active = streams[index % len(streams)]
        for _ in range(min(span, length - len(out))):
            out.append(next(active))
        index += 1
    return out


_BUILDERS: dict[str, Callable[[WorkloadSpec, int, random.Random], list[Access]]] = {
    "stream": _build_stream,
    "stride": _build_stride,
    "delta": _build_delta,
    "region": _build_region,
    "irregular": _build_irregular,
    "pointer": _build_pointer,
    "graph": _build_graph,
    "server": _build_server,
    "mixed": _build_mixed,
    "llist": _build_llist,
    "phase": _build_phase,
}


def _specs() -> dict[str, WorkloadSpec]:
    spec_list = [
        # ---- SPEC CPU2006 (16 workloads, as in Table 6) -------------------
        WorkloadSpec("spec06/gemsfdtd", "SPEC06", "delta",
                     {"delta_groups": [[23], [11]], "accesses_per_page": 4,
                      "streams": 9}, gap=42),
        WorkloadSpec("spec06/sphinx3", "SPEC06", "region",
                     {"footprints": [[0, 3, 5, 8, 12, 17]]}, gap=42),
        WorkloadSpec("spec06/mcf", "SPEC06", "irregular",
                     {"working_set_pages": 8192, "locality": 0.05}, gap=24),
        WorkloadSpec("spec06/lbm", "SPEC06", "stride",
                     {"strides": [1, 2, 1, 3]}, gap=24),
        WorkloadSpec("spec06/libquantum", "SPEC06", "stream",
                     {"streams": 1}, gap=24),
        WorkloadSpec("spec06/cactusadm", "SPEC06", "stride",
                     {"strides": [7, 11]}, gap=52),
        WorkloadSpec("spec06/omnetpp", "SPEC06", "irregular",
                     {"working_set_pages": 4096, "locality": 0.15,
                      "regular_weight": 0.3}, gap=32),
        WorkloadSpec("spec06/soplex", "SPEC06", "mixed",
                     {"deltas": [2, 5]}, gap=32),
        WorkloadSpec("spec06/milc", "SPEC06", "stride",
                     {"strides": [4, 4, 8]}, gap=32),
        WorkloadSpec("spec06/leslie3d", "SPEC06", "stride",
                     {"strides": [1, 5, 9]}, gap=42),
        WorkloadSpec("spec06/bwaves", "SPEC06", "stream",
                     {"streams": 3}, gap=32),
        WorkloadSpec("spec06/gcc", "SPEC06", "mixed",
                     {"deltas": [3, 7], "weights": [1.0, 0.8, 0.5]}, gap=52),
        WorkloadSpec("spec06/astar", "SPEC06", "pointer",
                     {"nodes": 40_000}, gap=42),
        WorkloadSpec("spec06/xalancbmk", "SPEC06", "server",
                     {"contexts": 6}, gap=42),
        WorkloadSpec("spec06/gobmk", "SPEC06", "mixed",
                     {"weights": [1.0, 0.5, 1.2]}, gap=64),
        WorkloadSpec("spec06/wrf", "SPEC06", "stride",
                     {"strides": [2, 6]}, gap=52),
        # ---- SPEC CPU2017 (12 workloads) -----------------------------------
        WorkloadSpec("spec17/gcc", "SPEC17", "mixed",
                     {"deltas": [5, 11]}, gap=52),
        WorkloadSpec("spec17/mcf", "SPEC17", "irregular",
                     {"working_set_pages": 12288, "locality": 0.08}, gap=24),
        WorkloadSpec("spec17/pop2", "SPEC17", "stride",
                     {"strides": [3, 5, 2]}, gap=42),
        WorkloadSpec("spec17/fotonik3d", "SPEC17", "delta",
                     {"deltas": [11], "accesses_per_page": 2}, gap=32),
        WorkloadSpec("spec17/lbm", "SPEC17", "stride",
                     {"strides": [1, 2, 3]}, gap=24),
        WorkloadSpec("spec17/cam4", "SPEC17", "region",
                     {"footprints": [[0, 2, 4, 6, 10]]}, gap=52),
        WorkloadSpec("spec17/roms", "SPEC17", "stream",
                     {"streams": 4}, gap=32),
        WorkloadSpec("spec17/xz", "SPEC17", "irregular",
                     {"working_set_pages": 2048, "locality": 0.25,
                      "regular_weight": 0.5}, gap=42),
        WorkloadSpec("spec17/omnetpp", "SPEC17", "irregular",
                     {"working_set_pages": 4096, "locality": 0.12,
                      "regular_weight": 0.2}, gap=32),
        WorkloadSpec("spec17/cactubssn", "SPEC17", "stride",
                     {"strides": [9, 13]}, gap=42),
        WorkloadSpec("spec17/bwaves", "SPEC17", "stream",
                     {"streams": 2}, gap=32),
        WorkloadSpec("spec17/wrf", "SPEC17", "delta",
                     {"deltas": [4, 9], "accesses_per_page": 4}, gap=52),
        # ---- PARSEC 2.1 (5 workloads) ---------------------------------------
        WorkloadSpec("parsec/canneal", "PARSEC", "region",
                     {"footprints": [[0, 1, 6, 11, 19]],
                      "revisit_fraction": 0.2}, gap=32),
        WorkloadSpec("parsec/facesim", "PARSEC", "region",
                     {"footprints": [[0, 2, 3, 5, 8, 13]],
                      "revisit_fraction": 0.4}, gap=42),
        WorkloadSpec("parsec/fluidanimate", "PARSEC", "stride",
                     {"strides": [1, 4]}, gap=32),
        WorkloadSpec("parsec/raytrace", "PARSEC", "pointer",
                     {"nodes": 60_000}, gap=42),
        WorkloadSpec("parsec/streamcluster", "PARSEC", "stream",
                     {"streams": 2}, gap=24),
        # ---- Ligra (13 workloads) -------------------------------------------
        WorkloadSpec("ligra/pagerank", "LIGRA", "graph",
                     {"irregular_weight": 1.0}, gap=16),
        WorkloadSpec("ligra/pagerankdelta", "LIGRA", "graph",
                     {"irregular_weight": 1.4}, gap=16),
        WorkloadSpec("ligra/cc", "LIGRA", "graph",
                     {"irregular_weight": 1.8, "working_set_pages": 16384}, gap=16),
        WorkloadSpec("ligra/bfs", "LIGRA", "graph",
                     {"irregular_weight": 2.2}, gap=16),
        WorkloadSpec("ligra/bc", "LIGRA", "graph",
                     {"irregular_weight": 1.6}, gap=16),
        WorkloadSpec("ligra/bellmanford", "LIGRA", "graph",
                     {"irregular_weight": 1.3}, gap=16),
        WorkloadSpec("ligra/triangle", "LIGRA", "graph",
                     {"irregular_weight": 0.8}, gap=24),
        WorkloadSpec("ligra/radii", "LIGRA", "graph",
                     {"irregular_weight": 1.5}, gap=16),
        WorkloadSpec("ligra/mis", "LIGRA", "graph",
                     {"irregular_weight": 1.7}, gap=16),
        WorkloadSpec("ligra/bfs-bitvector", "LIGRA", "graph",
                     {"irregular_weight": 2.0}, gap=16),
        WorkloadSpec("ligra/bfscc", "LIGRA", "graph",
                     {"irregular_weight": 2.1, "working_set_pages": 12288}, gap=16),
        WorkloadSpec("ligra/cf", "LIGRA", "graph",
                     {"irregular_weight": 0.9}, gap=24),
        WorkloadSpec("ligra/kcore", "LIGRA", "graph",
                     {"irregular_weight": 1.2}, gap=16),
        # ---- Cloudsuite (4 workloads) -----------------------------------------
        WorkloadSpec("cloudsuite/cassandra", "CLOUDSUITE", "server",
                     {"contexts": 9}, gap=42),
        WorkloadSpec("cloudsuite/cloud9", "CLOUDSUITE", "server",
                     {"contexts": 6}, gap=42),
        WorkloadSpec("cloudsuite/nutch", "CLOUDSUITE", "server",
                     {"contexts": 12}, gap=52),
        WorkloadSpec("cloudsuite/classification", "CLOUDSUITE", "server",
                     {"contexts": 8}, gap=32),
        # ---- Synthetic stress families (beyond the paper's suites) ----------
        # Linked-list walks with node payloads, and phase-switching
        # mixed-pattern streams — scenario classes the paper's suites
        # blend but never isolate.
        WorkloadSpec("synth/llist-small", "SYNTH", "llist",
                     {"lists": 3, "nodes": 6_000, "payload_lines": 2}, gap=36),
        WorkloadSpec("synth/llist-deep", "SYNTH", "llist",
                     {"lists": 1, "nodes": 80_000, "payload_lines": 3,
                      "scan_weight": 0.3}, gap=24),
        WorkloadSpec("synth/phase-regular", "SYNTH", "phase",
                     {"phases": ["stream", "stride", "delta"],
                      "phase_length": 1500}, gap=32),
        WorkloadSpec("synth/phase-adversarial", "SYNTH", "phase",
                     {"phases": ["stream", "irregular", "delta", "irregular"],
                      "phase_length": 900, "working_set_pages": 4096}, gap=28),
    ]
    return {s.name: s for s in spec_list}


#: All named workloads, keyed by ``"<suite>/<workload>"``.
WORKLOADS: dict[str, WorkloadSpec] = _specs()


def workload_names(suite: str | None = None) -> list[str]:
    """Names of all workloads, optionally filtered by suite label."""
    if suite is None:
        return sorted(WORKLOADS)
    return sorted(n for n, s in WORKLOADS.items() if s.suite == suite)


def generate_trace(name: str, length: int = 20_000, seed: int = 1) -> Trace:
    """Instantiate a deterministic trace for workload *name*.

    Args:
        name: a key of :data:`WORKLOADS`; a ``-<seed>`` suffix is also
            accepted (``"spec06/mcf-2"`` means seed 2).
        length: number of memory accesses to generate.
        seed: RNG seed; different seeds give different traces of the
            same workload (the paper's multiple traces per workload).
    """
    base = name
    if name not in WORKLOADS and "-" in name:
        head, _, tail = name.rpartition("-")
        if head in WORKLOADS and tail.isdigit():
            base, seed = head, int(tail)
    if base not in WORKLOADS:
        raise KeyError(f"unknown workload: {name!r}")
    spec = WORKLOADS[base]
    rng = random.Random(stable_seed(base, seed))
    accesses = _BUILDERS[spec.archetype](spec, length, rng)
    records = [
        TraceRecord(pc=pc, line=line, is_load=True, gap=gap)
        for pc, line, gap in accesses
    ]
    return Trace(f"{base}-{seed}", records, spec.suite)
