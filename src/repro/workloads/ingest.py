"""Streaming ingestion of external memory traces.

Everything else in :mod:`repro.workloads` *generates* traces; this module
*loads* them, so real recorded workloads (ChampSim dumps, pin-tool CSVs,
hand-written scenarios) can ride the same declarative experiment / result
store machinery as the synthetic suites.  Two on-disk formats are
understood, both transparently gzip-decompressed when the path ends in
``.gz``:

* **text** (``.csv`` / ``.txt`` / ``.trace``) — one access per line,
  ``pc,addr[,is_write]``.  ``pc`` and ``addr`` accept decimal or
  ``0x``-prefixed hex; ``is_write`` accepts ``0``/``1``/``r``/``w``
  (case-insensitive) and defaults to a read.  Blank lines and ``#``
  comments are skipped.
* **binary** (``.bin`` / ``.champsim``) — a ChampSim-like fixed-width
  record stream: little-endian ``u64 pc, u64 addr, u8 is_write``
  (17 bytes per record), no header.

Both loaders are streaming: records are decoded chunk by chunk, never
materializing the file as one string, and loading stops early once the
requested record budget is met (the remaining bytes are still consumed
for the content stamp).  The CRC32 **content stamp** is computed over the
decompressed byte stream and attached to the returned
:class:`~repro.sim.trace.Trace`, which is what lets
:meth:`repro.api.experiment.Cell.fingerprint` self-invalidate store
entries when the file's bytes change.

Traces loaded here are addressable through :mod:`repro.registry` under
the ``file/`` namespace — ``file/<path>`` directly, or ``file/<alias>``
after :func:`repro.registry.register_trace_file`.
"""

from __future__ import annotations

import gzip
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.sim.trace import Trace, TraceRecord
from repro.types import line_of

#: Default non-memory instruction gap for ingested records (the formats
#: above carry no gap; real ChampSim traces interleave non-memory
#: instructions, which this models the same way generators do).
DEFAULT_GAP = 4

#: Little-endian ChampSim-like record: u64 pc, u64 addr, u8 is_write.
BINARY_RECORD = struct.Struct("<QQB")

#: Path suffixes understood as the text format.
TEXT_SUFFIXES = {".csv", ".txt", ".trace"}

#: Path suffixes understood as the binary format.
BINARY_SUFFIXES = {".bin", ".champsim"}

_CHUNK = 1 << 16


class TraceIngestError(ValueError):
    """A trace file could not be parsed (malformed line, truncation, …)."""


def detect_format(path: str | Path) -> str:
    """``"text"`` or ``"binary"``, from the path's (pre-``.gz``) suffix."""
    name = Path(path).name.lower()
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    suffix = Path(name).suffix
    if suffix in TEXT_SUFFIXES:
        return "text"
    if suffix in BINARY_SUFFIXES:
        return "binary"
    raise TraceIngestError(
        f"cannot infer trace format of {str(path)!r}; expected a "
        f"{sorted(TEXT_SUFFIXES | BINARY_SUFFIXES)} suffix (optionally "
        "gzipped) or an explicit fmt="
    )


def _open_stream(path: Path) -> BinaryIO:
    if path.name.lower().endswith(".gz"):
        return gzip.open(path, "rb")  # type: ignore[return-value]
    return open(path, "rb")


class _Crc32Stream:
    """Read-through wrapper accumulating CRC32 over every byte read.

    :func:`load_trace_file` parses records and computes the content
    stamp in one pass over the (decompressed) stream: the parser reads
    through this wrapper, and whatever it did not consume is drained at
    the end so the stamp always covers the whole file.
    """

    def __init__(self, inner: BinaryIO) -> None:
        self._inner = inner
        self.crc = 0

    def read(self, n: int = -1) -> bytes:
        data = self._inner.read(n)
        if data:
            self.crc = zlib.crc32(data, self.crc)
        return data

    def drain(self) -> None:
        while self.read(_CHUNK):
            pass


def _chunks(stream) -> Iterator[bytes]:
    while True:
        chunk = stream.read(_CHUNK)
        if not chunk:
            return
        yield chunk


def file_stamp(path: str | Path) -> int:
    """CRC32 over the (decompressed) byte stream of *path*.

    This is the content stamp :func:`load_trace_file` attaches to the
    traces it builds, recomputed without parsing; result-store
    fingerprints fold it in so entries die when the file changes.
    """
    crc = 0
    try:
        with _open_stream(Path(path)) as stream:
            for chunk in _chunks(stream):
                crc = zlib.crc32(chunk, crc)
    except OSError as exc:
        raise TraceIngestError(f"cannot read trace file {str(path)!r}: {exc}") from exc
    return crc


def _parse_int(token: str) -> int:
    token = token.strip()
    return int(token, 16) if token.lower().startswith("0x") else int(token)


_WRITE_TOKENS = {"1": True, "w": True, "true": True, "0": False, "r": False, "false": False}


def parse_text_line(line: str) -> TraceRecord | None:
    """One ``pc,addr[,is_write]`` line → record (``None`` for non-data).

    Raises :class:`TraceIngestError` on malformed data lines; the caller
    adds file/line context.
    """
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    fields = [f.strip() for f in line.split(",")]
    if len(fields) not in (2, 3):
        raise TraceIngestError(
            f"expected 'pc,addr[,is_write]', got {len(fields)} field(s)"
        )
    try:
        pc = _parse_int(fields[0])
        addr = _parse_int(fields[1])
    except ValueError as exc:
        raise TraceIngestError(f"bad integer field: {exc}") from exc
    is_write = False
    if len(fields) == 3:
        try:
            is_write = _WRITE_TOKENS[fields[2].lower()]
        except KeyError:
            raise TraceIngestError(
                f"bad is_write field {fields[2]!r} (want 0/1/r/w)"
            ) from None
    if pc < 0 or addr < 0:
        raise TraceIngestError("pc/addr must be non-negative")
    return TraceRecord(pc=pc, line=line_of(addr), is_load=not is_write, gap=DEFAULT_GAP)


def _iter_text(stream: BinaryIO, path: Path) -> Iterator[TraceRecord]:
    buffer = b""
    lineno = 0
    for chunk in _chunks(stream):
        buffer += chunk
        *lines, buffer = buffer.split(b"\n")
        for raw in lines:
            lineno += 1
            yield from _decode_text_line(raw, path, lineno)
    if buffer:
        yield from _decode_text_line(buffer, path, lineno + 1)


def _decode_text_line(raw: bytes, path: Path, lineno: int) -> Iterator[TraceRecord]:
    try:
        record = parse_text_line(raw.decode("utf-8"))
    except (TraceIngestError, UnicodeDecodeError) as exc:
        raise TraceIngestError(f"{path}:{lineno}: {exc}") from None
    if record is not None:
        yield record


def _iter_binary(stream: BinaryIO, path: Path) -> Iterator[TraceRecord]:
    size = BINARY_RECORD.size
    buffer = b""
    for chunk in _chunks(stream):
        buffer += chunk
        whole = len(buffer) - len(buffer) % size
        for pc, addr, is_write in BINARY_RECORD.iter_unpack(buffer[:whole]):
            yield TraceRecord(
                pc=pc, line=line_of(addr), is_load=not is_write, gap=DEFAULT_GAP
            )
        buffer = buffer[whole:]
    if buffer:
        raise TraceIngestError(
            f"{path}: truncated binary trace — {len(buffer)} trailing byte(s) "
            f"do not form a whole {size}-byte record"
        )


def iter_trace_records(
    path: str | Path, fmt: str | None = None
) -> Iterator[TraceRecord]:
    """Stream every record of the trace file at *path*."""
    path = Path(path)
    fmt = fmt or detect_format(path)
    if fmt not in ("text", "binary"):
        raise TraceIngestError(f"unknown trace format {fmt!r} (want text/binary)")
    try:
        with _open_stream(path) as stream:
            reader = _iter_text if fmt == "text" else _iter_binary
            yield from reader(stream, path)
    except OSError as exc:
        raise TraceIngestError(f"cannot read trace file {str(path)!r}: {exc}") from exc


def load_trace_file(
    path: str | Path,
    length: int | None = None,
    name: str | None = None,
    suite: str = "FILE",
    fmt: str | None = None,
    gap: int | None = None,
) -> Trace:
    """Load an external trace file into a :class:`Trace`.

    Args:
        path: trace file (text or binary, optionally ``.gz``).
        length: record budget; files longer than *length* are truncated,
            shorter files load whole (generated traces always have
            exactly ``length`` records — file traces have however many
            the recording holds, capped here).
        name: trace name; defaults to ``file/<path>`` so records group
            under the same name the registry addresses the file by.
        suite: suite label used by rollups.
        fmt: ``"text"`` / ``"binary"`` override for off-convention paths.
        gap: override the per-record non-memory gap (default
            :data:`DEFAULT_GAP`).

    The returned trace carries the CRC32 of the file's (decompressed)
    bytes as its content stamp — computed in the same pass that parses
    the records (equal to :func:`file_stamp` of the same bytes) — so
    store fingerprints self-invalidate when the file's bytes change.
    """
    path = Path(path)
    fmt = fmt or detect_format(path)
    if fmt not in ("text", "binary"):
        raise TraceIngestError(f"unknown trace format {fmt!r} (want text/binary)")
    reader = _iter_text if fmt == "text" else _iter_binary
    records: list[TraceRecord] = []
    try:
        with _open_stream(path) as stream:
            tee = _Crc32Stream(stream)
            for record in reader(tee, path):
                if gap is not None and record.gap != gap:
                    record = TraceRecord(
                        pc=record.pc, line=record.line, is_load=record.is_load, gap=gap
                    )
                records.append(record)
                if length is not None and len(records) >= length:
                    break
            tee.drain()  # the stamp covers the whole file, budget or not
    except OSError as exc:
        raise TraceIngestError(f"cannot read trace file {str(path)!r}: {exc}") from exc
    if not records:
        raise TraceIngestError(f"{path}: trace file holds no records")
    return Trace(
        name if name is not None else f"file/{path}",
        records,
        suite,
        content_stamp=tee.crc,
    )
