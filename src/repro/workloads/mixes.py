"""Multi-core trace mixes (homogeneous and heterogeneous).

The paper's n-core evaluations run either n copies of one trace
(homogeneous) or n randomly drawn traces (heterogeneous).  Mix drawing
is seeded so experiment runs are repeatable.
"""

from __future__ import annotations

import random

from repro.sim.trace import Trace
from repro.workloads.generators import generate_trace
from repro.workloads.suites import all_trace_names


def homogeneous_mix(name: str, num_cores: int, length: int = 20_000) -> list[Trace]:
    """*num_cores* independent instances of one workload trace.

    Each core gets its own seed so the copies do not trivially share
    cachelines (as independent processes would not).
    """
    base = name.rsplit("-", 1)[0] if "-" in name else name
    return [
        generate_trace(base, length=length, seed=100 + core)
        for core in range(num_cores)
    ]


def heterogeneous_mixes(
    num_cores: int,
    num_mixes: int,
    length: int = 20_000,
    seed: int = 7,
) -> list[tuple[str, list[Trace]]]:
    """Randomly drawn n-core mixes, as the paper's "Mix" category.

    Returns ``[(mix_name, [trace, ...]), ...]``; drawing is deterministic
    in *seed*.
    """
    rng = random.Random(seed)
    pool = all_trace_names()
    mixes: list[tuple[str, list[Trace]]] = []
    for mix_idx in range(num_mixes):
        chosen = rng.sample(pool, num_cores)
        traces = [generate_trace(name, length=length) for name in chosen]
        mixes.append((f"mix-{mix_idx}", traces))
    return mixes
