"""Multi-core trace mixes (homogeneous and heterogeneous).

The paper's n-core evaluations run either n copies of one trace
(homogeneous) or n randomly drawn traces (heterogeneous).  Mix drawing
is seeded so experiment runs are repeatable.

The ``*_names`` variants return registry-addressable trace *names* —
the declarative form :meth:`repro.api.Experiment.with_mixes` wants, so
mixes stay pure data and executors can rebuild each trace in worker
processes.  The materializing variants remain for direct
``simulate_multi`` callers.
"""

from __future__ import annotations

import random

from repro.sim.trace import Trace
from repro.workloads.generators import generate_trace
from repro.workloads.suites import all_trace_names


def homogeneous_mix_names(name: str, num_cores: int) -> list[str]:
    """Trace names of *num_cores* independent instances of one workload.

    Each core gets its own seed so the copies do not trivially share
    cachelines (as independent processes would not).
    """
    base = name.rsplit("-", 1)[0] if "-" in name else name
    return [f"{base}-{100 + core}" for core in range(num_cores)]


def homogeneous_mix(name: str, num_cores: int, length: int = 20_000) -> list[Trace]:
    """*num_cores* independent instances of one workload trace."""
    return [
        generate_trace(trace_name, length=length)
        for trace_name in homogeneous_mix_names(name, num_cores)
    ]


def heterogeneous_mix_names(
    num_cores: int,
    num_mixes: int,
    seed: int = 7,
) -> list[tuple[str, list[str]]]:
    """Randomly drawn n-core mixes as ``(mix_name, [trace_name, ...])``.

    The paper's "Mix" category; drawing is deterministic in *seed* and
    matches :func:`heterogeneous_mixes` draw-for-draw.
    """
    rng = random.Random(seed)
    pool = all_trace_names()
    return [
        (f"mix-{mix_idx}", rng.sample(pool, num_cores))
        for mix_idx in range(num_mixes)
    ]


def heterogeneous_mixes(
    num_cores: int,
    num_mixes: int,
    length: int = 20_000,
    seed: int = 7,
) -> list[tuple[str, list[Trace]]]:
    """Randomly drawn n-core mixes, materialized as :class:`Trace` lists."""
    return [
        (mix_name, [generate_trace(name, length=length) for name in chosen])
        for mix_name, chosen in heterogeneous_mix_names(num_cores, num_mixes, seed)
    ]
