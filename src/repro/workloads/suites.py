"""Suite trace lists: which (workload, seed) pairs constitute each suite.

The paper evaluates 150 traces from 50 workloads (Table 6).  We assign
each suite a number of seeds per workload so the trace counts roughly
track the paper's (SPEC06: 28, SPEC17: 18, PARSEC: 11, Ligra: 40,
Cloudsuite: 53 — scaled down proportionally here to keep full-suite
sweeps fast; every rollup treats the list as *the* suite).
"""

from __future__ import annotations

from repro.sim.trace import Trace
from repro.workloads.generators import generate_trace, workload_names

#: Seeds per workload for each suite.  Ligra and Cloudsuite carry more
#: traces in the paper; mirrored here with extra seeds.
_SEEDS_PER_SUITE: dict[str, int] = {
    "SPEC06": 2,
    "SPEC17": 2,
    "PARSEC": 2,
    "LIGRA": 3,
    "CLOUDSUITE": 4,
    "SYNTH": 2,
}

#: Ordered suite labels as the paper's figures list them.  The extra
#: ``SYNTH`` stress suite (linked-list and phase-switching families) is
#: deliberately *not* part of this list — :func:`all_trace_names` stays
#: "the paper's 1C traces" — but is fully addressable via
#: ``suite_trace_names("SYNTH")`` / ``Experiment.with_suites("SYNTH")``.
SUITES: list[str] = ["SPEC06", "SPEC17", "PARSEC", "LIGRA", "CLOUDSUITE"]


def suite_trace_names(suite: str) -> list[str]:
    """All trace names (``workload-seed``) belonging to *suite*."""
    seeds = _SEEDS_PER_SUITE[suite]
    return [
        f"{name}-{seed}"
        for name in workload_names(suite)
        for seed in range(1, seeds + 1)
    ]


def all_trace_names() -> list[str]:
    """Every trace name across all suites (the paper's "all 1C traces")."""
    return [t for suite in SUITES for t in suite_trace_names(suite)]


def suite_traces(suite: str, length: int = 20_000) -> list[Trace]:
    """Instantiate every trace of *suite* at the given length."""
    return [generate_trace(name, length=length) for name in suite_trace_names(suite)]


def motivation_traces(length: int = 20_000) -> list[Trace]:
    """The six example workloads of Fig 1.

    sphinx3, PARSEC-Canneal, PARSEC-Facesim, GemsFDTD, Ligra-CC and
    Ligra-PageRankDelta — the figure that motivates multi-feature,
    bandwidth-aware prefetching.
    """
    names = [
        "spec06/sphinx3-1",
        "parsec/canneal-1",
        "parsec/facesim-1",
        "spec06/gemsfdtd-1",
        "ligra/cc-1",
        "ligra/pagerankdelta-1",
    ]
    return [generate_trace(n, length=length) for n in names]
