"""Low-level access-pattern primitives used to compose workloads.

Each primitive is an infinite generator of ``(pc, line, gap)`` tuples for
one logical access *stream*; :func:`interleave` merges several streams
into a single program-order sequence the way independent data structures
interleave in a real instruction stream.

Pattern classes and the prefetcher behaviour they elicit:

* :func:`stream` — pure sequential lines; every prefetcher covers it,
  aggressive region prefetchers (Bingo) are the most timely.
* :func:`strided` — constant per-PC stride; stride/IPCP/Pythia learn it.
* :func:`delta_sequence` — a recurring in-page delta program
  (``GemsFDTD``-like); SPP's signature path and Pythia's last-4-deltas
  feature learn it, spatial-footprint prefetchers do poorly.
* :func:`region_footprint` — fixed per-PC spatial footprint touched after
  the first access of a region (``sphinx3``/``canneal``-like); Bingo's
  PC+offset footprint matching excels, delta prefetchers struggle.
* :func:`irregular` — Markov-style hops over a working set; largely
  unprefetchable, punishing overprediction.
* :func:`pointer_chase` — a fixed permutation walk; temporally
  predictable but spatially random.
* :func:`linked_list` — a permutation walk whose nodes carry short
  multi-line payload runs; spatial prefetchers cover the payload, the
  hop defeats them.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.types import LINES_PER_PAGE, make_line

#: Type alias: one stream element is (pc, line, gap).
Access = tuple[int, int, int]


def stream(
    pc: int, start_page: int, gap: int = 4, step: int = 1
) -> Iterator[Access]:
    """Sequential cachelines marching through consecutive pages."""
    line = make_line(start_page, 0)
    while True:
        yield pc, line, gap
        line += step


def strided(
    pc: int, start_page: int, stride: int, gap: int = 4
) -> Iterator[Access]:
    """Constant-stride accesses from a single PC (stride in lines)."""
    line = make_line(start_page, 0)
    while True:
        yield pc, line, gap
        line += stride


def delta_sequence(
    pc_base: int,
    start_page: int,
    deltas: Sequence[int],
    accesses_per_page: int,
    gap: int = 4,
    page_step: int = 1,
    rng: random.Random | None = None,
    max_start_offset: int = 0,
) -> Iterator[Access]:
    """A recurring delta program replayed inside every visited page.

    Within each page, offsets follow the cyclic *deltas* pattern from a
    per-page entry offset (random up to *max_start_offset* when an *rng*
    is given); after *accesses_per_page* accesses the stream hops
    ``page_step`` pages forward.  Each delta position uses its own PC so
    the PC+Delta feature is informative, mirroring loop bodies with
    several loads.  A varying entry offset keeps the pattern
    delta-predictable but not footprint-predictable — the GemsFDTD
    regime the paper attributes to SPP and Pythia.
    """
    page = start_page
    while True:
        if rng is not None and max_start_offset > 0:
            offset = rng.randrange(max_start_offset + 1)
        else:
            offset = 0
        count = accesses_per_page
        if rng is not None and accesses_per_page > 2:
            # Vary the per-page access count a little: the delta chain
            # stays perfectly predictable, but the page *footprint* does
            # not — footprint predictors overshoot on short pages.
            count = accesses_per_page + rng.choice((-1, 0, 0, 1))
        yield pc_base, make_line(page, offset), gap
        for i in range(count - 1):
            delta = deltas[i % len(deltas)]
            offset = (offset + delta) % LINES_PER_PAGE
            yield pc_base + (i % len(deltas)) + 1, make_line(page, offset), gap
        page += page_step


def region_footprint(
    pc: int,
    footprint: Sequence[int],
    num_regions: int,
    start_page: int,
    rng: random.Random,
    gap: int = 4,
    revisit_fraction: float = 0.3,
    shuffle_prob: float = 0.5,
    member_prob: float = 0.85,
    noise_prob: float = 0.08,
) -> Iterator[Access]:
    """Per-PC spatial footprints over 4 KB regions (SMS/Bingo pattern).

    Each visited region is touched at exactly the offsets in *footprint*
    (deterministic given the PC, as in codes walking records within
    pages).  Regions are mostly fresh, with a fraction revisited to give
    footprint predictors their training hits.
    """
    visited: list[int] = []
    page = start_page
    while True:
        if visited and rng.random() < revisit_fraction:
            region = rng.choice(visited)
        else:
            region = page
            page += rng.randint(1, 3)
            visited.append(region)
            if len(visited) > num_regions:
                visited.pop(0)
        # The trigger offset is fixed (it identifies the footprint); the
        # rest of the footprint is visited in shuffled order for a
        # fraction of visits — the *set* of touched lines always recurs,
        # the delta sequence only mostly.  This is what separates
        # footprint predictors (Bingo) from delta predictors (SPP) on
        # these workloads while leaving delta prediction viable.
        # Per-visit instability: most members appear (member_prob), and
        # occasionally an extra line joins (noise_prob).  Real spatial
        # footprints vary visit to visit — this is what gives footprint
        # predictors their overpredictions in the paper's Fig 7.
        tail = [off for off in footprint[1:] if rng.random() < member_prob]
        if rng.random() < noise_prob:
            tail.append(rng.randrange(LINES_PER_PAGE))
        if rng.random() < shuffle_prob:
            rng.shuffle(tail)
        for off in [footprint[0]] + tail:
            yield pc, make_line(region, off), gap


def irregular(
    pc: int,
    working_set_pages: int,
    start_page: int,
    rng: random.Random,
    gap: int = 4,
    locality: float = 0.1,
    burst_lines: int = 1,
) -> Iterator[Access]:
    """Hard-to-predict hops over a bounded working set.

    With probability *locality* the next access stays in the current
    page at a random offset (a little spatial reuse); otherwise it jumps
    to a random page and offset.  No feature correlates with the next
    hop, so prefetches across hops are wasted.

    When ``burst_lines > 1`` each hop touches a short run of consecutive
    lines of random length (1..burst_lines) — the adjacency-list gather
    shape of graph workloads.  The run gives spatial prefetchers partial
    coverage, but its varying length makes aggressive ones overshoot:
    exactly the Ligra regime of Fig 1.
    """
    page = start_page
    while True:
        if rng.random() >= locality:
            page = start_page + rng.randrange(working_set_pages)
        offset = rng.randrange(LINES_PER_PAGE)
        run = rng.randint(1, burst_lines) if burst_lines > 1 else 1
        for i in range(run):
            if offset + i >= LINES_PER_PAGE:
                break
            yield pc, make_line(page, offset + i), gap


def pointer_chase(
    pc: int,
    num_nodes: int,
    start_page: int,
    rng: random.Random,
    gap: int = 6,
) -> Iterator[Access]:
    """Walk a fixed random permutation — a linked-list traversal.

    The successor of each node never changes, so the sequence is
    temporally deterministic yet spatially random: only temporal
    prefetchers (not evaluated here, as in the paper) could cover it.
    """
    order = list(range(num_nodes))
    rng.shuffle(order)
    succ = {order[i]: order[(i + 1) % num_nodes] for i in range(num_nodes)}
    node = order[0]
    while True:
        page = start_page + node // LINES_PER_PAGE
        offset = node % LINES_PER_PAGE
        yield pc, make_line(page, offset), gap
        node = succ[node]


def linked_list(
    pc: int,
    num_nodes: int,
    start_page: int,
    rng: random.Random,
    gap: int = 6,
    payload_lines: int = 2,
    node_stride_lines: int = 4,
) -> Iterator[Access]:
    """Walk a linked list whose nodes carry multi-line payloads.

    Like :func:`pointer_chase`, the successor of each node is a fixed
    random permutation — the *next-node* hop is spatially random and only
    temporally predictable.  Unlike a bare chase, visiting a node then
    touches ``payload_lines`` consecutive lines after the node header
    (the record's fields), each from its own PC: the intra-node run is
    perfectly spatially predictable, so stride/region prefetchers get
    partial coverage while the hop itself defeats them — the classic
    linked-structure regime (health/mcf-like) between pure pointer
    chasing and streaming.  Nodes are spread ``node_stride_lines`` apart
    so payloads of adjacent nodes do not overlap.
    """
    order = list(range(num_nodes))
    rng.shuffle(order)
    succ = {order[i]: order[(i + 1) % num_nodes] for i in range(num_nodes)}
    node = order[0]
    while True:
        base = node * node_stride_lines
        page = start_page + base // LINES_PER_PAGE
        offset = base % LINES_PER_PAGE
        yield pc, make_line(page, offset), gap
        for field in range(1, payload_lines + 1):
            line = base + field
            yield (
                pc + 8 * field,
                make_line(start_page + line // LINES_PER_PAGE, line % LINES_PER_PAGE),
                gap,
            )
        node = succ[node]


def interleave(
    streams: Sequence[Iterator[Access]],
    weights: Sequence[float],
    length: int,
    rng: random.Random,
) -> list[Access]:
    """Merge *streams* into one program-order sequence of *length* accesses.

    Each step picks a stream with probability proportional to its
    weight — the standard model of independent data structures being
    walked concurrently by one instruction stream.
    """
    if len(streams) != len(weights):
        raise ValueError("streams/weights length mismatch")
    total = float(sum(weights))
    cumulative: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    out: list[Access] = []
    for _ in range(length):
        r = rng.random()
        for idx, edge in enumerate(cumulative):
            if r <= edge:
                out.append(next(streams[idx]))
                break
    return out
