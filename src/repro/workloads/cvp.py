"""Unseen-trace suite standing in for the CVP-2 championship traces.

§6.4 of the paper evaluates Pythia on 500 traces from the second value
prediction championship — traces *not used for any tuning* — split into
crypto, integer, floating-point and server categories.  We mirror that
with generator configurations and seeds disjoint from everything in
:mod:`repro.workloads.suites`: different archetype parameters, different
seed ranges.  Nothing in :mod:`repro.tuning` ever touches these.
"""

from __future__ import annotations

from repro.sim.trace import Trace
from repro.workloads.generators import WorkloadSpec, _BUILDERS, stable_seed
import random

from repro.sim.trace import TraceRecord

#: Category -> list of (name, archetype, params, gap).  Parameters are
#: deliberately off-grid from the tuned suites.
_CVP_SPECS: list[WorkloadSpec] = [
    WorkloadSpec("cvp/crypto-aes", "CVP-CRYPTO", "stride", {"strides": [2, 2, 6]}, gap=58),
    WorkloadSpec("cvp/crypto-sha", "CVP-CRYPTO", "mixed", {"deltas": [6, 13]}, gap=64),
    WorkloadSpec("cvp/int-compress", "CVP-INT", "irregular",
                 {"working_set_pages": 3072, "locality": 0.2, "regular_weight": 0.4}, gap=42),
    WorkloadSpec("cvp/int-parse", "CVP-INT", "pointer", {"nodes": 30_000}, gap=52),
    WorkloadSpec("cvp/fp-solver", "CVP-FP", "delta",
                 {"deltas": [17], "accesses_per_page": 3}, gap=32),
    WorkloadSpec("cvp/fp-stencil", "CVP-FP", "stride", {"strides": [1, 6, 12]}, gap=32),
    WorkloadSpec("cvp/server-web", "CVP-SERVER", "server", {"contexts": 10}, gap=42),
    WorkloadSpec("cvp/server-db", "CVP-SERVER", "server", {"contexts": 14}, gap=32),
]

_BY_NAME = {s.name: s for s in _CVP_SPECS}

#: Seed offset guaranteeing no overlap with tuned-suite seeds.
_UNSEEN_SEED_BASE = 10_000


def cvp_trace_names(per_workload: int = 2) -> list[str]:
    """All unseen trace names, *per_workload* seeds each."""
    return [
        f"{spec.name}-{i}"
        for spec in _CVP_SPECS
        for i in range(1, per_workload + 1)
    ]


def cvp_categories() -> list[str]:
    """The Fig 12 category labels."""
    return ["CVP-CRYPTO", "CVP-INT", "CVP-FP", "CVP-SERVER"]


def cvp_suite_of(trace_name: str) -> str:
    """Suite (category) label of a CVP trace name."""
    base, _, _ = trace_name.rpartition("-")
    if base not in _BY_NAME:
        raise KeyError(f"unknown CVP trace: {trace_name!r}")
    return _BY_NAME[base].suite


def generate_cvp_trace(name: str, length: int = 20_000) -> Trace:
    """Instantiate one unseen trace (name format ``cvp/<wl>-<seed>``)."""
    base, _, seed_s = name.rpartition("-")
    if base not in _BY_NAME or not seed_s.isdigit():
        raise KeyError(f"unknown CVP trace: {name!r}")
    spec = _BY_NAME[base]
    seed = _UNSEEN_SEED_BASE + int(seed_s)
    rng = random.Random(stable_seed(base, seed))
    accesses = _BUILDERS[spec.archetype](spec, length, rng)
    records = [TraceRecord(pc=pc, line=line, is_load=True, gap=gap) for pc, line, gap in accesses]
    return Trace(name, records, spec.suite)
