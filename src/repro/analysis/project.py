"""Whole-program context: every file parsed once, symbols resolved.

Per-file :class:`AstRule` passes structurally cannot see cross-file
properties — a module-level cache in ``repro.registry`` mutated by a
function that ``repro.api.experiment`` reaches through two import
aliases, say.  :class:`ProjectContext` closes that gap: it parses the
whole tree once and derives

* a **module symbol table** — per module: import aliases (module-level
  *and* function-scoped), top-level functions, classes with their
  methods and base names, and module-level data names;
* a **mutable-global write index** — every module-level name assigned
  outside its defining statement, plus ``global``-declared assignments,
  attribute/subscript stores, and mutating method calls
  (``.update(...)``, ``.append(...)``, …) that target module state,
  whether addressed directly or through an import alias;
* per-file **CRC32 content stamps**, the invalidation currency shared
  with the incremental cache (:mod:`repro.analysis.cache`).

:mod:`repro.analysis.callgraph` layers def/use call resolution on top;
:class:`~repro.analysis.rules.ProjectRule` subclasses consume both.

Tests build small synthetic projects with :meth:`ProjectContext.
from_sources`, mapping dotted module names to source strings — the same
structures come out, no files needed.
"""

from __future__ import annotations

import ast
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import repo_relative


def module_name_of(path: Path) -> str | None:
    """Dotted module for a source file, or ``None`` outside ``repro``.

    ``src/repro/sim/cache.py`` → ``repro.sim.cache``;
    package ``__init__`` files map to the package itself.
    """
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    dotted = parts[parts.index("repro") :]
    dotted[-1] = dotted[-1].removesuffix(".py")
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


#: Method names that mutate their receiver in place.  Calling one on an
#: expression rooted at a module-level name is a write to module state.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(slots=True)
class GlobalWrite:
    """One write to module-level state.

    ``writer`` is the qualified name of the function performing the
    write, or ``None`` for a module-level (import-time) re-assignment.
    Import-time writes are benign for concurrency purposes — workers
    fork/spawn after import — so rules filter on ``writer``.
    """

    module: str  #: module owning the written name
    name: str  #: the module-level name written
    writer: str | None  #: qualified writer function, None = import time
    path: str  #: file containing the write site
    line: int
    kind: str  #: "assign" | "mutate" | "reassign"


@dataclass(slots=True)
class FunctionInfo:
    """One function or method, addressable by qualified name."""

    qualname: str  #: e.g. ``repro.api.experiment.Cell.execute``
    module: str
    path: str
    line: int
    node: ast.AST
    #: function-scoped import aliases (``from repro import registry``
    #: inside a def) — alias → dotted target.
    imports: dict[str, str] = field(default_factory=dict)
    #: names bound locally (params, assignments, loop/with targets, …);
    #: loads of these never resolve to module globals.
    bound: set[str] = field(default_factory=set)


@dataclass(slots=True)
class ClassInfo:
    name: str
    module: str
    line: int
    #: method name → qualified function name
    methods: dict[str, str] = field(default_factory=dict)
    #: base-class name expressions as dotted strings (``"Policy"``,
    #: ``"base.ReplacementPolicy"``) for shallow MRO walks.
    bases: list[str] = field(default_factory=list)


@dataclass(slots=True)
class ModuleInfo:
    """Symbol table of one parsed module."""

    module: str
    path: str
    crc: int
    tree: ast.Module
    #: module-level import aliases: alias → dotted target.  A plain
    #: ``import a.b`` binds ``a`` → ``a``; ``import a.b as c`` binds
    #: ``c`` → ``a.b``; ``from a import b`` binds ``b`` → ``a.b``.
    imports: dict[str, str] = field(default_factory=dict)
    #: top-level function name → qualified name
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level data name → line of its defining statement
    globals_: dict[str, int] = field(default_factory=dict)
    #: data names assigned exactly once to an immutable literal —
    #: hoisting-exempt constants like ``EPOCH = 16_384``.
    constants: set[str] = field(default_factory=set)


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` attribute chain as a string, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_name(node: ast.AST) -> str | None:
    """The leftmost ``Name`` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_immutable_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(_is_immutable_literal(e) for e in node.elts)
    if isinstance(node, ast.UnaryOp):
        return _is_immutable_literal(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_immutable_literal(node.left) and _is_immutable_literal(node.right)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        # frozenset({...}) / range(...) of literals: immutable values.
        if node.func.id in ("frozenset", "range") and not node.keywords:
            return True
    return False


def _resolve_import_from(node: ast.ImportFrom, module: str) -> str:
    """Absolute dotted base of a ``from X import ...`` statement."""
    if node.level == 0:
        return node.module or ""
    # Relative import: climb from the importing module's package.
    parts = module.split(".")[: -node.level] if "." in module else []
    base = ".".join(parts)
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base


def _collect_bound_names(fn: ast.AST) -> set[str]:
    """Every name the function binds locally (its own body only)."""
    bound: set[str] = set()
    args = fn.args
    for a in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ):
        bound.add(a.arg)
    declared_global: set[str] = set()
    for node in _walk_function_body(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, _FUNCTION_NODES) and node is not fn:
            bound.add(node.name)
        elif isinstance(node, ast.ClassDef):
            bound.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    # Import aliases are *not* treated as opaque locals: they resolve
    # through FunctionInfo.imports, so symbol lookups can see through
    # function-scoped ``from repro import registry`` idioms.
    return bound - declared_global


def _walk_function_body(fn: ast.AST):
    """ast.walk limited to *fn*'s own scope: nested function and class
    bodies are not descended into (they are separate scopes)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (*_FUNCTION_NODES, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class ProjectContext:
    """The parsed project: modules, functions, and the write index."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: qualified name → FunctionInfo, every def at every nesting.
        self.functions: dict[str, FunctionInfo] = {}
        self.writes: list[GlobalWrite] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, root: Path) -> "ProjectContext":
        """Parse every ``.py`` under *root* (a ``repro`` package dir)."""
        sources: dict[str, tuple[str, str]] = {}
        for file in sorted(root.rglob("*.py")):
            if "__pycache__" in file.parts:
                continue
            module = module_name_of(file)
            if module is None:
                continue
            # Findings anchor at the repo-relative normal form so they
            # match per-file pragma indexes regardless of how the root
            # was spelled (absolute vs relative).
            sources[module] = (repo_relative(str(file)), file.read_text())
        return cls._from_parsed(sources)

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "ProjectContext":
        """Build from ``{dotted module name: source}`` (tests)."""
        return cls._from_parsed(
            {mod: (f"<{mod}>", src) for mod, src in sources.items()}
        )

    @classmethod
    def _from_parsed(
        cls, sources: dict[str, tuple[str, str]]
    ) -> "ProjectContext":
        ctx = cls()
        # Phase 1: per-module structure, so phase 2 can resolve names
        # across module boundaries.
        for module, (path, source) in sources.items():
            ctx._scan_module(module, path, source)
        # Phase 2: per-function writes, with the full symbol table.
        for info in list(ctx.functions.values()):
            ctx._scan_function(info)
        return ctx

    @staticmethod
    def stamp_files(root: Path) -> dict[str, int]:
        """CRC32 content stamps of every project file (no parsing)."""
        stamps: dict[str, int] = {}
        for file in sorted(root.rglob("*.py")):
            if "__pycache__" not in file.parts:
                stamps[str(file)] = zlib.crc32(file.read_bytes())
        return stamps

    def stamp(self) -> int:
        """One CRC over every module's content stamp — changes when any
        file changes, the invalidation key for cross-file rules."""
        crc = 0
        for module in sorted(self.modules):
            info = self.modules[module]
            crc = zlib.crc32(f"{module}:{info.crc};".encode(), crc)
        return crc

    # -- phase 1: module structure ----------------------------------------

    def _scan_module(self, module: str, path: str, source: str) -> None:
        tree = ast.parse(source)
        info = ModuleInfo(
            module=module,
            path=path,
            crc=zlib.crc32(source.encode()),
            tree=tree,
        )
        self.modules[module] = info
        assign_counts: dict[str, int] = {}
        immutable: dict[str, bool] = {}

        # Module-level control flow (try/except import guards, version
        # branches) still executes at import time, so recurse into those
        # blocks — but never into def/class bodies (separate scopes).
        def walk_toplevel(body: Sequence[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, ast.Import):
                    for alias in stmt.names:
                        if alias.asname:
                            info.imports[alias.asname] = alias.name
                        else:
                            root = alias.name.split(".")[0]
                            info.imports[root] = root
                elif isinstance(stmt, ast.ImportFrom):
                    base = _resolve_import_from(stmt, module)
                    for alias in stmt.names:
                        if alias.name == "*":
                            continue
                        bound = alias.asname or alias.name
                        info.imports[bound] = (
                            f"{base}.{alias.name}" if base else alias.name
                        )
                elif isinstance(stmt, _FUNCTION_NODES):
                    qual = f"{module}.{stmt.name}"
                    info.functions[stmt.name] = qual
                    self._register_functions(stmt, module, path, qual)
                elif isinstance(stmt, ast.ClassDef):
                    self._scan_class(stmt, info, path)
                elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    self._scan_module_assign(stmt, info, assign_counts, immutable)
                elif isinstance(stmt, (ast.If, ast.For, ast.While)):
                    walk_toplevel(stmt.body)
                    walk_toplevel(stmt.orelse)
                elif isinstance(stmt, ast.Try):
                    walk_toplevel(stmt.body)
                    for handler in stmt.handlers:
                        walk_toplevel(handler.body)
                    walk_toplevel(stmt.orelse)
                    walk_toplevel(stmt.finalbody)
                elif isinstance(stmt, ast.With):
                    walk_toplevel(stmt.body)

        walk_toplevel(tree.body)
        info.constants = {
            name
            for name, count in assign_counts.items()
            if count == 1 and immutable.get(name, False)
        }

    def _scan_module_assign(
        self,
        stmt: ast.stmt,
        info: ModuleInfo,
        assign_counts: dict[str, int],
        immutable: dict[str, bool],
    ) -> None:
        targets = (
            stmt.targets
            if isinstance(stmt, ast.Assign)
            else [stmt.target]
        )
        value = getattr(stmt, "value", None)
        for target in targets:
            names = (
                [e for e in target.elts if isinstance(e, ast.Name)]
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for tgt in names:
                if not isinstance(tgt, ast.Name):
                    continue
                name = tgt.id
                assign_counts[name] = assign_counts.get(name, 0) + 1
                if name not in info.globals_:
                    info.globals_[name] = stmt.lineno
                    immutable[name] = value is not None and _is_immutable_literal(
                        value
                    )
                else:
                    # Re-assigned outside its defining statement: an
                    # import-time write (e.g. try/except import guards).
                    self.writes.append(
                        GlobalWrite(
                            module=info.module,
                            name=name,
                            writer=None,
                            path=info.path,
                            line=stmt.lineno,
                            kind="reassign",
                        )
                    )

    def _scan_class(
        self, node: ast.ClassDef, info: ModuleInfo, path: str
    ) -> None:
        cinfo = ClassInfo(
            name=node.name,
            module=info.module,
            line=node.lineno,
            bases=[d for b in node.bases if (d := _dotted(b)) is not None],
        )
        info.classes[node.name] = cinfo
        for stmt in node.body:
            if isinstance(stmt, _FUNCTION_NODES):
                qual = f"{info.module}.{node.name}.{stmt.name}"
                cinfo.methods[stmt.name] = qual
                self._register_functions(stmt, info.module, path, qual)

    def _register_functions(
        self, fn: ast.AST, module: str, path: str, qualname: str
    ) -> None:
        """Register *fn* and, recursively, the defs nested inside it."""
        self.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=module,
            path=path,
            line=fn.lineno,
            node=fn,
        )
        for node in _walk_function_body(fn):
            if isinstance(node, _FUNCTION_NODES):
                self._register_functions(
                    node, module, path, f"{qualname}.{node.name}"
                )

    # -- phase 2: function-scope writes ------------------------------------

    def _scan_function(self, fn: FunctionInfo) -> None:
        minfo = self.modules[fn.module]
        declared_global: set[str] = set()
        for node in _walk_function_body(fn.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_import_from(node, fn.module)
                for alias in node.names:
                    if alias.name != "*":
                        bound = alias.asname or alias.name
                        fn.imports[bound] = (
                            f"{base}.{alias.name}" if base else alias.name
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    fn.imports[bound] = alias.asname and alias.name or bound
        fn.bound = _collect_bound_names(fn.node)

        for node in _walk_function_body(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    self._record_store(fn, minfo, target, declared_global)
            elif isinstance(node, ast.Call):
                self._record_mutator_call(fn, minfo, node)

    def _record_store(
        self,
        fn: FunctionInfo,
        minfo: ModuleInfo,
        target: ast.AST,
        declared_global: set[str],
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(fn, minfo, elt, declared_global)
            return
        if isinstance(target, ast.Name):
            if target.id in declared_global:
                self.writes.append(
                    GlobalWrite(
                        module=fn.module,
                        name=target.id,
                        writer=fn.qualname,
                        path=fn.path,
                        line=target.lineno,
                        kind="assign",
                    )
                )
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            resolved = self._resolve_state(fn, minfo, target)
            if resolved is not None:
                module, name = resolved
                self.writes.append(
                    GlobalWrite(
                        module=module,
                        name=name,
                        writer=fn.qualname,
                        path=fn.path,
                        line=target.lineno,
                        kind="mutate",
                    )
                )

    def _record_mutator_call(
        self, fn: FunctionInfo, minfo: ModuleInfo, call: ast.Call
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATOR_METHODS:
            return
        resolved = self._resolve_state(fn, minfo, func.value)
        if resolved is not None:
            module, name = resolved
            self.writes.append(
                GlobalWrite(
                    module=module,
                    name=name,
                    writer=fn.qualname,
                    path=fn.path,
                    line=call.lineno,
                    kind="mutate",
                )
            )

    def _resolve_state(
        self, fn: FunctionInfo, minfo: ModuleInfo, node: ast.AST
    ) -> tuple[str, str] | None:
        """Resolve an expression to ``(module, global name)`` when it is
        rooted at module-level state; ``None`` for locals/attributes."""
        # Peel subscripts: ``cache[k]`` targets ``cache``.
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name):
            name = node.id
            if name in fn.bound:
                return None
            if name in minfo.globals_:
                return (minfo.module, name)
            # An imported *object* mutated in place (``from x import
            # CACHE; CACHE.update(...)``): attribute the write to the
            # defining module when we know it.
            alias = fn.imports.get(name) or minfo.imports.get(name)
            if alias and "." in alias:
                owner, _, attr = alias.rpartition(".")
                owner_info = self.modules.get(owner)
                if owner_info is not None and attr in owner_info.globals_:
                    return (owner, attr)
            return None
        if isinstance(node, ast.Attribute):
            # ``registry._CACHE`` → module alias + its global.
            base = node.value
            if isinstance(base, ast.Name) and base.id not in fn.bound:
                alias = fn.imports.get(base.id) or minfo.imports.get(base.id)
                if alias is not None:
                    owner_info = self.modules.get(alias)
                    if owner_info is not None and node.attr in owner_info.globals_:
                        return (alias, node.attr)
            return None
        return None

    # -- queries -----------------------------------------------------------

    def function_writes(self) -> list[GlobalWrite]:
        """Writes performed by functions (import-time ones excluded)."""
        return [w for w in self.writes if w.writer is not None]

    def mutable_globals(self) -> set[tuple[str, str]]:
        """``(module, name)`` pairs with at least one function-scope
        write anywhere in the project — state that is *not* read-only
        after import."""
        return {(w.module, w.name) for w in self.writes if w.writer is not None}

    def resolve_name(
        self, fn: FunctionInfo, name: str
    ) -> str | None:
        """What a bare ``Name`` load inside *fn* refers to, as a dotted
        target: an import alias target, a module symbol's qualified
        name, or ``None`` (builtin/local/unknown)."""
        if name in fn.bound:
            return None
        minfo = self.modules[fn.module]
        target = fn.imports.get(name) or minfo.imports.get(name)
        if target is not None:
            return target
        if name in minfo.functions:
            return minfo.functions[name]
        if name in minfo.classes:
            return f"{fn.module}.{name}"
        if name in minfo.globals_:
            return f"{fn.module}.{name}"
        return None
