"""Finding records and severities for the static-analysis pass.

A :class:`Finding` is one rule violation at one source location.  The
tuple is deliberately small and order-friendly so findings can be
sorted, diffed against the committed baseline, and rendered as either
text or JSON without any extra machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import PurePath


def repo_relative(path: str) -> str:
    """Trim an absolute source path down to its ``src/repro/...`` tail.

    Findings from different passes (per-file, whole-program,
    introspection) must agree on path spelling so pragma lookups and
    baseline keys match; this is the shared normal form.  Paths outside
    a ``repro`` package pass through unchanged.
    """
    parts = PurePath(path).parts
    if "repro" in parts:
        idx = parts.index("repro")
        prefix = ("src",) if idx > 0 and parts[idx - 1] == "src" else ()
        return str(PurePath(*prefix, *parts[idx:]))
    return path


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the build; ``WARNING`` findings are reported
    but only fail under ``--strict``.  Every shipped rule emits errors —
    the warning level exists so a new rule can be soak-tested on real
    trees before it starts gating CI.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation.

    Attributes:
        path: repo-relative (or as-given) path of the offending file.
        line: 1-based line number; introspection rules point at the
            class/def line of the offending object.
        rule: the rule identifier, e.g. ``"determinism"`` — the same
            name a ``# repro: ignore[rule]`` pragma suppresses.
        message: human-readable description of the violation.
        severity: gate level (see :class:`Severity`).
    """

    path: str
    line: int
    rule: str
    message: str
    severity: Severity = field(default=Severity.ERROR)

    def render(self) -> str:
        """One-line text rendering: ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: {self.severity.value}: [{self.rule}] {self.message}"

    def as_json(self) -> dict:
        """JSON-serializable form (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity.value,
        }

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching.

        Line numbers are excluded so unrelated edits above a
        grandfathered finding do not un-suppress it; a baselined finding
        is identified by where it is, which rule fired, and what it
        says.
        """
        return (self.path, self.rule, self.message)
