"""Checkpoint-coverage rule: the EngineState graph must pickle whole.

PR 5 checkpoints work by pickling the live ``(hierarchy, core)`` pair
(:class:`repro.sim.engine.EngineState`); resume, crash recovery, and
the ROADMAP's checkpoint-adopting fleet workers all assume that *every*
object reachable from an engine snapshot round-trips through pickle
with no state left behind.  Two drift modes break that silently:

* an attribute that pickle cannot serialize at all (a lambda, a lock,
  an open file) — fails loudly only on the first checkpointed run of
  the specific prefetcher that carries it;
* a ``__slots__`` class with a hand-written ``__getstate__`` that a
  later slot addition forgot — pickles fine, *restores a stale or
  missing field*, and the resumed run diverges bit-for-bit undetected.

This rule materializes a real replay graph — a short simulation of
every registered prefetcher through the standard hierarchy/core pair —
then (a) pickle round-trips the whole graph, and (b) walks every
reachable *class* checking that hand-written ``__getstate__`` code
mentions each declared slot and that a custom ``__getstate__`` on a
slotted class is paired with a ``__setstate__``.
"""

from __future__ import annotations

import pickle
from itertools import islice
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import IntrospectionRule, register

#: Records replayed to materialize dynamic state (cache lines, MSHR
#: entries, EQ entries, Q-store rows) before the graph is walked.
WARM_RECORDS = 256


def default_graphs() -> Iterable[tuple[str, object]]:
    """Yield ``(label, root object)`` graphs to verify.

    One warmed ``(hierarchy, core)`` pair per registered prefetcher —
    exactly what :meth:`EngineState.capture` pickles.
    """
    from dataclasses import replace

    from repro import registry
    from repro.sim.core import CoreModel
    from repro.sim.engine import _run_core
    from repro.sim.hierarchy import CacheHierarchy
    from repro.sim.config import CacheGeometry, SystemConfig

    # Shrunken geometry: the reachable *classes* are identical to the
    # production config, but the object graph pickles in milliseconds
    # instead of seconds (a full LLC is ~32k line objects).
    base = SystemConfig()
    config = replace(
        base,
        l1=CacheGeometry(4 * 1024, 4, 4, 8),
        l2=CacheGeometry(8 * 1024, 4, 14, 8),
        llc=CacheGeometry(16 * 1024, 4, 34, 8, base.llc.replacement),
    )
    trace = registry.cached_trace("spec06/lbm-1", WARM_RECORDS)
    for name in registry.available_prefetchers():
        hierarchy = CacheHierarchy(config, registry.create(name))
        core = CoreModel(config.core)
        _run_core(hierarchy, core, islice(trace.records, WARM_RECORDS))
        yield name, (hierarchy, core)


def _reachable_objects(root: object) -> Iterator[object]:
    """Deduplicated walk of instance state, mirroring what pickle sees."""
    seen: set[int] = set()
    stack = [root]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        yield obj
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif hasattr(obj, "__dict__") or hasattr(type(obj), "__slots__"):
            for cls in type(obj).__mro__:
                for slot in getattr(cls, "__slots__", ()):
                    if hasattr(obj, slot):
                        stack.append(getattr(obj, slot))
            stack.extend(getattr(obj, "__dict__", {}).values())


def _code_mentions(func, name: str) -> bool:
    """Whether *name* appears in *func*'s code (constants, names, or
    nested code objects) — the drift check for hand-written getstates."""
    try:
        codes = [func.__code__]
    except AttributeError:
        return True  # C-level or wrapped: assume covered
    while codes:
        code = codes.pop()
        if name in code.co_names or name in code.co_consts or name in code.co_varnames:
            return True
        codes.extend(c for c in code.co_consts if hasattr(c, "co_names"))
    return False


def _all_slots(cls: type) -> list[str]:
    slots: list[str] = []
    for klass in cls.__mro__:
        declared = klass.__dict__.get("__slots__", ())
        if isinstance(declared, str):
            declared = (declared,)
        slots.extend(s for s in declared if s not in ("__dict__", "__weakref__"))
    return slots


@register
class CheckpointCoverageRule(IntrospectionRule):
    name = "checkpoint"
    description = (
        "everything reachable from EngineState must pickle round-trip, "
        "with __getstate__/__setstate__ covering all __slots__"
    )

    def __init__(self, graphs: Iterable[tuple[str, object]] | None = None) -> None:
        self._graphs = graphs

    def check(self) -> Iterator[Finding]:
        graphs = self._graphs if self._graphs is not None else default_graphs()
        checked: set[type] = set()
        for label, root in graphs:
            try:
                pickle.loads(pickle.dumps(root, pickle.HIGHEST_PROTOCOL))
            except Exception as exc:
                yield self.finding_at(
                    type(root),
                    f"checkpoint graph {label!r} does not pickle "
                    f"round-trip: {exc!r}; every EngineState member must "
                    "be serializable",
                )
            for obj in _reachable_objects(root):
                cls = type(obj)
                if cls in checked or cls.__module__ in ("builtins",):
                    continue
                checked.add(cls)
                yield from self._check_class(cls)

    def _check_class(self, cls: type) -> Iterator[Finding]:
        import dataclasses

        getstate = cls.__dict__.get("__getstate__")
        setstate = cls.__dict__.get("__setstate__")
        # frozen+slots dataclasses get generated hooks that cover every
        # field by construction; only hand-written ones can drift.
        if getstate is getattr(dataclasses, "_dataclass_getstate", None):
            getstate = None
        if setstate is getattr(dataclasses, "_dataclass_setstate", None):
            setstate = None
        slots = _all_slots(cls)
        if getstate is None and setstate is None:
            return
        if slots and getstate is not None and setstate is None:
            yield self.finding_at(
                cls,
                f"{cls.__name__} defines __getstate__ but no "
                "__setstate__ on a slotted class; the default restore "
                "path cannot apply a custom state shape to __slots__",
            )
        if getstate is not None:
            for slot in slots:
                if not _code_mentions(getstate, slot):
                    yield self.finding_at(
                        cls,
                        f"{cls.__name__}.__getstate__ does not cover "
                        f"slot {slot!r}; a checkpoint of this object "
                        "restores with that field missing or stale",
                    )
