"""Concurrency rule: worker-reachable code must not mutate module state.

The ROADMAP's fleet-executor and ``repro.serve`` arcs put the same
modules in many workers (processes today, threads tomorrow).  Module
state that a worker-reachable function *writes* is then a cross-worker
race — or, for process pools, a silent divergence between parent and
child interpreters.  The rule computes, over the whole program:

1. every write to module-level state performed inside a function (the
   :class:`~repro.analysis.project.ProjectContext` write index), and
2. the set of functions reachable through the call graph from the
   executor/worker entry points — ``_init_worker``, any ``*Cell.
   execute``, ``Session.run``,

and reports each write whose writer is reachable.  State that is only
assigned at import time is read-only after import and never reported.
Deliberate worker-local state (the executor's per-process store handle,
the registry's memo caches) carries a ``# repro: ignore[concurrency]``
pragma at the write site, with a comment saying why it is safe.

The rule also enforces the store's write discipline: inside
``repro.api.store``, raw file writes (``open("w")``, ``write_text``,
``pickle.dump``, ``os.replace``) may appear only in the designated
atomic-write helpers, so every persisted artifact goes through the one
tmp-file + atomic-rename path that concurrent writers can share.

Finally it guards the session's single-flight registry: ``Session``
methods share ``self._inflight`` across request threads, so every
mutation of it (subscript assignment, ``pop``/``clear``/``update``,
rebinding) must sit lexically inside a ``with self._lock`` block.
``__init__`` is exempt — construction happens before the instance can
be shared.  The attribute set is small and explicit
(:data:`GUARDED_SESSION_STATE`); grow it when the session gains more
thread-shared state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallGraph
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext, _walk_function_body
from repro.analysis.rules import ProjectRule, register

#: Qualified-name suffixes marking executor/worker entry points.  The
#: ``Cell.execute`` suffix matches every cell flavor (``MixCell``,
#: replicated cells, …) by construction.
ENTRY_SUFFIXES = ("._init_worker", "Cell.execute", "Session.run")

#: The module whose file writes must route through atomic helpers, and
#: the helper functions (by bare name) allowed to touch files raw.
STORE_MODULE = "repro.api.store"
ATOMIC_HELPERS = frozenset(
    {"_atomic_write_text", "_atomic_write_bytes", "_atomic_write_pickle"}
)

#: Raw-write call shapes: attribute callees that write, name callees
#: that open for writing, and module functions that replace files.
_WRITE_ATTRS = frozenset({"write_text", "write_bytes"})
_REPLACE_FUNCS = frozenset({"replace", "rename"})

#: Session attributes shared across request threads: every mutation
#: must hold the session lock.  Reads are deliberately out of scope —
#: the registry's read-then-claim races are closed by the claim
#: protocol itself, not by the lock.
GUARDED_SESSION_STATE = frozenset({"_inflight"})

#: Lock attributes whose ``with self.<lock>`` blocks satisfy the guard.
_SESSION_LOCKS = frozenset({"_lock"})

#: Mutating mapping methods on a guarded attribute.
_MUTATING_METHODS = frozenset(
    {"pop", "popitem", "clear", "update", "setdefault", "__setitem__"}
)


def entry_points(ctx: ProjectContext) -> list[str]:
    """Worker entry points present in this project, sorted."""
    return sorted(
        qual
        for qual in ctx.functions
        if any(qual.endswith(suffix) for suffix in ENTRY_SUFFIXES)
    )


def _is_write_mode(call: ast.Call, *, method: bool) -> bool:
    """Whether an ``open``-style call requests a writable mode.

    For the builtin (``open(path, "w")``) the mode is the second
    positional; for the ``Path.open("wb")`` method it is the first.
    """
    index = 0 if method else 1
    mode = None
    if len(call.args) > index and isinstance(call.args[index], ast.Constant):
        mode = call.args[index].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            mode = kw.value.value
    if not isinstance(mode, str):
        return False
    return any(ch in mode for ch in "wax+")


@register
class ConcurrencyRule(ProjectRule):
    name = "concurrency"
    description = (
        "module-level state must not be written by functions reachable "
        "from worker entry points; store file writes go through the "
        "atomic-write helpers; session single-flight state mutates only "
        "under the session lock"
    )
    version = 2

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        yield from self._check_reachable_writes(project)
        yield from self._check_store_writes(project)
        yield from self._check_guarded_session_state(project)

    # -- reachable mutable-global writes -----------------------------------

    def _check_reachable_writes(
        self, project: ProjectContext
    ) -> Iterator[Finding]:
        entries = entry_points(project)
        if not entries:
            return
        graph = CallGraph.build(project)
        reached = graph.reachable_from(entries)
        seen: set[tuple[str, int, str]] = set()
        for write in project.function_writes():
            if write.writer not in reached:
                continue
            key = (write.path, write.line, f"{write.module}.{write.name}")
            if key in seen:
                continue
            seen.add(key)
            entry, _ = reached[write.writer]
            chain = graph.chain(reached, write.writer)
            via = (
                f" via {' -> '.join(p.rsplit('.', 1)[1] for p in chain[1:-1])}"
                if len(chain) > 2
                else ""
            )
            yield self.finding(
                write.path,
                write.line,
                f"module-level state '{write.module}.{write.name}' is "
                f"written by {write.writer!r}, reachable from worker "
                f"entry point {entry!r}{via}; shared mutable module "
                "state races across workers — make it worker-local, "
                "guard it, or pragma the write with a safety argument",
            )

    # -- store write discipline --------------------------------------------

    def _check_store_writes(self, project: ProjectContext) -> Iterator[Finding]:
        minfo = project.modules.get(STORE_MODULE)
        if minfo is None:
            return
        for qual, fn in project.functions.items():
            if fn.module != STORE_MODULE:
                continue
            bare = qual.rsplit(".", 1)[1]
            if bare in ATOMIC_HELPERS:
                continue
            for node in _walk_function_body(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                label = self._raw_write_label(node)
                if label is not None:
                    yield self.finding(
                        fn.path,
                        node.lineno,
                        f"raw file write ({label}) in {qual!r}: store "
                        "artifacts must be persisted through the "
                        "atomic-write helpers "
                        "(_atomic_write_text/_atomic_write_bytes/"
                        "_atomic_write_pickle) so concurrent writers "
                        "never observe torn files",
                    )

    # -- session single-flight guard ---------------------------------------

    def _check_guarded_session_state(
        self, project: ProjectContext
    ) -> Iterator[Finding]:
        for qual, fn in project.functions.items():
            if "Session." not in qual or qual.endswith(".__init__"):
                continue
            guarded = _lock_guarded_nodes(fn.node)
            for node in _walk_function_body(fn.node):
                attr = _guarded_mutation(node)
                if attr is None or node in guarded:
                    continue
                yield self.finding(
                    fn.path,
                    node.lineno,
                    f"mutation of thread-shared 'self.{attr}' in {qual!r} "
                    "outside a 'with self._lock' block: the single-flight "
                    "registry is shared by every thread running this "
                    "session — take the session lock around the mutation",
                )

    @staticmethod
    def _raw_write_label(call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open" and _is_write_mode(call, method=False):
                return "open(..., 'w')"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in _WRITE_ATTRS:
            return f".{func.attr}()"
        if func.attr == "open" and _is_write_mode(call, method=True):
            return ".open('w')"
        if func.attr == "dump" and isinstance(func.value, ast.Name):
            if func.value.id in ("pickle", "json", "marshal"):
                return f"{func.value.id}.dump()"
        if func.attr in _REPLACE_FUNCS and isinstance(func.value, ast.Name):
            if func.value.id == "os":
                return f"os.{func.attr}()"
        return None


def _is_guarded_self_attr(expr: ast.expr) -> str | None:
    """``self.<attr>`` where *attr* is guarded session state, else None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in GUARDED_SESSION_STATE
    ):
        return expr.attr
    return None


def _is_session_lock(expr: ast.expr) -> bool:
    """``self._lock`` (any registered session lock attribute)."""
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in _SESSION_LOCKS
    )


def _lock_guarded_nodes(fn_node: ast.AST) -> set[ast.AST]:
    """Every AST node lexically inside a ``with self._lock`` block."""
    guarded: set[ast.AST] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.With, ast.AsyncWith)) and any(
            _is_session_lock(item.context_expr) for item in node.items
        ):
            for stmt in node.body:
                guarded.add(stmt)
                guarded.update(ast.walk(stmt))
    return guarded


def _guarded_mutation(node: ast.AST) -> str | None:
    """The guarded attribute *node* mutates, or ``None``.

    Covers subscript assignment/deletion, augmented assignment,
    rebinding of the attribute itself, and the mutating mapping
    methods (``pop``/``clear``/``update``/``setdefault``/…).
    """
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
            if isinstance(node, ast.AugAssign)
            else node.targets
        )
        for target in targets:
            if isinstance(target, ast.Subscript):
                attr = _is_guarded_self_attr(target.value)
                if attr is not None:
                    return attr
            attr = _is_guarded_self_attr(target)
            if attr is not None:
                return attr
        return None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATING_METHODS:
            return _is_guarded_self_attr(node.func.value)
    return None
