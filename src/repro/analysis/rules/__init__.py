"""Rule framework: base classes, registry, and the shipped rule set.

Three pass kinds exist:

* :class:`AstRule` — pure syntax: visits one file's AST and yields
  findings at source lines.  Cheap, runs per file, needs no imports.
* :class:`ProjectRule` — whole-program: receives a
  :class:`~repro.analysis.project.ProjectContext` (every file parsed,
  symbols and call graph resolvable across modules) and yields findings
  anywhere in the tree.  Runs once per invocation; invalidated by any
  file change in the incremental cache.
* :class:`IntrospectionRule` — imports the live package and inspects
  real objects (config dataclasses, registered prefetchers, the
  checkpoint object graph).  Runs once per invocation, anchored to the
  source locations of the offending classes.

Rules self-register via :func:`register`; ``python -m repro.analysis
--list-rules`` renders the registry.  Adding a rule is: subclass one of
the bases in a new module here, decorate it, import the module below.

Every rule carries a ``version`` integer folded into the incremental
cache's ruleset signature — bump it when a rule's semantics change so
cached verdicts from the old semantics are discarded.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Type

from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.project import ProjectContext


@dataclass
class FileContext:
    """Everything an :class:`AstRule` may look at for one file."""

    path: str
    module: str | None
    source: str
    tree: ast.Module

    @classmethod
    def parse(cls, path: Path, display: str, module: str | None) -> "FileContext":
        source = path.read_text()
        return cls(path=display, module=module, source=source, tree=ast.parse(source))

    def in_package(self, *packages: str) -> bool:
        """True when this file's module sits under any of *packages*
        (dotted prefixes relative to ``repro``, e.g. ``"sim"``)."""
        if self.module is None:
            return False
        for pkg in packages:
            full = f"repro.{pkg}"
            if self.module == full or self.module.startswith(full + "."):
                return True
        return False


class AstRule:
    """Base for pure-syntax rules.  Subclasses yield findings from
    :meth:`check`; helpers keep path/severity plumbing out of rules."""

    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    #: Cache-invalidation counter: bump on any semantic change.
    version: int = 1

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            rule=self.name,
            message=message,
            severity=self.severity,
        )


class ProjectRule:
    """Base for whole-program rules over a :class:`ProjectContext`.

    ``check`` receives the parsed project — symbol tables, the
    mutable-global write index, and (via
    :class:`~repro.analysis.callgraph.CallGraph`) call resolution — and
    yields findings anchored anywhere in the tree.  Pragmas and the
    baseline address them exactly like AST findings.
    """

    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    #: Cache-invalidation counter: bump on any semantic change.
    version: int = 1

    def check(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(
            path=path,
            line=line,
            rule=self.name,
            message=message,
            severity=self.severity,
        )


class IntrospectionRule:
    """Base for import-time rules over the live ``repro`` package.

    ``check`` yields findings whose path/line point at the *definition
    site* of the offending object (via ``inspect``), so pragmas and the
    baseline address them exactly like AST findings.
    """

    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    #: Cache-invalidation counter: bump on any semantic change.
    version: int = 1

    def check(self) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, obj: object, message: str, *, offset: int = 0) -> Finding:
        import inspect

        try:
            path = inspect.getsourcefile(obj) or "<unknown>"
            line = inspect.getsourcelines(obj)[1] + offset
        except (TypeError, OSError):
            path, line = "<unknown>", 1
        return Finding(
            path=_repo_relative(path),
            line=line,
            rule=self.name,
            message=message,
            severity=self.severity,
        )


# Path normal form shared by every pass (kept under its historical
# private name for callers inside this package).
from repro.analysis.findings import repo_relative as _repo_relative  # noqa: E402


AST_RULES: dict[str, Type[AstRule]] = {}
PROJECT_RULES: dict[str, Type[ProjectRule]] = {}
INTROSPECTION_RULES: dict[str, Type[IntrospectionRule]] = {}


def register(cls):
    """Class decorator: add a rule to the registry by its ``name``."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if issubclass(cls, AstRule):
        target = AST_RULES
    elif issubclass(cls, ProjectRule):
        target = PROJECT_RULES
    else:
        target = INTROSPECTION_RULES
    if cls.name in target:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    target[cls.name] = cls
    return cls


def all_rule_names() -> list[str]:
    return sorted({*AST_RULES, *PROJECT_RULES, *INTROSPECTION_RULES})


def rule_versions() -> list[tuple[str, int]]:
    """``(name, version)`` for every registered rule, sorted — the raw
    material of the incremental cache's ruleset signature."""
    pairs = [
        (name, cls.version)
        for registry in (AST_RULES, PROJECT_RULES, INTROSPECTION_RULES)
        for name, cls in registry.items()
    ]
    return sorted(pairs)


# Import the shipped rules so registration happens on package import.
from repro.analysis.rules import (  # noqa: E402  (registration imports)
    batching,
    checkpoints,
    concurrency,
    determinism,
    exceptions,
    fingerprints,
    hotpath,
    hygiene,
    layering,
    native,
)

__all__ = [
    "AST_RULES",
    "INTROSPECTION_RULES",
    "PROJECT_RULES",
    "AstRule",
    "FileContext",
    "IntrospectionRule",
    "ProjectRule",
    "all_rule_names",
    "register",
    "rule_versions",
    "batching",
    "checkpoints",
    "concurrency",
    "determinism",
    "exceptions",
    "fingerprints",
    "hotpath",
    "hygiene",
    "layering",
    "native",
]
