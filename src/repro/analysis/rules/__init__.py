"""Rule framework: base classes, registry, and the shipped rule set.

Two pass kinds exist:

* :class:`AstRule` — pure syntax: visits one file's AST and yields
  findings at source lines.  Cheap, runs per file, needs no imports.
* :class:`IntrospectionRule` — imports the live package and inspects
  real objects (config dataclasses, registered prefetchers, the
  checkpoint object graph).  Runs once per invocation, anchored to the
  source locations of the offending classes.

Rules self-register via :func:`register`; ``python -m repro.analysis
--list-rules`` renders the registry.  Adding a rule is: subclass one of
the bases in a new module here, decorate it, import the module below.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Type

from repro.analysis.findings import Finding, Severity


@dataclass
class FileContext:
    """Everything an :class:`AstRule` may look at for one file."""

    path: str
    module: str | None
    source: str
    tree: ast.Module

    @classmethod
    def parse(cls, path: Path, display: str, module: str | None) -> "FileContext":
        source = path.read_text()
        return cls(path=display, module=module, source=source, tree=ast.parse(source))

    def in_package(self, *packages: str) -> bool:
        """True when this file's module sits under any of *packages*
        (dotted prefixes relative to ``repro``, e.g. ``"sim"``)."""
        if self.module is None:
            return False
        for pkg in packages:
            full = f"repro.{pkg}"
            if self.module == full or self.module.startswith(full + "."):
                return True
        return False


class AstRule:
    """Base for pure-syntax rules.  Subclasses yield findings from
    :meth:`check`; helpers keep path/severity plumbing out of rules."""

    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            rule=self.name,
            message=message,
            severity=self.severity,
        )


class IntrospectionRule:
    """Base for import-time rules over the live ``repro`` package.

    ``check`` yields findings whose path/line point at the *definition
    site* of the offending object (via ``inspect``), so pragmas and the
    baseline address them exactly like AST findings.
    """

    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR

    def check(self) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, obj: object, message: str, *, offset: int = 0) -> Finding:
        import inspect

        try:
            path = inspect.getsourcefile(obj) or "<unknown>"
            line = inspect.getsourcelines(obj)[1] + offset
        except (TypeError, OSError):
            path, line = "<unknown>", 1
        return Finding(
            path=_repo_relative(path),
            line=line,
            rule=self.name,
            message=message,
            severity=self.severity,
        )


def _repo_relative(path: str) -> str:
    """Trim an absolute source path down to its ``src/repro/...`` tail."""
    parts = Path(path).parts
    if "repro" in parts:
        idx = parts.index("repro")
        prefix = ("src",) if idx > 0 and parts[idx - 1] == "src" else ()
        return str(Path(*prefix, *parts[idx:]))
    return path


AST_RULES: dict[str, Type[AstRule]] = {}
INTROSPECTION_RULES: dict[str, Type[IntrospectionRule]] = {}


def register(cls):
    """Class decorator: add a rule to the registry by its ``name``."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    target = AST_RULES if issubclass(cls, AstRule) else INTROSPECTION_RULES
    if cls.name in target:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    target[cls.name] = cls
    return cls


def all_rule_names() -> list[str]:
    return sorted({*AST_RULES, *INTROSPECTION_RULES})


# Import the shipped rules so registration happens on package import.
from repro.analysis.rules import (  # noqa: E402  (registration imports)
    batching,
    checkpoints,
    determinism,
    fingerprints,
    hygiene,
    layering,
)

__all__ = [
    "AST_RULES",
    "INTROSPECTION_RULES",
    "AstRule",
    "FileContext",
    "IntrospectionRule",
    "all_rule_names",
    "register",
    "batching",
    "checkpoints",
    "determinism",
    "fingerprints",
    "hygiene",
    "layering",
]
