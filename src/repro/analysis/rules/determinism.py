"""Determinism rule: simulation code must be seed-reproducible.

Everything the result store caches and the process-pool executor fans
out is keyed by content fingerprints, which is only sound if replaying
a cell is a pure function of its spec.  Three classes of construct
break that silently:

* builtin ``hash()`` — randomized per process (``PYTHONHASHSEED``), so
  any value seeded or bucketed through it differs across workers.
  Trace generation seeds via CRC32 for exactly this reason.
* the module-level ``random`` API — one shared, ambiently-seeded
  global stream; ordering effects leak between unrelated call sites.
  Instantiating ``random.Random(seed)`` is the sanctioned form.
* wall-clock reads (``time``, ``datetime``) — nondeterministic by
  definition.  Timing belongs in the harness/bench layers, never in
  replay semantics.

The rule fires only inside the packages whose outputs are fingerprinted
(``sim``, ``core``, ``prefetchers``, ``workloads``); the api/harness
layers may measure wall time freely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import AstRule, FileContext, register

#: Packages (relative to ``repro``) whose replay semantics must be
#: deterministic.
RESTRICTED_PACKAGES = ("sim", "core", "prefetchers", "workloads")

#: Module-level ``random`` attributes that are allowed: the seedable
#: generator classes.  Everything else on the module is the shared
#: global stream.
ALLOWED_RANDOM_ATTRS = {"Random", "SystemRandom"}

BANNED_MODULES = {"time", "datetime"}


@register
class DeterminismRule(AstRule):
    name = "determinism"
    description = (
        "ban builtin hash(), the global random stream, and wall-clock "
        "modules in fingerprinted simulation packages"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*RESTRICTED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of wall-clock module {alias.name!r} in "
                            f"deterministic package {ctx.module!r}",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                root = (node.module or "").split(".")[0]
                if root in BANNED_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"import from wall-clock module {node.module!r} in "
                        f"deterministic package {ctx.module!r}",
                    )
                elif root == "random":
                    for alias in node.names:
                        if alias.name not in ALLOWED_RANDOM_ATTRS:
                            yield self.finding(
                                ctx,
                                node,
                                f"'from random import {alias.name}' pulls the "
                                "global random stream; construct "
                                "random.Random(seed) instead",
                            )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "hash":
            yield self.finding(
                ctx,
                node,
                "builtin hash() is randomized per process "
                "(PYTHONHASHSEED); derive seeds/buckets via zlib.crc32 "
                "or a fixed mixing function",
            )
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr not in ALLOWED_RANDOM_ATTRS
        ):
            yield self.finding(
                ctx,
                node,
                f"random.{func.attr}() uses the shared global stream; "
                "construct random.Random(seed) and call it there",
            )
