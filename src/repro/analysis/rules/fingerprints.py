"""Fingerprint-completeness rule: every config field must be keyed.

The result store's soundness rests on :meth:`Cell.fingerprint` folding
in *every* semantic config field — the PR 1 ``_config_key``
under-keying bug was exactly a field the key ignored, silently serving
one configuration's cached results for another.  ``canonical()``
already includes all dataclass fields by default, so the remaining
failure mode is subtler: a field whose *value* cannot be rendered
deterministically (a callable, a ``set``, an arbitrary object) falls
through to ``repr()``, which embeds memory addresses or hash-order —
the fingerprint then differs per process and the store silently never
hits (or worse, a stable-looking repr under-keys).

This rule walks the config dataclasses actually reachable from cell
fingerprints — ``SystemConfig`` and the ``config`` object of every
registered prefetcher — and requires each field to be either

* of a canonically-renderable type (primitives, enums, nested config
  dataclasses, tuples/lists/dicts/optionals thereof), or
* explicitly tagged ``metadata={"semantic": False}``, the existing
  opt-out for knobs pinned result-equivalent by tests.

Being an import-time rule it sees the *resolved* types (string
annotations included), so it also catches a config class that is not a
dataclass at all — those repr-render wholesale.
"""

from __future__ import annotations

import dataclasses
import enum
import types
import typing
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import IntrospectionRule, register

_PRIMITIVES = (int, float, str, bool, bytes, type(None))


def default_roots() -> list[type]:
    """Config dataclass types reachable from ``Cell.fingerprint``."""
    from repro import registry
    from repro.sim.config import SystemConfig

    roots: list[type] = [SystemConfig]
    for name in registry.available_prefetchers():
        prefetcher = registry.create(name)
        config = getattr(prefetcher, "config", None)
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            if type(config) not in roots:
                roots.append(type(config))
    return roots


def _is_stable(tp: object, seen: set) -> tuple[bool, list[type]]:
    """Whether values of type *tp* canonicalize deterministically.

    Returns ``(stable, nested_dataclasses)`` — nested config classes are
    handed back so the caller can recurse into their fields too.
    """
    if tp in seen:
        return True, []
    if tp is typing.Any:
        return False, []
    if isinstance(tp, type):
        if issubclass(tp, _PRIMITIVES) or issubclass(tp, enum.Enum):
            return True, []
        if dataclasses.is_dataclass(tp):
            return True, [tp]
        return False, []
    origin = typing.get_origin(tp)
    if origin is None:
        return False, []
    if origin in (set, frozenset):
        # canonical() has no set branch: sets fall through to repr(),
        # whose element order follows the per-process string hash.
        return False, []
    if origin in (list, tuple, dict) or origin in (typing.Union, types.UnionType):
        nested: list[type] = []
        for arg in typing.get_args(tp):
            if arg is Ellipsis:
                continue
            ok, sub = _is_stable(arg, seen)
            if not ok:
                return False, []
            nested.extend(sub)
        return True, nested
    return False, []


@register
class FingerprintCompletenessRule(IntrospectionRule):
    name = "fingerprint"
    description = (
        "every field of a fingerprint-reachable config dataclass must "
        "canonicalize deterministically or be tagged semantic=False"
    )

    def __init__(self, roots: list[type] | None = None) -> None:
        self._roots = roots

    def check(self) -> Iterator[Finding]:
        pending = list(self._roots) if self._roots is not None else default_roots()
        seen: set[type] = set()
        while pending:
            cls = pending.pop()
            if cls in seen:
                continue
            seen.add(cls)
            if not dataclasses.is_dataclass(cls):
                yield self.finding_at(
                    cls,
                    f"fingerprint-reachable config {cls.__name__} is not a "
                    "dataclass; canonical() renders it via repr(), which "
                    "is not a stable cache key",
                )
                continue
            try:
                hints = typing.get_type_hints(cls)
            except Exception as exc:  # unresolvable forward reference
                yield self.finding_at(
                    cls,
                    f"cannot resolve type hints of {cls.__name__} "
                    f"({exc}); fingerprint completeness is unverifiable",
                )
                continue
            for field in dataclasses.fields(cls):
                if field.metadata.get("semantic", True) is False:
                    continue  # explicitly excluded from fingerprints
                stable, nested = _is_stable(hints.get(field.name), seen)
                if stable:
                    pending.extend(nested)
                else:
                    yield self.finding_at(
                        cls,
                        f"field {cls.__name__}.{field.name}: "
                        f"{field.type!r} does not canonicalize "
                        "deterministically (repr() fallback); render it "
                        "from stable parts or tag "
                        'metadata={"semantic": False}',
                    )
