"""Native-kernel rule: ``ctypes`` containment and CRC pinning.

The compiled replay backend is deliberately quarantined: every
``ctypes`` touch point — the ABI struct, the pointer plumbing, the
``dlopen`` — lives inside ``repro.sim._native`` so the rest of the tree
stays pure Python.  A ``ctypes`` import anywhere else is either a
quarantine leak or a second FFI surface growing without review; both
fire here.

The second check guards the build cache's correctness contract:
``repro.sim._native.build.KERNEL_SOURCE_CRC`` pins the CRC-32 of the
committed ``kernel.c``.  The cache keys shared objects by that CRC, and
the equivalence tests trust the constant to describe the source they
exercised — so a kernel edit that forgets to refresh the constant must
fail CI, not ship a stale binding.  The rule recomputes the CRC from
the sibling ``kernel.c`` and fails on drift (skipping silently when no
sibling source exists, which keeps lint fixtures self-contained).
"""

from __future__ import annotations

import ast
import zlib
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import AstRule, FileContext, register

#: The only package allowed to import ``ctypes``.
NATIVE_PACKAGE = "repro.sim._native"

#: Module that must pin the kernel-source CRC.
BUILD_MODULE = "repro.sim._native.build"

#: Name of the pinned constant inside :data:`BUILD_MODULE`.
CRC_CONSTANT = "KERNEL_SOURCE_CRC"


def _in_native_package(module: str | None) -> bool:
    if module is None:
        return False
    return module == NATIVE_PACKAGE or module.startswith(NATIVE_PACKAGE + ".")


@register
class NativeRule(AstRule):
    name = "native"
    description = (
        "confine ctypes to repro.sim._native and pin KERNEL_SOURCE_CRC "
        "to the committed kernel.c"
    )
    version = 1

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_ctypes_containment(ctx)
        if ctx.module == BUILD_MODULE:
            yield from self._check_crc_pin(ctx)

    def _check_ctypes_containment(self, ctx: FileContext) -> Iterator[Finding]:
        if _in_native_package(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module] if node.module else []
            else:
                continue
            for name in names:
                if name == "ctypes" or name.startswith("ctypes."):
                    yield self.finding(
                        ctx,
                        node,
                        "ctypes import outside repro.sim._native; the FFI "
                        "surface is confined to the native package — go "
                        "through repro.sim._native's public helpers",
                    )

    def _check_crc_pin(self, ctx: FileContext) -> Iterator[Finding]:
        pinned: tuple[ast.AST, int] | None = None
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == CRC_CONSTANT:
                    if isinstance(node.value, ast.Constant) and isinstance(
                        node.value.value, int
                    ):
                        pinned = (node, node.value.value)
                    else:
                        yield self.finding(
                            ctx,
                            node,
                            f"{CRC_CONSTANT} must be a literal integer so "
                            "the lint pass can verify it against kernel.c",
                        )
                        return
        kernel = Path(ctx.path).with_name("kernel.c")
        if pinned is None:
            yield self.finding(
                ctx,
                ctx.tree,
                f"{BUILD_MODULE} must pin {CRC_CONSTANT} (CRC-32 of the "
                "committed kernel.c)",
            )
            return
        try:
            actual = zlib.crc32(kernel.read_bytes()) & 0xFFFFFFFF
        except OSError:
            # No sibling source (lint fixtures, partial checkouts):
            # nothing to verify against.
            return
        node, value = pinned
        if value != actual:
            yield self.finding(
                ctx,
                node,
                f"{CRC_CONSTANT} is 0x{value:08X} but kernel.c hashes to "
                f"0x{actual:08X}; the kernel changed without refreshing "
                "the pinned CRC (stale-binding guard)",
            )
