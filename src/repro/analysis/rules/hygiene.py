"""Hygiene rule: mutable defaults and unslotted hot-loop dataclasses.

Two purely syntactic footguns with outsized blast radius here:

* **Mutable default arguments** — a ``def f(xs=[])`` default is one
  shared object across every call *and every worker task that pickles
  the function's module*; with cells fanned across a process pool, a
  mutated default is a cross-cell state leak the fingerprints cannot
  see.  Fires everywhere in ``src/repro``.
* **Unslotted dataclasses in hot-path modules** — the per-record replay
  loop allocates and touches these objects millions of times per cell;
  PR 2's profile showed ``__dict__`` allocation and dict-walk attribute
  access dominating until the record/lookup/eviction types were
  slotted.  Any ``@dataclass`` added to a hot module without
  ``slots=True`` quietly re-grows that cost.  The config modules are
  exempt: config objects are long-lived, fingerprinted, and never
  allocated per record.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import AstRule, FileContext, register

#: Modules whose classes live on the per-record path (relative to
#: ``repro``).  Keep in sync with the hot-loop inventory in ROADMAP's
#: Performance section.
HOT_MODULES = {
    "sim.cache",
    "sim.core",
    "sim.dram",
    "sim.engine",
    "sim.hierarchy",
    "sim.mshr",
    "sim.replacement",
    "sim.trace",
    "core.agent",
    "core.eq",
    "core.features",
    "core.pythia",
    "core.qvstore",
}

#: Call-expression defaults that build a fresh mutable container.
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "deque", "defaultdict"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORIES
    return False


def _dataclass_decorator(cls: ast.ClassDef) -> ast.expr | None:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else None
        )
        if name == "dataclass":
            return dec
    return None


def _has_slots(cls: ast.ClassDef) -> bool:
    dec = _dataclass_decorator(cls)
    if isinstance(dec, ast.Call):
        for kw in dec.keywords:
            if kw.arg == "slots" and getattr(kw.value, "value", None) is True:
                return True
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
        ):
            return True
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__slots__"
        ):
            return True
    return False


@register
class HygieneRule(AstRule):
    name = "hygiene"
    description = (
        "ban mutable default arguments; require slots=True on "
        "dataclasses in per-record hot-path modules"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        hot = (
            ctx.module is not None
            and ctx.module.removeprefix("repro.") in HOT_MODULES
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for default in [*args.defaults, *args.kw_defaults]:
                    if default is not None and _is_mutable_default(default):
                        yield self.finding(
                            ctx,
                            default,
                            f"mutable default argument in {node.name}(); "
                            "default to None and construct inside the "
                            "function",
                        )
            elif isinstance(node, ast.ClassDef) and hot:
                if _dataclass_decorator(node) is not None and not _has_slots(node):
                    yield self.finding(
                        ctx,
                        node,
                        f"dataclass {node.name} in hot-path module "
                        f"{ctx.module} lacks slots=True; per-record "
                        "attribute access pays the __dict__ tax",
                    )
