"""Hot-path purity rule: inner loops must not allocate or re-resolve.

ISSUE 7's batched replay backend earns its throughput from a specific
loop discipline: everything the per-record loop touches is hoisted to a
local before the loop, no objects/dicts/lists/closures are constructed
per iteration, and no ``try`` frame is entered per record.  Nothing
functional breaks when that discipline erodes — the differential
harness stays green and only the throughput bench (eventually) notices.
This rule pins the discipline statically for a registry of known hot
functions.

Inside each registered function's loop bodies (any nesting), a finding
fires for:

* ``try`` statements — frame setup/teardown per iteration;
* lambdas, nested ``def``s, and comprehensions/generator expressions —
  closure or frame allocation per iteration;
* dict/list/set display literals — container allocation per iteration;
* calls that resolve (through the project symbol table and import
  aliases) to a project *class* or to a container-constructing builtin
  (``list``, ``dict``, ``set``, …) — object allocation per iteration;
* loads of module-level names that some function somewhere *writes*
  (mutable globals) — a dict lookup per iteration that a hoisted local
  would make free, plus a read of racing state.

Deliberately exempt: tuple displays (keys on hoisted dicts), calls
through hoisted local aliases, loads of single-assignment module
constants (``EPOCH``), and loads of functions/classes — the loop may
still *call* hoisted helpers, and import aliases are resolved, not
flagged, unless they construct objects.

Unavoidable allocations (the MSHR entry an actual miss must create)
carry ``# repro: ignore[hotpath]`` at the call site.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.project import (
    _FUNCTION_NODES,
    FunctionInfo,
    ProjectContext,
)
from repro.analysis.rules import ProjectRule, register

#: The hot-function registry: the ISSUE 7 kernels and every per-access
#: callee they lean on.  Extend this tuple when a new function joins
#: the measured replay path.
HOT_FUNCTIONS: tuple[str, ...] = (
    "repro.sim.batch.replay_span",
    "repro.sim.trace.TraceColumns.__init__",
    "repro.core.qvstore.QVStore.sarsa_update",
    "repro.core.qvstore.NumpyQVStore.sarsa_update",
    "repro.sim.dram.Dram.access",
    "repro.sim.hierarchy.CacheHierarchy.process_fills",
    "repro.sim.replacement.LruPolicy.victim",
    "repro.sim.replacement.LruPolicy.on_fill",
    "repro.sim.replacement.LruPolicy.on_hit",
    "repro.sim.replacement.ShipPolicy.victim",
    "repro.sim.replacement.ShipPolicy.on_fill",
    "repro.sim.replacement.ShipPolicy.on_hit",
    "repro.sim.replacement.ShipPolicy.on_evict",
)

#: Builtins whose call constructs a fresh container.
CONTAINER_BUILTINS = frozenset(
    {
        "list",
        "dict",
        "set",
        "frozenset",
        "bytearray",
        "deque",
        "defaultdict",
        "OrderedDict",
        "Counter",
    }
)

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_DISPLAY_NODES = (ast.Dict, ast.List, ast.Set)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _loop_bodies(fn_node: ast.AST) -> Iterator[Sequence[ast.stmt]]:
    """Every loop body in *fn*'s own scope (nested defs excluded)."""
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (*_FUNCTION_NODES, ast.Lambda)):
            continue
        if isinstance(node, _LOOP_NODES):
            yield node.body
        stack.extend(ast.iter_child_nodes(node))


def _walk_body(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk loop-body statements without entering nested scopes (the
    nested def/lambda node itself is yielded, its body is not)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (*_FUNCTION_NODES, ast.Lambda, *_COMPREHENSIONS)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register
class HotpathRule(ProjectRule):
    name = "hotpath"
    description = (
        "registered hot functions must not allocate objects/containers/"
        "closures, resolve mutable globals, or enter try frames inside "
        "loop bodies"
    )
    version = 1

    def __init__(self, hot: tuple[str, ...] | None = None) -> None:
        self._hot = HOT_FUNCTIONS if hot is None else hot

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        mutable = project.mutable_globals()
        for qualname in self._hot:
            fn = project.functions.get(qualname)
            if fn is None:
                continue
            yield from self._check_function(project, fn, mutable)

    def _check_function(
        self,
        project: ProjectContext,
        fn: FunctionInfo,
        mutable: set[tuple[str, str]],
    ) -> Iterator[Finding]:
        minfo = project.modules[fn.module]
        reported: set[tuple[int, str]] = set()

        def emit(node: ast.AST, label: str, message: str) -> Finding | None:
            key = (getattr(node, "lineno", fn.line), label)
            if key in reported:
                return None
            reported.add(key)
            return self.finding(
                fn.path,
                key[0],
                f"hot function {fn.qualname!r}: {message} inside a loop "
                "body; hoist it above the loop or pragma the line with "
                "a why-it-cannot-hoist note",
            )

        for body in _loop_bodies(fn.node):
            for node in _walk_body(body):
                found: Finding | None = None
                if isinstance(node, ast.Try):
                    found = emit(
                        node, "try", "enters a try frame per iteration"
                    )
                elif isinstance(node, (ast.Lambda, *_FUNCTION_NODES)):
                    found = emit(
                        node, "closure", "constructs a closure per iteration"
                    )
                elif isinstance(node, _COMPREHENSIONS):
                    found = emit(
                        node,
                        "comprehension",
                        "builds a comprehension/generator per iteration",
                    )
                elif isinstance(node, _DISPLAY_NODES):
                    kind = type(node).__name__.lower()
                    found = emit(
                        node,
                        "display",
                        f"allocates a {kind} literal per iteration",
                    )
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name
                ):
                    found = self._check_name_call(
                        project, fn, node, emit
                    )
                elif (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id not in fn.bound
                    and (minfo.module, node.id) in mutable
                ):
                    found = emit(
                        node,
                        f"global:{node.id}",
                        f"resolves mutable module global {node.id!r} "
                        "per iteration",
                    )
                if found is not None:
                    yield found

    def _check_name_call(self, project, fn, call, emit):
        name = call.func.id
        if name in fn.bound:
            return None
        target = project.resolve_name(fn, name)
        if target is None:
            # Unknown/builtin: flag only the container constructors.
            if name in CONTAINER_BUILTINS:
                return emit(
                    call,
                    f"alloc:{name}",
                    f"constructs a {name}() per iteration",
                )
            return None
        # Resolved to a project symbol: constructing a class instance
        # per iteration is the regression; calling a function is fine.
        owner, _, attr = target.rpartition(".")
        owner_info = project.modules.get(owner)
        if owner_info is not None and attr in owner_info.classes:
            return emit(
                call,
                f"alloc:{name}",
                f"constructs {target} per iteration",
            )
        if name in CONTAINER_BUILTINS:
            return emit(
                call, f"alloc:{name}", f"constructs a {name}() per iteration"
            )
        return None
