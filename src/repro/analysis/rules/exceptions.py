"""Exception-safety rule: no silent broad ``except`` in ``api``/``sim``.

Cancellation and resume correctness both flow through exceptions:
``SimulationCancelled`` unwinds a replay at a window boundary so the
engine can checkpoint and re-raise, and ``KeyboardInterrupt`` is the
operator's only lever on a stuck sweep.  A broad ``except`` anywhere on
those paths — ``except Exception``, ``except BaseException``, or a bare
``except`` — can swallow either one, leaving a worker running a
cancelled cell or a checkpoint recorded as clean when the replay died
mid-window.  Explicitly catching the sensitive types is the same hazard
spelled out.

A broad/sensitive handler is compliant when it provably does not
*swallow*: it re-raises (any ``raise`` in the handler body, including
``raise Wrapped(...) from exc``), or it binds the exception
(``except Exception as exc``) and actually uses the bound name —
recording it in a result, a log, or a telemetry field.  Catching
narrowly (``except (ValueError, KeyError)``) never fires the rule.

Scope: ``repro.api`` and ``repro.sim`` — the layers cancellation and
checkpointing traverse.  Analysis/tooling code may catch broadly to
report errors as findings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import AstRule, FileContext, register

#: Catch-alls: handlers for these types see every exception in flight.
BROAD_TYPES = frozenset({"Exception", "BaseException"})

#: Types that must never be silently consumed, even when named.
SENSITIVE_TYPES = frozenset({"SimulationCancelled", "KeyboardInterrupt"})

RESTRICTED_PACKAGES = ("api", "sim")


def _caught_names(handler: ast.ExceptHandler) -> set[str]:
    """Tail names of the exception types a handler catches; empty set
    for a bare ``except:``."""
    node = handler.type
    if node is None:
        return set()
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for elt in elts:
        if isinstance(elt, ast.Name):
            names.add(elt.id)
        elif isinstance(elt, ast.Attribute):
            names.add(elt.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a ``raise`` in its own scope."""
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _records(handler: ast.ExceptHandler) -> bool:
    """Whether the handler binds the exception and uses the binding."""
    if handler.name is None:
        return False
    for node in ast.walk(handler):
        if (
            isinstance(node, ast.Name)
            and node.id == handler.name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
    return False


@register
class ExceptionsRule(AstRule):
    name = "exceptions"
    description = (
        "broad except handlers in api/sim must re-raise or record — "
        "never silently swallow SimulationCancelled/KeyboardInterrupt"
    )
    version = 1

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*RESTRICTED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                caught = _caught_names(handler)
                bare = handler.type is None
                broad = bare or (caught & BROAD_TYPES)
                sensitive = caught & SENSITIVE_TYPES
                if not broad and not sensitive:
                    continue
                if _reraises(handler) or _records(handler):
                    continue
                label = (
                    "bare except"
                    if bare
                    else f"except {', '.join(sorted(caught))}"
                )
                swallows = (
                    ", ".join(sorted(sensitive))
                    if sensitive
                    else "SimulationCancelled/KeyboardInterrupt"
                )
                yield self.finding(
                    ctx,
                    handler,
                    f"{label} can swallow {swallows} without re-raising "
                    "or recording the exception; catch narrowly, "
                    "re-raise, or record the bound exception",
                )
