"""Batching rule: the replay path must not materialize ``TraceRecord``s.

ISSUE 7 rebuilt the default replay backend around batched epochs: each
engine epoch decodes its trace slice once into preallocated NumPy
struct-of-arrays columns (``repro.sim.batch``), and every downstream
stage reads columns, not per-record objects.  A ``TraceRecord(...)``
construction sneaking back into the replay packages silently
re-introduces the per-record object layer the batched backend exists to
remove — the scalar fallback keeps working, the differential harness
stays green, and only the throughput bench (eventually) notices.

The rule bans ``TraceRecord`` construction in the batched-path packages
(``sim``, ``core``, ``prefetchers``) outside ``sim/trace.py`` itself,
where the type is defined and the scalar decode path legitimately
builds instances.  Trace *generation* and *ingestion*
(``repro.workloads``) are producers, not replay stages, and stay free
to construct records.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import AstRule, FileContext, register

#: Packages (relative to ``repro``) on the batched replay path.
RESTRICTED_PACKAGES = ("sim", "core", "prefetchers")

#: The one module allowed to construct records: defines the type and
#: the scalar-backend decode loop.
ALLOWED_MODULE = "repro.sim.trace"


@register
class BatchingRule(AstRule):
    name = "batching"
    description = (
        "ban TraceRecord construction on the batched replay path "
        "(sim/core/prefetchers outside sim/trace.py)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*RESTRICTED_PACKAGES):
            return
        if ctx.module == ALLOWED_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            named = (
                isinstance(func, ast.Name) and func.id == "TraceRecord"
            ) or (isinstance(func, ast.Attribute) and func.attr == "TraceRecord")
            if named:
                yield self.finding(
                    ctx,
                    node,
                    f"TraceRecord() constructed in {ctx.module!r}: the "
                    "batched replay path reads struct-of-arrays columns "
                    "(repro.sim.batch), not per-record objects; only "
                    "sim/trace.py may build records",
                )
