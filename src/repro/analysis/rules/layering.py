"""Layering rule: the package dependency DAG must not invert.

The codebase layers bottom-up — ``types`` < ``prefetchers`` <
``core``/``hwmodel`` < ``sim`` < ``workloads`` < ``registry`` < ``api``
< ``tuning``/``harness`` — and the platform's refactorability depends
on those arrows never reversing: ``sim`` importing ``api`` would weld
the replay core to the caching facade, ``prefetchers`` importing
``harness`` would make every worker process drag the figure layer in.

Only *module-level* imports are checked: a function-scoped import is
the sanctioned escape hatch for runtime-only upward references (the
``Cell.execute`` → registry hop), because it neither creates an import
cycle nor taxes workers that never call it.

Independently of rank, the legacy deep path
``repro.prefetchers.registry`` is banned everywhere (module level or
not) except in the shim module itself: it survives only for external
callers and will be deleted with the next deprecation window.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import AstRule, FileContext, register

#: Rank of each layer, keyed by the dotted name relative to ``repro``
#: (empty string = the package root / top-level modules).  A module may
#: import layers of equal or lower rank at module level.
LAYER_RANKS: dict[str, int] = {
    "": 0,
    "types": 0,
    "prefetchers": 1,
    "core": 2,
    "hwmodel": 3,
    "sim": 3,
    "workloads": 4,
    "registry": 5,
    "api": 6,
    "tuning": 7,
    "harness": 7,
    "analysis": 8,
}

#: Deprecated deep path: everything must go through ``repro.registry``.
LEGACY_DEEP_PATH = "repro.prefetchers.registry"


def _layer_of(module: str) -> str | None:
    """Layer key for a dotted ``repro...`` module name.

    ``None`` for anything outside ``repro`` *and* for repro submodules
    not yet in :data:`LAYER_RANKS` — a new subpackage does not gate
    until someone places it in the DAG (the rule's docstring is the
    prompt to do so).
    """
    if module != "repro" and not module.startswith("repro."):
        return None
    tail = module[len("repro.") :] if module != "repro" else ""
    head = tail.split(".")[0]
    return head if head in LAYER_RANKS else None


@register
class LayeringRule(AstRule):
    name = "layering"
    description = (
        "enforce the core→sim→api→harness dependency DAG and ban the "
        "legacy repro.prefetchers.registry deep path"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module is None:
            return
        own_layer = _layer_of(ctx.module)
        if own_layer is None:
            return
        own_rank = LAYER_RANKS[own_layer]
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                targets = [node.module] if node.module else []
            else:
                continue
            for target in targets:
                yield from self._check_target(ctx, node, target, own_rank)

    def _check_target(
        self, ctx: FileContext, node: ast.AST, target: str, own_rank: int
    ) -> Iterator[Finding]:
        if target == LEGACY_DEEP_PATH or target.startswith(LEGACY_DEEP_PATH + "."):
            if ctx.module != LEGACY_DEEP_PATH:
                yield self.finding(
                    ctx,
                    node,
                    f"deep import of legacy {LEGACY_DEEP_PATH!r}; use "
                    "repro.registry (the shim exists only for external "
                    "callers)",
                )
            return
        target_layer = _layer_of(target)
        if target_layer is None:
            return
        # Rank is only enforced for module-level imports: the col_offset
        # check keeps function-scoped escape hatches legal.
        if getattr(node, "col_offset", 0) != 0:
            return
        target_rank = LAYER_RANKS[target_layer]
        if target_rank > own_rank:
            own_layer_name = _layer_of(ctx.module) or "<root>"
            yield self.finding(
                ctx,
                node,
                f"layer inversion: {own_layer_name!r} (rank {own_rank}) "
                f"imports {target!r} (layer {target_layer!r}, rank "
                f"{target_rank}) at module level; move the import into "
                "the function that needs it or restructure",
            )
