"""CLI for the invariant checker: ``python -m repro.analysis [paths]``.

Exit codes: ``0`` clean (or everything suppressed), ``1`` findings,
``2`` usage error.  ``make lint`` runs this over the default tree set
(``src/repro`` + ``benchmarks`` + ``scripts`` + ``tests``) with the
committed baseline and the incremental cache; CI gates on it (see
``scripts/ci.sh``).  ``--changed`` narrows the file list to what git
says is modified (``make lint-changed``), leaning on the cache for
everything else.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.cache import AnalysisCache
from repro.analysis.engine import run
from repro.analysis.rules import (
    AST_RULES,
    INTROSPECTION_RULES,
    PROJECT_RULES,
    all_rule_names,
)

DEFAULT_BASELINE = Path("scripts/lint_baseline.json")
DEFAULT_CACHE = Path("scripts/lint_cache.json")

#: Trees linted by default — the package source plus every tree that
#: holds executable Python riding on it.
DEFAULT_TREES = (
    Path("src/repro"),
    Path("benchmarks"),
    Path("scripts"),
    Path("tests"),
)


def _changed_paths() -> list[Path] | None:
    """``.py`` files git reports as modified or untracked, restricted
    to the default trees; ``None`` when git is unavailable."""
    names: set[str] = set()
    for args in (
        ("git", "diff", "--name-only", "HEAD"),
        ("git", "ls-files", "--others", "--exclude-standard"),
    ):
        try:
            proc = subprocess.run(
                args, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        names.update(line.strip() for line in proc.stdout.splitlines())
    roots = tuple(str(tree).split("/", 1)[0] for tree in DEFAULT_TREES)
    return [
        Path(name)
        for name in sorted(names)
        if name.endswith(".py")
        and name.split("/", 1)[0] in roots
        # Explicit paths bypass collect_files' fixture-corpus
        # exclusion, so re-apply it here.
        and not name.startswith("tests/data/")
        and Path(name).exists()
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="statically enforce the store/checkpoint soundness rules",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help=(
            "files or directories to analyze "
            f"(default: {' '.join(str(t) for t in DEFAULT_TREES)})"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule allowlist (default: every rule)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"grandfathered-findings file (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--no-introspect",
        action="store_true",
        help="skip the import-time rules (fingerprint, checkpoint)",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the whole-program rules (concurrency, hotpath)",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=DEFAULT_CACHE,
        help=f"incremental result cache sidecar (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the incremental cache",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="analyze only files git reports as changed (plus the "
        "cross-file passes)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in all_rule_names():
            cls = (
                AST_RULES.get(name)
                or PROJECT_RULES.get(name)
                or INTROSPECTION_RULES.get(name)
            )
            kind = (
                "ast"
                if name in AST_RULES
                else "project"
                if name in PROJECT_RULES
                else "introspection"
            )
            print(f"{name:14s} [{kind}] v{cls.version} {cls.description}")
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = set(rules) - set(all_rule_names())
        if unknown:
            parser.error(f"unknown rules: {', '.join(sorted(unknown))}")

    if args.changed:
        changed = _changed_paths()
        if changed is None:
            parser.error("--changed requires git")
        if not changed:
            print("analysis: no changed python files — clean")
            return 0
        paths = changed
    elif args.paths:
        paths = args.paths
    else:
        paths = [tree for tree in DEFAULT_TREES if tree.exists()]

    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE
    baseline = (
        Baseline()
        if args.update_baseline or baseline_path is None
        else Baseline.load(baseline_path)
    )

    cache = None if args.no_cache else AnalysisCache(args.cache)

    started = time.perf_counter()
    report = run(
        paths,
        rules=rules,
        baseline=baseline,
        introspect=not args.no_introspect,
        project=not args.no_project,
        cache=cache,
    )
    elapsed = time.perf_counter() - started

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        recordable = [
            f
            for f in report.findings
            if f.rule not in ("unused-pragma", "stale-baseline")
        ]
        Baseline.save(target, recordable)
        print(f"analysis: baseline re-recorded with {len(recordable)} findings in {target}")
        return 0

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.as_json() for f in report.findings],
                    "suppressed": report.suppressed,
                    "files_checked": report.files_checked,
                    "files_reused": report.files_reused,
                    "files_reparsed": report.files_reparsed,
                    "project_reused": report.project_reused,
                    "introspect_reused": report.introspect_reused,
                    "elapsed_seconds": round(elapsed, 3),
                },
                indent=2,
            )
        )
    else:
        for finding in report.findings:
            print(finding.render())
        cross = (
            "cached"
            if report.project_reused and report.introspect_reused
            else "ran"
        )
        summary = (
            f"analysis: {len(report.findings)} finding(s), "
            f"{report.suppressed} suppressed, {report.files_checked} file(s) "
            f"({report.files_reused} cached, {report.files_reparsed} "
            f"re-parsed; cross-file {cross}) in {elapsed:.2f}s"
        )
        print(summary if report.findings else f"{summary} — clean")

    return 1 if report.findings else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream consumer (head, jq -e with early exit) closed the
        # pipe; suppress the traceback and report "findings emitted".
        sys.stderr.close()
        sys.exit(1)
