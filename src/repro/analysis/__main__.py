"""CLI for the invariant checker: ``python -m repro.analysis [paths]``.

Exit codes: ``0`` clean (or everything suppressed), ``1`` findings,
``2`` usage error.  ``make lint`` runs this over ``src/repro`` with the
committed baseline; CI gates on it (see ``scripts/ci.sh``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.engine import run
from repro.analysis.rules import AST_RULES, INTROSPECTION_RULES, all_rule_names

DEFAULT_BASELINE = Path("scripts/lint_baseline.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="statically enforce the store/checkpoint soundness rules",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src/repro")],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule allowlist (default: every rule)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"grandfathered-findings file (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--no-introspect",
        action="store_true",
        help="skip the import-time rules (fingerprint, checkpoint)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in all_rule_names():
            cls = AST_RULES.get(name) or INTROSPECTION_RULES.get(name)
            kind = "ast" if name in AST_RULES else "introspection"
            print(f"{name:14s} [{kind}] {cls.description}")
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = set(rules) - set(all_rule_names())
        if unknown:
            parser.error(f"unknown rules: {', '.join(sorted(unknown))}")

    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE
    baseline = (
        Baseline()
        if args.update_baseline or baseline_path is None
        else Baseline.load(baseline_path)
    )

    report = run(
        args.paths,
        rules=rules,
        baseline=baseline,
        introspect=not args.no_introspect,
    )

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        recordable = [
            f
            for f in report.findings
            if f.rule not in ("unused-pragma", "stale-baseline")
        ]
        Baseline.save(target, recordable)
        print(f"analysis: baseline re-recorded with {len(recordable)} findings in {target}")
        return 0

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.as_json() for f in report.findings],
                    "suppressed": report.suppressed,
                    "files_checked": report.files_checked,
                },
                indent=2,
            )
        )
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"analysis: {len(report.findings)} finding(s), "
            f"{report.suppressed} suppressed, {report.files_checked} file(s)"
        )
        print(summary if report.findings else f"{summary} — clean")

    return 1 if report.findings else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream consumer (head, jq -e with early exit) closed the
        # pipe; suppress the traceback and report "findings emitted".
        sys.stderr.close()
        sys.exit(1)
