"""Analysis driver: collect files, run rules, apply suppressions.

The flow per invocation:

1. Expand the given paths into ``.py`` files and derive each file's
   dotted module name (the ``repro...`` tail of its path), which is how
   package-scoped rules (determinism, layering, hygiene) decide whether
   they apply.
2. Run every selected :class:`AstRule` over every file, and every
   selected :class:`IntrospectionRule` once (introspection findings are
   anchored to the definition site of the offending object, and honor
   pragmas in *that* file even when it was not an analyzed path).
3. Drop findings suppressed by a ``# repro: ignore[rule]`` pragma on
   their line or by the committed baseline; report pragmas that
   suppressed nothing (rule ``unused-pragma``) and baseline entries
   that no longer fire (rule ``stale-baseline``) so suppressions decay
   instead of accreting.

:func:`run` returns the surviving findings; the CLI turns a non-empty
list into a non-zero exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Severity
from repro.analysis.pragmas import PragmaIndex
from repro.analysis.rules import AST_RULES, INTROSPECTION_RULES, FileContext


def module_name_of(path: Path) -> str | None:
    """Dotted module for a source file, or ``None`` outside ``repro``.

    ``src/repro/sim/cache.py`` → ``repro.sim.cache``;
    package ``__init__`` files map to the package itself.
    """
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    dotted = parts[parts.index("repro") :]
    dotted[-1] = dotted[-1].removesuffix(".py")
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


def collect_files(paths: Sequence[Path]) -> list[Path]:
    files: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" not in file.parts:
                    files.setdefault(file)
        elif path.suffix == ".py":
            files.setdefault(path)
    return list(files)


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def failed(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)


def run(
    paths: Sequence[Path],
    *,
    rules: Iterable[str] | None = None,
    baseline: Baseline | None = None,
    introspect: bool = True,
    module_override: str | None = None,
) -> Report:
    """Run the selected rules over *paths*.

    Args:
        paths: files or directories to analyze.
        rules: rule-name allowlist (default: all registered rules).
        baseline: grandfathered findings; ``None`` means empty.
        introspect: run the import-time rules too (they inspect the
            installed ``repro`` package, not the given paths).
        module_override: force this dotted module name for every file —
            lets fixture files outside the tree masquerade as, say,
            ``repro.sim.cache`` in tests.
    """
    selected = set(rules) if rules is not None else None
    baseline = baseline if baseline is not None else Baseline()
    report = Report()

    def wanted(name: str) -> bool:
        return selected is None or name in selected

    def admit(finding: Finding, pragmas: PragmaIndex | None) -> None:
        if pragmas is not None and pragmas.suppresses(finding.line, finding.rule):
            report.suppressed += 1
        elif baseline.suppresses(finding):
            report.suppressed += 1
        else:
            report.findings.append(finding)

    for path in collect_files(paths):
        module = module_override if module_override else module_name_of(path)
        ctx = FileContext.parse(path, display=str(path), module=module)
        report.files_checked += 1
        pragmas = PragmaIndex(ctx.source)
        for rule_cls in AST_RULES.values():
            if wanted(rule_cls.name):
                for finding in rule_cls().check(ctx):
                    admit(finding, pragmas)
        if wanted("unused-pragma"):
            for pragma in pragmas.unused():
                # A pragma naming a rule that was deselected this run
                # may legitimately have had nothing to suppress.
                if all(wanted(r) for r in pragma.rules):
                    admit(
                        Finding(
                            path=str(path),
                            line=pragma.line,
                            rule="unused-pragma",
                            message=(
                                "pragma suppresses nothing: # repro: "
                                f"ignore[{', '.join(sorted(pragma.rules)) or '*'}]"
                            ),
                        ),
                        None,
                    )

    if introspect:
        # Pragma indexes for definition-site files, loaded on demand so
        # an ignore pragma beside a class works even when the class's
        # file was not among the analyzed paths.
        site_pragmas: dict[str, PragmaIndex | None] = {}
        for rule_cls in INTROSPECTION_RULES.values():
            if not wanted(rule_cls.name):
                continue
            for finding in rule_cls().check():
                if finding.path not in site_pragmas:
                    site = Path(finding.path)
                    site_pragmas[finding.path] = (
                        PragmaIndex(site.read_text()) if site.exists() else None
                    )
                admit(finding, site_pragmas[finding.path])

    for path_, rule_, message_ in baseline.stale():
        report.findings.append(
            Finding(
                path=path_,
                line=1,
                rule="stale-baseline",
                message=(
                    f"baseline entry no longer fires ({rule_}: {message_}); "
                    "remove it or regenerate with --update-baseline"
                ),
            )
        )

    report.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return report
