"""Analysis driver: collect files, run rules, apply suppressions.

The flow per invocation:

1. Expand the given paths into ``.py`` files and derive each file's
   dotted module name (the ``repro...`` tail of its path), which is how
   package-scoped rules (determinism, layering, hygiene) decide whether
   they apply.  Files outside the package (``benchmarks/``,
   ``scripts/``, ``tests/``) get a per-tree rule profile
   (:data:`TREE_PROFILES`); the lint-fixture corpus under
   ``tests/data`` is never collected — it is violations on purpose.
2. Run every applicable :class:`AstRule` over every file; every
   selected :class:`ProjectRule` once over a
   :class:`~repro.analysis.project.ProjectContext` of the whole
   package tree; and every selected :class:`IntrospectionRule` once
   (cross-file findings are anchored to the definition site of the
   offending object, and honor pragmas in *that* file even when it was
   not an analyzed path).
3. Drop findings suppressed by a ``# repro: ignore[rule]`` pragma on
   their line or by the committed baseline; report pragmas that
   suppressed nothing (rule ``unused-pragma``) and baseline entries
   that no longer fire (rule ``stale-baseline``) so suppressions decay
   instead of accreting.

An optional :class:`~repro.analysis.cache.AnalysisCache` makes warm
reruns incremental: unchanged files (by CRC32 content stamp, under an
unchanged ruleset) reuse their recorded raw findings without being
re-parsed, and the cross-file passes reuse theirs unless *any* stamp in
the tree moved.  Suppression (pragmas, baseline, unused-pragma decay)
always re-runs over the raw findings, so cache hits can never serve a
stale suppression decision.

:func:`run` returns the surviving findings; the CLI turns a non-empty
list into a non-zero exit.
"""

from __future__ import annotations

import ast
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.cache import AnalysisCache
from repro.analysis.findings import Finding, Severity, repo_relative
from repro.analysis.pragmas import PragmaIndex
from repro.analysis.project import ProjectContext, module_name_of
from repro.analysis.rules import (
    AST_RULES,
    INTROSPECTION_RULES,
    PROJECT_RULES,
    FileContext,
)

__all__ = [
    "Report",
    "TREE_PROFILES",
    "collect_files",
    "module_name_of",
    "run",
]

#: Rule profiles for files outside the ``repro`` package, keyed by the
#: tree they live in.  Package-scoped rules (determinism, layering,
#: batching) are no-ops there by construction; the profile states which
#: of the remaining rules gate each tree.  Tests may catch broadly
#: (asserting on failure paths), so ``exceptions`` gates benchmarks and
#: scripts but not tests.
TREE_PROFILES: dict[str, frozenset[str]] = {
    "benchmarks": frozenset({"exceptions", "hygiene", "unused-pragma"}),
    "scripts": frozenset({"exceptions", "hygiene", "unused-pragma"}),
    "tests": frozenset({"hygiene", "unused-pragma"}),
}

#: Profile for out-of-package files in an unrecognized tree.
DEFAULT_TREE_PROFILE = frozenset({"hygiene", "unused-pragma"})


def collect_files(paths: Sequence[Path]) -> list[Path]:
    files: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                parts = file.parts
                if "__pycache__" in parts:
                    continue
                # The lint-fixture corpus is deliberate violations;
                # linting it would drown the report.
                if any(
                    parts[i] == "tests" and parts[i + 1] == "data"
                    for i in range(len(parts) - 1)
                ):
                    continue
                files.setdefault(file)
        elif path.suffix == ".py":
            files.setdefault(path)
    return list(files)


def _tree_profile(path: Path) -> frozenset[str]:
    for part in path.parts:
        if part in TREE_PROFILES:
            return TREE_PROFILES[part]
    return DEFAULT_TREE_PROFILE


def _package_root(files: Sequence[Path]) -> Path | None:
    """The ``repro`` package directory among *files*, if any — the tree
    whole-program rules parse."""
    for file in files:
        parts = file.parts
        if "repro" in parts:
            return Path(*parts[: parts.index("repro") + 1])
    return None


def _installed_root() -> Path | None:
    """Source root of the importable ``repro`` package (the tree the
    introspection rules actually inspect)."""
    try:
        import repro

        return Path(repro.__file__).parent
    except (ImportError, TypeError):  # pragma: no cover - broken install
        return None


def _combined_stamp(stamps: dict[str, int]) -> int:
    crc = 0
    for path in sorted(stamps):
        crc = zlib.crc32(f"{path}:{stamps[path]};".encode(), crc)
    return crc


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    #: Files whose raw findings came from the incremental cache
    #: (no read-beyond-stamp, no re-parse).
    files_reused: int = 0
    #: Whether the cross-file passes were served from cache.
    project_reused: bool = False
    introspect_reused: bool = False

    @property
    def files_reparsed(self) -> int:
        return self.files_checked - self.files_reused

    @property
    def failed(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)


def run(
    paths: Sequence[Path],
    *,
    rules: Iterable[str] | None = None,
    baseline: Baseline | None = None,
    introspect: bool = True,
    module_override: str | None = None,
    project: bool = True,
    project_context: ProjectContext | None = None,
    cache: AnalysisCache | None = None,
) -> Report:
    """Run the selected rules over *paths*.

    Args:
        paths: files or directories to analyze.
        rules: rule-name allowlist (default: all registered rules).
        baseline: grandfathered findings; ``None`` means empty.
        introspect: run the import-time rules too (they inspect the
            installed ``repro`` package, not the given paths).
        module_override: force this dotted module name for every file —
            lets fixture files outside the tree masquerade as, say,
            ``repro.sim.cache`` in tests.  Disables the whole-program
            pass and the cache (fixtures are not a project).
        project: run the whole-program rules over the ``repro`` package
            tree found among *paths*.
        project_context: pre-built project for the whole-program rules
            (tests); skips tree discovery and project caching.
        cache: incremental result cache; ``None`` runs cold.
    """
    selected = set(rules) if rules is not None else None
    baseline = baseline if baseline is not None else Baseline()
    report = Report()

    def wanted(name: str) -> bool:
        return selected is None or name in selected

    use_cache = cache if module_override is None else None
    files = collect_files(paths)

    # ── per-file pass: raw AST findings + pragma tables ─────────────────
    raw_by_path: dict[str, list[Finding]] = {}
    pragma_lookup: dict[str, PragmaIndex] = {}
    analyzed: list[tuple[str, list[str], frozenset[str] | None]] = []

    for path in files:
        display = str(path)
        module = module_override if module_override else module_name_of(path)
        profile = _tree_profile(path) if module is None else None
        applied = sorted(
            name
            for name in AST_RULES
            if wanted(name) and (profile is None or name in profile)
        )
        source = path.read_text()
        crc = zlib.crc32(source.encode())
        report.files_checked += 1
        hit = (
            use_cache.lookup_file(display, crc, applied) if use_cache else None
        )
        if hit is not None:
            raw, pragma_entries = hit
            pragmas = PragmaIndex.from_entries(pragma_entries)
            report.files_reused += 1
        else:
            ctx = FileContext(
                path=display, module=module, source=source, tree=ast.parse(source)
            )
            pragmas = PragmaIndex(source)
            raw = [
                finding
                for name in applied
                for finding in AST_RULES[name]().check(ctx)
            ]
            if use_cache is not None:
                use_cache.store_file(display, crc, applied, raw, pragmas.entries())
        raw_by_path.setdefault(display, []).extend(raw)
        # Alias the repo-relative spelling too: cross-file passes anchor
        # findings at the normal form, and suppression bookkeeping must
        # land on the *same* PragmaIndex instance either way.
        pragma_lookup[display] = pragmas
        pragma_lookup.setdefault(repo_relative(display), pragmas)
        analyzed.append((display, applied, profile))

    # ── whole-program pass ──────────────────────────────────────────────
    cross_file_rules: set[str] = set()
    if project and module_override is None:
        wanted_project = sorted(n for n in PROJECT_RULES if wanted(n))
        root = None if project_context is not None else _package_root(files)
        if wanted_project and (project_context is not None or root is not None):
            findings: list[Finding] | None = None
            stamp: int | None = None
            if use_cache is not None and root is not None:
                stamp = _combined_stamp(ProjectContext.stamp_files(root))
                findings = use_cache.lookup_global(
                    "project", stamp, wanted_project
                )
                if findings is not None:
                    report.project_reused = True
            if findings is None:
                pctx = (
                    project_context
                    if project_context is not None
                    else ProjectContext.build(root)
                )
                findings = [
                    finding
                    for name in wanted_project
                    for finding in PROJECT_RULES[name]().check(pctx)
                ]
                if use_cache is not None and stamp is not None:
                    use_cache.store_global(
                        "project", stamp, wanted_project, findings
                    )
            cross_file_rules.update(wanted_project)
            for finding in findings:
                raw_by_path.setdefault(finding.path, []).append(finding)

    # ── introspection pass ──────────────────────────────────────────────
    if introspect:
        wanted_intro = sorted(n for n in INTROSPECTION_RULES if wanted(n))
        if wanted_intro:
            findings = None
            stamp = None
            if use_cache is not None:
                intro_root = _installed_root()
                if intro_root is not None:
                    stamp = _combined_stamp(
                        ProjectContext.stamp_files(intro_root)
                    )
                    findings = use_cache.lookup_global(
                        "introspect", stamp, wanted_intro
                    )
                    if findings is not None:
                        report.introspect_reused = True
            if findings is None:
                findings = [
                    finding
                    for name in wanted_intro
                    for finding in INTROSPECTION_RULES[name]().check()
                ]
                if use_cache is not None and stamp is not None:
                    use_cache.store_global(
                        "introspect", stamp, wanted_intro, findings
                    )
            cross_file_rules.update(wanted_intro)
            for finding in findings:
                raw_by_path.setdefault(finding.path, []).append(finding)

    # ── suppression & assembly (always runs, cache or not) ──────────────
    def admit(finding: Finding, pragmas: PragmaIndex | None) -> None:
        if pragmas is not None and pragmas.suppresses(finding.line, finding.rule):
            report.suppressed += 1
        elif baseline.suppresses(finding):
            report.suppressed += 1
        else:
            report.findings.append(finding)

    # Pragma indexes for cross-file finding sites outside the analyzed
    # set, loaded on demand so an ignore pragma beside a class works
    # even when the class's file was not among the analyzed paths.
    site_pragmas: dict[str, PragmaIndex | None] = {}

    def pragmas_for(path_str: str) -> PragmaIndex | None:
        if path_str in pragma_lookup:
            return pragma_lookup[path_str]
        if path_str not in site_pragmas:
            site = Path(path_str)
            site_pragmas[path_str] = (
                PragmaIndex(site.read_text()) if site.exists() else None
            )
        return site_pragmas[path_str]

    for path_str in sorted(raw_by_path):
        for finding in raw_by_path[path_str]:
            admit(finding, pragmas_for(path_str))

    for display, applied, profile in analyzed:
        if not wanted("unused-pragma"):
            continue
        if profile is not None and "unused-pragma" not in profile:
            continue
        governable = set(applied) | cross_file_rules
        for pragma in pragma_lookup[display].unused():
            # A pragma naming a rule that was deselected this run (by
            # allowlist or tree profile) may legitimately have had
            # nothing to suppress.
            if all(r in governable for r in pragma.rules):
                admit(
                    Finding(
                        path=display,
                        line=pragma.line,
                        rule="unused-pragma",
                        message=(
                            "pragma suppresses nothing: # repro: "
                            f"ignore[{', '.join(sorted(pragma.rules)) or '*'}]"
                        ),
                    ),
                    None,
                )

    for path_, rule_, message_ in baseline.stale():
        report.findings.append(
            Finding(
                path=path_,
                line=1,
                rule="stale-baseline",
                message=(
                    f"baseline entry no longer fires ({rule_}: {message_}); "
                    "remove it or regenerate with --update-baseline"
                ),
            )
        )

    if use_cache is not None:
        use_cache.save()

    report.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return report
