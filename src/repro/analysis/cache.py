"""Incremental result cache for the analysis engine.

Warm ``make lint`` reruns should cost file stamping, not re-analysis.
The cache is a JSON sidecar (``scripts/lint_cache.json``, gitignored)
holding *raw* — pre-pragma, pre-baseline — findings:

* per file, keyed by the file's CRC32 content stamp plus the exact
  rule list applied to it, the AST findings and the file's pragma
  table (pragmas live in the file, so the CRC covers them);
* per cross-file pass (``project``, ``introspect``), keyed by a CRC
  over *every* project file's stamp — any edit anywhere invalidates
  cross-file verdicts, exactly the soundness boundary of whole-program
  rules.

The whole sidecar is guarded by a **ruleset signature** derived from
every registered rule's ``(name, version)`` pair: bumping a rule's
``version`` (or adding/removing a rule) discards all cached verdicts.
Suppression state is deliberately *not* cached — pragma and baseline
filtering re-run each invocation over the cached raw findings, so
editing the baseline or a pragma-bearing file never serves stale
verdicts, and the ``unused-pragma`` pass keeps seeing the full pragma
table.  A corrupt or unreadable sidecar degrades to a cold run.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import rule_versions

#: Bump when the sidecar layout changes incompatibly.
SCHEMA = 1


def ruleset_signature() -> str:
    """Hex CRC over every registered rule's ``(name, version)``."""
    blob = ";".join(f"{name}={version}" for name, version in rule_versions())
    return f"{SCHEMA}:{zlib.crc32(blob.encode()):08x}"


def _encode_findings(findings: list[Finding]) -> list[list]:
    return [
        [f.path, f.line, f.rule, f.message, f.severity.value]
        for f in findings
    ]


def _decode_findings(rows: list[list]) -> list[Finding]:
    return [
        Finding(
            path=path,
            line=line,
            rule=rule,
            message=message,
            severity=Severity(severity),
        )
        for path, line, rule, message, severity in rows
    ]


class AnalysisCache:
    """The sidecar: load once, query per file, save once."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._signature = ruleset_signature()
        self._files: dict[str, dict] = {}
        self._global: dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("signature") != self._signature:
            # Rule added/removed/re-versioned: every verdict is stale.
            self._dirty = True
            return
        self._files = payload.get("files", {})
        self._global = payload.get("global", {})

    # -- per-file entries --------------------------------------------------

    def lookup_file(
        self, display: str, crc: int, rules: list[str]
    ) -> tuple[list[Finding], list[list]] | None:
        """Cached ``(raw findings, pragma entries)`` for an unchanged
        file analyzed under the same rule list, else ``None``."""
        entry = self._files.get(display)
        if entry is None or entry.get("crc") != crc or entry.get("rules") != rules:
            return None
        return _decode_findings(entry["findings"]), entry["pragmas"]

    def store_file(
        self,
        display: str,
        crc: int,
        rules: list[str],
        findings: list[Finding],
        pragmas: list[list],
    ) -> None:
        self._files[display] = {
            "crc": crc,
            "rules": rules,
            "findings": _encode_findings(findings),
            "pragmas": pragmas,
        }
        self._dirty = True

    # -- cross-file entries ------------------------------------------------

    def lookup_global(
        self, kind: str, stamp: int, rules: list[str]
    ) -> list[Finding] | None:
        """Cached cross-file findings (``kind`` ∈ project/introspect)
        for an unchanged tree under the same rule list."""
        entry = self._global.get(kind)
        if (
            entry is None
            or entry.get("stamp") != stamp
            or entry.get("rules") != rules
        ):
            return None
        return _decode_findings(entry["findings"])

    def store_global(
        self, kind: str, stamp: int, rules: list[str], findings: list[Finding]
    ) -> None:
        self._global[kind] = {
            "stamp": stamp,
            "rules": rules,
            "findings": _encode_findings(findings),
        }
        self._dirty = True

    # -- persistence -------------------------------------------------------

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "signature": self._signature,
            "files": self._files,
            "global": self._global,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(payload) + "\n")
        except OSError:
            # Cache is an accelerator, never a correctness dependency.
            return
        self._dirty = False
