"""Per-line ``# repro: ignore[rule]`` suppression pragmas.

A pragma suppresses findings of the named rule(s) on its own line, or —
when it is the only content of a line — on the next code line below it.
Multiple rules are comma-separated; ``# repro: ignore`` with no bracket
suppresses every rule on that line (reserved for generated code).

Examples::

    t0 = time.monotonic()  # repro: ignore[determinism]

    # repro: ignore[layering, hygiene]
    from repro.api import Session

Unused pragmas are themselves reported by the engine (rule
``unused-pragma``) so suppressions cannot silently outlive the code
they excuse.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_PRAGMA_RE = re.compile(r"#\s*repro:\s*ignore(?:\[(?P<rules>[^\]]*)\])?")


@dataclass(slots=True)
class Pragma:
    """One parsed pragma comment."""

    line: int
    #: Rule names it suppresses; empty frozenset means "all rules".
    rules: frozenset[str]
    #: Set by the engine when the pragma suppressed at least one finding.
    used: bool = field(default=False)

    def matches(self, rule: str) -> bool:
        return not self.rules or rule in self.rules


class PragmaIndex:
    """Pragmas of one file, addressable by the line they govern."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, Pragma] = {}
        # Tokenize rather than regex-scan raw lines so pragma *examples*
        # inside docstrings and string literals do not register.
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            lineno = tok.start[0]
            rules = frozenset(
                name.strip()
                for name in (match.group("rules") or "").split(",")
                if name.strip()
            )
            pragma = Pragma(line=lineno, rules=rules)
            if tok.line[: tok.start[1]].strip():
                # Trailing comment: governs its own line.
                self._by_line[lineno] = pragma
            else:
                # Standalone comment line: governs the next line.
                self._by_line[lineno + 1] = pragma

    def suppresses(self, line: int, rule: str) -> bool:
        """True if a pragma governs *line* for *rule* (marks it used)."""
        pragma = self._by_line.get(line)
        if pragma is not None and pragma.matches(rule):
            pragma.used = True
            return True
        return False

    def unused(self) -> list[Pragma]:
        """Pragmas that suppressed nothing (deduplicated, line order)."""
        seen: dict[int, Pragma] = {}
        for pragma in self._by_line.values():
            if not pragma.used:
                seen.setdefault(pragma.line, pragma)
        return [seen[line] for line in sorted(seen)]
