"""Per-line ``# repro: ignore[rule]`` suppression pragmas.

A pragma suppresses findings of the named rule(s) on its own line, or —
when it is the only content of a line — on the next code line below it.
A standalone pragma placed above a decorated ``def``/``class`` governs
the *decorated statement*, not the decorator line: decorator lines are
skipped so the pragma excuses what it visually annotates.
Multiple rules are comma-separated; ``# repro: ignore`` with no bracket
suppresses every rule on that line (reserved for generated code).

Examples::

    t0 = time.monotonic()  # repro: ignore[determinism]

    # repro: ignore[layering, hygiene]
    from repro.api import Session

    # repro: ignore[hygiene]
    @functools.cache          # pragma governs the def below, not this
    def lookup(key, cache={}):
        ...

Unused pragmas are themselves reported by the engine (rule
``unused-pragma``) so suppressions cannot silently outlive the code
they excuse.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

_PRAGMA_RE = re.compile(r"#\s*repro:\s*ignore(?:\[(?P<rules>[^\]]*)\])?")


@dataclass(slots=True)
class Pragma:
    """One parsed pragma comment."""

    line: int
    #: Rule names it suppresses; empty frozenset means "all rules".
    rules: frozenset[str]
    #: Set by the engine when the pragma suppressed at least one finding.
    used: bool = field(default=False)

    def matches(self, rule: str) -> bool:
        return not self.rules or rule in self.rules


def _decorator_targets(source: str) -> dict[int, int]:
    """Map every decorator line to the line of the statement it
    decorates, so standalone pragmas can skip past decorators."""
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError):
        return {}
    targets: dict[int, int] = {}
    for node in ast.walk(tree):
        decorators = getattr(node, "decorator_list", None)
        if not decorators:
            continue
        first = min(d.lineno for d in decorators)
        # Cover the whole decorator block (multi-line decorator calls
        # included) up to — excluding — the def/class line itself.
        for line in range(first, node.lineno):
            targets[line] = node.lineno
    return targets


class PragmaIndex:
    """Pragmas of one file, addressable by the line they govern."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, Pragma] = {}
        # Tokenize rather than regex-scan raw lines so pragma *examples*
        # inside docstrings and string literals do not register.
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return
        decorator_targets: dict[int, int] | None = None
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            lineno = tok.start[0]
            rules = frozenset(
                name.strip()
                for name in (match.group("rules") or "").split(",")
                if name.strip()
            )
            pragma = Pragma(line=lineno, rules=rules)
            if tok.line[: tok.start[1]].strip():
                # Trailing comment: governs its own line.
                self._by_line[lineno] = pragma
            else:
                # Standalone comment line: governs the next line — or,
                # when that line starts a decorator block, the decorated
                # def/class statement the pragma reads as excusing.
                governed = lineno + 1
                if decorator_targets is None:
                    decorator_targets = _decorator_targets(source)
                governed = decorator_targets.get(governed, governed)
                self._by_line[governed] = pragma

    @classmethod
    def from_entries(cls, entries: list[list]) -> "PragmaIndex":
        """Rebuild from :meth:`entries` output without re-tokenizing —
        the incremental cache's warm path."""
        index = cls.__new__(cls)
        index._by_line = {
            governed: Pragma(line=line, rules=frozenset(rules))
            for governed, line, rules in entries
        }
        return index

    def entries(self) -> list[list]:
        """JSON-serializable form: ``[governed, source line, rules]``."""
        return [
            [governed, pragma.line, sorted(pragma.rules)]
            for governed, pragma in sorted(self._by_line.items())
        ]

    def suppresses(self, line: int, rule: str) -> bool:
        """True if a pragma governs *line* for *rule* (marks it used)."""
        pragma = self._by_line.get(line)
        if pragma is not None and pragma.matches(rule):
            pragma.used = True
            return True
        return False

    def unused(self) -> list[Pragma]:
        """Pragmas that suppressed nothing (deduplicated, line order)."""
        seen: dict[int, Pragma] = {}
        for pragma in self._by_line.values():
            if not pragma.used:
                seen.setdefault(pragma.line, pragma)
        return [seen[line] for line in sorted(seen)]
