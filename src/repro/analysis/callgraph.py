"""Module-level call graph over a :class:`ProjectContext`.

Edges connect qualified function names (``repro.api.experiment.Cell.
execute`` → ``repro.registry.cached_trace``).  Call sites resolve
through the project symbol table:

* bare names — function-scoped import aliases first (``from repro
  import registry`` inside a def), then module-level aliases, then the
  module's own functions and classes (a class call targets its
  ``__init__``);
* ``alias.attr(...)`` — when ``alias`` names an imported module, the
  attr resolves inside that module; when it names an imported or local
  class, inside that class;
* ``self.m(...)`` / ``cls.m(...)`` — the enclosing class, then its base
  classes (shallow, by resolvable base names);
* anything else (``obj.m(...)`` on an unknown receiver) falls back to
  *every* function or method named ``m`` in the project — deliberately
  over-approximate, so reachability-based rules err on the side of
  reporting.

Nested defs get an implicit edge from their enclosing function:
defining a closure on a path makes the closure part of that path for
reachability purposes, whether or not the analysis sees the call.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Iterable

from repro.analysis.project import (
    _FUNCTION_NODES,
    FunctionInfo,
    ProjectContext,
    _walk_function_body,
)


class CallGraph:
    """Resolved call edges plus reachability queries."""

    def __init__(self, ctx: ProjectContext) -> None:
        self.ctx = ctx
        self.edges: dict[str, set[str]] = {}
        #: method/function bare name → qualified names (fallback index)
        self._by_name: dict[str, set[str]] = {}
        for qual in ctx.functions:
            self._by_name.setdefault(qual.rsplit(".", 1)[1], set()).add(qual)
        for info in ctx.functions.values():
            self.edges[info.qualname] = self._resolve_calls(info)

    @classmethod
    def build(cls, ctx: ProjectContext) -> "CallGraph":
        return cls(ctx)

    # -- edge resolution ---------------------------------------------------

    def _resolve_calls(self, fn: FunctionInfo) -> set[str]:
        targets: set[str] = set()
        for node in _walk_function_body(fn.node):
            if isinstance(node, _FUNCTION_NODES):
                # Implicit edge to nested defs (closures used as
                # callbacks, worker initializers, …).
                targets.add(f"{fn.qualname}.{node.name}")
            elif isinstance(node, ast.Call):
                targets.update(self._resolve_callee(fn, node.func))
        return {t for t in targets if t in self.ctx.functions}

    def _resolve_callee(self, fn: FunctionInfo, func: ast.AST) -> set[str]:
        if isinstance(func, ast.Name):
            return self._resolve_dotted(fn, func.id)
        if isinstance(func, ast.Attribute):
            base = func.value
            method = func.attr
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls"):
                    resolved = self._resolve_self_method(fn, method)
                    if resolved:
                        return resolved
                    return self._fallback(method)
                if base.id not in fn.bound:
                    # Module or class addressed by (import) name.
                    target = self._lookup_alias(fn, base.id)
                    if target is not None:
                        resolved = self._resolve_in(target, method)
                        if resolved:
                            return resolved
                return self._fallback(method)
            # Chained receivers (``a.b.m()``): unknown object.
            return self._fallback(method)
        return set()

    def _lookup_alias(self, fn: FunctionInfo, name: str) -> str | None:
        minfo = self.ctx.modules[fn.module]
        target = fn.imports.get(name) or minfo.imports.get(name)
        if target is not None:
            return target
        if name in minfo.classes:
            return f"{fn.module}.{name}"
        return None

    def _resolve_dotted(self, fn: FunctionInfo, name: str) -> set[str]:
        """A bare-name call: ``helper()``, ``Cell()``, ``deque()``."""
        target = self.ctx.resolve_name(fn, name)
        if target is None:
            return set()
        if target in self.ctx.functions:
            return {target}
        return self._resolve_class_init(target) or self._resolve_as_symbol(target)

    def _resolve_as_symbol(self, target: str) -> set[str]:
        """Dotted import target: ``repro.registry.cached_trace``-style."""
        owner, _, attr = target.rpartition(".")
        minfo = self.ctx.modules.get(owner)
        if minfo is None:
            return set()
        if attr in minfo.functions:
            return {minfo.functions[attr]}
        if attr in minfo.classes:
            return self._resolve_class_init(f"{owner}.{attr}")
        return set()

    def _resolve_class_init(self, class_qual: str) -> set[str]:
        owner, _, cname = class_qual.rpartition(".")
        minfo = self.ctx.modules.get(owner)
        if minfo is not None and cname in minfo.classes:
            init = minfo.classes[cname].methods.get("__init__")
            return {init} if init else set()
        return set()

    def _resolve_in(self, target: str, method: str) -> set[str]:
        """Resolve ``target.method`` where target is a module or class."""
        minfo = self.ctx.modules.get(target)
        if minfo is not None:
            if method in minfo.functions:
                return {minfo.functions[method]}
            if method in minfo.classes:
                return self._resolve_class_init(f"{target}.{method}")
            return set()
        # A class addressed by dotted name (from-import or local).
        owner, _, cname = target.rpartition(".")
        cls_minfo = self.ctx.modules.get(owner)
        if cls_minfo is not None and cname in cls_minfo.classes:
            qual = cls_minfo.classes[cname].methods.get(method)
            return {qual} if qual else set()
        return set()

    def _resolve_self_method(self, fn: FunctionInfo, method: str) -> set[str]:
        """``self.m()`` in a method body: own class, then base classes."""
        parts = fn.qualname.rsplit(".", 2)
        if len(parts) < 3:
            return set()
        module, cname = parts[0], parts[1]
        minfo = self.ctx.modules.get(module)
        if minfo is None or cname not in minfo.classes:
            return set()
        pending = deque([(module, cname)])
        seen: set[tuple[str, str]] = set()
        while pending:
            mod, cls = pending.popleft()
            if (mod, cls) in seen:
                continue
            seen.add((mod, cls))
            cinfo = self.ctx.modules.get(mod)
            cinfo = cinfo.classes.get(cls) if cinfo else None
            if cinfo is None:
                continue
            if method in cinfo.methods:
                return {cinfo.methods[method]}
            for base in cinfo.bases:
                resolved = self._resolve_base(mod, base)
                if resolved is not None:
                    pending.append(resolved)
        return set()

    def _resolve_base(self, module: str, base: str) -> tuple[str, str] | None:
        """Map a base-class name expression to ``(module, class)``."""
        minfo = self.ctx.modules.get(module)
        if minfo is None:
            return None
        head, _, tail = base.partition(".")
        if not tail:
            if base in minfo.classes:
                return (module, base)
            target = minfo.imports.get(base)
            if target is not None:
                owner, _, cname = target.rpartition(".")
                if owner in self.ctx.modules:
                    return (owner, cname)
            return None
        target = minfo.imports.get(head)
        if target is not None and target in self.ctx.modules:
            return (target, tail.rpartition(".")[2] or tail)
        return None

    def _fallback(self, method: str) -> set[str]:
        """Unknown receiver: every project function with this name."""
        return set(self._by_name.get(method, ()))

    # -- reachability ------------------------------------------------------

    def reachable_from(
        self, entries: Iterable[str]
    ) -> dict[str, tuple[str, str | None]]:
        """BFS closure: qualified name → ``(entry, caller)``.

        ``entry`` is the entry point that first reached the function and
        ``caller`` its immediate predecessor (``None`` for the entry
        itself) — enough to render a why-chain in findings.
        """
        reached: dict[str, tuple[str, str | None]] = {}
        queue: deque[str] = deque()
        for entry in entries:
            if entry in self.ctx.functions and entry not in reached:
                reached[entry] = (entry, None)
                queue.append(entry)
        while queue:
            current = queue.popleft()
            entry, _ = reached[current]
            for callee in sorted(self.edges.get(current, ())):
                if callee not in reached:
                    reached[callee] = (entry, current)
                    queue.append(callee)
        return reached

    def chain(
        self, reached: dict[str, tuple[str, str | None]], qualname: str
    ) -> list[str]:
        """Entry-to-function call chain for finding messages."""
        links: list[str] = []
        current: str | None = qualname
        while current is not None:
            links.append(current)
            current = reached[current][1]
        return list(reversed(links))
