"""Static analysis enforcing the platform's soundness invariants.

The result store, the process-pool executor, and checkpoint/resume are
only correct under invariants the type system cannot see: replay must
be deterministic (no builtin ``hash``, no global ``random`` stream, no
wall clock in simulation packages), fingerprints must fold in every
semantic config field, everything reachable from ``EngineState`` must
pickle completely, and the layering DAG must not invert.  This package
machine-checks all of them on every PR:

>>> python -m repro.analysis src/repro        # doctest: +SKIP

Architecture (see ``repro.analysis.rules`` for the rule registry):

* pure-AST rules run per file (``determinism``, ``layering``,
  ``hygiene``);
* import-time introspection rules inspect the live package once
  (``fingerprint``, ``checkpoint``);
* per-line ``# repro: ignore[rule]`` pragmas and the committed
  ``scripts/lint_baseline.json`` suppress findings — both are
  themselves checked for staleness (``unused-pragma``,
  ``stale-baseline``).
"""

from repro.analysis.baseline import Baseline
from repro.analysis.engine import Report, collect_files, module_name_of, run
from repro.analysis.findings import Finding, Severity
from repro.analysis.pragmas import PragmaIndex
from repro.analysis.rules import (
    AST_RULES,
    INTROSPECTION_RULES,
    AstRule,
    FileContext,
    IntrospectionRule,
    all_rule_names,
    register,
)

__all__ = [
    "AST_RULES",
    "Baseline",
    "AstRule",
    "FileContext",
    "Finding",
    "INTROSPECTION_RULES",
    "IntrospectionRule",
    "PragmaIndex",
    "Report",
    "Severity",
    "all_rule_names",
    "collect_files",
    "module_name_of",
    "register",
    "run",
]
