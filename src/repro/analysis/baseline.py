"""Committed baseline of grandfathered findings.

The baseline lets the checker land with pre-existing violations still
in the tree: everything recorded in the file is reported as suppressed
instead of failing the build, while *new* findings still gate.  The
intent is a monotonically shrinking file — ``scripts/lint_baseline.json``
is committed (currently empty) and CI fails on any finding not in it.

Entries are matched by ``(path, rule, message)`` — no line numbers — so
edits elsewhere in a file do not churn the baseline.  Stale entries
(recorded but no longer firing) are reported so the file cannot grow
moss; regenerate with ``python -m repro.analysis --update-baseline``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding


class Baseline:
    """Grandfathered findings loaded from a committed JSON file."""

    def __init__(self, entries: list[dict] | None = None) -> None:
        self._entries: set[tuple[str, str, str]] = {
            (e["path"], e["rule"], e["message"]) for e in entries or []
        }
        self._hits: set[tuple[str, str, str]] = set()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        return cls(json.loads(path.read_text()))

    @staticmethod
    def save(path: Path, findings: list[Finding]) -> None:
        """Record *findings* as the new baseline (sorted, line-free)."""
        entries = sorted(
            {f.baseline_key() for f in findings}
        )
        payload = [
            {"path": p, "rule": r, "message": m} for p, r, m in entries
        ]
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def suppresses(self, finding: Finding) -> bool:
        key = finding.baseline_key()
        if key in self._entries:
            self._hits.add(key)
            return True
        return False

    def stale(self) -> list[tuple[str, str, str]]:
        """Recorded entries that no longer match any finding."""
        return sorted(self._entries - self._hits)

    def __len__(self) -> int:
        return len(self._entries)
