"""QVStore: the hierarchical, tile-coded Q-value store (§4.2.1).

Organization (Fig 5): one *vault* per program feature; each vault holds
``N`` *planes*, small tables indexed by a per-plane hash of the feature
value and by the action.  Retrieval:

    Q(φ_i, A) = Σ_planes  plane[idx_p(φ_i), A]          (Fig 5b)
    Q(S, A)   = max_i  Q(φ_i, A)                         (Eqn 3)

The max across vaults lets whichever feature correlates best with the
current pattern drive the decision; the per-plane sum is standard tile
coding.  SARSA updates apply the TD error to every plane of every vault
(the gradient of the sum), as the Pythia artifact does.
"""

from __future__ import annotations

from repro.core.config import PythiaConfig
from repro.core.tile_coding import plane_indices

#: State values as passed around by the agent: one int per feature.
StateValues = tuple[int, ...]


class Vault:
    """Q-value storage for one program feature.

    Plain nested lists, not numpy: lookups touch three 16-float rows per
    query and per-element Python arithmetic beats small-array numpy
    dispatch by a wide margin on the simulator's hot path.
    """

    def __init__(self, config: PythiaConfig) -> None:
        self._shifts = config.plane_shifts
        self._entries = config.plane_entries
        self._num_actions = config.num_actions
        init = config.initial_q / config.num_planes
        self._planes: list[list[list[float]]] = [
            [[init] * config.num_actions for _ in range(config.plane_entries)]
            for _ in range(config.num_planes)
        ]
        self._index_cache: dict[int, tuple[int, ...]] = {}

    def indices(self, value: int) -> tuple[int, ...]:
        """Plane row indices for a feature *value* (memoized)."""
        cached = self._index_cache.get(value)
        if cached is None:
            cached = plane_indices(value, self._shifts, self._entries)
            if len(self._index_cache) > 65536:
                self._index_cache.clear()
            self._index_cache[value] = cached
        return cached

    def q_row(self, value: int) -> list[float]:
        """Q(φ, A) for all actions: the sum of partial rows (Fig 5b)."""
        rows = [
            self._planes[p][i] for p, i in enumerate(self.indices(value))
        ]
        first = rows[0]
        total = list(first)
        for row in rows[1:]:
            for a in range(self._num_actions):
                total[a] += row[a]
        return total

    def update(self, value: int, action: int, step: float) -> None:
        """Apply a TD step to every plane's partial Q for (value, action)."""
        for p, i in enumerate(self.indices(value)):
            self._planes[p][i][action] += step

    @property
    def storage_entries(self) -> int:
        """Total Q-value entries held (Table 4 accounting)."""
        return len(self._planes) * self._entries * self._num_actions


class QVStore:
    """The full store: one vault per constituent feature."""

    def __init__(self, config: PythiaConfig) -> None:
        self.config = config
        self.vaults = [Vault(config) for _ in config.features]

    def q_values(self, state: StateValues) -> list[float]:
        """Q(S, A) for every action: max over vaults (Eqn 3)."""
        rows = [vault.q_row(v) for vault, v in zip(self.vaults, state)]
        best = rows[0]
        if len(rows) == 1:
            return best
        total = list(best)
        for row in rows[1:]:
            for a in range(len(total)):
                if row[a] > total[a]:
                    total[a] = row[a]
        return total

    def q_value(self, state: StateValues, action: int) -> float:
        """Q(S, A) for one action."""
        return self.q_values(state)[action]

    def best_action(self, state: StateValues) -> tuple[int, float]:
        """Action index with the maximum Q-value, and that value."""
        q = self.q_values(state)
        best_a = 0
        best_q = q[0]
        for a in range(1, len(q)):
            if q[a] > best_q:
                best_q = q[a]
                best_a = a
        return best_a, best_q

    def sarsa_update(
        self,
        state: StateValues,
        action: int,
        reward: float,
        next_state: StateValues,
        next_action: int,
    ) -> float:
        """One SARSA step (Eqn 1 / Algorithm 1 line 29); returns the TD error.

        The TD error is computed once from the state-level Q-values and
        applied (scaled by α) to every plane of every vault.
        """
        q_sa = self.q_value(state, action)
        q_next = self.q_value(next_state, next_action)
        td_error = reward + self.config.gamma * q_next - q_sa
        step = self.config.alpha * td_error
        for vault, value in zip(self.vaults, state):
            vault.update(value, action, step)
        return td_error

    @property
    def storage_entries(self) -> int:
        """Total Q-value entries across vaults (Table 4 accounting)."""
        return sum(v.storage_entries for v in self.vaults)
